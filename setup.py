"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that editable installs keep working on environments whose setuptools/pip
lack the ``wheel`` package needed for PEP-517 editable builds (install with
``pip install -e . --no-build-isolation --no-use-pep517`` there).
"""

from setuptools import setup

setup()
