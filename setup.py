"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that editable installs keep working on environments whose setuptools/pip
lack the ``wheel`` package needed for PEP-517 editable builds (install with
``pip install -e . --no-build-isolation --no-use-pep517`` there), and to host
the one thing declarative metadata cannot: the optional cffi build hook for
the native C backend (``pip install .[native]``).

The hook is gated — without cffi (or without a C compiler, which setuptools
surfaces as a build error only when the extension is actually attempted) the
package installs pure-Python and :mod:`repro.backends.native` falls back to
compiling into the artifact cache on first import, or degrades to a clear
``ImportError``.
"""

from setuptools import setup

kwargs = {}
try:
    import cffi  # noqa: F401

    kwargs["cffi_modules"] = ["src/repro/backends/native/_build.py:ffibuilder"]
    kwargs["setup_requires"] = ["cffi>=1.15"]
except ImportError:
    pass

setup(**kwargs)
