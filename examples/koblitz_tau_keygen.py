#!/usr/bin/env python3
"""τ-adic scalars and fixed-base combs on the NIST Koblitz curves.

On a Koblitz curve (coefficients in GF(2)) the Frobenius map
τ(x, y) = (x², y²) is a curve endomorphism, so a scalar recoded in ℤ[τ]
replaces the Montgomery ladder's ~m point doublings with field squarings —
the operation the paper's type II pentanomial fields execute almost for
free as fused linear passes.  This example drives both algorithmic paths
from `repro.curves.scalarmul` end to end on K-163:

1. reduces a scalar in ℤ[τ] and prints its width-w τ-NAF digit density
   (~1/(w+1) nonzeros, vs 1/2 for the binary expansion),
2. runs a batched key agreement with ``scalar_rep="tau"`` and shows it is
   byte-identical to the binary ladder,
3. generates key pairs through the fixed-base comb table (built lazily,
   persisted in the artifact store — the second run is a cache hit), and
   times both against the plain ladder.

Run with:  python examples/koblitz_tau_keygen.py [--curve K-233]
"""

from __future__ import annotations

import argparse
import time

from repro.curves import curve_by_name, ecdh_batch, keygen_batch, tau_naf
from repro.telemetry import metrics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--curve", default="K-163", help="Koblitz catalog curve (default K-163)")
    parser.add_argument("--batch", type=int, default=64, help="lanes in the batched demos (default 64)")
    args = parser.parse_args()

    curve = curve_by_name(args.curve)
    print(f"{curve.name}: {curve.field.modulus_string()}")

    # 1. τ-NAF recoding: ~m+2 digits, ~1/(w+1) of them nonzero.
    scalar = (curve.order * 2) // 3
    digits = tau_naf(curve, scalar)
    nonzero = sum(1 for digit in digits if digit)
    print(
        f"width-4 τ-NAF of a {scalar.bit_length()}-bit scalar: {len(digits)} digits, "
        f"{nonzero} nonzero (density {nonzero / len(digits):.3f} ≈ 1/5)"
    )

    # 2. τ-adic agreement, byte-identical to the binary ladder.
    alice = keygen_batch(curve, args.batch, seed=1)
    bob = keygen_batch(curve, args.batch, seed=2)
    privates = [pair.private for pair in alice]
    peers = [pair.public for pair in bob]
    start = time.perf_counter()
    shared_tau = ecdh_batch(curve, privates, peers, scalar_rep="tau")
    tau_s = time.perf_counter() - start
    start = time.perf_counter()
    shared_binary = ecdh_batch(curve, privates, peers, scalar_rep="binary")
    binary_s = time.perf_counter() - start
    assert shared_tau == shared_binary
    print(
        f"τ-adic agreement == binary ladder on {args.batch} lanes "
        f"({tau_s * 1000:.1f} ms vs {binary_s * 1000:.1f} ms)"
    )

    # 3. Fixed-base comb keygen vs the full ladder, with table telemetry.
    registry = metrics.enable()
    start = time.perf_counter()
    comb_pairs = keygen_batch(curve, args.batch, seed=3, fixed_base=True)
    comb_s = time.perf_counter() - start
    start = time.perf_counter()
    ladder_pairs = keygen_batch(curve, args.batch, seed=3, scalar_rep="binary", fixed_base=False)
    ladder_s = time.perf_counter() - start
    assert comb_pairs == ladder_pairs
    counters = registry.snapshot()["counters"]
    builds = counters.get("comb.table.build", 0)
    hits = counters.get("comb.table.hit", 0)
    print(
        f"comb keygen == ladder keygen ({comb_s * 1000:.1f} ms vs {ladder_s * 1000:.1f} ms, "
        f"{ladder_s / comb_s:.1f}x; table: {builds} build(s), {hits} store hit(s))"
    )


if __name__ == "__main__":
    main()
