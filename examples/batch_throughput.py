"""Batch multiplication through the compiled engine — the production path.

The interpreted simulator (`repro.netlist.simulate.simulate_words`) walks the
multiplier netlist node by node and packs operands bit by bit: perfect for
understanding the paper's circuits, far too slow for serving traffic.  The
engine compiles the circuit once and streams bit-packed batches through it.

Run with::

    PYTHONPATH=src python examples/batch_throughput.py
"""

import random
import time

from repro import GF2mField, engine_for, generate_multiplier, type_ii_pentanomial
from repro.netlist.simulate import simulate_words

M, N = 163, 66                      # NIST B-163, the paper's headline field
PAIRS = 2048

modulus = type_ii_pentanomial(M, N)
field = GF2mField(modulus)
rng = random.Random(2018)
a_values = [rng.getrandbits(M) for _ in range(PAIRS)]
b_values = [rng.getrandbits(M) for _ in range(PAIRS)]

# One call builds the multiplier (cached by (method, modulus)), compiles its
# netlist to a straight-line Python function, and wires the batch transposes.
start = time.perf_counter()
engine = engine_for("thiswork", modulus, verify=False)
print(f"engine ready in {time.perf_counter() - start:.2f}s: {engine.describe()}")

# Steady-state throughput: one compiled call per 4096-pair chunk.
start = time.perf_counter()
products = engine.multiply_batch(a_values, b_values)
compiled_s = time.perf_counter() - start
print(f"compiled:    {PAIRS / compiled_s:>10,.0f} products/s")

# The same work through the interpreted reference path (on a subset).
subset = 128
netlist = generate_multiplier("thiswork", modulus, verify=False).netlist
start = time.perf_counter()
reference = simulate_words(netlist, M, a_values[:subset], b_values[:subset])
interpreted_s = time.perf_counter() - start
print(f"interpreted: {subset / interpreted_s:>10,.0f} products/s")
print(f"speedup:     {(PAIRS / compiled_s) / (subset / interpreted_s):>10.1f}x")

# Same answers, verified against the independent reference arithmetic.
assert products[:subset] == reference
for index in random.Random(1).sample(range(PAIRS), 32):
    assert products[index] == field.multiply(a_values[index], b_values[index])
print("spot-checked against GF2mField.multiply: all match")

# Fields offer the batch path directly:
assert field.multiply_batch(a_values[:8], b_values[:8]) == products[:8]
