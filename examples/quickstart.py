#!/usr/bin/env python3
"""Quickstart: the paper's GF(2^8) multiplier, from algebra to FPGA report.

Steps shown:
1. build the paper's field GF(2^8) with f(y) = y^8 + y^4 + y^3 + y^2 + 1;
2. print the flat coefficient expressions (paper Table IV);
3. generate the proposed multiplier circuit and formally verify it;
4. run the Python FPGA flow and print the LUT / slice / delay / AxT report.

Run with:  python examples/quickstart.py
"""

from repro import (
    generate_multiplier,
    implement,
    poly_to_string,
    render_table4,
    type_ii_pentanomial,
    verify_netlist,
)


def main() -> None:
    modulus = type_ii_pentanomial(8, 2)
    print(f"Field: GF(2^8) defined by f(y) = {poly_to_string(modulus)}\n")

    print(render_table4(modulus))
    print()

    multiplier = generate_multiplier("thiswork", modulus)
    report = verify_netlist(multiplier.netlist, multiplier.spec)
    print(f"Generated: {multiplier.describe()}")
    print(f"Formal verification: {report.summary()}\n")

    result = implement(multiplier)
    print("Implementation on the Artix-7 model:")
    for key, value in result.as_dict().items():
        print(f"  {key:20s} {value}")
    print(f"\nPaper reference for this field/method: 33 LUTs, 9.77 ns, AxT = 322.41")


if __name__ == "__main__":
    main()
