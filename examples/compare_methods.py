#!/usr/bin/env python3
"""Mini Table V: compare all six multiplier constructions on two small fields.

This is the scaled-down version of the paper's main experiment (the full
nine-field sweep lives in ``benchmarks/bench_table5_comparison.py``).  It
prints the measured LUTs / slices / delay / Area×Time table in the paper's
layout and then evaluates the paper's qualitative claims on the results.

Run with:  python examples/compare_methods.py
"""

from repro import SynthesisOptions, claims_report, comparison_table, compare_to_paper, run_comparison


def main() -> None:
    comparisons = run_comparison(fields=[(8, 2), (16, 3)], options=SynthesisOptions(effort=2))

    print(comparison_table(comparisons, title="Measured comparison (paper Table V layout)"))
    print()
    print("Side-by-side with the paper's published values (where available):")
    print(compare_to_paper(comparisons))
    print()

    report = claims_report(comparisons)
    print("Qualitative claims of the paper, evaluated on these measurements:")
    print(f"  fields compared:                      {report['fields']}")
    print(f"  proposed beats parenthesized [7] in:  {report['proposed_beats_parenthesized']}")
    print(f"  proposed has best Area x Time in:     {report['proposed_best_area_time']}")
    print(f"  proposed has lowest delay in:         {report['proposed_lowest_delay']}")


if __name__ == "__main__":
    main()
