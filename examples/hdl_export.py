#!/usr/bin/env python3
"""Export synthesizable HDL for the paper's multipliers.

Writes, into ``examples/output/``:

* structural VHDL and Verilog for the proposed GF(2^8) multiplier,
* behavioral VHDL for the parenthesized baseline (ref [7]) — note the
  explicit parentheses in its output expressions, which is exactly the
  structural restriction the paper removes,
* a self-checking VHDL testbench with reference vectors.

These files are what a user would feed to ISE/Vivado to re-run the paper's
original FPGA experiment on real hardware.

Run with:  python examples/hdl_export.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    generate_multiplier,
    multiplier_to_behavioral_vhdl,
    netlist_to_verilog,
    netlist_to_vhdl,
    type_ii_pentanomial,
    vhdl_testbench,
)


def main() -> None:
    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    modulus = type_ii_pentanomial(8, 2)

    proposed = generate_multiplier("thiswork", modulus)
    parenthesized = generate_multiplier("imana2016", modulus)

    files = {
        "gf2_8_thiswork_structural.vhd": netlist_to_vhdl(proposed.netlist, entity_name="gf2m_multiplier"),
        "gf2_8_thiswork.v": netlist_to_verilog(proposed.netlist, module_name="gf2m_multiplier"),
        "gf2_8_imana2016_behavioral.vhd": multiplier_to_behavioral_vhdl(
            parenthesized, entity_name="gf2m_multiplier_paren"
        ),
        "tb_gf2m_multiplier.vhd": vhdl_testbench(modulus, entity_name="gf2m_multiplier", count=64),
    }
    for name, text in files.items():
        path = output_dir / name
        path.write_text(text, encoding="utf-8")
        print(f"wrote {path}  ({len(text.splitlines())} lines)")

    print("\nTo reproduce the paper's original experiment, synthesize the VHDL with")
    print("ISE/XST (or Vivado) targeting xc7a200t-ffg1156 and compare post-place-and-route")
    print("LUTs / slices / delay with benchmarks/bench_table5_comparison.py output.")


if __name__ == "__main__":
    main()
