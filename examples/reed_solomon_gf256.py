#!/usr/bin/env python3
"""Reed-Solomon encoding over the paper's GF(2^8) field (CCSDS-style use case).

The paper motivates GF(2^8) with its use in space-communication coding (the
CCSDS Reed-Solomon code uses exactly the pentanomial y^8+y^4+y^3+y^2+1).
This example builds a systematic RS(255, 223)-style encoder on top of the
library's field arithmetic and then cross-checks a sample of the generator
circuitry: every GF(2^8) constant multiplication performed by the encoder is
replayed on the *gate-level multiplier netlist* produced by the proposed
construction, demonstrating that the hardware circuit and the software
reference agree inside a real application.

Run with:  python examples/reed_solomon_gf256.py
"""

from __future__ import annotations

import random
from typing import List

from repro import GF2mField, generate_multiplier, multiply_with_netlist, type_ii_pentanomial

NUM_PARITY = 32            # RS(255, 223): 32 parity symbols
MESSAGE_LENGTH = 64        # shortened message for a quick demo


def build_generator_polynomial(field: GF2mField, generator: int, parity: int) -> List[int]:
    """g(x) = (x - g^1)(x - g^2)...(x - g^parity), coefficients low-degree first."""
    poly = [1]
    root = generator
    for _ in range(parity):
        next_poly = [0] * (len(poly) + 1)
        for degree, coefficient in enumerate(poly):
            next_poly[degree] ^= field.multiply(coefficient, root)
            next_poly[degree + 1] ^= coefficient
        poly = next_poly
        root = field.multiply(root, generator)
    return poly


def rs_encode(field: GF2mField, message: List[int], generator_poly: List[int]) -> List[int]:
    """Systematic encoding: return the parity symbols of ``message``."""
    parity = [0] * (len(generator_poly) - 1)
    for symbol in message:
        feedback = symbol ^ parity[-1]
        parity = [0] + parity[:-1]
        if feedback:
            for index in range(len(parity)):
                parity[index] ^= field.multiply(feedback, generator_poly[index])
    return parity


def main() -> None:
    modulus = type_ii_pentanomial(8, 2)
    field = GF2mField(modulus)
    print(f"Reed-Solomon demo over GF(2^8), modulus {field.modulus_string()}")

    alpha = 0x02
    generator_poly = build_generator_polynomial(field, alpha, NUM_PARITY)
    print(f"generator polynomial degree: {len(generator_poly) - 1}")

    rng = random.Random(2018)
    message = [rng.randrange(256) for _ in range(MESSAGE_LENGTH)]
    parity = rs_encode(field, message, generator_poly)
    print(f"message symbols: {MESSAGE_LENGTH}, parity symbols: {len(parity)}")
    print(f"first parity bytes: {[hex(symbol) for symbol in parity[:6]]}")

    # Check: the codeword evaluates to zero at every root of g(x).
    codeword = message + parity[::-1]
    ok = True
    root = alpha
    for _ in range(NUM_PARITY):
        value = 0
        power = 1
        for symbol in reversed(codeword):
            value ^= field.multiply(symbol, power)
            power = field.multiply(power, root)
        ok &= value == 0
        root = field.multiply(root, alpha)
    print(f"all {NUM_PARITY} syndrome checks zero: {ok}")

    # Replay a sample of the encoder's multiplications on the gate-level circuit.
    multiplier = generate_multiplier("thiswork", modulus)
    mismatches = 0
    samples = 0
    for coefficient in generator_poly[:8]:
        for symbol in message[:8]:
            expected = field.multiply(coefficient, symbol)
            actual = multiply_with_netlist(multiplier.netlist, 8, coefficient, symbol)
            mismatches += expected != actual
            samples += 1
    print(f"gate-level multiplier agreed with the reference on {samples - mismatches}/{samples} encoder products")


if __name__ == "__main__":
    main()
