"""Paper Table IV — the proposed flat (non-parenthesized) coefficients.

Regenerates the flat split-term expressions for GF(2^8), checks them against
the publication verbatim, and benchmarks generation + formal verification of
the proposed multiplier circuit built from them.
"""

from __future__ import annotations

import pytest

from repro.galois.pentanomials import type_ii_pentanomial
from repro.multipliers import generate_multiplier
from repro.netlist.verify import verify_netlist
from repro.spec.reduction import split_coefficients

PAPER_TABLE_IV = [
    "c0 = S1^0 + T0^2 + T0^1 + T0^0 + T4^1 + T4^0 + T5^1 + T6^0",
    "c1 = S2^1 + T1^2 + T1^1 + T5^1 + T6^0",
    "c2 = S3^1 + S3^0 + T0^2 + T0^1 + T0^0 + T2^2 + T2^0 + T4^1 + T4^0 + T5^1",
    "c3 = S4^2 + T0^2 + T0^1 + T0^0 + T1^2 + T1^1 + T3^2 + T4^1 + T4^0",
    "c4 = S5^2 + S5^0 + T0^2 + T0^1 + T0^0 + T1^2 + T1^1 + T2^2 + T2^0 + T6^0",
    "c5 = S6^2 + S6^1 + T1^2 + T1^1 + T2^2 + T2^0 + T3^2",
    "c6 = S7^2 + S7^1 + S7^0 + T2^2 + T2^0 + T3^2 + T4^1 + T4^0",
    "c7 = S8^3 + T3^2 + T4^1 + T4^0 + T5^1",
]


def test_table4_gf28_matches_paper(benchmark, gf28_modulus):
    rows = benchmark(split_coefficients, gf28_modulus)
    rendered = [row.to_string() for row in rows]
    assert rendered == PAPER_TABLE_IV
    print("\n--- Table IV (reproduced) ---")
    for line in rendered:
        print(f"  {line};")


def test_table4_circuit_generation_and_verification(benchmark, gf28_modulus):
    def generate_and_verify():
        multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
        report = verify_netlist(multiplier.netlist, multiplier.spec)
        return multiplier, report

    multiplier, report = benchmark(generate_and_verify)
    assert report.equivalent
    stats = multiplier.stats()
    print(f"\nproposed GF(2^8) netlist: {stats.and_gates} AND, {stats.xor_gates} XOR (flat form, pre-synthesis)")


@pytest.mark.parametrize("field", [(64, 23), (163, 66)])
def test_table4_generation_scales_to_paper_fields(benchmark, field):
    modulus = type_ii_pentanomial(*field)
    multiplier = benchmark(lambda: generate_multiplier("thiswork", modulus, verify=False))
    assert multiplier.stats().and_gates == field[0] ** 2
