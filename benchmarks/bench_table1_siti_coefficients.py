"""Paper Table I — coefficients of the product as sums of S_i / T_i functions.

Regenerates Table I for GF(2^8), checks it against the publication verbatim,
and benchmarks the S/T reduction for the paper's field sizes.
"""

from __future__ import annotations

import pytest

from repro.galois.pentanomials import type_ii_pentanomial
from repro.spec.reduction import st_coefficients

PAPER_TABLE_I = [
    "c0 = S1 + T0 + T4 + T5 + T6",
    "c1 = S2 + T1 + T5 + T6",
    "c2 = S3 + T0 + T2 + T4 + T5",
    "c3 = S4 + T0 + T1 + T3 + T4",
    "c4 = S5 + T0 + T1 + T2 + T6",
    "c5 = S6 + T1 + T2 + T3",
    "c6 = S7 + T2 + T3 + T4",
    "c7 = S8 + T3 + T4 + T5",
]


def test_table1_gf28_matches_paper(benchmark, gf28_modulus):
    """Benchmark the reduction for GF(2^8) and compare against the paper's Table I."""
    rows = benchmark(st_coefficients, gf28_modulus)
    rendered = [row.to_string() for row in rows]
    assert rendered == PAPER_TABLE_I
    print("\n--- Table I (reproduced) ---")
    for line in rendered:
        print(f"  {line};")


@pytest.mark.parametrize("field", [(64, 23), (113, 34), (163, 66)])
def test_table1_scaling_to_paper_fields(benchmark, field):
    """The S/T reduction stays cheap even for the NIST-size fields."""
    m, n = field
    modulus = type_ii_pentanomial(m, n)
    rows = benchmark(st_coefficients, modulus)
    assert len(rows) == m
    # Every coefficient references its own S function plus at least one T.
    assert all(row.s_indices == (row.k + 1,) and row.t_indices for row in rows)
