"""Shared configuration for the benchmark suite.

Environment knobs
-----------------
``REPRO_TABLE5_FULL=1``
    Run the Table V benchmark over all nine paper fields (several minutes in
    pure Python) instead of the default fast subset.
``REPRO_BENCH_EFFORT=<n>``
    Mapping effort used by the implementation-flow benchmarks (default 2).
"""

from __future__ import annotations

import os

import pytest


def table5_fields():
    """The fields swept by the Table V benchmark (env-configurable)."""
    if os.environ.get("REPRO_TABLE5_FULL") == "1":
        return [(8, 2), (64, 23), (113, 4), (113, 34), (122, 49), (139, 59), (148, 72), (163, 66), (163, 68)]
    return [(8, 2), (16, 3), (32, 11), (64, 23)]


def bench_effort() -> int:
    """Mapping effort for flow benchmarks."""
    return int(os.environ.get("REPRO_BENCH_EFFORT", "2"))


@pytest.fixture(scope="session")
def gf28_modulus():
    from repro.galois import type_ii_pentanomial

    return type_ii_pentanomial(8, 2)
