"""Ablation (not in the paper): which part of the "synthesis freedom" matters?

The paper attributes the win of the flat form to giving the synthesis tool
freedom to restructure.  Our flow decomposes that freedom into two passes —
re-balancing and cross-output sharing — so we can measure each contribution:

* ``as-written``   : the flat netlist mapped exactly as generated (chains);
* ``balance-only`` : re-association without any sharing;
* ``balance+share``: the full restructuring used for Table V.

The same field is also mapped for the parenthesized baseline [7] as the
reference point the paper compares against.
"""

from __future__ import annotations

from conftest import bench_effort

from repro.galois.pentanomials import type_ii_pentanomial
from repro.multipliers import generate_multiplier
from repro.synth.flow import SynthesisOptions, implement

FIELDS = [(8, 2), (32, 11), (64, 23)]


def _ablation_rows(field):
    modulus = type_ii_pentanomial(*field)
    proposed = generate_multiplier("thiswork", modulus, verify=False)
    parenthesized = generate_multiplier("imana2016", modulus, verify=False)
    effort = bench_effort()
    rows = {
        "as-written": implement(
            proposed, options=SynthesisOptions(restructure=False, effort=1, verify=False)
        ),
        "balance-only": implement(
            proposed, options=SynthesisOptions(share_rounds=0, effort=1, verify=False)
        ),
        "balance+share": implement(proposed, options=SynthesisOptions(effort=effort, verify=False)),
        "parenthesized [7]": implement(parenthesized, options=SynthesisOptions(effort=effort, verify=False)),
    }
    return rows


def test_ablation_synthesis_freedom(benchmark):
    rows_by_field = benchmark.pedantic(
        lambda: {field: _ablation_rows(field) for field in FIELDS}, rounds=1, iterations=1
    )
    print("\n--- Ablation: value of restructuring freedom ---")
    for field, rows in rows_by_field.items():
        print(f"field {field}:")
        for label, result in rows.items():
            print(
                f"  {label:18s} LUTs={result.luts:6d} delay={result.delay_ns:6.2f} ns "
                f"AxT={result.area_time:10.1f}"
            )
        # The full freedom must beat mapping the flat netlist as written, and
        # must beat the parenthesized structure of ref [7].
        assert rows["balance+share"].area_time <= rows["as-written"].area_time
        assert rows["balance+share"].area_time <= rows["parenthesized [7]"].area_time
        # Balancing alone already recovers most of the delay advantage.
        assert rows["balance-only"].delay_ns <= rows["as-written"].delay_ns
