"""Paper Table III — parenthesized coefficients and their theoretical complexity.

Regenerates the parenthesized (delay-restricted) expressions for GF(2^8),
checks the paper's theoretical figures (delay T_A + 5 T_X, 64 AND gates,
~87 XOR gates) and benchmarks the construction of the corresponding netlist.
"""

from __future__ import annotations

from repro.analysis.complexity import split_scheme_complexity
from repro.multipliers import generate_multiplier
from repro.spec.parenthesize import parenthesized_coefficients


def test_table3_parenthesized_expressions(benchmark, gf28_modulus):
    coefficients = benchmark(parenthesized_coefficients, gf28_modulus)
    worst = max(coefficient.xor_depth for coefficient in coefficients)
    assert worst == 5                       # paper: delay TA + 5TX
    print("\n--- Table III (reproduced, parenthesized) ---")
    for coefficient in coefficients:
        print(f"  {coefficient.to_string()};")
    print(f"  theoretical delay: TA + {worst}TX (paper: TA + 5TX)")


def test_table3_theoretical_complexity(gf28_modulus):
    complexity = split_scheme_complexity(gf28_modulus)
    print(
        f"\nsplit scheme complexity: {complexity.and_gates} AND, {complexity.xor_gates} XOR, "
        f"{complexity.delay_expression()}  (paper: 64 AND, 87 XOR, TA + 5TX)"
    )
    assert complexity.and_gates == 64
    assert abs(complexity.xor_gates - 87) <= 10


def test_table3_gate_level_circuit(benchmark, gf28_modulus):
    multiplier = benchmark(lambda: generate_multiplier("imana2016", gf28_modulus, verify=False))
    stats = multiplier.stats()
    assert stats.and_gates == 64
    assert stats.xor_depth == 5
    print(f"\nimana2016 netlist: {stats.and_gates} AND, {stats.xor_gates} XOR, {stats.delay_expression()}")
