"""Curve operations — scalar multiplication before/after the field upgrades.

Prices the two field-layer changes underneath :mod:`repro.curves` on an
identical algorithm: the Montgomery ladder on B-163 is run once over the
**seed** field operations (squaring as a generic ``multiply(a, a)``,
inversion as the Fermat square-and-multiply power) and once over the
upgraded ones (linear-map squaring, Itoh-Tsujii addition chain).  The
affine-coordinate ladder exposes both upgrades — two inversions per step —
and its speedup is asserted to be **≥ 5×**; the López-Dahab projective
ladder (one inversion total) is reported alongside as the production path.

Also runs the batched-ECDH workload and asserts the batch results are
byte-identical to the scalar-ladder reference before reporting throughput.

Run standalone for the CI smoke check or a quick local look::

    PYTHONPATH=src python benchmarks/bench_curve_ops.py --quick

or under pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import argparse
import random
import time

from _harness import rate, write_bench_json
from repro.curves import curve_by_name, curve_catalog, ecdh_batch, keygen_batch
from repro.curves.point import BinaryCurve
from repro.galois.field import GF2mField

#: The acceptance floor for the affine-ladder before/after comparison.
SPEEDUP_FLOOR = 5.0

#: Stamped into the committed BENCH_curve_ops.json trajectory snapshots.
COMMIT_PR = 9

#: Scalar widths: full-width B-163 scalars, or short ones for CI smoke runs
#: (the ladder cost is linear in the width, so the ratio is unaffected).
FULL_BITS = 163
QUICK_BITS = 40


class SeedOpsField(GF2mField):
    """GF(2^m) with the seed implementations of the upgraded operations.

    Squaring pays a full carry-less product + reduction, inversion the
    Fermat ``a^(2^m - 2)`` square-and-multiply, and constant multiplication
    is an ordinary product — exactly what the field did before this
    subsystem landed.  Used to price the upgrades on identical ladder code.
    """

    def square(self, a: int) -> int:
        return self.multiply(a, a)

    def inverse(self, a: int, method: str = "fermat") -> int:
        return super().inverse(a, method="fermat")

    def constant_multiplier(self, c: int):
        self._check(c)
        return lambda value: self.multiply(c, value)


def build_curves(name: str = "B-163"):
    """The catalog curve plus a twin running on seed field operations."""
    fast = curve_by_name(name)
    spec = curve_catalog()[name.upper()]
    seed_field = SeedOpsField(spec.modulus)
    seed = BinaryCurve(
        seed_field, spec.a, spec.coefficient_b(), name=f"{name}(seed-ops)",
        order=spec.order, cofactor=spec.cofactor,
    )
    return fast, seed


def measure_ladder(curve: BinaryCurve, coords: str, scalars, repeat: int = 1) -> float:
    """Seconds per Montgomery-ladder scalar multiplication (best of repeat)."""
    point = curve.random_point(random.Random(2018))
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        for scalar in scalars:
            curve.multiply(point, scalar, coords=coords)
        best = min(best, (time.perf_counter() - start) / len(scalars))
    return best


def measure_field_ops(curve: BinaryCurve, seed_curve: BinaryCurve, samples: int = 200):
    """Microbenchmark rows for square and inverse, seed vs upgraded."""
    rng = random.Random(7)
    values = [rng.getrandbits(curve.field.m) | 1 for _ in range(samples)]
    rows = []
    for label, field, count in (
        ("square (seed)", seed_curve.field, samples),
        ("square (linear map)", curve.field, samples),
        ("inverse (fermat)", seed_curve.field, max(samples // 40, 3)),
        ("inverse (itoh-tsujii)", curve.field, max(samples // 4, 3)),
    ):
        operation = field.square if label.startswith("square") else field.inverse
        operation(values[0])  # warm lazy tables
        start = time.perf_counter()
        for value in values[:count]:
            operation(value)
        rows.append((label, (time.perf_counter() - start) / count))
    return rows


def measure_batched_ecdh(curve: BinaryCurve, batch: int):
    """(batch_rate, scalar_rate) in ladders/s; asserts byte-identical results."""
    alice = keygen_batch(curve, batch, seed=11)
    bob = keygen_batch(curve, batch, seed=12)
    privates = [pair.private for pair in alice]
    peers = [pair.public for pair in bob]

    start = time.perf_counter()
    batched = ecdh_batch(curve, privates, peers)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    scalar = ecdh_batch(curve, privates, peers, batched=False)
    scalar_s = time.perf_counter() - start

    if batched != scalar:
        raise AssertionError("batched ECDH disagrees with the scalar reference path")
    return batch / batched_s, batch / scalar_s


def run(quick: bool = False, batch: int = 16):
    """All measurements for the report/assertions; returns a result dict."""
    fast, seed = build_curves("B-163")
    bits = QUICK_BITS if quick else FULL_BITS
    rng = random.Random(163)
    scalars = [rng.getrandbits(bits) | (1 << (bits - 1)) for _ in range(1 if quick else 2)]

    fast.multiply(fast.generator, 3)  # warm the lazy squaring tables
    affine_seed = measure_ladder(seed, "affine", scalars)
    affine_fast = measure_ladder(fast, "affine", scalars, repeat=2)
    ld_seed = measure_ladder(seed, "ld", scalars)
    ld_fast = measure_ladder(fast, "ld", scalars, repeat=2)
    batch_rate, scalar_rate = measure_batched_ecdh(fast, batch)
    return {
        "bits": bits,
        "field_ops": measure_field_ops(fast, seed),
        "affine_seed_s": affine_seed,
        "affine_fast_s": affine_fast,
        "affine_speedup": affine_seed / affine_fast,
        "ld_seed_s": ld_seed,
        "ld_fast_s": ld_fast,
        "ld_speedup": ld_seed / ld_fast,
        "overall_speedup": affine_seed / ld_fast,
        "batch": batch,
        "batch_rate": batch_rate,
        "scalar_rate": scalar_rate,
        "batch_speedup": batch_rate / scalar_rate,
    }


def to_row(result) -> dict:
    """Flatten one :func:`run` result into a dashboard-friendly series row.

    The perf dashboard treats ``*_per_s``/``*_rate`` and ``speedup*`` keys
    as metrics, so the field-op timings are emitted as per-second rates and
    the ratios under ``speedup_*`` names; everything else is identity.
    """
    row = {
        "curve": "B-163",
        "m": 163,
        "bits": result["bits"],
        "batch": result["batch"],
        "affine_seed_per_s": rate(1, result["affine_seed_s"]),
        "affine_upgraded_per_s": rate(1, result["affine_fast_s"]),
        "speedup_affine": result["affine_speedup"],
        "ld_seed_per_s": rate(1, result["ld_seed_s"]),
        "ld_upgraded_per_s": rate(1, result["ld_fast_s"]),
        "speedup_ld": result["ld_speedup"],
        "speedup_overall": result["overall_speedup"],
        "batch_rate": result["batch_rate"],
        "scalar_rate": result["scalar_rate"],
        "speedup_batch": result["batch_speedup"],
    }
    for label, seconds in result["field_ops"]:
        slug = label.replace(" (", "_").replace(")", "").replace(" ", "_").replace("-", "_")
        row[f"{slug}_per_s"] = rate(1, seconds)
    return row


def report(result) -> str:
    lines = ["B-163 field operations (per op):"]
    for label, seconds in result["field_ops"]:
        lines.append(f"  {label:<24s} {seconds * 1e6:>10,.1f} us")
    lines.append(f"B-163 Montgomery ladder, {result['bits']}-bit scalars (per scalar mult):")
    lines.append(
        f"  affine  seed {result['affine_seed_s'] * 1000:>9.1f} ms   upgraded "
        f"{result['affine_fast_s'] * 1000:>9.1f} ms   speedup {result['affine_speedup']:>6.1f}x"
    )
    lines.append(
        f"  LD-proj seed {result['ld_seed_s'] * 1000:>9.1f} ms   upgraded "
        f"{result['ld_fast_s'] * 1000:>9.1f} ms   speedup {result['ld_speedup']:>6.1f}x"
    )
    lines.append(f"  seed affine -> upgraded LD-projective: {result['overall_speedup']:.1f}x")
    lines.append(
        f"B-163 ECDH, batch {result['batch']} (byte-identical to scalar reference): "
        f"batched {result['batch_rate']:,.1f} ladders/s vs scalar {result['scalar_rate']:,.1f} "
        f"({result['batch_speedup']:.1f}x)"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------- pytest
def test_ladder_speedup_floor():
    """The acceptance figure: ≥5× on an identical affine Montgomery ladder."""
    result = run(quick=True, batch=48)
    print("\n" + report(result))
    assert result["affine_speedup"] >= SPEEDUP_FLOOR, (
        f"only {result['affine_speedup']:.1f}x with the linear-map squaring + "
        f"Itoh-Tsujii inversion (floor {SPEEDUP_FLOOR:.0f}x)"
    )


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="curve scalar-mult before/after the field upgrades")
    parser.add_argument("--quick", action="store_true", help="short scalars, small batch (CI smoke)")
    parser.add_argument("--batch", type=int, default=None, help="ECDH batch size (default 128, quick 48)")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the machine-readable report here")
    args = parser.parse_args(argv)
    batch = args.batch if args.batch is not None else (48 if args.quick else 128)
    result = run(quick=args.quick, batch=batch)
    print(report(result))
    if args.json:
        write_bench_json(
            args.json,
            "curve_ops",
            COMMIT_PR,
            {"quick": args.quick, "bits": result["bits"], "batch": batch},
            [to_row(result)],
        )
    if result["affine_speedup"] < SPEEDUP_FLOOR:
        raise SystemExit(
            f"speedup regression: {result['affine_speedup']:.1f}x < {SPEEDUP_FLOOR:.0f}x "
            "on the affine Montgomery ladder"
        )
    print(f"ok: affine-ladder speedup {result['affine_speedup']:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
