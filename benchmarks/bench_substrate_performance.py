"""Substrate performance benchmarks (not a paper table).

Tracks the raw speed of the building blocks every experiment relies on:
field multiplication, bit-parallel netlist simulation, and k-LUT mapping.
Useful for catching performance regressions that would make the full Table V
sweep impractical.
"""

from __future__ import annotations

import random

from repro.galois.field import GF2mField
from repro.galois.pentanomials import type_ii_pentanomial
from repro.multipliers import generate_multiplier
from repro.netlist.simulate import simulate_words
from repro.synth.lutmap import map_to_luts


def test_field_multiplication_throughput(benchmark):
    field = GF2mField(type_ii_pentanomial(163, 66))
    rng = random.Random(1)
    operands = [(rng.getrandbits(163), rng.getrandbits(163)) for _ in range(200)]

    def multiply_all():
        total = 0
        for a, b in operands:
            total ^= field.multiply(a, b)
        return total

    assert benchmark(multiply_all) >= 0


def test_bit_parallel_simulation_throughput(benchmark, gf28_modulus):
    multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
    rng = random.Random(2)
    a_values = [rng.getrandbits(8) for _ in range(1024)]
    b_values = [rng.getrandbits(8) for _ in range(1024)]
    products = benchmark(simulate_words, multiplier.netlist, 8, a_values, b_values)
    assert len(products) == 1024


def test_lut_mapping_throughput_gf2_64(benchmark):
    modulus = type_ii_pentanomial(64, 23)
    multiplier = generate_multiplier("reyhani_hasan", modulus, verify=False)
    mapped = benchmark(map_to_luts, multiplier.netlist, 6)
    assert mapped.lut_count > 0


def test_multiplier_generation_throughput_gf2_113(benchmark):
    modulus = type_ii_pentanomial(113, 34)
    multiplier = benchmark(lambda: generate_multiplier("thiswork", modulus, verify=False))
    assert multiplier.stats().and_gates == 113 * 113
