"""Paper Table V — post-implementation comparison of the six multiplier methods.

This is the paper's main experiment.  For every field in the sweep it
generates the six Table V constructions, runs the Python FPGA flow, prints
the measured LUTs / slices / delay / Area×Time next to the paper's published
values, and evaluates the paper's qualitative claims.

By default a fast subset of fields is swept; set ``REPRO_TABLE5_FULL=1`` to
run all nine paper fields (several minutes of pure-Python mapping).
The per-row timing benchmark measures the full flow for one representative
field/method so pytest-benchmark reports a meaningful figure without
repeating the whole sweep.
"""

from __future__ import annotations

from conftest import bench_effort, table5_fields

from repro.analysis.compare import claims_report, compare_to_paper, run_comparison
from repro.multipliers import generate_multiplier
from repro.synth.flow import SynthesisOptions, implement

_COMPARISONS = None


def _comparisons():
    """Run the sweep once per benchmark session and cache the result."""
    global _COMPARISONS
    if _COMPARISONS is None:
        _COMPARISONS = run_comparison(
            fields=table5_fields(),
            options=SynthesisOptions(effort=bench_effort()),
        )
    return _COMPARISONS


def test_table5_flow_benchmark(benchmark, gf28_modulus):
    """Benchmark the end-to-end flow for the proposed GF(2^8) multiplier."""
    multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
    result = benchmark(lambda: implement(multiplier, options=SynthesisOptions(effort=bench_effort())))
    assert result.luts > 0


def test_table5_reproduction_and_claims(benchmark):
    """Regenerate Table V for the configured fields and check the paper's claims."""
    comparisons = benchmark.pedantic(_comparisons, rounds=1, iterations=1)

    print("\n--- Table V (measured vs paper) ---")
    print(compare_to_paper(comparisons))

    report = claims_report(comparisons)
    print("\nqualitative claims:")
    print(f"  fields:                              {report['fields']}")
    print(f"  proposed beats parenthesized [7] in: {report['proposed_beats_parenthesized']}")
    print(f"  proposed best Area x Time in:        {report['proposed_best_area_time']}")
    print(f"  proposed lowest delay in:            {report['proposed_lowest_delay']}")

    # Claim that must hold in every field (the paper reports it for all nine):
    # the proposed method is at least as area- and time-efficient as the
    # parenthesized splitting of ref [7].
    assert set(report["proposed_beats_parenthesized"]) == set(report["fields"])

    # The proposed method must always be close to the best measured A x T
    # (the paper has it winning 7 of 9 fields; our flow reproduces the
    # winner for several fields and stays within a few percent elsewhere).
    for comparison in comparisons:
        best = min(row.result.area_time for row in comparison.rows)
        proposed = comparison.row("thiswork").result.area_time
        assert proposed <= best * 1.08


def test_table5_area_scaling_is_roughly_quadratic():
    """LUT counts must grow roughly with m^2, as in the paper's Table V."""
    comparisons = _comparisons()
    by_m = {comparison.spec.m: comparison.row("thiswork").result.luts for comparison in comparisons}
    sizes = sorted(by_m)
    if len(sizes) >= 2:
        small, large = sizes[0], sizes[-1]
        ratio = by_m[large] / by_m[small]
        ideal = (large / small) ** 2
        assert 0.3 * ideal <= ratio <= 1.7 * ideal
