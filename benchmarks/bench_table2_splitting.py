"""Paper Table II — splitting of S_i / T_i into complete-binary-tree terms.

Regenerates the split-term table for GF(2^8), checks a verbatim sample
against the publication, and benchmarks the splitting for larger fields.
"""

from __future__ import annotations

import pytest

from repro.spec.splitting import split_table

PAPER_SAMPLE = {
    "S8^3": "S8^3 = (z0^7 + z1^6 + z2^5 + z3^4)",
    "T0^2": "T0^2 = (z2^6 + z3^5)",
    "S7^2": "S7^2 = (z1^5 + z2^4)",
    "T4^1": "T4^1 = z5^7",
    "T6^0": "T6^0 = x7",
}


def test_table2_gf28_matches_paper(benchmark, gf28_modulus):
    table = benchmark(split_table, 8)
    assert len(table) == 25       # the paper's Table II has 25 split terms
    for label, text in PAPER_SAMPLE.items():
        assert table[label].to_string() == text
    print("\n--- Table II (reproduced, 25 split terms) ---")
    for label in sorted(table):
        print(f"  {table[label].to_string()}")


@pytest.mark.parametrize("m", [64, 113, 163])
def test_table2_scaling(benchmark, m):
    table = benchmark(split_table, m)
    # Every term holds a power-of-two number of partial products.
    assert all(term.product_count & (term.product_count - 1) == 0 for term in table.values())
    # The deepest term has level floor(log2(m)).
    assert max(term.level for term in table.values()) == m.bit_length() - 1
