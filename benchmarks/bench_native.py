"""Native C word-level backend vs bitslice planes — the PR 7 tentpole figure.

Both backends multiply the identical operand streams; the difference is
the execution substrate.  The ``bitslice`` path evaluates the generated
multiplier *circuit* on numpy uint64 plane arrays — cost proportional to
gate count, amortized across 64 lanes per word op, plus two full
bit-matrix transposes per batch.  The ``native`` path never sees the
circuit: each product is one carry-less multiplication over ``⌈m/64⌉``
64-bit words (PCLMULQDQ where the CPU has it, a branch-free shift-and-XOR
window otherwise) followed by the hard-coded sparse reduction of the
catalog pentanomial — and operands stay in packed little-endian words, so
there is no transpose at the batch boundary at all.

The asserted acceptance figure (and the CI gate): ``native`` must beat
``bitslice`` by ≥ 5× on multiply_batch at m = 163, batch 2048.  Parity of
both against the scalar reference is asserted on every measured batch.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_native.py --quick --json BENCH_native.json
"""

from __future__ import annotations

import argparse
import random

from _harness import best_of, rate, write_bench_json
from repro.backends import get_backend, native_available, numpy_available
from repro.galois.field import GF2mField
from repro.galois.pentanomials import smallest_type_ii_pentanomial, type_ii_parameters

#: The grid the ≥5× floor is pinned to (plus the second NIST degree).
FIELDS_M = (163, 233)
DEFAULT_PAIRS = 2048

#: The asserted acceptance floor: native over bitslice at m=163, batch 2048.
NATIVE_OVER_BITSLICE_FLOOR = 5.0

#: The committed-JSON schema version shared by the BENCH_* trajectory files.
COMMIT_PR = 8


def measure_native_field(m, pairs=DEFAULT_PAIRS, repeats=3, seed=2018):
    """One row: native vs bitslice multiply_batch throughput for GF(2^m)."""
    modulus = smallest_type_ii_pentanomial(m)
    if modulus is None:
        raise ValueError(f"no type II pentanomial for m={m}")
    field = GF2mField(modulus, check_irreducible=False)
    rng = random.Random(seed)
    a_values = [rng.getrandbits(m) for _ in range(pairs)]
    b_values = [rng.getrandbits(m) for _ in range(pairs)]
    reference = [field.multiply(a, b) for a, b in zip(a_values, b_values)]

    rates = {}
    for name in ("bitslice", "native"):
        backend = get_backend(name, field)
        products, best = best_of(lambda: backend.multiply_batch(a_values, b_values), repeats)
        if products != reference:
            raise AssertionError(f"{name} backend disagrees with the scalar reference at m={m}")
        rates[name] = rate(pairs, best)

    return {
        "m": m,
        "n": type_ii_parameters(modulus)[1],
        "pairs": pairs,
        "native_rate": rates["native"],
        "bitslice_rate": rates["bitslice"],
        "speedup_native_vs_bitslice": rates["native"] / rates["bitslice"],
    }


def report(rows):
    lines = [f"{'field':>10s} {'native':>14s} {'bitslice':>14s} {'speedup':>8s}"]
    for row in rows:
        lines.append(
            f"GF(2^{row['m']:<4d}) {row['native_rate']:>12,.0f}/s"
            f" {row['bitslice_rate']:>12,.0f}/s {row['speedup_native_vs_bitslice']:>7.1f}x"
        )
    return "\n".join(lines)


def _floor_row(rows, m=163):
    for row in rows:
        if row["m"] == m:
            return row
    raise AssertionError(f"no native row for m={m}")


def _skip_unless_both():  # pragma: no cover - CI installs both substrates
    import pytest

    if not numpy_available():
        pytest.skip("numpy not installed; bitslice backend unavailable")
    if not native_available():
        pytest.skip("no C toolchain; native backend unavailable")


# --------------------------------------------------------------------- pytest
def test_native_beats_bitslice_gf2_163():
    """The CI gate: native ≥5× bitslice on multiply_batch at m=163/2048."""
    _skip_unless_both()
    row = measure_native_field(163, repeats=2)
    print("\n" + report([row]))
    speedup = row["speedup_native_vs_bitslice"]
    assert speedup >= NATIVE_OVER_BITSLICE_FLOOR, (
        f"native only {speedup:.1f}x over bitslice at m=163/{DEFAULT_PAIRS}"
    )


def test_native_throughput_gf2_233():
    """Parity plus a sane native speedup on the second NIST degree."""
    _skip_unless_both()
    row = measure_native_field(233, pairs=1024, repeats=2)
    print("\n" + report([row]))
    assert row["speedup_native_vs_bitslice"] >= 2.0, (
        f"m=233: native only {row['speedup_native_vs_bitslice']:.1f}x over bitslice"
    )


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="native C backend vs bitslice planes")
    parser.add_argument("--quick", action="store_true", help="m=163 only (CI smoke; still batch 2048)")
    parser.add_argument("--pairs", type=int, default=DEFAULT_PAIRS)
    parser.add_argument("--fields", default=None, help="comma separated m values (default 163,233)")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the machine-readable report here")
    args = parser.parse_args(argv)
    if not native_available():
        raise SystemExit("the native backend is unavailable here (no C toolchain or cffi)")
    if args.fields:
        fields = [int(chunk) for chunk in args.fields.split(",")]
    else:
        fields = [163] if args.quick else list(FIELDS_M)
    rows = [measure_native_field(m, pairs=args.pairs) for m in fields]
    print(report(rows))
    if args.json:
        write_bench_json(
            args.json,
            "native",
            COMMIT_PR,
            {"fields": fields, "pairs": args.pairs},
            rows,
        )
    if 163 in fields and args.pairs >= DEFAULT_PAIRS:
        speedup = _floor_row(rows)["speedup_native_vs_bitslice"]
        if speedup < NATIVE_OVER_BITSLICE_FLOOR:
            raise SystemExit(
                f"native regression: {speedup:.1f}x < "
                f"{NATIVE_OVER_BITSLICE_FLOOR:.0f}x over bitslice at m=163/{DEFAULT_PAIRS}"
            )
        print(
            f"ok: native {speedup:.1f}x over bitslice at m=163/{DEFAULT_PAIRS} "
            f"(floor {NATIVE_OVER_BITSLICE_FLOOR:.0f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
