"""Fused FieldIR ladder step vs the per-op plane path — the PR 6 tentpole figure.

Both paths run the identical batched López-Dahab Montgomery ladder on the
same ``bitslice`` backend, plane-resident end to end; the difference is
purely dispatch granularity.  The **per-op** path is the PR 5 schedule: the
step hand-written as ~14 separate plane operations (two lane-stacked
multiplies, six ``PlaneProgram`` squarings, XORs, masked selects), each a
separate Python call paying its own buffer setup — reconstructed here
through the deprecated :class:`~repro.backends.planes.PlaneCompute` shims,
which run the very same single-op programs the old hand schedule lowered
to.  The **fused** path is the PR 6 formula compiler: the whole step traced
once as :class:`~repro.backends.ir.FieldIR`, scheduled into six fused
passes (chained squarings composed into one linear stage, all XOR work
merged into the gather schedules), compiled per curve × backend × chunk and
executed per step via
:meth:`~repro.backends.planes.CompiledPlaneIR.run_arrays`.

The asserted acceptance figures: the fused step must beat the per-op path
on B-163 batch-256 (CI floor ``FUSED_OVER_PER_OP_FLOOR``), and fused
end-to-end ECDH agreement must stay ≥ 2× the per-step batch path.  The
ISSUE 6 acceptance additionally references the committed PR 5 figure of
388 plane ladders/s on the trajectory machine; the report records the
measured ratio against that constant for the committed JSON.  Ladder
registers are asserted byte-identical between the two plane paths on every
lane, and the ECDH results against the scalar-ladder reference.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fused_step.py --json BENCH_fused_step.json
"""

from __future__ import annotations

import argparse
import random
import warnings

from _harness import best_of_interleaved, rate, write_bench_json
from repro.backends import get_backend, numpy_available
from repro.curves import curve_by_name, ecdh_batch
from repro.curves.formulas import ladder_step_program

#: The headline grid point: NIST-degree B-163 at batch 256.
DEFAULT_CURVE = "B-163"
DEFAULT_BATCH = 256

#: CI floor: the fused step over the reconstructed per-op plane step.
FUSED_OVER_PER_OP_FLOOR = 1.05

#: CI floor: fused plane ECDH over the per-step batch path (shared runners).
ECDH_PLANE_FLOOR = 2.0

#: The PR 5 plane-ladder figure on the trajectory machine (the ISSUE 6
#: acceptance baseline); reported as a ratio, never asserted on CI runners.
PR5_PLANE_BASELINE = 388.0

#: The committed-JSON schema version shared by the BENCH_* trajectory files.
COMMIT_PR = 8


def _fused_ladder(backend, curve, base_x, scalars):
    """The compiled-formula ladder loop: one ``run_arrays`` call per step."""
    executor = backend.ir_executor()
    compiled = executor.compile(ladder_step_program(curve))
    count = len(base_x)
    base = executor.pack(base_x).array
    x1 = executor.pack([1] * count).array
    z1 = executor.pack([0] * count).array
    x2 = base.copy()
    z2 = x1.copy()
    for bit_index in range(max(s.bit_length() for s in scalars) - 1, -1, -1):
        mask = executor.broadcast_bits([(s >> bit_index) & 1 for s in scalars])
        x1, z1, x2, z2 = compiled.run_arrays((x1, z1, x2, z2, base), (mask,))
    return tuple(executor.unpack(executor.vector(a, count)) for a in (x1, z1, x2, z2))


def _per_op_ladder(backend, curve, base_x, scalars):
    """The PR 5 hand schedule: the same step as ~14 separate plane ops.

    Reconstructed through the deprecated ``PlaneCompute`` shims (warnings
    suppressed — this benchmark exists to measure the old dispatch
    granularity): two lane-stacked multiplies, six squaring applications,
    the multiply-by-b map, three XORs and six masked selects per step.
    """
    plane = backend.plane_compute()
    square = curve.field.square_map
    mul_b = curve._mul_b
    count = len(base_x)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        base = plane.pack(base_x)
        x1 = plane.pack([1] * count)
        z1 = plane.pack([0] * count)
        x2 = base.copy()
        z2 = x1.copy()
        for bit_index in range(max(s.bit_length() for s in scalars) - 1, -1, -1):
            mask = plane.broadcast_bits([(s >> bit_index) & 1 for s in scalars])
            xd = plane.select_planes(mask, x2, x1)
            zd = plane.select_planes(mask, z2, z1)
            t1, t2, xz = plane.multiply_planes([x1, x2, xd], [z2, z1, zd])
            z_sum = plane.apply_linear_planes(square, plane.xor_planes(t1, t2))
            z_dbl = plane.apply_linear_planes(square, xz)
            xd4 = plane.apply_linear_planes(square, plane.apply_linear_planes(square, xd))
            zd4 = plane.apply_linear_planes(square, plane.apply_linear_planes(square, zd))
            x_dbl = plane.xor_planes(xd4, plane.apply_linear_planes(mul_b, zd4))
            t1t2, x_zsum = plane.multiply_planes([t1, base], [t2, z_sum])
            x_sum = plane.xor_planes(t1t2, x_zsum)
            x1 = plane.select_planes(mask, x_sum, x_dbl)
            z1 = plane.select_planes(mask, z_sum, z_dbl)
            x2 = plane.select_planes(mask, x_dbl, x_sum)
            z2 = plane.select_planes(mask, z_dbl, z_sum)
        return tuple(plane.unpack(v) for v in (x1, z1, x2, z2))


def measure_fused_step(curve_name=DEFAULT_CURVE, batch=DEFAULT_BATCH, repeats=3, check=4, seed=2018):
    """One benchmark row: fused vs per-op step loops plus end-to-end ECDH."""
    curve = curve_by_name(curve_name)
    backend = get_backend("bitslice", curve.field)
    rng = random.Random(seed)
    bound = curve.order if curve.order is not None else curve.field.order
    privates = [rng.randrange(1, bound) for _ in range(batch)]
    peer_privates = [rng.randrange(1, bound) for _ in range(batch)]
    # Peers via the batched ladder itself (also warms circuit + plane caches).
    peers = curve.multiply_batch([curve.generator] * batch, peer_privates, backend=backend)
    base_x = [point.x for point in peers]

    (
        (fused_state, fused_s),
        (per_op_state, per_op_s),
        (plane_shared, plane_s),
        (steps_shared, steps_s),
    ) = best_of_interleaved(
        [
            lambda: _fused_ladder(backend, curve, base_x, privates),
            lambda: _per_op_ladder(backend, curve, base_x, privates),
            lambda: ecdh_batch(curve, privates, peers, backend=backend, plane_resident=True),
            lambda: ecdh_batch(curve, privates, peers, backend=backend, plane_resident=False),
        ],
        repeats,
    )
    if fused_state != per_op_state:
        raise AssertionError("fused and per-op ladder registers disagree")
    if plane_shared != steps_shared:
        raise AssertionError("plane-resident and per-step ladders disagree")
    for index in range(min(check, batch)):
        if plane_shared[index] != curve.multiply(peers[index], privates[index]):
            raise AssertionError(f"batched agreement {index} != scalar-ladder reference")

    plane_rate = rate(batch, plane_s)
    return {
        "curve": curve_name,
        "m": curve.field.m,
        "batch": batch,
        "checked_vs_scalar": min(check, batch),
        "fused_step_ladders_per_s": rate(batch, fused_s),
        "per_op_step_ladders_per_s": rate(batch, per_op_s),
        "speedup_fused_vs_per_op": per_op_s / fused_s if fused_s > 0 else float("inf"),
        "ecdh_plane_ladders_per_s": plane_rate,
        "ecdh_steps_ladders_per_s": rate(batch, steps_s),
        "speedup_ecdh_plane_vs_steps": steps_s / plane_s if plane_s > 0 else float("inf"),
        "pr5_plane_baseline_ladders_per_s": PR5_PLANE_BASELINE,
        "speedup_ecdh_vs_pr5_baseline": plane_rate / PR5_PLANE_BASELINE,
    }


def report(rows):
    lines = [
        f"{'curve':>7s} {'batch':>6s} {'fused step':>12s} {'per-op step':>12s} {'ratio':>6s}"
        f" {'ecdh plane':>12s} {'vs steps':>8s} {'vs PR5':>6s}"
    ]
    for row in rows:
        lines.append(
            f"{row['curve']:>7s} {row['batch']:>6d} {row['fused_step_ladders_per_s']:>10,.0f}/s"
            f" {row['per_op_step_ladders_per_s']:>10,.0f}/s {row['speedup_fused_vs_per_op']:>5.2f}x"
            f" {row['ecdh_plane_ladders_per_s']:>10,.0f}/s {row['speedup_ecdh_plane_vs_steps']:>7.1f}x"
            f" {row['speedup_ecdh_vs_pr5_baseline']:>5.2f}x"
        )
    return "\n".join(lines)


def _assert_floors(row):
    if row["speedup_fused_vs_per_op"] < FUSED_OVER_PER_OP_FLOOR:
        raise AssertionError(
            f"fused step only {row['speedup_fused_vs_per_op']:.2f}x over the per-op plane path "
            f"(floor {FUSED_OVER_PER_OP_FLOOR:.2f}x)"
        )
    if row["speedup_ecdh_plane_vs_steps"] < ECDH_PLANE_FLOOR:
        raise AssertionError(
            f"fused plane ECDH only {row['speedup_ecdh_plane_vs_steps']:.1f}x over the per-step "
            f"path (floor {ECDH_PLANE_FLOOR:.0f}x)"
        )


# --------------------------------------------------------------------- pytest
def test_fused_step_beats_per_op_b163():
    """The CI gate: the compiled formula beats the per-op plane dispatch."""
    if not numpy_available():  # pragma: no cover - CI installs numpy
        import pytest

        pytest.skip("numpy not installed; bitslice backend unavailable")
    row = measure_fused_step(batch=128, repeats=2)
    print("\n" + report([row]))
    _assert_floors(row)


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="fused FieldIR ladder step vs the per-op plane path")
    parser.add_argument("--curve", default=DEFAULT_CURVE)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="batch 128, 2 repeats (CI smoke)")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the machine-readable report here")
    args = parser.parse_args(argv)
    batch = 128 if args.quick else args.batch
    repeats = 2 if args.quick else args.repeats
    row = measure_fused_step(curve_name=args.curve, batch=batch, repeats=repeats)
    print(report([row]))
    if args.json:
        write_bench_json(
            args.json,
            "fused_step",
            COMMIT_PR,
            {"curve": args.curve, "batch": batch, "repeats": repeats, "backend": "bitslice"},
            [row],
        )
    _assert_floors(row)
    print(
        f"ok: fused step {row['speedup_fused_vs_per_op']:.2f}x over the per-op path "
        f"(floor {FUSED_OVER_PER_OP_FLOOR:.2f}x); fused ECDH "
        f"{row['speedup_ecdh_plane_vs_steps']:.1f}x over per-step (floor {ECDH_PLANE_FLOOR:.0f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
