"""Ablation (not in the paper): sensitivity of the conclusions to the device model.

The paper's experiment is tied to one device (Artix-7, 6-input LUTs).  This
benchmark re-runs the central comparison (proposed flat form vs. the
parenthesized form of ref [7]) on a 4-input-LUT architecture and on a
slower-routing 6-LUT architecture, checking that the paper's core claim —
removing the parenthesization restriction never hurts and generally helps —
is not an artefact of the specific device constants.
"""

from __future__ import annotations

from conftest import bench_effort

from repro.galois.pentanomials import type_ii_pentanomial
from repro.multipliers import generate_multiplier
from repro.synth.device import ARTIX7, GENERIC_4LUT, VIRTEX5_LIKE
from repro.synth.flow import SynthesisOptions, implement

FIELD = (32, 11)


def test_device_sensitivity(benchmark):
    modulus = type_ii_pentanomial(*FIELD)
    proposed = generate_multiplier("thiswork", modulus, verify=False)
    parenthesized = generate_multiplier("imana2016", modulus, verify=False)
    options = SynthesisOptions(effort=bench_effort(), verify=False)

    def sweep():
        results = {}
        for device in (ARTIX7, VIRTEX5_LIKE, GENERIC_4LUT):
            results[device.name] = (
                implement(proposed, device=device, options=options),
                implement(parenthesized, device=device, options=options),
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\n--- Device sensitivity, field {FIELD} ---")
    for device_name, (flat, paren) in results.items():
        print(
            f"  {device_name:18s} proposed: {flat.luts:5d} LUTs / {flat.delay_ns:5.2f} ns   "
            f"parenthesized [7]: {paren.luts:5d} LUTs / {paren.delay_ns:5.2f} ns"
        )
        assert flat.area_time <= paren.area_time
