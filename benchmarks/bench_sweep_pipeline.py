"""Sweep pipeline — cold vs warm cache and serial vs parallel wall-times.

Measures the full ``repro.pipeline`` sweep path over a small grid:

* **cold serial** — empty artifact store, one process: every job runs the
  whole ``generate → restructure → map → pack → time → report`` graph;
* **warm serial** — identical grid, now every job is one JSON read from the
  content-addressed store.  The acceptance figure of the pipeline PR —
  **warm ≥ 10× faster than cold** — is asserted, not just reported;
* **cold parallel** — a fresh store and a process pool, to show the
  scheduler scaling (on multi-core runners; on a single hardware thread the
  pool only adds overhead, so no ratio is asserted).

Run standalone for the CI smoke check or a quick local look::

    PYTHONPATH=src python benchmarks/bench_sweep_pipeline.py --quick

or under pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro.pipeline import ArtifactStore, run_sweep
from repro.synth.flow import SynthesisOptions

from conftest import bench_effort

#: The default grid: small fields so a cold run stays in seconds.
DEFAULT_FIELDS = [(8, 2), (16, 3), (20, 5)]
QUICK_FIELDS = [(8, 2), (16, 3)]
DEFAULT_METHODS = ["thiswork", "imana2016", "paar"]
QUICK_METHODS = ["thiswork", "imana2016"]

#: The PR's acceptance floor for warm-over-cold speedup.
WARM_SPEEDUP_FLOOR = 10.0


def measure_sweep(fields, methods, effort, root: Path, jobs: int = 1):
    """One sweep wall-time over the given grid (store rooted at ``root``)."""
    store = ArtifactStore(root)
    started = time.perf_counter()
    result = run_sweep(
        fields=fields, methods=methods, options=SynthesisOptions(effort=effort), jobs=jobs, store=store
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def measure_grid(fields, methods, effort, workdir: Path, jobs: int = 2):
    """Cold serial, warm serial and cold parallel wall-times for one grid."""
    cold_result, cold_s = measure_sweep(fields, methods, effort, workdir / "serial", jobs=1)
    warm_result, warm_s = measure_sweep(fields, methods, effort, workdir / "serial", jobs=1)
    parallel_result, parallel_s = measure_sweep(fields, methods, effort, workdir / "parallel", jobs=jobs)

    if warm_result.cache_hits != len(warm_result.outcomes):
        raise AssertionError(
            f"warm sweep expected all hits, got {warm_result.cache_hits}/{len(warm_result.outcomes)}"
        )
    warm_rows = [outcome.result for outcome in warm_result.outcomes]
    if warm_rows != [outcome.result for outcome in cold_result.outcomes]:
        raise AssertionError("warm sweep rows differ from the cold run")
    if warm_rows != [outcome.result for outcome in parallel_result.outcomes]:
        raise AssertionError("parallel sweep rows differ from the serial run")

    return {
        "jobs": len(cold_result.outcomes),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "parallel_s": parallel_s,
        "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "parallel_speedup": cold_s / parallel_s if parallel_s > 0 else float("inf"),
        "parallelism": jobs,
    }


def report(row) -> str:
    return "\n".join(
        [
            f"sweep grid: {row['jobs']} jobs",
            f"  cold serial     {row['cold_s'] * 1000:>10.1f} ms",
            f"  warm serial     {row['warm_s'] * 1000:>10.1f} ms   ({row['warm_speedup']:.1f}x vs cold)",
            f"  cold parallel   {row['parallel_s'] * 1000:>10.1f} ms   "
            f"({row['parallel_speedup']:.2f}x vs serial, {row['parallelism']} workers)",
        ]
    )


# --------------------------------------------------------------------- pytest
def test_warm_cache_sweep_is_10x_faster(tmp_path):
    """The acceptance figure: a warm artifact-store re-run skips all synthesis."""
    row = measure_grid(DEFAULT_FIELDS, DEFAULT_METHODS, bench_effort(), tmp_path)
    print("\n" + report(row))
    assert row["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        f"warm sweep only {row['warm_speedup']:.1f}x faster than cold "
        f"(floor {WARM_SPEEDUP_FLOOR:.0f}x)"
    )


def test_parallel_sweep_matches_serial_rows(tmp_path):
    """Determinism under the process pool (the consistency checks assert inside)."""
    row = measure_grid(QUICK_FIELDS, QUICK_METHODS, 1, tmp_path, jobs=3)
    print("\n" + report(row))


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="sweep pipeline cold/warm + serial/parallel wall-times")
    parser.add_argument("--quick", action="store_true", help="smaller grid (CI smoke)")
    parser.add_argument("--jobs", type=int, default=2, help="parallel workers (default 2)")
    parser.add_argument("--effort", type=int, default=None, help="mapping effort (default REPRO_BENCH_EFFORT)")
    args = parser.parse_args(argv)
    fields = QUICK_FIELDS if args.quick else DEFAULT_FIELDS
    methods = QUICK_METHODS if args.quick else DEFAULT_METHODS
    effort = args.effort if args.effort is not None else bench_effort()
    with tempfile.TemporaryDirectory(prefix="gf2m-sweep-bench-") as workdir:
        row = measure_grid(fields, methods, effort, Path(workdir), jobs=args.jobs)
    print(report(row))
    if row["warm_speedup"] < WARM_SPEEDUP_FLOOR:
        raise SystemExit(
            f"warm-cache regression: {row['warm_speedup']:.1f}x < {WARM_SPEEDUP_FLOOR:.0f}x"
        )
    print(f"ok: warm cache {row['warm_speedup']:.1f}x over cold (floor {WARM_SPEEDUP_FLOOR:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
