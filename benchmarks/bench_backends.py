"""Backend throughput — python (scalar) vs engine vs bitslice vs native (C).

Runs every registered execution backend (:mod:`repro.backends`) available
on this machine over the PR 1 throughput grid — the NIST fields
m ∈ {163, 233, 283} at 2048 operand pairs — asserts cross-backend
byte-parity on every measured batch, and emits a machine-readable JSON
report (``BENCH_backends.json``, schema
``{bench, commit_pr, config, results}`` via :mod:`_harness`).  A snapshot of that file is
committed at the repo root as the in-repo performance trajectory, and CI
additionally uploads the freshly measured one as a workflow artifact.

The acceptance figure asserted here (and in the CI quick run): the numpy
``bitslice`` backend must beat the ``python`` scalar reference by ≥ 5× at
m = 163, batch 2048.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_backends.py --quick --json BENCH_backends.json

or under pytest-benchmark with the rest of the suite.  One-time costs
(circuit generation, compilation, segment building) are excluded from the
throughput figures — the backend caches amortize them across calls.
"""

from __future__ import annotations

import argparse
import random

from _harness import best_of, rate, write_bench_json
from repro.backends import available_backends, get_backend, numpy_available
from repro.galois.field import GF2mField
from repro.galois.pentanomials import smallest_type_ii_pentanomial, type_ii_parameters

#: The PR 1 throughput grid: NIST ECDSA degrees the tentpole targets.
FIELDS_M = (163, 233, 283)

#: Pairs per measurement — the grid point the ≥5× bitslice floor is pinned to.
DEFAULT_PAIRS = 2048

#: The scalar path is ~10× slower; measure it on a subset and scale.
SCALAR_PAIRS = 512

#: The asserted acceptance floor: bitslice over python at m=163, batch 2048.
BITSLICE_FLOOR = 5.0

#: The PR that produced the committed trajectory snapshot (JSON schema field).
COMMIT_PR = 8


def measure_backend(backend, a_values, b_values, measure_pairs=None, repeats=3):
    """Products/second of one backend on the given operand streams.

    The warm-up call runs at full batch width so one-time costs — circuit
    compilation *and* lane-buffer allocation — stay out of the timed
    region, and the fastest of ``repeats`` runs is reported to damp
    scheduler noise on shared CI machines.
    """
    pairs = len(a_values) if measure_pairs is None else min(measure_pairs, len(a_values))
    a_measured, b_measured = a_values[:pairs], b_values[:pairs]
    products, best = best_of(lambda: backend.multiply_batch(a_measured, b_measured), repeats)
    return products, rate(pairs, best)


def measure_field(m, pairs=DEFAULT_PAIRS, backends=None, seed=2018):
    """Throughput rows of every backend for GF(2^m), parity-checked."""
    modulus = smallest_type_ii_pentanomial(m)
    if modulus is None:
        raise ValueError(f"no type II pentanomial for m={m}")
    field = GF2mField(modulus, check_irreducible=False)
    rng = random.Random(seed)
    a_values = [rng.getrandbits(m) for _ in range(pairs)]
    b_values = [rng.getrandbits(m) for _ in range(pairs)]

    rows = []
    reference = None
    scalar_rate = None
    for name in backends or available_backends():
        try:
            backend = get_backend(name, field)
        except ImportError:
            # Optional substrates (numpy for bitslice, a C compiler for
            # native) may be absent; the grid covers what this machine has.
            if name == "python":
                raise
            continue
        measure_pairs = SCALAR_PAIRS if not backend.capabilities.vectorized else None
        products, rate = measure_backend(backend, a_values, b_values, measure_pairs)
        if reference is None:
            # The scalar reference comes first in registration order; pin it.
            if name != "python":
                raise AssertionError("expected the python reference backend to run first")
            reference = backend.multiply_batch(a_values, b_values)
            scalar_rate = rate
        if products != reference[: len(products)]:
            raise AssertionError(f"{name} backend disagrees with the scalar reference at m={m}")
        rows.append(
            {
                "m": m,
                "n": type_ii_parameters(modulus)[1],
                "backend": name,
                "pairs": pairs,
                "measured_pairs": len(products),
                "rate": rate,
                "speedup_vs_python": rate / scalar_rate,
            }
        )
    return rows


def report(rows):
    lines = [
        f"{'field':>10s} {'backend':<10s} {'rate':>14s} {'vs python':>10s}",
    ]
    for row in rows:
        lines.append(
            f"GF(2^{row['m']:<4d}) {row['backend']:<10s} {row['rate']:>12,.0f}/s"
            f" {row['speedup_vs_python']:>9.1f}x"
        )
    return "\n".join(lines)


def bitslice_speedup(rows, m=163):
    """The asserted figure: bitslice over python at the given field."""
    for row in rows:
        if row["m"] == m and row["backend"] == "bitslice":
            return row["speedup_vs_python"]
    raise AssertionError(f"no bitslice row for m={m}")


# --------------------------------------------------------------------- pytest
def test_backend_throughput_and_parity_gf2_163(benchmark):
    """The acceptance figure: bitslice ≥5× the scalar reference at m=163/2048."""
    if not numpy_available():  # pragma: no cover - CI installs numpy
        import pytest

        pytest.skip("numpy not installed; bitslice backend unavailable")
    modulus = smallest_type_ii_pentanomial(163)
    field = GF2mField(modulus, check_irreducible=False)
    backend = get_backend("bitslice", field)
    rng = random.Random(2018)
    a_values = [rng.getrandbits(163) for _ in range(DEFAULT_PAIRS)]
    b_values = [rng.getrandbits(163) for _ in range(DEFAULT_PAIRS)]
    backend.multiply_batch(a_values[:1], b_values[:1])
    benchmark(backend.multiply_batch, a_values, b_values)

    rows = measure_field(163)
    print("\n" + report(rows))
    speedup = bitslice_speedup(rows)
    assert speedup >= BITSLICE_FLOOR, f"bitslice only {speedup:.1f}x over the scalar reference"


def test_backend_throughput_nist_fields():
    """Parity + a sane bitslice speedup on every grid field (fewer pairs)."""
    if not numpy_available():  # pragma: no cover - CI installs numpy
        import pytest

        pytest.skip("numpy not installed; bitslice backend unavailable")
    rows = [row for m in FIELDS_M for row in measure_field(m, pairs=1024)]
    print("\n" + report(rows))
    for row in rows:
        if row["backend"] == "bitslice":
            assert row["speedup_vs_python"] >= 2.0, (
                f"m={row['m']}: bitslice only {row['speedup_vs_python']:.1f}x"
            )


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="backend throughput comparison")
    parser.add_argument("--quick", action="store_true", help="m=163 only (CI smoke; still batch 2048)")
    parser.add_argument("--pairs", type=int, default=DEFAULT_PAIRS)
    parser.add_argument("--fields", default=None, help="comma separated m values (default 163,233,283)")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the machine-readable report here")
    args = parser.parse_args(argv)
    if args.fields:
        fields = [int(chunk) for chunk in args.fields.split(",")]
    else:
        fields = [163] if args.quick else list(FIELDS_M)
    rows = [row for m in fields for row in measure_field(m, pairs=args.pairs)]
    print(report(rows))
    if args.json:
        write_bench_json(
            args.json,
            "backends",
            COMMIT_PR,
            {"fields": fields, "pairs": args.pairs},
            rows,
        )
    if 163 in fields and args.pairs >= DEFAULT_PAIRS:
        speedup = bitslice_speedup(rows)
        if speedup < BITSLICE_FLOOR:
            raise SystemExit(
                f"bitslice regression: {speedup:.1f}x < {BITSLICE_FLOOR:.0f}x over the scalar reference"
            )
        print(f"ok: bitslice {speedup:.1f}x over the scalar reference at m=163 (floor {BITSLICE_FLOOR:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
