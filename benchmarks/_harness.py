"""Shared measurement and report-emission helpers for the BENCH_* scripts.

Every benchmark in this directory follows the same discipline:

* **warm-up outside the timed region** — one untimed call at full batch
  width absorbs one-time costs (circuit generation, extension compilation,
  lane-buffer allocation) before any clock starts;
* **best-of-N timing** — the fastest of ``repeats`` runs is reported,
  damping scheduler noise on shared CI machines, with every repeated
  result asserted identical to the warm-up result (a benchmark that is
  not deterministic is not measuring anything);
* **one committed JSON schema** — ``{bench, commit_pr, config, results}``
  with a ``platform`` block inside ``config``, written with stable key
  order so refreshed trajectory snapshots diff cleanly.

The timing loops and the JSON writer live here so the individual scripts
(:mod:`bench_backends`, :mod:`bench_plane_ladder`, :mod:`bench_fused_step`,
:mod:`bench_native`) hold only what is unique to each: the workload, the
grid, and the asserted floors.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import subprocess
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def best_of(callable_: "Callable[[], Any]", repeats: int) -> "Tuple[Any, float]":
    """(result, best seconds) over ``repeats`` timed calls (first is warm-up).

    The warm-up result is the reference: every timed repetition must
    reproduce it byte for byte or the measurement aborts.
    """
    result = callable_()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        repeated = callable_()
        best = min(best, time.perf_counter() - start)
        if repeated != result:
            raise AssertionError("benchmark workload is not deterministic")
    return result, best


def best_of_interleaved(
    callables: "Sequence[Callable[[], Any]]", repeats: int
) -> "List[Tuple[Any, float]]":
    """Per-callable (result, best seconds), the timed calls interleaved.

    Shared runners see load spikes lasting whole seconds; timing each path
    in its own contiguous block hands whichever ran in the quiet window an
    unearned win.  Round-robin interleaving gives every path one sample per
    load regime, and best-of picks each path's quiet-window figure.
    """
    results = [callable_() for callable_ in callables]
    bests = [float("inf")] * len(callables)
    for _ in range(repeats):
        for index, callable_ in enumerate(callables):
            start = time.perf_counter()
            repeated = callable_()
            bests[index] = min(bests[index], time.perf_counter() - start)
            if repeated != results[index]:
                raise AssertionError("benchmark workload is not deterministic")
    return list(zip(results, bests))


def rate(count: int, seconds: float) -> float:
    """Operations per second, infinity-safe for sub-resolution timings."""
    return count / seconds if seconds > 0 else float("inf")


def platform_block() -> "Dict[str, str]":
    """The ``config.platform`` stamp shared by every committed BENCH_* file."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def git_commit_hash() -> "Optional[str]":
    """The current git HEAD hash, or ``None`` outside a repository.

    Benchmarks can run from an exported tarball; the stamp is provenance,
    not a requirement, so failures degrade to ``None`` rather than abort.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    commit = completed.stdout.strip()
    return commit or None


def timestamp_utc() -> str:
    """Second-resolution ISO-8601 UTC timestamp (``...Z``) for the stamp."""
    now = datetime.datetime.now(datetime.timezone.utc)
    return now.strftime("%Y-%m-%dT%H:%M:%SZ")


def write_bench_json(
    path: str,
    bench: str,
    commit_pr: int,
    config: "Dict[str, Any]",
    results: "List[Dict[str, Any]]",
) -> None:
    """Write one trajectory report in the shared BENCH_* schema.

    ``config`` gains the :func:`platform_block` stamp plus provenance
    stamps — the producing :func:`git_commit_hash` and an ISO-8601 UTC
    :func:`timestamp_utc` — so the perf-trajectory dashboard can order and
    attribute refreshes exactly.  Explicit ``platform``/``git_commit``/
    ``timestamp_utc`` keys in ``config`` win, for replaying foreign
    reports; keys are sorted and the file ends in a newline so committed
    snapshots diff cleanly across refreshes.

    Refreshing an existing file keeps its history: snapshots from *other*
    PRs stay in place (the file becomes a chronological list the dashboard
    renders as a trajectory), while a re-run under the same ``commit_pr``
    replaces that PR's snapshot, so CI re-runs never duplicate entries.
    """
    payload = {
        "bench": bench,
        "commit_pr": commit_pr,
        "config": {
            "platform": platform_block(),
            "git_commit": git_commit_hash(),
            "timestamp_utc": timestamp_utc(),
            **config,
        },
        "results": results,
    }
    history = [
        snapshot
        for snapshot in _load_history(path)
        if snapshot.get("commit_pr") != commit_pr
    ]
    history.append(payload)
    history.sort(key=lambda snapshot: snapshot.get("commit_pr", 0))
    document: "Any" = history[0] if len(history) == 1 else history
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path} ({len(history)} snapshot(s))")


def _load_history(path: str) -> "List[Dict[str, Any]]":
    """Existing snapshots at ``path``: ``[]`` if absent, list either way."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        return []
    if isinstance(existing, list):
        return [snapshot for snapshot in existing if isinstance(snapshot, dict)]
    if isinstance(existing, dict):
        return [existing]
    return []
