"""Shared measurement and report-emission helpers for the BENCH_* scripts.

Every benchmark in this directory follows the same discipline:

* **warm-up outside the timed region** — one untimed call at full batch
  width absorbs one-time costs (circuit generation, extension compilation,
  lane-buffer allocation) before any clock starts;
* **best-of-N timing** — the fastest of ``repeats`` runs is reported,
  damping scheduler noise on shared CI machines, with every repeated
  result asserted identical to the warm-up result (a benchmark that is
  not deterministic is not measuring anything);
* **one committed JSON schema** — ``{bench, commit_pr, config, results}``
  with a ``platform`` block inside ``config``, written with stable key
  order so refreshed trajectory snapshots diff cleanly.

The timing loops and the JSON writer live here so the individual scripts
(:mod:`bench_backends`, :mod:`bench_plane_ladder`, :mod:`bench_fused_step`,
:mod:`bench_native`) hold only what is unique to each: the workload, the
grid, and the asserted floors.
"""

from __future__ import annotations

import json
import platform
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Callable, Dict, List, Sequence, Tuple


def best_of(callable_: "Callable[[], Any]", repeats: int) -> "Tuple[Any, float]":
    """(result, best seconds) over ``repeats`` timed calls (first is warm-up).

    The warm-up result is the reference: every timed repetition must
    reproduce it byte for byte or the measurement aborts.
    """
    result = callable_()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        repeated = callable_()
        best = min(best, time.perf_counter() - start)
        if repeated != result:
            raise AssertionError("benchmark workload is not deterministic")
    return result, best


def best_of_interleaved(
    callables: "Sequence[Callable[[], Any]]", repeats: int
) -> "List[Tuple[Any, float]]":
    """Per-callable (result, best seconds), the timed calls interleaved.

    Shared runners see load spikes lasting whole seconds; timing each path
    in its own contiguous block hands whichever ran in the quiet window an
    unearned win.  Round-robin interleaving gives every path one sample per
    load regime, and best-of picks each path's quiet-window figure.
    """
    results = [callable_() for callable_ in callables]
    bests = [float("inf")] * len(callables)
    for _ in range(repeats):
        for index, callable_ in enumerate(callables):
            start = time.perf_counter()
            repeated = callable_()
            bests[index] = min(bests[index], time.perf_counter() - start)
            if repeated != results[index]:
                raise AssertionError("benchmark workload is not deterministic")
    return list(zip(results, bests))


def rate(count: int, seconds: float) -> float:
    """Operations per second, infinity-safe for sub-resolution timings."""
    return count / seconds if seconds > 0 else float("inf")


def platform_block() -> "Dict[str, str]":
    """The ``config.platform`` stamp shared by every committed BENCH_* file."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def write_bench_json(
    path: str,
    bench: str,
    commit_pr: int,
    config: "Dict[str, Any]",
    results: "List[Dict[str, Any]]",
) -> None:
    """Write one trajectory report in the shared BENCH_* schema.

    ``config`` gains the :func:`platform_block` stamp (an explicit
    ``platform`` key in ``config`` wins, for replaying foreign reports);
    keys are sorted and the file ends in a newline so committed snapshots
    diff cleanly across refreshes.
    """
    payload = {
        "bench": bench,
        "commit_pr": commit_pr,
        "config": {"platform": platform_block(), **config},
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
