"""Serving-layer throughput: single-request traffic vs the offline batch.

The PR 10 tentpole figure.  An offline ``ecdh_batch`` at batch 256 is the
repo's best case — every ladder step amortised across all lanes.  The
serving layer's claim is that **many concurrent single-request clients**
get (nearly) that same throughput: the :class:`DynamicBatcher` coalesces
compatible requests into full batches before they reach a ladder.

The measurement: a :class:`CryptoService` runs on its own thread; the
closed-loop load generator (``repro.serve.loadgen``) fires ``clients``
concurrent keep-alive HTTP clients at it, every response verified against
the locally batched reference (and a prefix against the scalar ladder).
The reported ratio is

    sustained served requests/s  /  offline batched ladders/s

on the *same backend and batch width* — so it prices exactly what the
service adds: HTTP parsing, JSON, batching, futures and the event loop.
The asserted floor is :data:`SERVE_FLOOR` (ISSUE 10's "within 20%") on
the best backend row of the full run, and the more conservative
:data:`QUICK_FLOOR` for ``--quick`` CI runs on shared runners.

Server and clients share one machine (and on single-core boxes, one
core), so the ratio is only reachable when per-request Python overhead is
small next to a ladder's share of its batch — which is why the headline
row uses the ``bitslice`` substrate (~2 ms/ladder at batch 256); the
``native`` row (~0.16 ms/ladder) is reported unasserted as the stretch
target for the trajectory.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py --json BENCH_serve.json
"""

from __future__ import annotations

import argparse
import asyncio
import random
import threading

from _harness import best_of, rate, write_bench_json
from repro.backends import get_backend, numpy_available
from repro.curves import curve_by_name, ecdh_batch
from repro.serve.loadgen import run_load
from repro.serve.server import CryptoService

#: The headline grid point: NIST-degree B-163, 256 concurrent clients.
DEFAULT_CURVE = "B-163"
DEFAULT_CLIENTS = 256
DEFAULT_REQUESTS_PER_CLIENT = 4

#: Asserted floors for served/offline throughput on the best backend row.
SERVE_FLOOR = 0.80
QUICK_FLOOR = 0.35

#: The committed-JSON schema version shared by the BENCH_* trajectory files.
COMMIT_PR = 10

#: The asserted substrate (and the unasserted stretch row).
GATED_BACKEND = "bitslice"
STRETCH_BACKEND = "native"

#: Default flush deadline per substrate.  The deadline must be invisible
#: next to ONE batch execution, or stragglers fragment into partial
#: batches that serialize behind the worker: bitslice runs a 256-lane
#: B-163 batch in ~0.5 s, so a 60 ms assembly window costs nothing and
#: captures whole closed-loop waves; native runs the same batch in
#: ~40 ms, so 5 ms is already proportionate.
DEADLINE_MS = {GATED_BACKEND: 60.0, STRETCH_BACKEND: 5.0}


class _ServiceThread:
    """A CryptoService on its own thread with its own event loop."""

    def __init__(self, **service_kwargs):
        self.service = CryptoService(**service_kwargs)
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.port = None
        self._thread = threading.Thread(target=self._run, name="bench-serve", daemon=True)
        self._thread.start()
        if not self._ready.wait(120):
            raise RuntimeError("the service thread never came up")

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self.port = self._loop.run_until_complete(self.service.start())
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.service.stop())
        self._loop.close()

    def stop(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=120)


def measure_serve(
    curve_name=DEFAULT_CURVE,
    backend_name=GATED_BACKEND,
    clients=DEFAULT_CLIENTS,
    requests_per_client=DEFAULT_REQUESTS_PER_CLIENT,
    repeats=2,
    workers=0,
    max_lanes=256,
    max_delay_ms=None,
    seed=2018,
):
    """One benchmark row: sustained served throughput vs the offline batch."""
    if max_delay_ms is None:
        max_delay_ms = DEADLINE_MS.get(backend_name, 5.0)
    curve = curve_by_name(curve_name)
    backend = get_backend(backend_name, curve.field)
    offline_batch = min(clients, max_lanes)
    rng = random.Random(seed)
    bound = curve.order if curve.order is not None else curve.field.order
    privates = [rng.randrange(1, bound) for _ in range(offline_batch)]
    peer_privates = [rng.randrange(1, bound) for _ in range(offline_batch)]
    # Peers via the batched ladder itself (also warms circuit/plane caches).
    peers = curve.multiply_batch([curve.generator] * offline_batch, peer_privates, backend=backend)
    _, offline_s = best_of(
        lambda: ecdh_batch(curve, privates, peers, backend=backend), repeats
    )
    offline_rate = rate(offline_batch, offline_s)

    runner = _ServiceThread(
        backend=backend_name, curves=(curve_name,), workers=workers,
        max_lanes=max_lanes, max_delay_ms=max_delay_ms, seed=seed,
    )
    try:
        # Warm wave: HTTP/JSON paths, connection setup, comb/ladder caches.
        warm = asyncio.run(run_load(
            "127.0.0.1", runner.port, op="ecdh", curve=curve_name,
            clients=min(32, clients), requests_per_client=1,
            seed=seed + 1, spot_checks=0,
        ))
        if warm.errors:
            raise AssertionError(f"warm wave failed: {warm.errors[:3]}")
        # Best-of-N waves, like best_of() on the offline side: closed-loop
        # batch assembly is sensitive to scheduler noise on shared machines.
        result = None
        for wave in range(repeats):
            candidate = asyncio.run(run_load(
                "127.0.0.1", runner.port, op="ecdh", curve=curve_name,
                clients=clients, requests_per_client=requests_per_client,
                seed=seed + 2 + wave, spot_checks=4,
            ))
            if candidate.errors:
                raise AssertionError(f"load run failed: {candidate.errors[:3]}")
            if candidate.verified != candidate.total:
                raise AssertionError(
                    f"only {candidate.verified}/{candidate.total} responses "
                    f"verified byte-identical"
                )
            if result is None or candidate.throughput > result.throughput:
                result = candidate
    finally:
        runner.stop()
    quantiles = result.latency_quantiles()
    return {
        "curve": curve_name,
        "m": curve.field.m,
        "backend": backend_name,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "workers": workers,
        "max_lanes": max_lanes,
        "max_delay_ms": max_delay_ms,
        "verified": result.verified,
        "checked_vs_scalar": result.spot_checked,
        "served_requests_per_s": result.throughput,
        "offline_ladders_per_s": offline_rate,
        "speedup_served_vs_offline": result.throughput / offline_rate,
        "latency_p50_ms": quantiles["p50"] * 1000.0,
        "latency_p95_ms": quantiles["p95"] * 1000.0,
        "latency_p99_ms": quantiles["p99"] * 1000.0,
    }


def report(rows):
    lines = [
        f"{'curve':>7s} {'backend':>9s} {'clients':>8s} {'served':>12s} "
        f"{'offline':>12s} {'ratio':>6s} {'p50':>8s} {'p99':>8s}"
    ]
    for row in rows:
        lines.append(
            f"{row['curve']:>7s} {row['backend']:>9s} {row['clients']:>8d} "
            f"{row['served_requests_per_s']:>10,.0f}/s {row['offline_ladders_per_s']:>10,.0f}/s "
            f"{row['speedup_served_vs_offline']:>6.2f} "
            f"{row['latency_p50_ms']:>6.1f}ms {row['latency_p99_ms']:>6.1f}ms"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- pytest
def test_served_throughput_tracks_offline_batch():
    """The CI gate: coalesced single-request traffic reaches QUICK_FLOOR of
    the offline batch on the gated substrate, every response verified."""
    if not numpy_available():  # pragma: no cover - CI installs numpy
        import pytest

        pytest.skip("numpy not installed; bitslice backend unavailable")
    row = measure_serve(clients=64, requests_per_client=2, repeats=1)
    print("\n" + report([row]))
    assert row["speedup_served_vs_offline"] >= QUICK_FLOOR, (
        f"served traffic at only {row['speedup_served_vs_offline']:.2f}x of the "
        f"offline batch (floor {QUICK_FLOOR})"
    )


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="batching service vs offline batch throughput")
    parser.add_argument("--curve", default=DEFAULT_CURVE)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS_PER_CLIENT)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--workers", type=int, default=0,
                        help="service worker processes (default 0: inline worker thread)")
    parser.add_argument("--quick", action="store_true",
                        help="64 clients x 2 requests, gated backend only (CI smoke)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report here")
    args = parser.parse_args(argv)
    clients = 64 if args.quick else args.clients
    requests_per_client = 2 if args.quick else args.requests
    repeats = 1 if args.quick else args.repeats
    floor = QUICK_FLOOR if args.quick else SERVE_FLOOR

    rows = [measure_serve(
        curve_name=args.curve, backend_name=GATED_BACKEND, clients=clients,
        requests_per_client=requests_per_client, repeats=repeats, workers=args.workers,
    )]
    if not args.quick:
        # The stretch row: same service, native substrate.  Unasserted — at
        # ~0.16 ms/ladder the per-request HTTP+JSON overhead dominates on a
        # shared machine; the trajectory tracks how close the service gets.
        rows.append(measure_serve(
            curve_name=args.curve, backend_name=STRETCH_BACKEND, clients=clients,
            requests_per_client=requests_per_client, repeats=repeats, workers=args.workers,
        ))
    print(report(rows))
    if args.json:
        write_bench_json(
            args.json,
            "serve",
            COMMIT_PR,
            {
                "curve": args.curve, "clients": clients,
                "requests_per_client": requests_per_client,
                "repeats": repeats, "workers": args.workers,
                "gated_backend": GATED_BACKEND, "floor": floor,
            },
            rows,
        )
    gated = rows[0]["speedup_served_vs_offline"]
    if gated < floor:
        raise SystemExit(
            f"serving regression: {gated:.2f}x < {floor:.2f}x of the offline batch "
            f"on {GATED_BACKEND}"
        )
    print(
        f"ok: served single-request traffic at {gated:.2f}x of the offline "
        f"batch-{min(clients, 256)} figure on {GATED_BACKEND} (floor {floor:.2f})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
