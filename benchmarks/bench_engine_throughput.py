"""Engine throughput — interpreted vs compiled batch multiplication.

Measures products/second of the interpreted reference path
(:func:`repro.netlist.simulate.simulate_words`: per-node dispatch, per-bit
packing loops) against the compiled engine (:mod:`repro.engine`:
straight-line generated code fed by word-level transposes) for the NIST
fields m ∈ {163, 233, 283}.  The engine must be ≥10× faster at m=163 —
that figure is asserted, not just reported.

Run standalone for the CI smoke check or a quick local look::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick

or under pytest-benchmark with the rest of the suite.  One-time costs
(multiplier generation, circuit compilation) are excluded from the
throughput figures; they are reported separately by ``--verbose`` runs.
"""

from __future__ import annotations

import argparse
import random
import time

from repro.engine import engine_for
from repro.galois.field import GF2mField
from repro.galois.pentanomials import smallest_type_ii_pentanomial, type_ii_parameters
from repro.multipliers.registry import generate_multiplier
from repro.netlist.simulate import simulate_words

#: The NIST ECDSA degrees the tentpole targets (paper Table V covers 163).
FIELDS_M = (163, 233, 283)

#: Pairs per measurement: large enough to amortize per-chunk overheads.
DEFAULT_PAIRS = 2048
#: The interpreted path is ~20× slower; measure it on a subset and scale.
INTERPRETED_PAIRS = 256


def measure_field(m, pairs=DEFAULT_PAIRS, method="thiswork", check=True, seed=2018):
    """Interpreted and compiled products/second for GF(2^m), plus one-time costs."""
    modulus = smallest_type_ii_pentanomial(m)
    if modulus is None:
        raise ValueError(f"no type II pentanomial for m={m}")
    rng = random.Random(seed)
    a_values = [rng.getrandbits(m) for _ in range(pairs)]
    b_values = [rng.getrandbits(m) for _ in range(pairs)]

    start = time.perf_counter()
    multiplier = generate_multiplier(method, modulus, verify=False)
    generate_s = time.perf_counter() - start

    interpreted_pairs = min(pairs, INTERPRETED_PAIRS)
    start = time.perf_counter()
    interpreted = simulate_words(
        multiplier.netlist, m, a_values[:interpreted_pairs], b_values[:interpreted_pairs]
    )
    interpreted_s = time.perf_counter() - start

    start = time.perf_counter()
    engine = engine_for(method, modulus, verify=False)
    compile_s = time.perf_counter() - start
    engine.multiply_batch(a_values[:1], b_values[:1])  # warm the code path
    start = time.perf_counter()
    compiled = engine.multiply_batch(a_values, b_values)
    compiled_s = time.perf_counter() - start

    if compiled[:interpreted_pairs] != interpreted:
        raise AssertionError(f"engine and interpreter disagree at m={m}")
    if check:
        field = GF2mField(modulus, check_irreducible=False)
        spot = random.Random(seed + 1).sample(range(pairs), min(64, pairs))
        for index in spot:
            expected = field.multiply(a_values[index], b_values[index])
            if compiled[index] != expected:
                raise AssertionError(f"engine disagrees with reference field at m={m}")

    interpreted_rate = interpreted_pairs / interpreted_s
    compiled_rate = pairs / compiled_s
    return {
        "m": m,
        "n": type_ii_parameters(modulus)[1],
        "pairs": pairs,
        "interpreted_rate": interpreted_rate,
        "compiled_rate": compiled_rate,
        "speedup": compiled_rate / interpreted_rate,
        "generate_s": generate_s,
        "compile_s": compile_s,
    }


def report(rows):
    lines = [
        f"{'field':>10s} {'interpreted':>14s} {'compiled':>14s} {'speedup':>9s}"
        f" {'generate':>9s} {'compile':>9s}",
    ]
    for row in rows:
        lines.append(
            f"GF(2^{row['m']:<4d}) {row['interpreted_rate']:>12,.0f}/s {row['compiled_rate']:>12,.0f}/s"
            f" {row['speedup']:>8.1f}x {row['generate_s']:>8.2f}s {row['compile_s']:>8.2f}s"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- pytest
def test_engine_speedup_gf2_163(benchmark):
    """The acceptance figure: ≥10× over simulate_words at m=163."""
    modulus = smallest_type_ii_pentanomial(163)
    engine = engine_for("thiswork", modulus, verify=False)
    rng = random.Random(2018)
    a_values = [rng.getrandbits(163) for _ in range(DEFAULT_PAIRS)]
    b_values = [rng.getrandbits(163) for _ in range(DEFAULT_PAIRS)]
    engine.multiply_batch(a_values[:1], b_values[:1])
    benchmark(engine.multiply_batch, a_values, b_values)

    row = measure_field(163, pairs=DEFAULT_PAIRS)
    print("\n" + report([row]))
    assert row["speedup"] >= 10.0, f"only {row['speedup']:.1f}x over simulate_words"


def test_engine_throughput_nist_fields():
    """Correctness + a sane speedup on every tentpole field (fewer pairs)."""
    rows = [measure_field(m, pairs=512) for m in FIELDS_M]
    print("\n" + report(rows))
    for row in rows:
        assert row["speedup"] >= 5.0, f"m={row['m']}: only {row['speedup']:.1f}x"


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="engine vs interpreter throughput")
    parser.add_argument("--quick", action="store_true", help="m=163 only, fewer pairs (CI smoke)")
    parser.add_argument("--pairs", type=int, default=DEFAULT_PAIRS)
    parser.add_argument("--fields", default=None, help="comma separated m values (default 163,233,283)")
    args = parser.parse_args(argv)
    if args.fields:
        fields = [int(chunk) for chunk in args.fields.split(",")]
    else:
        fields = [163] if args.quick else list(FIELDS_M)
    pairs = min(args.pairs, 1024) if args.quick else args.pairs
    rows = [measure_field(m, pairs=pairs) for m in fields]
    print(report(rows))
    floor = 10.0 if any(row["m"] == 163 for row in rows) else 5.0
    worst = min(row["speedup"] for row in rows)
    if worst < floor:
        raise SystemExit(f"speedup regression: {worst:.1f}x < {floor:.0f}x")
    print(f"ok: worst speedup {worst:.1f}x (floor {floor:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
