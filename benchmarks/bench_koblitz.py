"""Koblitz algorithmic paths — τ-adic Frobenius ladders and fixed-base combs.

The PR 9 tentpole figures.  Every earlier speedup changed the execution
substrate under an unchanged algorithm; this benchmark prices the two
*algorithmic* replacements from :mod:`repro.curves.scalarmul` against the
binary Montgomery ladder on the **same** backend:

* **agreement** — batched ECDH shared-point computation with
  ``scalar_rep="tau"`` (squarings ride the Frobenius endomorphism) vs
  ``scalar_rep="binary"``;
* **keygen** — batched generator multiplication through the precomputed
  comb table (``fixed_base=True``) vs the full ladder;
* **protocol** — one full ECDH exchange per pair (two keygens + one
  agreement per side), algorithmic paths vs all-binary.  This is the
  committed acceptance figure (per-backend floors in
  :data:`PROTOCOL_FLOORS`): comb keygen is where τ-curve deployments
  spend most of their ladders, and the two paths compose.

All paths are asserted byte-identical to each other and spot-checked
against the scalar-ladder reference before any rate is reported.  The
trajectory covers K-163..K-571 (full runs; quick CI runs keep the
headline K-163 grid on both plane-resident backends).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_koblitz.py --quick --json BENCH_koblitz.json
"""

from __future__ import annotations

import argparse
import random

from _harness import best_of_interleaved, rate, write_bench_json
from repro.backends import get_backend, native_available, numpy_available
from repro.curves import curve_by_name, ecdh_batch

#: The headline grid point: NIST-degree K-163 at batch 256.
DEFAULT_CURVE = "K-163"
DEFAULT_BATCH = 256

#: Asserted CI floors on the headline grid point (conservative for shared
#: runners; local targets run higher — see BENCH_koblitz.json).  The
#: protocol floor is per-backend: the bitslice planes execute squarings as
#: fused XOR passes, so τ pays off outright (measured ~2.1×); the native
#: word backend prices a squaring near a multiply at m = 163, so its K-163
#: win comes from the comb alone (~1.45×, and the τ agreement overtakes
#: binary from K-283 upward — see the committed trajectory).
PROTOCOL_FLOORS = {"bitslice": 1.8, "native": 1.2}
KEYGEN_FLOOR = 2.0     # comb keygen vs ladder keygen, every backend

#: The committed-JSON schema version shared by the BENCH_* trajectory files.
COMMIT_PR = 9

#: Trajectory curves beyond the headline (full runs, native backend).
TRAJECTORY_CURVES = ("K-233", "K-283", "K-409", "K-571")


def _draws(curve, batch, seed):
    rng = random.Random(seed)
    bound = curve.order if curve.order is not None else curve.field.order
    privates = [rng.randrange(1, bound) for _ in range(batch)]
    peer_privates = [rng.randrange(1, bound) for _ in range(batch)]
    return privates, peer_privates


def measure_koblitz(
    curve_name=DEFAULT_CURVE,
    batch=DEFAULT_BATCH,
    repeats=3,
    check=4,
    seed=2018,
    backend_name="native",
):
    """One benchmark row: τ/comb vs binary-ladder throughput, parity-checked."""
    curve = curve_by_name(curve_name)
    backend = get_backend(backend_name, curve.field)
    privates, peer_privates = _draws(curve, batch, seed)
    generator = curve.generator
    bases = [generator] * batch
    # Peers via the binary ladder (also warms circuit and table caches).
    peers = curve.multiply_batch(
        bases, peer_privates, backend=backend, scalar_rep="binary", fixed_base=False
    )

    # -------- keygen: comb table vs binary ladder on the generator batch
    (comb_pub, comb_s), (ladder_pub, ladder_s) = best_of_interleaved(
        (
            lambda: curve.multiply_batch(
                bases, privates, backend=backend, fixed_base=True
            ),
            lambda: curve.multiply_batch(
                bases, privates, backend=backend, scalar_rep="binary", fixed_base=False
            ),
        ),
        repeats,
    )
    if comb_pub != ladder_pub:
        raise AssertionError("comb keygen disagrees with the ladder keygen")

    # -------- agreement: τ-adic Frobenius ladder vs binary ladder
    (tau_shared, tau_s), (binary_shared, binary_s) = best_of_interleaved(
        (
            lambda: ecdh_batch(
                curve, privates, peers, backend=backend, scalar_rep="tau"
            ),
            lambda: ecdh_batch(
                curve, privates, peers, backend=backend, scalar_rep="binary"
            ),
        ),
        repeats,
    )
    if tau_shared != binary_shared:
        raise AssertionError("τ-adic agreement disagrees with the binary ladder")
    for index in range(min(check, batch)):
        if tau_shared[index] != curve.multiply(peers[index], privates[index]):
            raise AssertionError(f"batched agreement {index} != scalar-ladder reference")
        if comb_pub[index] != curve.multiply(generator, privates[index]):
            raise AssertionError(f"batched keypair {index} != scalar-ladder reference")

    # One ECDH exchange per pair costs two keygens and one agreement per
    # side; per-side seconds compare the composed algorithmic paths.
    algorithmic_s = 2 * comb_s + tau_s
    binary_total_s = 2 * ladder_s + binary_s
    return {
        "curve": curve_name,
        "m": curve.field.m,
        "batch": batch,
        "backend": backend_name,
        "checked_vs_scalar": min(check, batch),
        "tau_agreement_per_s": rate(batch, tau_s),
        "binary_agreement_per_s": rate(batch, binary_s),
        "speedup_tau_vs_binary": binary_s / tau_s if tau_s > 0 else float("inf"),
        "comb_keygen_per_s": rate(batch, comb_s),
        "ladder_keygen_per_s": rate(batch, ladder_s),
        "speedup_comb_vs_ladder": ladder_s / comb_s if comb_s > 0 else float("inf"),
        "ecdh_protocol_per_s": rate(batch, algorithmic_s),
        "speedup_protocol_vs_binary": (
            binary_total_s / algorithmic_s if algorithmic_s > 0 else float("inf")
        ),
    }


def measure_comb_only(curve_name, batch, repeats, backend_name, seed=2018):
    """A keygen-only row for non-Koblitz curves (B-163: comb, no τ)."""
    curve = curve_by_name(curve_name)
    backend = get_backend(backend_name, curve.field)
    privates, _ = _draws(curve, batch, seed)
    bases = [curve.generator] * batch
    curve.multiply_batch(bases[:4], privates[:4], backend=backend, fixed_base=True)  # warm
    (comb_pub, comb_s), (ladder_pub, ladder_s) = best_of_interleaved(
        (
            lambda: curve.multiply_batch(bases, privates, backend=backend, fixed_base=True),
            lambda: curve.multiply_batch(
                bases, privates, backend=backend, scalar_rep="binary", fixed_base=False
            ),
        ),
        repeats,
    )
    if comb_pub != ladder_pub:
        raise AssertionError("comb keygen disagrees with the ladder keygen")
    return {
        "curve": curve_name,
        "m": curve.field.m,
        "batch": batch,
        "backend": backend_name,
        "comb_keygen_per_s": rate(batch, comb_s),
        "ladder_keygen_per_s": rate(batch, ladder_s),
        "speedup_comb_vs_ladder": ladder_s / comb_s if comb_s > 0 else float("inf"),
    }


def report(rows):
    lines = [
        f"{'curve':>7s} {'backend':>9s} {'batch':>6s} {'tau agree':>12s} {'bin agree':>12s}"
        f" {'tau/bin':>8s} {'comb kg':>12s} {'ladder kg':>12s} {'comb/lad':>8s} {'protocol':>9s}"
    ]
    for row in rows:
        tau = row.get("tau_agreement_per_s")
        lines.append(
            f"{row['curve']:>7s} {row['backend']:>9s} {row['batch']:>6d}"
            + (f" {tau:>10,.0f}/s" if tau else f" {'-':>12s}")
            + (
                f" {row['binary_agreement_per_s']:>10,.0f}/s"
                if "binary_agreement_per_s" in row
                else f" {'-':>12s}"
            )
            + (
                f" {row['speedup_tau_vs_binary']:>7.2f}x"
                if "speedup_tau_vs_binary" in row
                else f" {'-':>8s}"
            )
            + f" {row['comb_keygen_per_s']:>10,.0f}/s {row['ladder_keygen_per_s']:>10,.0f}/s"
            + f" {row['speedup_comb_vs_ladder']:>7.2f}x"
            + (
                f" {row['speedup_protocol_vs_binary']:>8.2f}x"
                if "speedup_protocol_vs_binary" in row
                else f" {'-':>9s}"
            )
        )
    return "\n".join(lines)


def _assert_floors(row):
    protocol = row["speedup_protocol_vs_binary"]
    keygen = row["speedup_comb_vs_ladder"]
    floor = PROTOCOL_FLOORS.get(row["backend"])
    if floor is not None and protocol < floor:
        raise SystemExit(
            f"koblitz regression on {row['backend']}: ECDH protocol only "
            f"{protocol:.2f}x over all-binary (floor {floor:.1f}x)"
        )
    if keygen < KEYGEN_FLOOR:
        raise SystemExit(
            f"koblitz regression on {row['backend']}: comb keygen only "
            f"{keygen:.2f}x over the ladder (floor {KEYGEN_FLOOR:.1f}x)"
        )


def _headline_backends():
    names = []
    if numpy_available():
        names.append("bitslice")
    if native_available():
        names.append("native")
    return names


# --------------------------------------------------------------------- pytest
def test_koblitz_floors():
    """The CI gate: per-backend protocol floors and comb keygen ≥2× on K-163."""
    backends = _headline_backends()
    if not backends:  # pragma: no cover - CI installs numpy/cffi
        import pytest

        pytest.skip("no plane-resident backend available")
    row = measure_koblitz(backend_name=backends[-1])
    print("\n" + report([row]))
    _assert_floors(row)


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(
        description="τ-adic ladders and fixed-base combs vs the binary ladder"
    )
    parser.add_argument("--curve", default=DEFAULT_CURVE)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="3 repeats, headline grid only")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the machine-readable report here")
    args = parser.parse_args(argv)
    batch = args.batch
    repeats = min(args.repeats, 3) if args.quick else args.repeats
    backends = _headline_backends()
    if not backends:
        raise SystemExit("no plane-resident backend available (install numpy or cffi)")
    rows = [
        measure_koblitz(
            curve_name=args.curve, batch=batch, repeats=repeats, backend_name=name
        )
        for name in backends
    ]
    if not args.quick:
        for name in backends:
            rows.append(measure_comb_only("B-163", batch, repeats, name))
        if "native" in backends:
            for curve_name in TRAJECTORY_CURVES:
                rows.append(
                    measure_koblitz(
                        curve_name=curve_name,
                        batch=min(batch, 128),
                        repeats=max(repeats - 1, 1),
                        backend_name="native",
                    )
                )
    print(report(rows))
    if args.json:
        write_bench_json(
            args.json,
            "koblitz",
            COMMIT_PR,
            {"curve": args.curve, "batch": batch, "repeats": repeats},
            rows,
        )
    for row in rows:
        if row["curve"] == args.curve and "speedup_protocol_vs_binary" in row:
            _assert_floors(row)
    best = max(
        row["speedup_protocol_vs_binary"]
        for row in rows
        if "speedup_protocol_vs_binary" in row
    )
    print(
        f"ok: ECDH protocol up to {best:.2f}x over all-binary "
        f"(floors: protocol {PROTOCOL_FLOORS}, comb keygen {KEYGEN_FLOOR:.1f}x)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
