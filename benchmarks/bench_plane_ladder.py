"""Plane-resident ladder vs the per-step batch path — the PR 5 tentpole figure.

Both paths run the identical batched López-Dahab Montgomery ladder on the
same ``bitslice`` backend; the difference is purely data movement.  The
per-step path (what PR 4 shipped) packs operands into bit planes and
unpacks products **every ladder step** — ~2·m full bit-matrix transposes
per scalar multiplication — and runs all squarings and XORs as per-element
scalar Python in between.  The plane-resident path packs the base-point
coordinates **once**, keeps every step in the uint64 plane domain (two
lane-stacked netlist passes plus compiled linear-map plane programs per
step), and unpacks once before the shared Montgomery-trick inversions.

The asserted acceptance figure: plane-resident batched ECDH agreement on
B-163 with the ``bitslice`` backend must be ≥ 2× the per-step path (the
conservative CI floor for shared runners; the local target in ISSUE 5 is
≥ 3× at batch 256, recorded in ``BENCH_plane_ladder.json``).  Results are
asserted byte-identical between the paths and against the scalar-ladder
reference.

``--backend`` swaps the substrate under both paths: ``native`` (PR 7)
runs the very same compiled-formula ladder through the C word-level
executor — the committed trajectory record since PR 7.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_plane_ladder.py --backend native --json BENCH_plane_ladder.json
"""

from __future__ import annotations

import argparse
import random

from _harness import best_of, rate, write_bench_json
from repro.backends import get_backend, numpy_available
from repro.curves import curve_by_name, ecdh_batch

#: The headline grid point: NIST-degree B-163 at batch 256.
DEFAULT_CURVE = "B-163"
DEFAULT_BATCH = 256

#: The asserted floor: plane-resident over per-step on shared CI runners.
PLANE_FLOOR = 2.0

#: The committed-JSON schema version shared by the BENCH_* trajectory files.
COMMIT_PR = 8

#: The substrate both paths run on by default (any plane-resident backend).
DEFAULT_BACKEND = "bitslice"


def measure_plane_ladder(
    curve_name=DEFAULT_CURVE,
    batch=DEFAULT_BATCH,
    repeats=3,
    check=4,
    seed=2018,
    backend_name=DEFAULT_BACKEND,
):
    """One benchmark row: plane vs per-step agreement throughput, parity-checked."""
    curve = curve_by_name(curve_name)
    backend = get_backend(backend_name, curve.field)
    rng = random.Random(seed)
    bound = curve.order if curve.order is not None else curve.field.order
    privates = [rng.randrange(1, bound) for _ in range(batch)]
    peer_privates = [rng.randrange(1, bound) for _ in range(batch)]
    # Peers via the batched ladder itself (also warms circuit + plane caches).
    peers = curve.multiply_batch([curve.generator] * batch, peer_privates, backend=backend)

    plane_shared, plane_s = best_of(
        lambda: ecdh_batch(curve, privates, peers, backend=backend, plane_resident=True), repeats
    )
    steps_shared, steps_s = best_of(
        lambda: ecdh_batch(curve, privates, peers, backend=backend, plane_resident=False), repeats
    )
    if plane_shared != steps_shared:
        raise AssertionError("plane-resident and per-step ladders disagree")
    for index in range(min(check, batch)):
        if plane_shared[index] != curve.multiply(peers[index], privates[index]):
            raise AssertionError(f"batched agreement {index} != scalar-ladder reference")

    return {
        "curve": curve_name,
        "m": curve.field.m,
        "batch": batch,
        "backend": backend_name,
        "checked_vs_scalar": min(check, batch),
        "plane_ladders_per_s": rate(batch, plane_s),
        "steps_ladders_per_s": rate(batch, steps_s),
        "speedup_plane_vs_steps": steps_s / plane_s if plane_s > 0 else float("inf"),
    }


def report(rows):
    lines = [f"{'curve':>7s} {'batch':>6s} {'plane':>12s} {'per-step':>12s} {'speedup':>8s}"]
    for row in rows:
        lines.append(
            f"{row['curve']:>7s} {row['batch']:>6d} {row['plane_ladders_per_s']:>10,.0f}/s"
            f" {row['steps_ladders_per_s']:>10,.0f}/s {row['speedup_plane_vs_steps']:>7.1f}x"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------- pytest
def test_plane_ladder_speedup_b163():
    """The CI gate: plane-resident ≥2x the per-step path on B-163."""
    if not numpy_available():  # pragma: no cover - CI installs numpy
        import pytest

        pytest.skip("numpy not installed; bitslice backend unavailable")
    row = measure_plane_ladder(batch=128, repeats=2)
    print("\n" + report([row]))
    assert row["speedup_plane_vs_steps"] >= PLANE_FLOOR, (
        f"plane ladder only {row['speedup_plane_vs_steps']:.1f}x over the per-step path"
    )


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="plane-resident vs per-step batched ladder")
    parser.add_argument("--curve", default=DEFAULT_CURVE)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--backend", default=DEFAULT_BACKEND, help="plane-resident substrate (bitslice or native)")
    parser.add_argument("--quick", action="store_true", help="batch 128, 2 repeats (CI smoke)")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the machine-readable report here")
    args = parser.parse_args(argv)
    batch = 128 if args.quick else args.batch
    repeats = 2 if args.quick else args.repeats
    row = measure_plane_ladder(
        curve_name=args.curve, batch=batch, repeats=repeats, backend_name=args.backend
    )
    print(report([row]))
    if args.json:
        write_bench_json(
            args.json,
            "plane_ladder",
            COMMIT_PR,
            {"curve": args.curve, "batch": batch, "repeats": repeats, "backend": args.backend},
            [row],
        )
    speedup = row["speedup_plane_vs_steps"]
    if speedup < PLANE_FLOOR:
        raise SystemExit(
            f"plane-ladder regression: {speedup:.1f}x < {PLANE_FLOOR:.0f}x over the per-step path"
        )
    print(f"ok: plane-resident ladder {speedup:.1f}x over the per-step path (floor {PLANE_FLOOR:.0f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
