"""Telemetry overhead A/B — the PR 8 "observability is free when off" gate.

Runs the identical compiled-formula López-Dahab ladder (the PR 6 fused
step, B-163 at batch 256) twice per repetition, interleaved: once with the
process :class:`~repro.telemetry.metrics.MetricsRegistry` enabled and once
with the :class:`~repro.telemetry.metrics.NullRegistry` installed.  The
instrumentation contract is that every hot-path hook costs one attribute
check when telemetry is off and one dict update when it is on, so the two
timings must agree to within ``OVERHEAD_CEILING`` (the asserted ≤ 3%
acceptance figure) on every available IR substrate.

Span tracing is **off on both sides** of the asserted A/B — the tracer
records one event per fused pass per ladder step, which is a deliberate
deep-inspection mode, not a production default.  Its cost is still
interesting, so the benchmark measures a third, traced run and reports the
ratio without asserting a floor on it.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --quick

or under pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import argparse
import random

from _harness import best_of_interleaved, rate, write_bench_json
from repro.backends import available_backends, get_backend, numpy_available
from repro.curves import curve_by_name
from repro.curves.formulas import ladder_step_program
from repro.telemetry import metrics as telemetry_metrics
from repro.telemetry import trace as telemetry_trace

#: The acceptance grid point: NIST-degree B-163 at batch 256.
DEFAULT_CURVE = "B-163"
DEFAULT_BATCH = 256

#: The asserted ceiling: metrics-enabled over metrics-disabled wall time.
OVERHEAD_CEILING = 1.03

#: The committed-JSON schema version shared by the BENCH_* trajectory files.
COMMIT_PR = 8


def _compiled_ladder(backend, curve, base_x, scalars):
    """The fused-formula ladder loop: one ``run_arrays`` call per step."""
    executor = backend.ir_executor()
    compiled = executor.compile(ladder_step_program(curve))
    count = len(base_x)
    base = executor.pack(base_x).array
    x1 = executor.pack([1] * count).array
    z1 = executor.pack([0] * count).array
    x2 = base.copy()
    z2 = x1.copy()
    for bit_index in range(max(s.bit_length() for s in scalars) - 1, -1, -1):
        mask = executor.broadcast_bits([(s >> bit_index) & 1 for s in scalars])
        x1, z1, x2, z2 = compiled.run_arrays((x1, z1, x2, z2, base), (mask,))
    return tuple(executor.unpack(executor.vector(a, count)) for a in (x1, z1, x2, z2))


def _run_with_metrics(enabled, backend, curve, base_x, scalars):
    """One ladder run under an explicit registry state, restored afterwards."""
    previous = telemetry_metrics.set_registry(
        telemetry_metrics.MetricsRegistry() if enabled else telemetry_metrics.NullRegistry()
    )
    try:
        return _compiled_ladder(backend, curve, base_x, scalars)
    finally:
        telemetry_metrics.set_registry(previous)


def _run_traced(backend, curve, base_x, scalars):
    """One ladder run with a fresh span tracer collecting every fused pass."""
    previous = telemetry_trace.set_tracer(telemetry_trace.Tracer())
    try:
        return _compiled_ladder(backend, curve, base_x, scalars)
    finally:
        telemetry_trace.set_tracer(previous)


def measure_overhead(backend_name, curve_name=DEFAULT_CURVE, batch=DEFAULT_BATCH, repeats=3, seed=2018):
    """One benchmark row: enabled vs disabled vs traced on one substrate."""
    curve = curve_by_name(curve_name)
    backend = get_backend(backend_name, curve.field)
    rng = random.Random(seed)
    bound = curve.order if curve.order is not None else curve.field.order
    scalars = [rng.randrange(1, bound) for _ in range(batch)]
    base_x = [rng.randrange(1, curve.field.order) for _ in range(batch)]

    (
        (off_state, off_s),
        (on_state, on_s),
        (traced_state, traced_s),
    ) = best_of_interleaved(
        [
            lambda: _run_with_metrics(False, backend, curve, base_x, scalars),
            lambda: _run_with_metrics(True, backend, curve, base_x, scalars),
            lambda: _run_traced(backend, curve, base_x, scalars),
        ],
        repeats,
    )
    if not (off_state == on_state == traced_state):
        raise AssertionError("telemetry state changed the ladder registers")
    return {
        "backend": backend_name,
        "curve": curve_name,
        "m": curve.field.m,
        "batch": batch,
        "disabled_ladders_per_s": rate(batch, off_s),
        "enabled_ladders_per_s": rate(batch, on_s),
        "traced_ladders_per_s": rate(batch, traced_s),
        "overhead_enabled_vs_disabled": on_s / off_s if off_s > 0 else float("inf"),
        "overhead_traced_vs_disabled": traced_s / off_s if off_s > 0 else float("inf"),
    }


def report(rows):
    lines = [
        f"{'backend':>9s} {'curve':>7s} {'batch':>6s} {'metrics off':>12s} {'metrics on':>12s}"
        f" {'overhead':>8s} {'traced':>12s} {'trace cost':>10s}"
    ]
    for row in rows:
        lines.append(
            f"{row['backend']:>9s} {row['curve']:>7s} {row['batch']:>6d}"
            f" {row['disabled_ladders_per_s']:>10,.0f}/s {row['enabled_ladders_per_s']:>10,.0f}/s"
            f" {row['overhead_enabled_vs_disabled']:>7.3f}x"
            f" {row['traced_ladders_per_s']:>10,.0f}/s {row['overhead_traced_vs_disabled']:>9.2f}x"
        )
    return "\n".join(lines)


def _assert_ceiling(row):
    if row["overhead_enabled_vs_disabled"] > OVERHEAD_CEILING:
        raise AssertionError(
            f"metrics-enabled ladder {row['overhead_enabled_vs_disabled']:.3f}x the disabled one "
            f"on {row['backend']} (ceiling {OVERHEAD_CEILING:.2f}x)"
        )


def _ir_backends():
    """Every registered backend with a compiled-formula executor."""
    return [name for name in available_backends() if name in ("bitslice", "native")]


# --------------------------------------------------------------------- pytest
def test_metrics_overhead_within_ceiling_b163():
    """The CI gate: metrics on vs off within 3% on the compiled ladder."""
    if not numpy_available():  # pragma: no cover - CI installs numpy
        import pytest

        pytest.skip("numpy not installed; no IR substrate available")
    rows = [measure_overhead(name, batch=128, repeats=4) for name in _ir_backends()]
    print("\n" + report(rows))
    for row in rows:
        _assert_ceiling(row)


# ----------------------------------------------------------------- standalone
def main(argv=None):
    parser = argparse.ArgumentParser(description="telemetry overhead A/B on the compiled ladder")
    parser.add_argument("--curve", default=DEFAULT_CURVE)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--quick", action="store_true", help="batch 128, 3 repeats (CI smoke)")
    parser.add_argument("--json", default=None, metavar="PATH", help="write the machine-readable report here")
    args = parser.parse_args(argv)
    batch = 128 if args.quick else args.batch
    repeats = 3 if args.quick else args.repeats
    rows = [
        measure_overhead(name, curve_name=args.curve, batch=batch, repeats=repeats)
        for name in _ir_backends()
    ]
    print(report(rows))
    if args.json:
        write_bench_json(
            args.json,
            "telemetry_overhead",
            COMMIT_PR,
            {"curve": args.curve, "batch": batch, "repeats": repeats},
            rows,
        )
    for row in rows:
        _assert_ceiling(row)
    print(f"ok: telemetry overhead within {OVERHEAD_CEILING:.2f}x on {', '.join(_ir_backends())}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
