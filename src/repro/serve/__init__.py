"""repro.serve — crypto-as-a-service: dynamic micro-batching front-end.

The repo's whole performance story (compiled engines, plane-resident
ladders, native word kernels, τ/comb recodings) pays off when requests
arrive in *batches* — but real traffic arrives one request at a time.
This package closes that gap with the same request-coalescing pattern
production inference servers use to amortize kernel launches:

* :mod:`repro.serve.batcher` — a thread-safe :class:`DynamicBatcher`
  that parks each request behind a future and flushes a group of
  compatible requests (same curve × op × scalar recoding) as one batch
  when it reaches the lane target **or** its deadline expires
  (default 256 lanes / 5 ms);
* :mod:`repro.serve.workers` — a :class:`WorkerPool` of warmed worker
  processes (start-method-agnostic; also the sharding engine behind
  ``repro ecdh --jobs``) that execute leased batches through the batched
  protocol entry points and fold their telemetry snapshots back into the
  parent registry;
* :mod:`repro.serve.server` — :class:`CryptoService`, a stdlib-asyncio
  JSON-over-HTTP/1.1 front-end exposing ``/ecdh``, ``/keygen``,
  ``/sign``, ``/healthz`` and ``/stats``;
* :mod:`repro.serve.loadgen` — the many-small-clients closed-loop load
  generator behind ``repro loadgen`` and ``benchmarks/bench_serve.py``.

Everything is stdlib-only: no new runtime dependencies.
"""

from __future__ import annotations

from .batcher import Batch, DynamicBatcher, GroupKey
from .server import CryptoService
from .workers import WorkerPool, ecdh_sharded, preferred_start_method

__all__ = [
    "Batch",
    "DynamicBatcher",
    "GroupKey",
    "CryptoService",
    "WorkerPool",
    "ecdh_sharded",
    "preferred_start_method",
]
