"""CryptoService: a stdlib-asyncio JSON-over-HTTP/1.1 batching front-end.

One asyncio event loop accepts many concurrent keep-alive connections,
validates each JSON request at ingress, parks it in the
:class:`~repro.serve.batcher.DynamicBatcher`, and awaits its future.
Compatible requests (same curve × op × resolved scalar recoding) that
arrive within the flush window ride **one** batched ladder call on the
:class:`~repro.serve.workers.WorkerPool` — single-request traffic gets
batch-256 throughput without clients ever knowing.

Endpoints (all bodies JSON; integers accepted as ints or hex strings,
returned as lowercase hex):

* ``POST /ecdh``   — ``{"curve", "private", "peer_x", "peer_y"}`` →
  ``{"x", "y"}`` (the shared point);
* ``POST /keygen`` — ``{"curve"[, "private"]}`` → ``{"private", "x", "y"}``
  (the private scalar is drawn server-side from the seeded RNG when
  absent);
* ``POST /sign``   — ``{"curve", "private", "digest"}`` → ``{"r", "s"}``;
* ``GET /healthz`` — liveness (curves warmed, pool mode);
* ``GET /stats``   — queue depth, batch-fill histogram, flush-reason
  counts and per-op latency p50/p95/p99 straight from the telemetry
  registry's bucketed observations.

All three POST bodies take an optional ``"scalar_rep"`` (``"auto"`` /
``"binary"`` / ``"tau"``) which is resolved at ingress — so ``"auto"``
and ``"tau"`` requests on a Koblitz curve land in the *same* batch
group, and ``"tau"`` on a B-curve is rejected with 400 before it can
poison a batch.

The HTTP layer is deliberately minimal (request line + headers via
``readline``, body via ``readexactly(Content-Length)``, keep-alive
honoured): stdlib only, no new dependencies, enough for the load
generator, the benchmarks and curl.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random
import threading
import time
from typing import TYPE_CHECKING

from ..curves import curve_by_name
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from ..telemetry.metrics import summary_quantiles
from .batcher import DEFAULT_MAX_DELAY_S, DEFAULT_MAX_LANES, DynamicBatcher
from .workers import OP_FIELDS, WorkerPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict, List, Optional, Sequence, Tuple

    from .batcher import Batch, GroupKey

__all__ = ["CryptoService", "DEFAULT_CURVES", "MAX_BODY_BYTES"]

#: Served by default: the paper's m=163 pair — one B-curve (binary
#: ladder) and one Koblitz curve (τ ladder + comb keygen + ECDSA order).
DEFAULT_CURVES: "Tuple[str, ...]" = ("B-163", "K-163")

#: Request body cap; a full 571-bit batch request is well under 1 KiB.
MAX_BODY_BYTES = 1 << 20

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class _HttpError(Exception):
    """A client-visible error: carried as ``(status, message)``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _parse_int(value: "Any", name: str) -> int:
    """Accept a non-negative int or a hex string (``"1f"`` / ``"0x1f"``)."""
    if isinstance(value, bool):
        raise _HttpError(400, f"{name} must be an integer or hex string")
    if isinstance(value, int):
        if value < 0:
            raise _HttpError(400, f"{name} must be non-negative")
        return value
    if isinstance(value, str):
        text = value[2:] if value[:2].lower() == "0x" else value
        try:
            return int(text, 16)
        except ValueError:
            raise _HttpError(400, f"{name} is not a valid hex string: {value!r}") from None
    raise _HttpError(400, f"{name} must be an integer or hex string")


def _hex(value: "Optional[int]") -> "Optional[str]":
    return format(value, "x") if value is not None else None


class CryptoService:
    """The batching service: HTTP front-end + batcher + worker pool.

    ``workers=None`` sizes the pool to the CPU count; ``workers=0`` runs
    batches inline on one worker thread (the right call on single-core
    machines — no IPC, and the native backend releases the GIL during
    its C calls).  ``backend`` is a backend registry name or ``None``
    for the per-field default.  ``seed`` makes server-side keygen draws
    reproducible.
    """

    def __init__(
        self,
        *,
        backend: "Optional[str]" = None,
        curves: "Sequence[str]" = DEFAULT_CURVES,
        max_lanes: int = DEFAULT_MAX_LANES,
        max_delay_ms: float = DEFAULT_MAX_DELAY_S * 1000.0,
        workers: "Optional[int]" = None,
        start_method: "Optional[str]" = None,
        seed: "Optional[int]" = None,
    ) -> None:
        self.curves = {name: curve_by_name(name) for name in curves}
        self.pool = WorkerPool(
            workers=workers, backend=backend,
            curves=tuple(self.curves), start_method=start_method,
        )
        self.batcher = DynamicBatcher(
            self._dispatch, max_lanes=max_lanes, max_delay_s=max_delay_ms / 1000.0
        )
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        self._server: "Optional[asyncio.AbstractServer]" = None
        self._started_at = time.monotonic()
        self.port: "Optional[int]" = None

    # -- batch plumbing ----------------------------------------------

    def _dispatch(self, batch: "Batch") -> None:
        """Hand one flushed batch to the pool; fan results back to futures."""
        fields = OP_FIELDS[batch.key[0]]
        columns = {
            field: [request.payload[field] for request in batch.requests]
            for field in fields
        }
        lease = self.pool.submit(batch.key, columns)

        def _complete(done) -> None:
            error = done.exception()
            if error is not None:
                for request in batch.requests:
                    if not request.future.done():
                        request.future.set_exception(error)
                return
            for request, row in zip(batch.requests, done.result()):
                if not request.future.done():
                    request.future.set_result(row)

        lease.add_done_callback(_complete)

    # -- request validation ------------------------------------------

    def _prepare(self, op: str, body: bytes) -> "Tuple[GroupKey, Dict[str, Any]]":
        """Parse + validate one request body into ``(group key, payload)``.

        Everything that could make a request incompatible with (or
        poisonous to) a batch is decided here, at ingress: unknown or
        unserved curves, malformed integers, out-of-range scalars and
        invalid scalar recodings all turn into 400s before enqueue.
        """
        try:
            data = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, f"invalid JSON body: {error}") from None
        if not isinstance(data, dict):
            raise _HttpError(400, "the request body must be a JSON object")
        curve_name = data.get("curve")
        curve = self.curves.get(curve_name)
        if curve is None:
            raise _HttpError(
                400,
                f"unknown or unserved curve {curve_name!r}; "
                f"serving: {', '.join(sorted(self.curves))}",
            )
        scalar_rep = data.get("scalar_rep", "auto")
        if not isinstance(scalar_rep, str):
            raise _HttpError(400, "scalar_rep must be a string")
        try:
            resolved_rep = curve._resolve_scalar_rep(scalar_rep)
        except ValueError as error:
            raise _HttpError(400, str(error)) from None
        bound = curve.order if curve.order is not None else curve.field.order
        payload: "Dict[str, Any]" = {}
        if op == "keygen":
            if data.get("private") is not None:
                private = _parse_int(data["private"], "private")
            else:
                with self._rng_lock:
                    private = self._rng.randrange(1, bound)
            payload["private"] = private
        elif op == "ecdh":
            for field in OP_FIELDS["ecdh"]:
                if data.get(field) is None:
                    raise _HttpError(400, f"ecdh requires {field!r}")
                payload[field] = _parse_int(data[field], field)
            field_order = curve.field.order
            for coord in ("peer_x", "peer_y"):
                if payload[coord] >= field_order:
                    raise _HttpError(400, f"{coord} is not a field element of {curve_name}")
        elif op == "sign":
            if curve.order is None:
                raise _HttpError(
                    400, f"signing needs a curve with a known subgroup order; "
                         f"{curve_name} does not record one"
                )
            for field in OP_FIELDS["sign"]:
                if data.get(field) is None:
                    raise _HttpError(400, f"sign requires {field!r}")
                payload[field] = _parse_int(data[field], field)
        else:  # pragma: no cover - routes only reference known ops
            raise _HttpError(404, f"unknown operation {op!r}")
        if not 1 <= payload["private"] < bound:
            raise _HttpError(400, f"private must satisfy 1 <= d < {bound:#x}")
        return (op, curve_name, resolved_rep), payload

    # -- handlers -----------------------------------------------------

    async def _handle_op(self, op: str, body: bytes) -> "Tuple[int, Dict[str, Any]]":
        with _trace.span("serve.enqueue", op=op):
            key, payload = self._prepare(op, body)
            future = self.batcher.submit(key, payload)
        row = await asyncio.wrap_future(future)
        if "error" in row:
            return 400, {"error": row["error"], "curve": key[1], "op": op}
        response: "Dict[str, Any]" = {"curve": key[1], "scalar_rep": key[2]}
        if op == "keygen":
            response["private"] = _hex(payload["private"])
        for name, value in row.items():
            response[name] = _hex(value)
        return 200, response

    def healthz(self) -> "Dict[str, Any]":
        return {
            "status": "ok",
            "curves": sorted(self.curves),
            "workers": self.pool.describe(),
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }

    def stats(self) -> "Dict[str, Any]":
        """Service counters and latency quantiles from the live registry."""
        registry = _metrics.REGISTRY
        snapshot = registry.snapshot()
        counters = snapshot.get("counters", {})
        observations = snapshot.get("observations", {})

        def _summary(name: str) -> "Dict[str, Any]":
            summary = observations.get(name)
            if not summary:
                return {"count": 0}
            out: "Dict[str, Any]" = {
                "count": summary["count"],
                "mean": summary["total_s"] / summary["count"],
                "min": summary["min_s"],
                "max": summary["max_s"],
            }
            out.update(summary_quantiles(summary))
            return out

        return {
            "queue_depth": self.batcher.queue_depth(),
            "requests": counters.get("service.requests", 0),
            "batches": counters.get("service.batches", 0),
            "batch_fallbacks": counters.get("service.batch_fallback", 0),
            "flush_reasons": {
                reason: counters.get(f"service.flush.{reason}", 0)
                for reason in ("size", "deadline", "close")
            },
            "batch_fill": _summary("service.batch_fill"),
            "execute_s": _summary("service.execute"),
            "latency_s": {
                op: _summary(f"service.latency.{op}") for op in OP_FIELDS
            },
            "config": {
                "curves": sorted(self.curves),
                "max_lanes": self.batcher.max_lanes,
                "max_delay_ms": self.batcher.max_delay_s * 1000.0,
                "workers": self.pool.workers,
                "backend": self.pool.backend_name,
            },
            "telemetry_enabled": bool(registry.enabled),
        }

    async def _route(self, method: str, path: str, body: bytes) -> "Tuple[int, Dict[str, Any]]":
        path = path.split("?", 1)[0]
        if path in ("/healthz", "/stats"):
            if method != "GET":
                return 405, {"error": f"{path} is GET-only"}
            return 200, self.healthz() if path == "/healthz" else self.stats()
        if path in ("/ecdh", "/keygen", "/sign"):
            if method != "POST":
                return 405, {"error": f"{path} is POST-only"}
            op = path[1:]
            started = time.perf_counter()
            try:
                status, payload = await self._handle_op(op, body)
            except _HttpError as error:
                return error.status, {"error": str(error)}
            elapsed = time.perf_counter() - started
            registry = _metrics.REGISTRY
            if registry.enabled:
                registry.observe(f"service.latency.{op}", elapsed)
            _trace.record_span("serve.request", started, elapsed, op=op, status=status)
            return status, payload
        return 404, {"error": f"no route for {path!r}"}

    # -- HTTP plumbing ------------------------------------------------

    async def _handle_client(
        self, reader: "asyncio.StreamReader", writer: "asyncio.StreamWriter"
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._respond(writer, 400, {"error": "malformed request line"}, False)
                    break
                method, path, version = parts
                headers: "Dict[str, str]" = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad Content-Length"}, False)
                    break
                if length > MAX_BODY_BYTES:
                    await self._respond(writer, 413, {"error": "request body too large"}, False)
                    break
                body = await reader.readexactly(length) if length else b""
                default_conn = "keep-alive" if version == "HTTP/1.1" else "close"
                keep_alive = headers.get("connection", default_conn).lower() != "close"
                try:
                    status, payload = await self._route(method.upper(), path, body)
                except _HttpError as error:
                    status, payload = error.status, {"error": str(error)}
                except Exception as error:  # pragma: no cover - defensive
                    status, payload = 500, {"error": f"internal error: {error}"}
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(
        self, writer: "asyncio.StreamWriter", status: int,
        payload: "Dict[str, Any]", keep_alive: bool,
    ) -> None:
        started = time.perf_counter()
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        _trace.record_span("serve.respond", started, time.perf_counter() - started, status=status)

    # -- lifecycle ----------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start accepting; returns the bound port (``port=0`` picks one)."""
        self._server = await asyncio.start_server(self._handle_client, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop accepting, flush leftovers, and shut the pool down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.to_thread(self.batcher.close)
        await asyncio.to_thread(self.pool.close)

    async def run(self, host: str = "127.0.0.1", port: int = 8742, *, announce=None) -> None:
        """``start`` + serve until cancelled; the CLI entry point."""
        bound = await self.start(host, port)
        if announce is not None:
            announce(bound)
        try:
            assert self._server is not None
            await self._server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await self.stop()
