"""Dynamic micro-batching: coalesce single requests into batched lanes.

A :class:`DynamicBatcher` accepts one request at a time (each parked
behind a :class:`concurrent.futures.Future`), groups compatible requests
by :data:`GroupKey` — ``(op, curve, scalar_rep)``, the tuple that decides
whether two requests can share one batched ladder call — and hands each
group to a ``dispatch`` callable as one :class:`Batch` when either

* the group reaches ``max_lanes`` pending requests (**size flush** — the
  batch is as wide as the plane/word kernels want it), or
* ``max_delay_s`` has elapsed since the group's *oldest* request
  (**deadline flush** — a lone request never waits longer than the
  deadline for company).

Size flushes happen inline on the submitting thread, so a full batch
never waits for the flusher to wake; deadline flushes come from one
background flusher thread that sleeps until the earliest pending
deadline.  ``dispatch`` runs outside the batcher lock and is free to
block (the server's dispatch submits to the worker pool).

Telemetry (all through :mod:`repro.telemetry.metrics`):

* ``service.requests`` / ``service.batches`` counters,
* ``service.flush.size`` / ``service.flush.deadline`` / ``service.flush.close``
  flush-reason counters,
* ``service.batch_fill`` — a bucketed histogram of flushed lane counts,
* ``service.queue.depth`` — a gauge of requests currently parked.

With a tracer installed, every flush records a ``serve.flush`` span
covering the batch-assembly window (oldest enqueue → flush), so
``--trace-out`` makes batch assembly visible in Perfetto.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Tuple

from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Callable, Dict, List, Optional

#: (op, curve name, resolved scalar_rep) — requests sharing a key can
#: ride one batched protocol call.
GroupKey = Tuple[str, str, str]

__all__ = ["GroupKey", "PendingRequest", "Batch", "DynamicBatcher"]


#: Default flush policy: the plane/word kernels' preferred lane count and
#: a deadline short enough to be invisible next to one m=163 ladder.
DEFAULT_MAX_LANES = 256
DEFAULT_MAX_DELAY_S = 0.005


@dataclass
class PendingRequest:
    """One enqueued request: its payload, its future, and when it arrived."""

    payload: "Dict[str, Any]"
    future: "Future"
    enqueued_at: float = field(default_factory=time.perf_counter)


@dataclass
class Batch:
    """What ``dispatch`` receives: one flushed group of compatible requests."""

    key: "GroupKey"
    requests: "List[PendingRequest]"
    reason: str  # "size" | "deadline" | "close"
    flushed_at: float

    def __len__(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Thread-safe size-or-deadline request coalescer.

    ``dispatch(batch)`` is called outside the internal lock, from the
    submitting thread on size flushes and from the flusher thread on
    deadline flushes.  Exceptions raised by ``dispatch`` are routed to
    the batch's request futures, so a failing dispatch never takes the
    flusher thread down.
    """

    def __init__(
        self,
        dispatch: "Callable[[Batch], None]",
        *,
        max_lanes: int = DEFAULT_MAX_LANES,
        max_delay_s: float = DEFAULT_MAX_DELAY_S,
    ) -> None:
        if max_lanes < 1:
            raise ValueError("max_lanes must be at least 1")
        if max_delay_s <= 0:
            raise ValueError("max_delay_s must be positive")
        self._dispatch = dispatch
        self.max_lanes = max_lanes
        self.max_delay_s = max_delay_s
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._groups: "Dict[GroupKey, List[PendingRequest]]" = {}
        self._deadlines: "Dict[GroupKey, float]" = {}
        self._closed = False
        self._flusher = threading.Thread(
            target=self._run_flusher, name="repro-serve-flusher", daemon=True
        )
        self._flusher.start()

    # -- submission ---------------------------------------------------

    def submit(self, key: "GroupKey", payload: "Dict[str, Any]") -> "Future":
        """Enqueue one request; returns the future its result will land on."""
        request = PendingRequest(payload, Future())
        full: "Optional[Batch]" = None
        with self._wakeup:
            if self._closed:
                raise RuntimeError("the batcher is closed")
            group = self._groups.setdefault(key, [])
            group.append(request)
            registry = _metrics.REGISTRY
            if registry.enabled:
                registry.inc("service.requests")
                registry.gauge("service.queue.depth", self._depth_locked())
            if len(group) >= self.max_lanes:
                full = self._take_locked(key, "size")
            elif len(group) == 1:
                self._deadlines[key] = request.enqueued_at + self.max_delay_s
                self._wakeup.notify()
        if full is not None:
            self._dispatch_batch(full)
        return request.future

    def queue_depth(self) -> int:
        """Requests currently parked across all groups."""
        with self._lock:
            return self._depth_locked()

    def _depth_locked(self) -> int:
        return sum(len(group) for group in self._groups.values())

    # -- flushing -----------------------------------------------------

    def _take_locked(self, key: "GroupKey", reason: str) -> Batch:
        """Detach one group as a :class:`Batch` (caller holds the lock)."""
        requests = self._groups.pop(key)
        self._deadlines.pop(key, None)
        registry = _metrics.REGISTRY
        if registry.enabled:
            registry.inc("service.batches")
            registry.inc(f"service.flush.{reason}")
            registry.observe("service.batch_fill", len(requests))
            registry.gauge("service.queue.depth", self._depth_locked())
        return Batch(key, requests, reason, time.perf_counter())

    def _dispatch_batch(self, batch: Batch) -> None:
        oldest = min(request.enqueued_at for request in batch.requests)
        _trace.record_span(
            "serve.flush",
            oldest,
            batch.flushed_at - oldest,
            op=batch.key[0],
            curve=batch.key[1],
            lanes=len(batch),
            reason=batch.reason,
        )
        try:
            self._dispatch(batch)
        except Exception as error:  # route, don't kill the flusher
            for request in batch.requests:
                if not request.future.done():
                    request.future.set_exception(error)

    def _run_flusher(self) -> None:
        while True:
            due: "List[Batch]" = []
            with self._wakeup:
                if self._closed and not self._groups:
                    return
                now = time.perf_counter()
                for key in list(self._deadlines):
                    if self._closed or self._deadlines[key] <= now:
                        due.append(self._take_locked(key, "close" if self._closed else "deadline"))
                if not due:
                    next_deadline = min(self._deadlines.values(), default=None)
                    timeout = None if next_deadline is None else max(next_deadline - now, 0.0)
                    self._wakeup.wait(timeout)
                    continue
            for batch in due:
                self._dispatch_batch(batch)

    # -- lifecycle ----------------------------------------------------

    def flush_now(self) -> None:
        """Flush every pending group immediately (reason ``deadline``).

        Test/shutdown helper: moves the deadlines into the past and wakes
        the flusher, so the flush still happens on the flusher thread.
        """
        with self._wakeup:
            for key in self._deadlines:
                self._deadlines[key] = 0.0
            self._wakeup.notify()

    def close(self) -> None:
        """Flush leftovers (reason ``close``) and stop the flusher thread."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify()
        self._flusher.join()
