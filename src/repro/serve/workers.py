"""Worker pool: execute leased batches on warmed backends, across cores.

Two consumers share this module:

* the serving layer: a :class:`WorkerPool` executes each flushed
  :class:`~repro.serve.batcher.Batch` through the batched protocol entry
  points (:func:`~repro.curves.protocols.ecdh_batch`, generator
  ``multiply_batch`` for keygen, :func:`~repro.curves.protocols
  .sign_batch`) on a worker that resolved its backend **once** and warmed
  every compiled cache at startup — the first request never pays compile
  latency;
* ``repro ecdh --jobs``: :func:`ecdh_sharded` splits one large agreement
  batch across the same kind of pool.

Both are **start-method-agnostic**: the pool always builds an explicit
``multiprocessing.get_context`` (:func:`preferred_start_method` — ``fork``
when the platform has it, so children inherit the parent's warm caches
for free; ``spawn`` otherwise, where the per-worker initializer re-warms)
and every worker entry point is a module-level function fed only
picklable data (names and integers, never backend instances).

Telemetry crosses the process boundary the PR 8 way: each worker task
runs against a fresh local :class:`~repro.telemetry.metrics
.MetricsRegistry` (a forked child's copy of the parent registry must not
be double-reported) and ships its snapshot back with the results; the
parent folds every snapshot into the process registry, so parallel
aggregates match serial runs exactly.

``workers=0`` selects the **inline** mode: batches execute on a single
worker *thread* in the server process.  On one-core machines this beats a
process pool (no pickling, no IPC — and the native backend's cffi calls
release the GIL, so the event loop keeps parsing the next wave while the
C kernel runs); it is also what the tests use.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import TYPE_CHECKING

from ..curves import curve_by_name, ecdh_batch, ecdsa_sign, sign_batch
from ..curves.protocols import ecdh_shared
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict, List, Optional, Sequence, Tuple

    from ..backends.base import FieldBackend
    from ..curves.point import BinaryCurve, Point
    from .batcher import GroupKey

__all__ = [
    "OP_FIELDS",
    "preferred_start_method",
    "pool_context",
    "warm_curve",
    "execute_group",
    "WorkerPool",
    "ecdh_sharded",
]

#: Request payload fields per operation, in columnar order.  The server
#: validates these on ingress; the pool ships them as parallel lists.
OP_FIELDS: "Dict[str, Tuple[str, ...]]" = {
    "ecdh": ("private", "peer_x", "peer_y"),
    "keygen": ("private",),
    "sign": ("private", "digest"),
}


def preferred_start_method(explicit: "Optional[str]" = None) -> str:
    """The multiprocessing start method the pools use.

    ``fork`` when the platform offers it — children inherit every warm
    cache (compiled circuits, comb tables, plane lowerings) for free —
    and ``spawn`` otherwise, where the worker initializer re-warms.  An
    ``explicit`` method is validated against the platform rather than
    passed through blindly.
    """
    methods = multiprocessing.get_all_start_methods()
    if explicit is not None:
        if explicit not in methods:
            raise ValueError(
                f"start method {explicit!r} is not available on this platform; "
                f"choose from: {', '.join(methods)}"
            )
        return explicit
    return "fork" if "fork" in methods else "spawn"


def pool_context(start_method: "Optional[str]" = None):
    """An explicit multiprocessing context (never the mutable global one)."""
    return multiprocessing.get_context(preferred_start_method(start_method))


def warm_curve(curve: "BinaryCurve", backend: "Optional[str]" = None) -> "FieldBackend":
    """Resolve one backend for ``curve`` and pre-pay every compile cost.

    Runs tiny batches through each route a service request can take —
    the binary ladder, the τ-adic ladder on Koblitz curves, and the
    fixed-base auto route (which builds or loads the comb table) — so the
    compiled formulas, plane/word lowerings and comb tables are all hot
    before the first real request arrives.
    """
    from ..curves import scalarmul

    resolved = curve.field.resolve_backend(backend)
    generator = curve.generator
    bases = [generator, generator]
    scalars = [2, 3]
    curve.multiply_batch(
        bases, scalars, backend=resolved, scalar_rep="binary", fixed_base=False
    )
    if scalarmul.is_koblitz(curve):
        curve.multiply_batch(
            bases, scalars, backend=resolved, scalar_rep="tau", fixed_base=False
        )
    # fixed_base auto: rides (and therefore builds/loads) the comb table
    # when the curve supports one; toy curves quietly keep the ladder.
    curve.multiply_batch(bases, scalars, backend=resolved)
    return resolved


# -- batch execution (runs inside workers) ----------------------------


def execute_group(
    curve: "BinaryCurve",
    backend: "FieldBackend | str | None",
    op: str,
    scalar_rep: str,
    columns: "Dict[str, List[int]]",
) -> "List[Dict[str, Any]]":
    """Execute one compatible group through the batched protocol entry points.

    Returns one result row per request: ``{"x", "y"}`` for ecdh/keygen
    (``None`` coordinates for the point at infinity), ``{"r", "s"}`` for
    sign.  Raises when the *batch* fails — callers wanting per-request
    isolation use :func:`execute_group_isolated`.
    """
    if op == "ecdh":
        peers = [
            curve.point(x, y, check=False)
            for x, y in zip(columns["peer_x"], columns["peer_y"])
        ]
        points = ecdh_batch(
            curve, columns["private"], peers, backend=backend, scalar_rep=scalar_rep
        )
        return [{"x": point.x, "y": point.y} for point in points]
    if op == "keygen":
        privates = columns["private"]
        points = curve.multiply_batch(
            [curve.generator] * len(privates),
            privates,
            backend=backend,
            scalar_rep=scalar_rep,
        )
        return [{"x": point.x, "y": point.y} for point in points]
    if op == "sign":
        signatures = sign_batch(
            curve,
            columns["private"],
            columns["digest"],
            backend=backend,
            scalar_rep=scalar_rep,
        )
        return [{"r": signature.r, "s": signature.s} for signature in signatures]
    raise ValueError(f"unknown op {op!r}; known: {', '.join(OP_FIELDS)}")


def execute_group_isolated(
    curve: "BinaryCurve",
    backend: "FieldBackend | str | None",
    op: str,
    scalar_rep: str,
    columns: "Dict[str, List[int]]",
) -> "List[Dict[str, Any]]":
    """Like :func:`execute_group`, but one bad request cannot poison its batch.

    The batched entry points validate collectively (an off-curve peer
    fails the whole compiled on-curve check), so on batch failure every
    request is retried individually on the scalar reference path and only
    the offenders come back as ``{"error": ...}`` rows.
    """
    try:
        return execute_group(curve, backend, op, scalar_rep, columns)
    except Exception:
        registry = _metrics.REGISTRY
        if registry.enabled:
            registry.inc("service.batch_fallback")
        rows: "List[Dict[str, Any]]" = []
        count = len(columns["private"])
        for index in range(count):
            try:
                if op == "ecdh":
                    peer = curve.point(
                        columns["peer_x"][index], columns["peer_y"][index], check=False
                    )
                    point = ecdh_shared(curve, columns["private"][index], peer)
                    rows.append({"x": point.x, "y": point.y})
                elif op == "keygen":
                    point = curve.multiply(
                        curve.generator, columns["private"][index], scalar_rep=scalar_rep
                    )
                    rows.append({"x": point.x, "y": point.y})
                else:
                    signature = ecdsa_sign(
                        curve, columns["private"][index], columns["digest"][index]
                    )
                    rows.append({"r": signature.r, "s": signature.s})
            except Exception as error:
                rows.append({"error": str(error)})
        return rows


#: Per-worker-process state installed by :func:`_worker_init`.
_WORKER_CURVES: "Dict[str, Tuple[BinaryCurve, FieldBackend]]" = {}
_WORKER_BACKEND: "List[Optional[str]]" = [None]


def _worker_init(backend_name: "Optional[str]", curve_names: "Tuple[str, ...]") -> None:
    """Process-pool initializer: resolve and warm every served curve once."""
    # A terminal Ctrl-C is delivered to the whole foreground process
    # group; shutdown is the parent's job, so workers must not die (or
    # spray tracebacks) on the shared SIGINT.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _WORKER_BACKEND[0] = backend_name
    for name in curve_names:
        curve = curve_by_name(name)
        _WORKER_CURVES[name] = (curve, warm_curve(curve, backend_name))


def _worker_probe(delay_s: float) -> int:
    """Startup barrier task: holds a worker busy so every worker spawns."""
    time.sleep(delay_s)
    return os.getpid()


def _worker_execute(task: "Tuple[str, str, str, Dict[str, List[int]]]"):
    """One leased batch, executed against a local metrics registry.

    Returns ``(rows, snapshot)``; the parent folds the snapshot so the
    registry aggregates match a serial run (a forked child's inherited
    registry contents must never be re-reported).
    """
    op, curve_name, scalar_rep, columns = task
    state = _WORKER_CURVES.get(curve_name)
    if state is None:  # cold path: a curve the initializer was not told about
        curve = curve_by_name(curve_name)
        state = (curve, curve.field.resolve_backend(_WORKER_BACKEND[0]))
        _WORKER_CURVES[curve_name] = state
    curve, backend = state
    if not _metrics.REGISTRY.enabled:
        return execute_group_isolated(curve, backend, op, scalar_rep, columns), None
    local = _metrics.MetricsRegistry()
    previous = _metrics.set_registry(local)
    try:
        rows = execute_group_isolated(curve, backend, op, scalar_rep, columns)
    finally:
        _metrics.set_registry(previous)
    return rows, local.snapshot()


class WorkerPool:
    """Executes compatible request groups on warmed workers.

    ``workers >= 1`` builds a :class:`ProcessPoolExecutor` over an
    explicit start-method context whose initializer warms every listed
    curve, then runs a startup barrier so no worker (and therefore no
    request) pays compile latency later.  ``workers=0`` executes inline
    on one worker thread in this process (best on single-core machines;
    used by the tests).  ``backend`` is a registry *name* (or ``None``
    for the per-field default) — instances do not cross process
    boundaries.
    """

    def __init__(
        self,
        *,
        workers: "Optional[int]" = None,
        backend: "Optional[str]" = None,
        curves: "Sequence[str]" = (),
        start_method: "Optional[str]" = None,
    ) -> None:
        if backend is not None and not isinstance(backend, str):
            raise TypeError("WorkerPool takes a backend *name*; instances cannot cross processes")
        self.backend_name = backend
        self.workers = (os.cpu_count() or 1) if workers is None else workers
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        self.curve_names = tuple(curves)
        self._lock = threading.Lock()
        if self.workers == 0:
            self._inline_curves: "Dict[str, Tuple[BinaryCurve, FieldBackend]]" = {}
            for name in self.curve_names:
                curve = curve_by_name(name)
                self._inline_curves[name] = (curve, warm_curve(curve, backend))
            self._executor: "Any" = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve-worker"
            )
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=pool_context(start_method),
                initializer=_worker_init,
                initargs=(backend, self.curve_names),
            )
            # Startup barrier: one probe per worker forces every process to
            # spawn and run the warming initializer now, not on first lease.
            wait([self._executor.submit(_worker_probe, 0.05) for _ in range(self.workers)])

    # -- leasing ------------------------------------------------------

    def submit(self, key: "GroupKey", columns: "Dict[str, List[int]]") -> "Future":
        """Lease one group to a worker; the future resolves to result rows."""
        op, curve_name, scalar_rep = key
        outer: "Future" = Future()
        submitted_at = time.perf_counter()
        lanes = len(columns["private"])
        if self.workers == 0:
            inner = self._executor.submit(self._execute_inline, key, columns)
        else:
            inner = self._executor.submit(
                _worker_execute, (op, curve_name, scalar_rep, columns)
            )

        def _complete(done: "Future") -> None:
            elapsed = time.perf_counter() - submitted_at
            _trace.record_span(
                "serve.execute", submitted_at, elapsed, op=op, curve=curve_name, lanes=lanes
            )
            registry = _metrics.REGISTRY
            if registry.enabled:
                registry.observe("service.execute", elapsed)
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
                return
            rows, snapshot = done.result()
            if snapshot is not None and registry.enabled:
                registry.merge(snapshot)
            outer.set_result(rows)

        inner.add_done_callback(_complete)
        return outer

    def _execute_inline(self, key: "GroupKey", columns: "Dict[str, List[int]]"):
        """Inline-mode task: same-process execution, no snapshot to fold."""
        op, curve_name, scalar_rep = key
        with self._lock:
            state = self._inline_curves.get(curve_name)
            if state is None:
                curve = curve_by_name(curve_name)
                state = (curve, curve.field.resolve_backend(self.backend_name))
                self._inline_curves[curve_name] = state
        curve, backend = state
        return execute_group_isolated(curve, backend, op, scalar_rep, columns), None

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def describe(self) -> str:
        mode = "inline thread" if self.workers == 0 else f"{self.workers} process(es)"
        backend = self.backend_name or "default"
        return f"worker pool: {mode}, backend {backend}, curves {', '.join(self.curve_names) or '-'}"


# -- CLI sharding (repro ecdh --jobs) ---------------------------------


def _ecdh_shard(payload) -> tuple:
    """One shard of a large agreement batch (module-level: spawn-safe).

    Takes plain picklable data (curve name, backend name, ladder path,
    scalars, peer coordinates) and returns coordinate tuples so shards
    compose deterministically.  Runs against a fresh local metrics
    registry and ships its snapshot back with the coordinates.
    """
    curve_name, backend, plane_resident, scalar_rep, privates, peer_coords = payload
    curve = curve_by_name(curve_name)
    peers = [curve.point(x, y, check=False) for x, y in peer_coords]
    snapshot = None
    if _metrics.REGISTRY.enabled:
        local = _metrics.MetricsRegistry()
        previous = _metrics.set_registry(local)
        try:
            points = ecdh_batch(
                curve, privates, peers, backend=backend,
                plane_resident=plane_resident, scalar_rep=scalar_rep,
            )
        finally:
            _metrics.set_registry(previous)
        snapshot = local.snapshot()
    else:
        points = ecdh_batch(
            curve, privates, peers, backend=backend,
            plane_resident=plane_resident, scalar_rep=scalar_rep,
        )
    return [(point.x, point.y) for point in points], snapshot


def ecdh_sharded(
    curve: "BinaryCurve",
    privates: "Sequence[int]",
    peers: "Sequence[Point]",
    jobs: int,
    *,
    backend: "Optional[str]" = None,
    plane_resident: "Optional[bool]" = None,
    scalar_rep: str = "auto",
    start_method: "Optional[str]" = None,
) -> "List[Point]":
    """A batch of shared points, sharded across ``jobs`` worker processes.

    Start-method-agnostic: under ``fork`` the children inherit the warm
    caches, under ``spawn`` each shard pays its own warm-up (the shard
    *is* the work, so there is nothing separate to pre-warm).  Results
    are byte-identical to the unsharded :func:`~repro.curves.protocols
    .ecdh_batch` in every mode, and shard telemetry snapshots fold back
    into the parent registry.  ``backend`` must be a registry name (or
    ``None``): instances cannot cross process boundaries.
    """
    if backend is not None and not isinstance(backend, str):
        raise TypeError("ecdh_sharded takes a backend *name*; instances cannot cross processes")
    if jobs <= 1 or len(privates) < 2:
        return ecdh_batch(
            curve, privates, peers, backend=backend,
            plane_resident=plane_resident, scalar_rep=scalar_rep,
        )
    jobs = min(jobs, len(privates))
    chunk = (len(privates) + jobs - 1) // jobs
    payloads = [
        (
            curve.name,
            backend,
            plane_resident,
            scalar_rep,
            list(privates[start:start + chunk]),
            [(point.x, point.y) for point in peers[start:start + chunk]],
        )
        for start in range(0, len(privates), chunk)
    ]
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=pool_context(start_method)
    ) as pool:
        shard_results = list(pool.map(_ecdh_shard, payloads))
    registry = _metrics.REGISTRY
    if registry.enabled:
        for _, snapshot in shard_results:
            registry.merge(snapshot)
    return [curve.point(x, y, check=False) for coords, _ in shard_results for x, y in coords]
