"""Closed-loop load generator: many small clients, every response verified.

This is the demand side of the serving story: ``clients`` concurrent
keep-alive connections each issue ``requests_per_client`` single-request
POSTs back-to-back (closed loop — a client sends its next request the
moment the previous response lands), which is exactly the traffic shape
the :class:`~repro.serve.batcher.DynamicBatcher` exists to coalesce.

Requests are generated **deterministically** from a seed, so every
response can be verified:

* all responses are checked byte-for-byte against a locally *batched*
  computation of the same workload (``ecdh_batch`` / ``multiply_batch``
  / ``sign_batch``), and
* the first ``spot_checks`` requests are additionally recomputed on the
  scalar reference path (``ecdh_shared`` / ``curve.multiply`` /
  ``ecdsa_sign``) — the slow, independent implementation — closing the
  loop on the repo-wide batched == scalar byte-identity guarantee.

Used by ``repro loadgen``, ``benchmarks/bench_serve.py`` and the CI
service smoke test.  Stdlib only.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..curves import curve_by_name, ecdh_batch, ecdsa_sign, keygen_batch, sign_batch
from ..curves.protocols import ecdh_shared

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict, List, Optional, Tuple

    from ..curves.point import BinaryCurve

__all__ = ["LoadResult", "build_workload", "run_load", "generate_load", "http_get"]


# -- minimal HTTP/1.1 client plumbing ---------------------------------


async def _read_response(reader: "asyncio.StreamReader") -> "Tuple[int, Dict[str, Any]]":
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    try:
        status = int(status_line.split()[1])
    except (IndexError, ValueError):
        raise ConnectionError(f"malformed status line: {status_line!r}") from None
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, json.loads(body or "{}")


async def _post(reader, writer, path: str, payload: "Dict[str, Any]"):
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\nHost: loadgen\r\n"
        f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n"
        f"Connection: keep-alive\r\n\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()
    return await _read_response(reader)


async def http_get(host: str, port: int, path: str) -> "Tuple[int, Dict[str, Any]]":
    """One-shot GET (``/healthz``, ``/stats``) against a running service."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: loadgen\r\nConnection: close\r\n\r\n".encode("latin-1")
        )
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def _connect_with_retry(host: str, port: int, timeout_s: float):
    """Open a connection, retrying while the server is still coming up."""
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            return await asyncio.open_connection(host, port)
        except OSError:
            if time.monotonic() >= deadline:
                raise
            await asyncio.sleep(0.05)


# -- deterministic workloads ------------------------------------------


def build_workload(
    curve: "BinaryCurve",
    op: str,
    total: int,
    *,
    seed: int = 0,
    scalar_rep: str = "auto",
) -> "Tuple[List[Dict[str, Any]], List[Dict[str, int]]]":
    """``(request bodies, expected result rows)`` for ``total`` requests.

    The expected rows come from the local *batched* protocol entry
    points; :func:`run_load` separately spot-checks a prefix on the
    scalar reference path.
    """
    rng = random.Random(seed)
    bound = curve.order if curve.order is not None else curve.field.order
    privates = [rng.randrange(1, bound) for _ in range(total)]
    base = {"curve": curve.name, "scalar_rep": scalar_rep}
    if op == "ecdh":
        peers = [pair.public for pair in keygen_batch(curve, total, seed=seed + 1)]
        requests = [
            dict(base, private=format(private, "x"),
                 peer_x=format(peer.x, "x"), peer_y=format(peer.y, "x"))
            for private, peer in zip(privates, peers)
        ]
        points = ecdh_batch(curve, privates, peers, scalar_rep=scalar_rep)
        expected = [{"x": point.x, "y": point.y} for point in points]
    elif op == "keygen":
        requests = [dict(base, private=format(private, "x")) for private in privates]
        points = curve.multiply_batch(
            [curve.generator] * total, privates, scalar_rep=scalar_rep
        )
        expected = [{"x": point.x, "y": point.y} for point in points]
    elif op == "sign":
        digests = [rng.getrandbits(256) for _ in range(total)]
        requests = [
            dict(base, private=format(private, "x"), digest=format(digest, "x"))
            for private, digest in zip(privates, digests)
        ]
        signatures = sign_batch(curve, privates, digests, scalar_rep=scalar_rep)
        expected = [{"r": signature.r, "s": signature.s} for signature in signatures]
    else:
        raise ValueError(f"unknown op {op!r}: use ecdh, keygen or sign")
    return requests, expected


def _spot_check(
    curve: "BinaryCurve", op: str, total: int, count: int, *, seed: int,
) -> "List[Dict[str, int]]":
    """Scalar-reference results for the first ``count`` requests."""
    rng = random.Random(seed)
    bound = curve.order if curve.order is not None else curve.field.order
    privates = [rng.randrange(1, bound) for _ in range(total)]
    rows: "List[Dict[str, int]]" = []
    if op == "ecdh":
        peers = [pair.public for pair in keygen_batch(curve, total, seed=seed + 1)]
        for private, peer in zip(privates[:count], peers[:count]):
            point = ecdh_shared(curve, private, peer)
            rows.append({"x": point.x, "y": point.y})
    elif op == "keygen":
        for private in privates[:count]:
            point = curve.multiply(curve.generator, private)
            rows.append({"x": point.x, "y": point.y})
    else:
        digests = [rng.getrandbits(256) for _ in range(total)]
        for private, digest in zip(privates[:count], digests[:count]):
            signature = ecdsa_sign(curve, private, digest)
            rows.append({"r": signature.r, "s": signature.s})
    return rows


# -- the load run -----------------------------------------------------


@dataclass
class LoadResult:
    """What one load run measured (latencies in seconds)."""

    op: str
    curve: str
    clients: int
    requests_per_client: int
    completed: int
    verified: int
    spot_checked: int
    elapsed_s: float
    latencies_s: "List[float]" = field(default_factory=list, repr=False)
    errors: "List[str]" = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.clients * self.requests_per_client

    @property
    def throughput(self) -> float:
        """Completed requests per second of wall-clock."""
        return self.completed / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_quantiles(self) -> "Dict[str, float]":
        """Exact p50/p95/p99 from the recorded per-request latencies."""
        if not self.latencies_s:
            return {}
        ordered = sorted(self.latencies_s)
        last = len(ordered) - 1
        return {
            f"p{round(q * 100)}": ordered[min(last, int(q * len(ordered)))]
            for q in (0.5, 0.95, 0.99)
        }

    def to_dict(self) -> "Dict[str, Any]":
        out = {
            "op": self.op, "curve": self.curve,
            "clients": self.clients, "requests_per_client": self.requests_per_client,
            "completed": self.completed, "verified": self.verified,
            "spot_checked": self.spot_checked,
            "elapsed_s": self.elapsed_s, "requests_per_s": self.throughput,
            "errors": len(self.errors),
        }
        for name, value in self.latency_quantiles().items():
            out[f"latency_{name}_s"] = value
        return out


async def run_load(
    host: str,
    port: int,
    *,
    op: str = "ecdh",
    curve: str = "B-163",
    clients: int = 64,
    requests_per_client: int = 4,
    seed: int = 0,
    scalar_rep: str = "auto",
    spot_checks: int = 4,
    connect_timeout_s: float = 30.0,
    verify: bool = True,
) -> LoadResult:
    """Drive a running service with ``clients`` concurrent closed loops.

    Request ``i`` (client ``c``, round ``r``, ``i = c * rounds + r``) is
    generated from ``seed``; with ``verify`` every response is compared
    to the locally batched expectation and the first ``spot_checks``
    responses additionally to the scalar reference.  Mismatches and
    non-200s land in :attr:`LoadResult.errors`.
    """
    curve_obj = curve_by_name(curve)
    total = clients * requests_per_client
    requests, expected = build_workload(
        curve_obj, op, total, seed=seed, scalar_rep=scalar_rep
    )
    if verify and spot_checks:
        reference = _spot_check(curve_obj, op, total, min(spot_checks, total), seed=seed)
        for index, row in enumerate(reference):
            if row != expected[index]:  # pragma: no cover - would be a repo-wide bug
                raise AssertionError(
                    f"batched and scalar reference disagree at request {index}: "
                    f"{expected[index]} vs {row}"
                )
    latencies = [0.0] * total
    errors: "List[str]" = []
    completed = 0
    verified = 0
    path = f"/{op}"

    async def _client(client_index: int) -> None:
        nonlocal completed, verified
        reader, writer = await _connect_with_retry(host, port, connect_timeout_s)
        try:
            for round_index in range(requests_per_client):
                index = client_index * requests_per_client + round_index
                started = time.perf_counter()
                try:
                    status, payload = await _post(reader, writer, path, requests[index])
                except (ConnectionError, asyncio.IncompleteReadError, OSError) as error:
                    errors.append(f"request {index}: transport error: {error}")
                    reader, writer = await _connect_with_retry(host, port, connect_timeout_s)
                    continue
                latencies[index] = time.perf_counter() - started
                if status != 200:
                    errors.append(f"request {index}: HTTP {status}: {payload.get('error')}")
                    continue
                completed += 1
                if verify:
                    want = expected[index]
                    got = {name: int(payload.get(name) or "0", 16) for name in want}
                    if got == want:
                        verified += 1
                    else:
                        errors.append(
                            f"request {index}: response mismatch: got {got}, want {want}"
                        )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    started = time.perf_counter()
    await asyncio.gather(*(_client(index) for index in range(clients)))
    elapsed = time.perf_counter() - started
    return LoadResult(
        op=op, curve=curve, clients=clients, requests_per_client=requests_per_client,
        completed=completed, verified=verified,
        spot_checked=min(spot_checks, total) if verify else 0,
        elapsed_s=elapsed,
        latencies_s=[value for value in latencies if value > 0.0],
        errors=errors,
    )


def generate_load(host: str, port: int, **kwargs: "Any") -> LoadResult:
    """Synchronous wrapper around :func:`run_load` (the CLI entry point)."""
    return asyncio.run(run_load(host, port, **kwargs))
