"""FieldIR: one straight-line formula compiler for batched GF(2^m) compute.

PR 5 made the Montgomery ladder plane-resident, but every step still issued
~10 separate passes through :class:`~repro.backends.planes.PlaneCompute` —
two lane-stacked multiplies, six squaring programs, XORs and masked selects
— each paying numpy dispatch, scratch traffic and Python call overhead.
This module generalizes the single-linear-map ``PlaneProgram`` idea into a
small straight-line **IR over batched field ops**, so a whole formula (the
entire López-Dahab step, the y-recovery, the curve-equation residual) is
expressed *once* and compiled *once*:

* :class:`IRBuilder` traces a formula into a :class:`FieldIR` — SSA ops
  ``mul`` / ``square`` / ``apply_linear`` / ``xor`` / ``select`` /
  ``const`` over named inputs and per-lane select masks.  Linear maps are
  referenced **by name** so the same traced formula serves every field and
  curve; concrete :class:`~repro.galois.field.GF2LinearMap` s bind later.
* :func:`schedule_program` is the level-scheduling **fusion pass**: it
  collapses fan-out-1 linear chains into composed maps
  (:meth:`GF2LinearMap.compose` — ``square∘square`` becomes one quartic
  map, ``mul_b∘square∘square`` one dense map), hoists constants into a
  prologue, and packs the ops into the fewest alternating passes — every
  :class:`MulPass` lane-stacks all its independent products into **one**
  netlist evaluation, every :class:`LinearPass` merges all its linear/XOR
  work into **one** gather/XOR schedule, every :class:`SelectPass` applies
  one broadcast lane mask to all its register swaps.
* The scheduled :class:`FieldProgram` is backend-neutral.  Two executors
  exist today: :func:`execute_program` interprets the passes over plain
  ``int`` batches through any :class:`~repro.backends.base.FieldBackend`
  (gathering each MulPass into a single ``multiply_batch`` call), and
  plane-capable backends lower it through
  :meth:`~repro.backends.base.FieldBackend.ir_executor` into fused uint64
  plane passes (:class:`~repro.backends.planes.PlaneIRExecutor`).  A new
  substrate (native, GPU) implements one executor, not five ad-hoc plane
  ops.

Scheduled programs are memoized process-wide by their ``key`` (see
:func:`cached_program`), mirroring the multiplier and netlist caches, so
repeated curve or backend constructions never re-schedule a formula.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from ..pipeline.store import LRUCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.field import GF2LinearMap

__all__ = [
    "Var",
    "FieldIR",
    "IRBuilder",
    "MulPass",
    "LinearPass",
    "SelectPass",
    "FieldProgram",
    "schedule_program",
    "cached_program",
    "execute_program",
]

# Op kinds.  input/mask/const feed the program; mul is the only op that
# needs a full product circuit; linear covers square and every fixed-map
# multiplication; xor is field addition; select is the per-lane masked mux.
K_INPUT = "input"
K_MASK = "mask"
K_CONST = "const"
K_MUL = "mul"
K_LINEAR = "linear"
K_XOR = "xor"
K_SELECT = "select"

#: Op kinds a LinearPass can absorb (and chain within one pass).
_LINEAR_KINDS = (K_LINEAR, K_XOR)


class Var:
    """An opaque SSA value handle returned by :class:`IRBuilder` ops.

    Deliberately *not* an int so formula code cannot accidentally mix
    field values, mask values and Python integers.
    """

    __slots__ = ("vid", "ir_id")

    def __init__(self, vid: int, ir_id: int) -> None:
        self.vid = vid
        self.ir_id = ir_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Var({self.vid})"


class FieldIR:
    """A traced straight-line formula: SSA ops over named inputs and masks.

    Immutable once built (:meth:`IRBuilder.build`).  ``ops[vid]`` is a
    tuple ``(kind, *args)`` where args are operand vids, a linear-map name,
    or a constant value; ``inputs`` / ``mask_inputs`` give the declared
    order; ``outputs`` name the result vids.
    """

    def __init__(
        self,
        name: str,
        ops: Sequence[tuple],
        inputs: Sequence[Tuple[str, int]],
        mask_inputs: Sequence[Tuple[str, int]],
        outputs: Sequence[Tuple[str, int]],
    ) -> None:
        self.name = name
        self.ops = tuple(ops)
        self.inputs = tuple(inputs)
        self.mask_inputs = tuple(mask_inputs)
        self.outputs = tuple(outputs)

    @property
    def linear_names(self) -> Tuple[str, ...]:
        """The distinct linear-map names the formula references, in order."""
        seen: List[str] = []
        for op in self.ops:
            if op[0] == K_LINEAR and op[1] not in seen:
                seen.append(op[1])
        return tuple(seen)

    def op_counts(self) -> Dict[str, int]:
        """Ops per kind (inputs/masks excluded) — the raw formula size."""
        counts: Dict[str, int] = {}
        for op in self.ops:
            if op[0] in (K_INPUT, K_MASK):
                continue
            counts[op[0]] = counts.get(op[0], 0) + 1
        return counts

    def describe(self) -> str:
        """One-line structural summary of the traced (unscheduled) formula."""
        counts = self.op_counts()
        body = ", ".join(f"{counts[kind]} {kind}" for kind in sorted(counts))
        return (
            f"FieldIR {self.name}: {len(self.inputs)} inputs, "
            f"{len(self.mask_inputs)} masks -> {len(self.outputs)} outputs; {body}"
        )


class IRBuilder:
    """Traces a formula into a :class:`FieldIR` one SSA op at a time.

    Usage::

        b = IRBuilder("example")
        x, y = b.input("x"), b.input("y")
        bit = b.mask_input("bit")
        b.output("r", b.select(bit, b.mul(x, y), b.square(b.xor(x, y))))
        ir = b.build()

    Linear maps are referenced by *name* (``b.square`` uses the reserved
    name ``"square"``); :func:`schedule_program` binds the names to
    concrete :class:`~repro.galois.field.GF2LinearMap` s, so one trace
    serves every field.
    """

    _next_ir_id = 0

    def __init__(self, name: str) -> None:
        self.name = name
        self._ops: List[tuple] = []
        self._inputs: List[Tuple[str, int]] = []
        self._masks: List[Tuple[str, int]] = []
        self._outputs: List[Tuple[str, int]] = []
        self._built = False
        IRBuilder._next_ir_id += 1
        self._ir_id = IRBuilder._next_ir_id

    # ----------------------------------------------------------------- plumbing
    def _emit(self, op: tuple) -> Var:
        if self._built:
            raise RuntimeError(f"IRBuilder {self.name!r} is already built")
        self._ops.append(op)
        return Var(len(self._ops) - 1, self._ir_id)

    def _vid(self, var: Var, *, mask: bool = False) -> int:
        if not isinstance(var, Var):
            raise TypeError(f"expected a Var from this builder, got {type(var).__name__}")
        if var.ir_id != self._ir_id:
            raise ValueError("a Var from a different IRBuilder cannot be used here")
        kind = self._ops[var.vid][0]
        if mask != (kind == K_MASK):
            expected = "a mask input" if mask else "a field value"
            raise TypeError(f"expected {expected}, got a {kind} op")
        return var.vid

    # ---------------------------------------------------------------------- ops
    def input(self, name: str) -> Var:
        """Declare a named batch input (one field element per lane)."""
        if any(existing == name for existing, _ in self._inputs):
            raise ValueError(f"duplicate input name {name!r}")
        var = self._emit((K_INPUT, name))
        self._inputs.append((name, var.vid))
        return var

    def mask_input(self, name: str) -> Var:
        """Declare a named per-lane select-control input (one bit per lane)."""
        if any(existing == name for existing, _ in self._masks):
            raise ValueError(f"duplicate mask name {name!r}")
        var = self._emit((K_MASK, name))
        self._masks.append((name, var.vid))
        return var

    def const(self, value: int) -> Var:
        """A constant field element broadcast to every live lane."""
        if value < 0:
            raise ValueError("field constants are non-negative integers")
        return self._emit((K_CONST, value))

    def mul(self, a: Var, b: Var) -> Var:
        """Full field product (the only op that needs a multiplier circuit)."""
        return self._emit((K_MUL, self._vid(a), self._vid(b)))

    def apply_linear(self, map_name: str, x: Var) -> Var:
        """Apply the named GF(2)-linear map (bound at schedule time)."""
        if not map_name:
            raise ValueError("linear maps need a non-empty name")
        return self._emit((K_LINEAR, map_name, self._vid(x)))

    def square(self, x: Var) -> Var:
        """Field squaring — sugar for ``apply_linear("square", x)``."""
        return self.apply_linear("square", x)

    def xor(self, first: Var, *rest: Var) -> Var:
        """Field addition; ``xor(a, b, c, ...)`` folds left."""
        result = first
        for other in rest:
            result = self._emit((K_XOR, self._vid(result), self._vid(other)))
        if not rest:
            raise TypeError("xor needs at least two operands")
        return result

    def select(self, mask: Var, when_set: Var, when_clear: Var) -> Var:
        """Per-lane mux: ``when_set`` where the mask bit is 1, else ``when_clear``."""
        return self._emit(
            (K_SELECT, self._vid(mask, mask=True), self._vid(when_set), self._vid(when_clear))
        )

    def output(self, name: str, var: Var) -> None:
        """Name a result of the formula."""
        if any(existing == name for existing, _ in self._outputs):
            raise ValueError(f"duplicate output name {name!r}")
        self._outputs.append((name, self._vid(var)))

    def build(self) -> FieldIR:
        """Freeze the trace into a :class:`FieldIR` (at least one output)."""
        if not self._outputs:
            raise ValueError(f"formula {self.name!r} declares no outputs")
        self._built = True
        return FieldIR(self.name, self._ops, self._inputs, self._masks, self._outputs)


# --------------------------------------------------------------------- passes
class MulPass:
    """One lane-stackable batch of independent full products.

    The plane executor evaluates all pairs with a single netlist pass over
    the lane-concatenated operand planes; the batch interpreter gathers
    them into a single ``multiply_batch`` call.
    """

    kind = K_MUL
    __slots__ = ("pairs",)

    def __init__(self) -> None:
        self.pairs: List[Tuple[int, int, int]] = []  # (a_vid, b_vid, out_vid)


class LinearPass:
    """All linear/XOR work between two barrier passes, fused into one stage.

    ``ops`` keep the (chain-collapsed) op list for the batch interpreter;
    the plane executor instead calls :meth:`fused_masks` once to merge the
    whole stage into a single multi-input multi-output gather/XOR program.
    ``inputs`` are the external registers the stage reads, ``outputs`` the
    values consumed outside the stage — intra-stage temporaries never
    materialize on the plane path.
    """

    kind = K_LINEAR
    __slots__ = ("ops", "inputs", "outputs")

    def __init__(self) -> None:
        # (out_vid, K_XOR, a_vid, b_vid) or (out_vid, K_LINEAR, map_obj, x_vid)
        self.ops: List[tuple] = []
        self.inputs: List[int] = []
        self.outputs: List[int] = []

    def fused_masks(self, m: int) -> List[int]:
        """The whole stage as basis-image masks over the stacked input space.

        Input bit ``p*m + j`` is coordinate ``j`` of ``inputs[p]``; output
        bit ``q*m + j`` is coordinate ``j`` of ``outputs[q]``.  Computed by
        symbolic GF(2) propagation through the op list, so chains of maps
        and XORs collapse into one level-scheduled gather/XOR program
        (:class:`~repro.backends.planes.PlaneProgram` consumes exactly this
        mask form).
        """
        # rep[vid][j] = XOR-set of stacked input bits equal to coordinate j.
        rep: Dict[int, List[int]] = {}
        for position, vid in enumerate(self.inputs):
            base = position * m
            rep[vid] = [1 << (base + j) for j in range(m)]
        for op in self.ops:
            if op[1] == K_XOR:
                _, _, a, b = op
                rep[op[0]] = [x ^ y for x, y in zip(rep[a], rep[b])]
            else:
                _, _, linear_map, x = op
                source = rep[x]
                out = [0] * m
                for i, image in enumerate(linear_map.masks):
                    if not image:
                        continue
                    source_i = source[i]
                    while image:
                        low = image & -image
                        out[low.bit_length() - 1] ^= source_i
                        image ^= low
                rep[op[0]] = out
        masks = [0] * (len(self.inputs) * m)
        for position, vid in enumerate(self.outputs):
            base = position * m
            for j, bits in enumerate(rep[vid]):
                target = 1 << (base + j)
                while bits:
                    low = bits & -bits
                    masks[low.bit_length() - 1] |= target
                    bits ^= low
        return masks


class SelectPass:
    """All register swaps driven by broadcast lane masks at one level."""

    kind = K_SELECT
    __slots__ = ("triples",)

    def __init__(self) -> None:
        # (mask_name, set_vid, clear_vid, out_vid)
        self.triples: List[Tuple[str, int, int, int]] = []


class FieldProgram:
    """A :class:`FieldIR` scheduled into fused passes and bound to maps.

    Produced by :func:`schedule_program`; consumed by the batch interpreter
    (:func:`execute_program`) and by plane executors
    (:meth:`~repro.backends.base.FieldBackend.ir_executor`).  ``key`` is
    the process-wide memoization identity (curve/field fingerprint chosen
    by the caller); executors additionally key their lowerings by it.
    """

    def __init__(
        self,
        ir: FieldIR,
        m: int,
        passes: Sequence[object],
        consts: Sequence[Tuple[int, int]],
        key: Optional[tuple],
    ) -> None:
        self.ir = ir
        self.m = m
        self.passes = tuple(passes)
        self.consts = tuple(consts)  # (vid, value) prologue registers
        self.key = key
        self.op_count = len(ir.ops)

    # ------------------------------------------------------------ introspection
    def pass_counts(self) -> Dict[str, int]:
        """Fused passes per kind — the dispatch-level cost of one execution."""
        counts: Dict[str, int] = {}
        for item in self.passes:
            counts[item.kind] = counts.get(item.kind, 0) + 1
        return counts

    def mul_pass_widths(self) -> List[int]:
        """Lane-stacked products per MulPass, in schedule order."""
        return [len(item.pairs) for item in self.passes if item.kind == K_MUL]

    def describe(self) -> str:
        """Structural summary: op counts, fused-pass schedule, stage shapes.

        This replaces the ad-hoc ``PlaneProgram.describe`` /
        ``PlaneCompute.describe`` strings as the introspection surface the
        CLI exposes (``repro bench --backend bitslice --describe``).
        """
        counts = self.ir.op_counts()
        ops = ", ".join(f"{counts[kind]} {kind}" for kind in sorted(counts))
        stages = []
        for item in self.passes:
            if item.kind == K_MUL:
                stages.append(f"mul x{len(item.pairs)}")
            elif item.kind == K_LINEAR:
                stages.append(f"linear {len(item.inputs)}->{len(item.outputs)}")
            else:
                stages.append(f"select x{len(item.triples)}")
        return (
            f"FieldIR program {self.ir.name} (m={self.m}): {ops}; "
            f"{len(self.passes)} fused passes [{', '.join(stages)}]"
        )


def schedule_program(
    ir: FieldIR,
    m: int,
    linear_maps: Mapping[str, "GF2LinearMap"],
    *,
    key: Optional[tuple] = None,
) -> FieldProgram:
    """The level-scheduling fusion pass: trace -> :class:`FieldProgram`.

    Three rewrites happen here, all exact (GF(2^m) arithmetic has no
    rounding, so any correct schedule is byte-identical to the trace):

    1. **chain collapsing** — a linear op whose only consumer-feeding
       operand is another fan-out-1 linear op composes into a single
       :class:`~repro.galois.field.GF2LinearMap`
       (``square∘square``, ``mul_b∘square∘square``), halving both table
       applications on the interpreter path and symbolic work on the plane
       path;
    2. **const hoisting** — ``const`` ops become prologue registers,
       materialized once per execution;
    3. **ASAP pass packing** — each remaining op joins the earliest
       compatible pass that all its operands strictly precede (linear ops
       may *chain within* one LinearPass; mul and select are barriers), so
       independent multiplies lane-stack and all inter-multiply linear
       work fuses into one stage.
    """
    for name in ir.linear_names:
        if name not in linear_maps:
            raise KeyError(f"formula {ir.name!r} needs a linear map named {name!r}")
        if linear_maps[name].input_bits != m:
            raise ValueError(
                f"linear map {name!r} acts on {linear_maps[name].input_bits} bits, "
                f"but the program is scheduled for m={m}"
            )

    ops = list(ir.ops)
    fanout = [0] * len(ops)
    for op in ops:
        if op[0] in (K_MUL, K_XOR):
            fanout[op[1]] += 1
            fanout[op[2]] += 1
        elif op[0] == K_LINEAR:
            fanout[op[2]] += 1
        elif op[0] == K_SELECT:
            fanout[op[2]] += 1
            fanout[op[3]] += 1
    for _, vid in ir.outputs:
        fanout[vid] += 1

    # Chain collapsing: resolve every linear op to (map_obj, source_vid),
    # composing through fan-out-1 linear predecessors.  A predecessor that
    # gets composed through is dead afterwards — its single consumer reads
    # the composed map directly — so it drops out of the schedule entirely.
    resolved: Dict[int, Tuple["GF2LinearMap", int]] = {}
    collapsed: set = set()
    for vid, op in enumerate(ops):
        if op[0] != K_LINEAR:
            continue
        outer = linear_maps[op[1]]
        source = op[2]
        while ops[source][0] == K_LINEAR and fanout[source] == 1:
            inner_map, inner_source = resolved[source]
            outer = outer.compose(inner_map)
            collapsed.add(source)
            source = inner_source
        resolved[vid] = (outer, source)

    mask_name = {vid: name for name, vid in ir.mask_inputs}
    consts = [(vid, op[1]) for vid, op in enumerate(ops) if op[0] == K_CONST]

    passes: List[object] = []
    position: Dict[int, int] = {}  # producing pass index; inputs/consts = -1
    for _, vid in ir.inputs:
        position[vid] = -1
    for vid, _ in consts:
        position[vid] = -1

    def earliest_for(deps: Sequence[int], chainable: Sequence[int] = ()) -> int:
        earliest = 0
        for dep in deps:
            earliest = max(earliest, position[dep] + 1)
        for dep in chainable:
            earliest = max(earliest, position[dep])
        return earliest

    def place(kind: str, earliest: int):
        for index in range(earliest, len(passes)):
            if passes[index].kind == kind:
                return index, passes[index]
        if kind == K_MUL:
            passes.append(MulPass())
        elif kind == K_LINEAR:
            passes.append(LinearPass())
        else:
            passes.append(SelectPass())
        return len(passes) - 1, passes[-1]

    for vid, op in enumerate(ops):
        kind = op[0]
        if kind in (K_INPUT, K_MASK, K_CONST) or vid in collapsed:
            continue
        if kind == K_MUL:
            index, target = place(K_MUL, earliest_for(op[1:3]))
            target.pairs.append((op[1], op[2], vid))
        elif kind == K_SELECT:
            index, target = place(K_SELECT, earliest_for(op[2:4]))
            target.triples.append((mask_name[op[1]], op[2], op[3], vid))
        else:  # linear or xor: may chain onto same-pass linear producers
            if kind == K_LINEAR:
                linear_map, source = resolved[vid]
                deps = [source]
            else:
                deps = [op[1], op[2]]
            hard, soft = [], []
            for dep in deps:
                producer = passes[position[dep]] if position[dep] >= 0 else None
                (soft if isinstance(producer, LinearPass) else hard).append(dep)
            index, target = place(K_LINEAR, earliest_for(hard, soft))
            if kind == K_LINEAR:
                target.ops.append((vid, K_LINEAR, linear_map, source))
            else:
                target.ops.append((vid, K_XOR, op[1], op[2]))
        position[vid] = index

    # External reads of each LinearPass: inputs from outside, outputs read
    # outside (or named program outputs).
    output_vids = {vid for _, vid in ir.outputs}
    for index, item in enumerate(passes):
        if not isinstance(item, LinearPass):
            continue
        produced = {op[0] for op in item.ops}
        reads: List[int] = []
        for op in item.ops:
            for dep in (op[2:] if op[1] == K_XOR else (op[3],)):
                if dep not in produced and dep not in reads:
                    reads.append(dep)
        item.inputs = reads
        consumed_later: set = set(output_vids)
        for later in passes[index + 1:]:
            if isinstance(later, MulPass):
                for a, b, _ in later.pairs:
                    consumed_later.update((a, b))
            elif isinstance(later, SelectPass):
                for _, set_vid, clear_vid, _ in later.triples:
                    consumed_later.update((set_vid, clear_vid))
            else:
                for op in later.ops:
                    consumed_later.update(op[2:] if op[1] == K_XOR else (op[3],))
        item.outputs = [vid for vid in produced if vid in consumed_later]
        item.outputs.sort(key=lambda vid: [op[0] for op in item.ops].index(vid))

    return FieldProgram(ir, m, passes, consts, key)


#: Scheduled programs keyed by caller-chosen fingerprints (curve, modulus,
#: constants) — repeated field/curve constructions share one fusion pass.
_PROGRAM_CACHE = LRUCache(maxsize=64, name="ir.programs")


def cached_program(key: tuple, factory) -> FieldProgram:
    """The memoized :class:`FieldProgram` for ``key`` (built by ``factory``).

    The process-wide analogue of :func:`repro.backends.bitslice
    .bitsliced_netlist`: formulas are scheduled once per (formula, field,
    constants) fingerprint and shared by every consumer.
    """
    return _PROGRAM_CACHE.get_or_create(key, factory)


# ---------------------------------------------------------------- interpreter
def execute_program(
    program: FieldProgram,
    backend,
    inputs: Mapping[str, Sequence[int]],
    masks: Optional[Mapping[str, Sequence[int]]] = None,
) -> Dict[str, List[int]]:
    """Run a scheduled program over plain ``int`` batches through a backend.

    The pass schedule is reused as the batching plan: each
    :class:`MulPass` gathers all its products into **one**
    ``backend.multiply_batch`` call (this is what the hand-written per-step
    ladder gather used to do, now derived from the formula), linear ops
    apply their (chain-collapsed) byte-table maps per element, and selects
    pick per lane from the 0/1 mask streams.  Works on *every* registered
    backend — it is the executor of plane-incapable substrates and the
    cross-check twin of the compiled plane path.
    """
    ir = program.ir
    values: List[Optional[List[int]]] = [None] * program.op_count
    lanes: Optional[int] = None
    for name, vid in ir.inputs:
        if name not in inputs:
            raise KeyError(f"program {ir.name!r} needs input {name!r}")
        stream = list(inputs[name])
        if lanes is None:
            lanes = len(stream)
        elif len(stream) != lanes:
            raise ValueError(
                f"input {name!r} has {len(stream)} lanes, expected {lanes}"
            )
        values[vid] = stream
    if lanes is None:
        raise ValueError(f"program {ir.name!r} has no inputs")
    mask_streams: Dict[str, Sequence[int]] = {}
    for name, _ in ir.mask_inputs:
        if masks is None or name not in masks:
            raise KeyError(f"program {ir.name!r} needs mask {name!r}")
        stream = masks[name]
        if len(stream) != lanes:
            raise ValueError(f"mask {name!r} has {len(stream)} lanes, expected {lanes}")
        mask_streams[name] = stream
    for vid, value in program.consts:
        values[vid] = [value] * lanes

    for item in program.passes:
        if item.kind == K_MUL:
            lhs: List[int] = []
            rhs: List[int] = []
            for a, b, _ in item.pairs:
                lhs.extend(values[a])
                rhs.extend(values[b])
            products = backend.multiply_batch(lhs, rhs)
            for index, (_, _, out) in enumerate(item.pairs):
                values[out] = products[index * lanes:(index + 1) * lanes]
        elif item.kind == K_LINEAR:
            for op in item.ops:
                if op[1] == K_XOR:
                    values[op[0]] = [x ^ y for x, y in zip(values[op[2]], values[op[3]])]
                else:
                    linear_map = op[2]
                    values[op[0]] = [linear_map(value) for value in values[op[3]]]
        else:
            for mask_name, set_vid, clear_vid, out in item.triples:
                bits = mask_streams[mask_name]
                values[out] = [
                    s if bit & 1 else c
                    for s, c, bit in zip(values[set_vid], values[clear_vid], bits)
                ]
    return {name: values[vid] for name, vid in ir.outputs}
