"""Backend registry: name → factory, per-field defaults, env override.

Resolution order for a default backend:

1. the ``GF2M_REPRO_BACKEND`` environment variable, when set (must name a
   registered backend — typos fail loudly rather than silently falling
   back);
2. per-field resolution: fields of degree < 2 carry no bit-parallel
   multiplier circuit, so they default to the scalar ``python`` backend;
3. the ``native`` C backend when its cffi extension is importable (or
   buildable — the first probe compiles it into the artifact cache);
4. the compiled ``engine`` backend otherwise (no C compiler, no cffi).

Backend instances are cached per ``(name, modulus, options)`` in a
process-wide LRU, so resolving a backend on a hot path costs a dictionary
hit; the expensive state behind it (generated circuits, compiled
evaluators) is additionally shared through the engine/multiplier caches.

:func:`assert_backend_parity` is the uniform cross-check harness: every
backend must reproduce the scalar reference (``GF2mField.multiply`` /
``square`` / ``inverse``) byte for byte on randomized vectors plus corner
cases.  The CLI (``repro bench --backend X --check``), the benchmark suite
and CI all assert parity through this one function.
"""

from __future__ import annotations

import os
import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from ..pipeline.store import LRUCache
from .base import FieldBackend
from .bitslice import BitsliceBackend
from .engine_backend import EngineBackend
from .native import NativeBackend, native_available
from .python_int import PythonIntBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.field import GF2mField

__all__ = [
    "BACKEND_ENV_VAR",
    "register_backend",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "resolve_backend",
    "assert_backend_parity",
]

#: Environment variable overriding the default backend for the process.
BACKEND_ENV_VAR = "GF2M_REPRO_BACKEND"

#: Registered factories, keyed by backend name (registration order kept).
_FACTORIES: Dict[str, Callable[..., FieldBackend]] = {}

#: Resolved backend instances keyed by (name, modulus, sorted options).
_INSTANCES = LRUCache(maxsize=32, name="backends.instances")


def register_backend(name: str, factory: Callable[..., FieldBackend]) -> None:
    """Register a backend factory under ``name`` (``factory(field, **options)``).

    Re-registering a name replaces the factory — deliberate, so tests and
    extensions can shadow a builtin — but cached instances of the old
    factory are dropped with it.
    """
    _FACTORIES[name] = factory
    _INSTANCES.clear()


register_backend(PythonIntBackend.name, PythonIntBackend)
register_backend(EngineBackend.name, EngineBackend)
register_backend(BitsliceBackend.name, BitsliceBackend)
register_backend(NativeBackend.name, NativeBackend)


def available_backends() -> List[str]:
    """All registered backend names, registration order."""
    return list(_FACTORIES)


def default_backend_name(field: Optional["GF2mField"] = None) -> str:
    """The backend used when a caller does not choose one explicitly."""
    override = os.environ.get(BACKEND_ENV_VAR)
    if override:
        if override not in _FACTORIES:
            raise KeyError(
                f"${BACKEND_ENV_VAR}={override!r} names no registered backend; "
                f"available: {', '.join(_FACTORIES)}"
            )
        return override
    if field is not None and field.m < 2:
        # Bit-parallel multipliers need degree >= 2; only the scalar path works.
        return PythonIntBackend.name
    if native_available():
        # The C word-level tier wins on every batch size once it exists;
        # environments without a compiler fall through to the engine.
        return NativeBackend.name
    return EngineBackend.name


def get_backend(name: Optional[str], field: "GF2mField", **options) -> FieldBackend:
    """The cached backend instance for ``(name, field, options)``.

    ``name=None`` resolves through :func:`default_backend_name`.  Instances
    are shared between fields with equal moduli (fields compare equal by
    modulus, so this is observationally safe).
    """
    if name is None:
        name = default_backend_name(field)
    factory = _FACTORIES.get(name)
    if factory is None:
        raise KeyError(f"unknown backend {name!r}; available: {', '.join(_FACTORIES)}")
    key = (name, field.modulus, tuple(sorted(options.items())))
    return _INSTANCES.get_or_create(key, lambda: factory(field, **options))


def resolve_backend(
    field: "GF2mField",
    backend: Union[FieldBackend, str, None] = None,
    method: Optional[str] = None,
) -> FieldBackend:
    """Resolve a caller-supplied backend spec into an instance for ``field``.

    ``backend`` may be an instance (must belong to an equal field), a
    registered name, or ``None`` for the default.  ``method`` selects the
    multiplier construction of circuit-backed backends; passing it without
    a backend picks the engine, preserving the historical meaning of
    ``GF2mField.multiply_batch(..., method=...)``.  Combining ``method``
    with a backend *instance* is only accepted when the instance already
    uses that construction — an instance fixes its circuit at creation, so
    silently ignoring a different ``method`` would run the wrong one.
    """
    if isinstance(backend, FieldBackend):
        if backend.field != field:
            raise ValueError(
                f"backend {backend.name!r} is bound to {backend.field!r}, not {field!r}"
            )
        if method is not None and getattr(backend, "method", None) != method:
            raise ValueError(
                f"backend instance {backend.name!r} already fixes its construction "
                f"({getattr(backend, 'method', None)!r}); cannot re-select method={method!r} — "
                "resolve a backend by name instead"
            )
        return backend
    if backend is None and method is not None:
        backend = EngineBackend.name
    options = {} if method is None else {"method": method}
    return get_backend(backend, field, **options)


def assert_backend_parity(
    field: "GF2mField",
    backend: Union[FieldBackend, str],
    pairs: int = 256,
    seed: int = 2018,
) -> int:
    """Cross-check a backend against the scalar reference; returns #vectors.

    Randomized operand pairs plus structured corners go through the
    backend's ``multiply_batch``, ``square_batch`` and (on irreducible
    moduli) ``inverse_batch``; every result must equal the reference
    scalar arithmetic byte for byte.  Raises ``AssertionError`` naming the
    first mismatching vector.
    """
    resolved = resolve_backend(field, backend)
    m = field.m
    rng = random.Random(seed)
    top = (1 << m) - 1
    a_values = [0, 1, top, 1 << (m - 1)]
    b_values = [0, top, top, 1 << (m - 1)]
    for _ in range(pairs):
        a_values.append(rng.getrandbits(m))
        b_values.append(rng.getrandbits(m))
    products = resolved.multiply_batch(a_values, b_values)
    for index, (a, b, product) in enumerate(zip(a_values, b_values, products)):
        expected = field.multiply(a, b)
        if product != expected:
            raise AssertionError(
                f"{resolved.name} backend mismatch on GF(2^{m}) vector {index}: "
                f"0x{a:x} * 0x{b:x} -> 0x{product:x}, reference 0x{expected:x}"
            )
    squares = resolved.square_batch(a_values)
    for index, (a, square) in enumerate(zip(a_values, squares)):
        expected = field.square(a)
        if square != expected:
            raise AssertionError(
                f"{resolved.name} backend square mismatch on GF(2^{m}) vector {index}: "
                f"0x{a:x}^2 -> 0x{square:x}, reference 0x{expected:x}"
            )
    checked = 2 * len(a_values)
    if field.is_field:
        nonzero = [value or 1 for value in a_values]
        inverses = resolved.inverse_batch(nonzero)
        for index, (value, inverse) in enumerate(zip(nonzero, inverses)):
            expected = field.inverse(value)
            if inverse != expected:
                raise AssertionError(
                    f"{resolved.name} backend inverse mismatch on GF(2^{m}) vector {index}: "
                    f"0x{value:x}^-1 -> 0x{inverse:x}, reference 0x{expected:x}"
                )
        checked += len(nonzero)
    checked += _assert_ir_parity(field, resolved, a_values, b_values, rng)
    return checked


def _assert_ir_parity(field, resolved, a_values, b_values, rng) -> int:
    """Cross-check FieldIR execution on this backend against the reference.

    A small mixed formula (mul, chained squarings, xor, select) runs through
    :func:`repro.backends.ir.execute_program` on every backend, and through
    the compiled plane path as well when the backend advertises
    :meth:`~repro.backends.base.FieldBackend.ir_executor` — both must match
    the scalar reference byte for byte.  This is the harness arm that keeps
    the formula compiler honest on every registered substrate.
    """
    from .ir import IRBuilder, execute_program, schedule_program

    m = field.m
    builder = IRBuilder("parity_probe")
    a_var, b_var = builder.input("a"), builder.input("b")
    bit = builder.mask_input("bit")
    product = builder.mul(a_var, b_var)
    quartic = builder.square(builder.square(a_var))
    mixed = builder.xor(product, quartic)
    builder.output("r", builder.select(bit, mixed, product))
    program = schedule_program(
        builder.build(), m, {"square": field.square_map},
        key=("parity-probe", field.modulus),
    )
    bits = [rng.getrandbits(1) for _ in a_values]

    def reference(a, b, control):
        product = field.multiply(a, b)
        if not control:
            return product
        return product ^ field.square(field.square(a))

    expected = [reference(a, b, c) for a, b, c in zip(a_values, b_values, bits)]
    interpreted = execute_program(
        program, resolved, {"a": a_values, "b": b_values}, {"bit": bits}
    )["r"]
    if interpreted != expected:
        index = next(i for i, (got, want) in enumerate(zip(interpreted, expected)) if got != want)
        raise AssertionError(
            f"{resolved.name} backend FieldIR interpreter mismatch on GF(2^{m}) "
            f"vector {index}: got 0x{interpreted[index]:x}, reference 0x{expected[index]:x}"
        )
    checked = len(a_values)
    executor = resolved.ir_executor()
    if executor is not None:
        compiled = executor.compile(program)
        outputs = compiled.run(
            {"a": executor.pack(a_values), "b": executor.pack(b_values)}, {"bit": bits}
        )
        plane = executor.unpack(outputs["r"])
        if plane != expected:
            index = next(i for i, (got, want) in enumerate(zip(plane, expected)) if got != want)
            raise AssertionError(
                f"{resolved.name} backend FieldIR plane mismatch on GF(2^{m}) "
                f"vector {index}: got 0x{plane[index]:x}, reference 0x{expected[index]:x}"
            )
        checked += len(a_values)
    return checked
