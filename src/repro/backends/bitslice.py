"""Bitsliced netlist evaluation over numpy ``uint64`` plane arrays.

The compiled big-integer engine (:mod:`repro.engine`) evaluates one Python
bytecode operation per gate on arbitrary-precision integers.  This backend
trades that for numpy: every netlist node owns one row of a
``(node_count, lane_words)`` ``uint64`` array, where bit ``p`` of a row is
the node's value for operand pair ``p`` — 64 batch lanes per machine word,
``lane_words`` words per numpy op.

Evaluating gate-by-gate would drown in numpy dispatch overhead (~0.5 µs per
call versus ~30 ns of actual 32-word work), so the circuit is compiled to
**level segments**: live nodes are renumbered densely in
``(logic level, op)`` order, making every run of same-op gates in one level
a *contiguous slice* of the value array.  One segment then evaluates as two
``np.take`` fanin gathers (into reused scratch) and a single vectorized
``bitwise_and`` / ``bitwise_xor`` writing straight into the output slice —
and a segment recognized as the full ``a_i x b_j`` partial-product plane
skips the gathers entirely, evaluating as one broadcast outer product of
the input plane arrays.  A 55k-gate GF(2^163) multiplier collapses to ~45
numpy calls per chunk.

Packing reuses the word-level bit-matrix transposes of
:mod:`repro.engine.bitpack` (rows → plane big-ints) with a zero-copy
``int.to_bytes``/``np.frombuffer`` hop between big-int planes and ``uint64``
lane words.  :meth:`BitslicedNetlist.multiply_planes` skips the transposes
altogether for callers that already hold plane arrays — the entry point of
the plane-resident compute layer (:mod:`repro.backends.planes`).

numpy is an *optional* dependency: the module imports without it and every
entry point raises a clear ``ImportError`` (install ``numpy`` or the
``gf2m-repro[bitslice]`` extra) only when bitsliced evaluation is actually
requested.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..engine.bitpack import pack_rows, unpack_planes
from ..netlist.netlist import OP_AND, OP_XOR
from ..pipeline.store import LRUCache
from .base import BackendCapabilities, FieldBackend, default_method_for
from .planes import (
    PlaneCompute,
    PlaneIRExecutor,
    _LaneBufferCache,
    _planes_to_array,
    lane_words_for,
)

try:  # pragma: no cover - exercised via monkeypatching in the tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.field import GF2mField
    from ..netlist.netlist import Netlist

__all__ = ["BitslicedNetlist", "BitsliceBackend", "bitsliced_netlist", "numpy_available"]

#: Default batch lanes evaluated per numpy pass (64 pairs per uint64 word).
DEFAULT_LANES = 4096


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    return _np is not None


def _require_numpy():
    if _np is None:
        raise ImportError(
            "the bitslice backend needs numpy, which is not installed; "
            "run 'pip install numpy' (or install the gf2m-repro[bitslice] extra), "
            "or select the 'engine' or 'python' backend instead"
        )
    return _np


class BitslicedNetlist:
    """A multiplier netlist compiled for level-segmented numpy evaluation.

    Follows the standard multiplier I/O convention (inputs ``a<i>``/``b<j>``,
    outputs ``c0..c(m-1)``) and raises ``ValueError`` for netlists outside
    it, mirroring :class:`repro.engine.engine.Engine`.  Value buffers are
    cached per lane width, so repeated batches of the same chunk size reuse
    their memory.
    """

    def __init__(self, netlist: Netlist, m: int, chunk_size: int = DEFAULT_LANES) -> None:
        np = _require_numpy()
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.m = m
        self.chunk_size = chunk_size
        self.name = netlist.name

        live = netlist.live_nodes()
        level: Dict[int, int] = {}
        for node in live:
            if netlist.op(node) in (OP_AND, OP_XOR):
                fanin0, fanin1 = netlist.fanins(node)
                level[node] = 1 + max(level.get(fanin0, 0), level.get(fanin1, 0))
            else:
                level[node] = 0
        # Raster rank of input-fed AND gates: a partial-product plane whose
        # gates cover the full a_i x b_j grid evaluates as ONE broadcast
        # outer product instead of two 26k-row gathers — detected per
        # segment below, enabled by ordering those gates in (i, j) raster.
        input_bit: Dict[int, Tuple[str, int]] = {}
        for input_name in netlist.inputs:
            operand, digits = input_name[:1], input_name[1:]
            if operand in ("a", "b") and digits.isdigit():
                input_bit[netlist.input_node(input_name)] = (operand, int(digits))
        raster: Dict[int, int] = {}
        for node in live:
            if netlist.op(node) != OP_AND:
                continue
            pair = {}
            for fanin in netlist.fanins(node):
                operand_bit = input_bit.get(fanin)
                if operand_bit is not None:
                    pair[operand_bit[0]] = operand_bit[1]
            if len(pair) == 2 and pair["a"] < m and pair["b"] < m:
                raster[node] = pair["a"] * m + pair["b"]

        # Dense renumbering in (level, op, raster/node) order: every same-op
        # run of one level becomes a contiguous row range of the value
        # array, with raster-eligible AND planes in (i, j) order.
        ordered = sorted(
            live,
            key=lambda node: (
                level[node],
                netlist.op(node) == OP_AND,
                (0, raster[node]) if node in raster else (1, node),
            ),
        )
        renumber = {node: index for index, node in enumerate(ordered)}
        self.node_count = len(ordered)
        self.level_count = (max(level.values()) + 1) if level else 0

        segments: List[List] = []  # [start, end, fanin0s, fanin1s, is_and, ranks]
        current_key: Optional[Tuple[int, int]] = None
        self.and_count = 0
        self.xor_count = 0
        for node in ordered:
            op = netlist.op(node)
            if op not in (OP_AND, OP_XOR):
                continue
            if op == OP_AND:
                self.and_count += 1
            else:
                self.xor_count += 1
            key = (level[node], op)
            if key != current_key:
                segments.append([renumber[node], renumber[node], [], [], op == OP_AND, []])
                current_key = key
            segment = segments[-1]
            fanin0, fanin1 = netlist.fanins(node)
            segment[1] = renumber[node] + 1
            segment[2].append(renumber[fanin0])
            segment[3].append(renumber[fanin1])
            segment[5].append(raster.get(node))
        # An AND segment that is exactly the full m x m raster (in order, by
        # the renumbering above) evaluates as one broadcast outer product.
        self._segments = [
            (
                start,
                end,
                np.asarray(f0, dtype=np.intp),
                np.asarray(f1, dtype=np.intp),
                is_and,
                is_and and end - start == m * m and ranks == list(range(m * m)),
            )
            for start, end, f0, f1, is_and, ranks in segments
        ]
        self._max_gather = max(
            (end - start for start, end, _, _, _, is_outer in self._segments if not is_outer),
            default=0,
        )

        self._input_rows: List[Tuple[int, int, int]] = []  # (dense row, operand, bit)
        for input_name in netlist.inputs:
            operand, digits = input_name[:1], input_name[1:]
            if operand not in ("a", "b") or not digits.isdigit() or int(digits) >= m:
                raise ValueError(
                    f"input {input_name!r} does not follow the a<i>/b<j> convention for m={m}"
                )
            node = netlist.input_node(input_name)
            if node in renumber:  # dead inputs never reach an output
                self._input_rows.append((renumber[node], 0 if operand == "a" else 1, int(digits)))
        position = {output_name: renumber[node] for output_name, node in netlist.outputs}
        self._output_rows: List[int] = []
        for k in range(m):
            row = position.get(f"c{k}")
            if row is None:
                raise ValueError(f"netlist is missing output c{k}")
            self._output_rows.append(row)

        # Index arrays for the plane-resident entry point: one fancy-indexed
        # scatter per operand replaces the per-row input writes.
        a_live = [(row, bit) for row, operand, bit in self._input_rows if operand == 0]
        b_live = [(row, bit) for row, operand, bit in self._input_rows if operand == 1]
        self._a_rows = np.asarray([row for row, _ in a_live], dtype=np.intp)
        self._a_bits = np.asarray([bit for _, bit in a_live], dtype=np.intp)
        self._b_rows = np.asarray([row for row, _ in b_live], dtype=np.intp)
        self._b_bits = np.asarray([bit for _, bit in b_live], dtype=np.intp)
        self._output_row_array = np.asarray(self._output_rows, dtype=np.intp)

        #: (values, gather0, gather1) buffers, thread-local and keyed by lane
        #: words (:class:`~repro.backends.planes._LaneBufferCache`): backend
        #: instances are shared process-wide through the registry cache, so
        #: concurrent batches must never write into the same array.  Const-0
        #: rows stay zero because only gate rows (segments) and input rows
        #: are ever written; the gather scratch lets segments run through
        #: ``np.take(..., out=...)`` — measurably faster than fancy indexing
        #: and allocation-free on the hot path.
        self._buffers = _LaneBufferCache(
            lambda lane_words: (
                np.zeros((self.node_count, lane_words), dtype=np.uint64),
                np.empty((self._max_gather, lane_words), dtype=np.uint64),
                np.empty((self._max_gather, lane_words), dtype=np.uint64),
            )
        )

    # --------------------------------------------------------------- evaluate
    def multiply_planes(self, a_planes, b_planes):
        """Products of two ``(m, lane_words)`` uint64 plane arrays, as planes.

        The plane-resident entry point: no packing, no unpacking — inputs
        scatter into the value buffer with two fancy-indexed writes, the
        level segments run as usual, and the output rows gather into a
        fresh array (never aliasing the reused buffer).  Lane stacking is
        transparent: any common ``lane_words`` width works.
        """
        np = _np
        if a_planes.shape != b_planes.shape or a_planes.shape[0] != self.m:
            raise ValueError(
                f"expected two ({self.m}, lane_words) plane arrays, got "
                f"{a_planes.shape} and {b_planes.shape}"
            )
        values, gather0, gather1 = self._buffers.get(a_planes.shape[1])
        values[self._a_rows] = a_planes[self._a_bits]
        values[self._b_rows] = b_planes[self._b_bits]
        for start, end, fanin0, fanin1, is_and, is_outer in self._segments:
            if is_outer:
                np.bitwise_and(
                    a_planes[:, None, :],
                    b_planes[None, :, :],
                    out=values[start:end].reshape(self.m, self.m, -1),
                )
                continue
            count = end - start
            np.take(values, fanin0, axis=0, out=gather0[:count], mode="clip")
            np.take(values, fanin1, axis=0, out=gather1[:count], mode="clip")
            if is_and:
                np.bitwise_and(gather0[:count], gather1[:count], out=values[start:end])
            else:
                np.bitwise_xor(gather0[:count], gather1[:count], out=values[start:end])
        return values[self._output_row_array]

    def _evaluate_chunk(self, a_chunk: Sequence[int], b_chunk: Sequence[int]) -> List[int]:
        lanes = len(a_chunk)
        lane_words = lane_words_for(lanes)
        product = self.multiply_planes(
            _planes_to_array(pack_rows(a_chunk, self.m), lane_words),
            _planes_to_array(pack_rows(b_chunk, self.m), lane_words),
        )
        product_planes = [int.from_bytes(product[k].tobytes(), "little") for k in range(self.m)]
        return unpack_planes(product_planes, self.m, lanes)

    def multiply_batch(
        self,
        a_words: Sequence[int],
        b_words: Sequence[int],
        chunk_size: Optional[int] = None,
    ) -> List[int]:
        """Products of ``a_words[i] · b_words[i]``, evaluated in plane chunks.

        Only the low ``m`` bits of every operand are used, matching the
        engine and the interpreted simulator.  An empty batch returns an
        empty list.
        """
        if len(a_words) != len(b_words):
            raise ValueError(
                f"operand streams differ in length: {len(a_words)} vs {len(b_words)}"
            )
        chunk = chunk_size if chunk_size is not None else self.chunk_size
        if chunk < 1:
            raise ValueError("chunk_size must be at least 1")
        mask = (1 << self.m) - 1
        results: List[int] = []
        for start in range(0, len(a_words), chunk):
            a_chunk = [word & mask for word in a_words[start:start + chunk]]
            b_chunk = [word & mask for word in b_words[start:start + chunk]]
            results.extend(self._evaluate_chunk(a_chunk, b_chunk))
        return results

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"bitslice[numpy] {self.name or 'netlist'} GF(2^{self.m}): "
            f"{self.and_count} AND, {self.xor_count} XOR in {len(self._segments)} "
            f"segments ({self.level_count} levels), {self.chunk_size} lanes/chunk"
        )


#: Memoized lowerings keyed by ``(netlist name, modulus, m, chunk)`` — the
#: modulus disambiguates same-degree pentanomials that share a netlist name.
#: Repeated ``GF2mField``/backend constructions for one field reuse the
#: segment build instead of re-lowering a 55k-gate netlist.
_SLICED_CACHE = LRUCache(maxsize=16, name="bitslice.netlists")


def bitsliced_netlist(
    netlist: Netlist, m: int, chunk_size: int = DEFAULT_LANES, modulus: Optional[int] = None
) -> BitslicedNetlist:
    """The memoized :class:`BitslicedNetlist` lowering of a multiplier netlist.

    ``modulus`` qualifies the cache key (netlist names encode method and
    degree but not the defining polynomial); pass it whenever the netlist
    came from a field so equal fields share one lowering.  Without a
    modulus the lowering is built uncached.
    """
    if modulus is None:
        return BitslicedNetlist(netlist, m, chunk_size=chunk_size)
    key = (netlist.name, modulus, m, chunk_size)
    return _SLICED_CACHE.get_or_create(
        key, lambda: BitslicedNetlist(netlist, m, chunk_size=chunk_size)
    )


class BitsliceBackend(FieldBackend):
    """Field backend evaluating the generated multiplier netlist bitsliced.

    The circuit comes from the same process-wide multiplier cache as the
    engine backend (formally verified per ``(method, modulus)`` unless
    ``verify=False``), then is compiled once into a
    :class:`BitslicedNetlist`.  Byte-identical to the scalar reference by
    construction and asserted by the parity harness.
    """

    name = "bitslice"
    capabilities = BackendCapabilities(
        vectorized=True, compiled=True, min_efficient_batch=64, plane_resident=True
    )

    def __init__(
        self,
        field: "GF2mField",
        method: Optional[str] = None,
        chunk_size: int = DEFAULT_LANES,
        verify: bool = True,
    ) -> None:
        _require_numpy()
        super().__init__(field)
        self.method = method if method is not None else default_method_for(field.modulus)
        self.chunk_size = chunk_size
        self.verify = verify
        self._sliced: Optional[BitslicedNetlist] = None
        self._executor: Optional[PlaneIRExecutor] = None
        self._planes: Optional[PlaneCompute] = None

    @property
    def sliced(self) -> BitslicedNetlist:
        """The compiled bitsliced circuit (memoized process-wide)."""
        if self._sliced is None:
            from ..multipliers.cache import cached_multiplier

            multiplier = cached_multiplier(self.method, self.field.modulus, verify=self.verify)
            self._sliced = bitsliced_netlist(
                multiplier.netlist,
                multiplier.m,
                chunk_size=self.chunk_size,
                modulus=self.field.modulus,
            )
        return self._sliced

    def ir_executor(self) -> PlaneIRExecutor:
        """The FieldIR plane executor (see :mod:`repro.backends.planes`)."""
        if self._executor is None:
            self._executor = PlaneIRExecutor(self.field, self.sliced)
        return self._executor

    def plane_compute(self) -> PlaneCompute:
        """Deprecated shim container over :meth:`ir_executor` (op methods warn)."""
        if self._planes is None:
            self._planes = PlaneCompute(self.field, self.sliced, self.ir_executor())
        return self._planes

    def multiply(self, a: int, b: int) -> int:
        return self.sliced.multiply_batch([a], [b])[0]

    def multiply_batch(self, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
        self._count_batch("multiply_batch", len(a_values))
        return self.sliced.multiply_batch(a_values, b_values)

    def inverse_batch(self, values: Sequence[int]) -> List[int]:
        """Simultaneous inversion via a product tree of batched multiplies.

        The base-class Montgomery chain is a strictly sequential walk of
        ``3(len - 1)`` scalar reference multiplies — on this backend those
        dominate the y-recovery of a batched ladder.  A product tree has the
        same multiplication count but only ``2·log2(len)`` *levels*, and
        every level is one lane-parallel :meth:`multiply_batch` call: pair
        the values upward to the root product, invert the root once, then
        walk back down handing each node's inverse to its two children
        (``inv_left = inv_parent · right`` and symmetrically).  Exact
        arithmetic, so the results stay byte-identical to the scalar chain;
        tiny batches keep the chain (pack/unpack overhead would dominate).
        """
        values = list(values)
        if 0 in values:
            index = values.index(0)
            raise ZeroDivisionError(f"0 has no multiplicative inverse (batch index {index})")
        if len(values) < 16:
            return super().inverse_batch(values)
        self._count_batch("inverse_batch", len(values))
        levels = [values]
        while len(levels[-1]) > 1:
            current = levels[-1]
            half = len(current) // 2
            products = self.multiply_batch(current[0:2 * half:2], current[1:2 * half:2])
            if len(current) % 2:
                products.append(current[-1])
            levels.append(products)
        inverses = [self.field.inverse(levels[-1][0])]
        for level in reversed(levels[:-1]):
            half = len(level) // 2
            left_factors: List[int] = []
            right_factors: List[int] = []
            for i in range(half):
                left_factors.extend((inverses[i], inverses[i]))
                right_factors.extend((level[2 * i + 1], level[2 * i]))
            children = self.multiply_batch(left_factors, right_factors)
            if len(level) % 2:
                children.append(inverses[half])
            inverses = children
        return inverses

    def describe(self) -> str:
        return self.sliced.describe()
