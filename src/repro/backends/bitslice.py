"""Bitsliced netlist evaluation over numpy ``uint64`` plane arrays.

The compiled big-integer engine (:mod:`repro.engine`) evaluates one Python
bytecode operation per gate on arbitrary-precision integers.  This backend
trades that for numpy: every netlist node owns one row of a
``(node_count, lane_words)`` ``uint64`` array, where bit ``p`` of a row is
the node's value for operand pair ``p`` — 64 batch lanes per machine word,
``lane_words`` words per numpy op.

Evaluating gate-by-gate would drown in numpy dispatch overhead (~0.5 µs per
call versus ~30 ns of actual 32-word work), so the circuit is compiled to
**level segments**: live nodes are renumbered densely in
``(logic level, op)`` order, making every run of same-op gates in one level
a *contiguous slice* of the value array.  One segment then evaluates as two
fancy-indexed fanin gathers and a single vectorized ``bitwise_and`` /
``bitwise_xor`` writing straight into the output slice — a 55k-gate
GF(2^163) multiplier collapses to ~44 numpy calls per chunk.

Packing reuses the word-level bit-matrix transposes of
:mod:`repro.engine.bitpack` (rows → plane big-ints) with a zero-copy
``int.to_bytes``/``np.frombuffer`` hop between big-int planes and ``uint64``
lane words.

numpy is an *optional* dependency: the module imports without it and every
entry point raises a clear ``ImportError`` (install ``numpy`` or the
``gf2m-repro[bitslice]`` extra) only when bitsliced evaluation is actually
requested.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..engine.bitpack import pack_rows, unpack_planes
from ..netlist.netlist import OP_AND, OP_XOR, Netlist
from .base import BackendCapabilities, FieldBackend, default_method_for

try:  # pragma: no cover - exercised via monkeypatching in the tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.field import GF2mField

__all__ = ["BitslicedNetlist", "BitsliceBackend", "numpy_available"]

#: Default batch lanes evaluated per numpy pass (64 pairs per uint64 word).
DEFAULT_LANES = 4096


def numpy_available() -> bool:
    """Whether the optional numpy dependency is importable."""
    return _np is not None


def _require_numpy():
    if _np is None:
        raise ImportError(
            "the bitslice backend needs numpy, which is not installed; "
            "run 'pip install numpy' (or install the gf2m-repro[bitslice] extra), "
            "or select the 'engine' or 'python' backend instead"
        )
    return _np


class BitslicedNetlist:
    """A multiplier netlist compiled for level-segmented numpy evaluation.

    Follows the standard multiplier I/O convention (inputs ``a<i>``/``b<j>``,
    outputs ``c0..c(m-1)``) and raises ``ValueError`` for netlists outside
    it, mirroring :class:`repro.engine.engine.Engine`.  Value buffers are
    cached per lane width, so repeated batches of the same chunk size reuse
    their memory.
    """

    def __init__(self, netlist: Netlist, m: int, chunk_size: int = DEFAULT_LANES) -> None:
        np = _require_numpy()
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.m = m
        self.chunk_size = chunk_size
        self.name = netlist.name

        live = netlist.live_nodes()
        level: Dict[int, int] = {}
        for node in live:
            if netlist.op(node) in (OP_AND, OP_XOR):
                fanin0, fanin1 = netlist.fanins(node)
                level[node] = 1 + max(level.get(fanin0, 0), level.get(fanin1, 0))
            else:
                level[node] = 0
        # Dense renumbering in (level, op, node) order: every same-op run of
        # one level becomes a contiguous row range of the value array.
        ordered = sorted(live, key=lambda node: (level[node], netlist.op(node) == OP_AND, node))
        renumber = {node: index for index, node in enumerate(ordered)}
        self.node_count = len(ordered)
        self.level_count = (max(level.values()) + 1) if level else 0

        segments: List[List] = []  # [start, end, fanin0s, fanin1s, is_and]
        current_key: Optional[Tuple[int, int]] = None
        self.and_count = 0
        self.xor_count = 0
        for node in ordered:
            op = netlist.op(node)
            if op not in (OP_AND, OP_XOR):
                continue
            if op == OP_AND:
                self.and_count += 1
            else:
                self.xor_count += 1
            key = (level[node], op)
            if key != current_key:
                segments.append([renumber[node], renumber[node], [], [], op == OP_AND])
                current_key = key
            segment = segments[-1]
            fanin0, fanin1 = netlist.fanins(node)
            segment[1] = renumber[node] + 1
            segment[2].append(renumber[fanin0])
            segment[3].append(renumber[fanin1])
        self._segments = [
            (start, end, np.asarray(f0, dtype=np.intp), np.asarray(f1, dtype=np.intp), is_and)
            for start, end, f0, f1, is_and in segments
        ]

        self._input_rows: List[Tuple[int, int, int]] = []  # (dense row, operand, bit)
        for input_name in netlist.inputs:
            operand, digits = input_name[:1], input_name[1:]
            if operand not in ("a", "b") or not digits.isdigit() or int(digits) >= m:
                raise ValueError(
                    f"input {input_name!r} does not follow the a<i>/b<j> convention for m={m}"
                )
            node = netlist.input_node(input_name)
            if node in renumber:  # dead inputs never reach an output
                self._input_rows.append((renumber[node], 0 if operand == "a" else 1, int(digits)))
        position = {output_name: renumber[node] for output_name, node in netlist.outputs}
        self._output_rows: List[int] = []
        for k in range(m):
            row = position.get(f"c{k}")
            if row is None:
                raise ValueError(f"netlist is missing output c{k}")
            self._output_rows.append(row)

        #: Value buffers, thread-local and keyed by lane words: backend
        #: instances are shared process-wide through the registry cache, so
        #: concurrent batches must never write into the same array.  Const-0
        #: rows stay zero because only gate rows (segments) and input rows
        #: are ever written.
        self._local = threading.local()

    # --------------------------------------------------------------- evaluate
    def _buffer(self, lane_words: int):
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = self._local.buffers = {}
        values = buffers.get(lane_words)
        if values is None:
            if len(buffers) >= 4:  # bound memory across odd tail widths
                buffers.clear()
            values = _np.zeros((self.node_count, lane_words), dtype=_np.uint64)
            buffers[lane_words] = values
        return values

    def _evaluate_chunk(self, a_chunk: Sequence[int], b_chunk: Sequence[int]) -> List[int]:
        np = _np
        lanes = len(a_chunk)
        lane_bytes = ((lanes + 63) // 64) * 8
        a_planes = pack_rows(a_chunk, self.m)
        b_planes = pack_rows(b_chunk, self.m)
        planes = (a_planes, b_planes)
        values = self._buffer(lane_bytes // 8)
        for row, operand, bit in self._input_rows:
            values[row] = np.frombuffer(planes[operand][bit].to_bytes(lane_bytes, "little"), dtype="<u8")
        for start, end, fanin0, fanin1, is_and in self._segments:
            if is_and:
                np.bitwise_and(values[fanin0], values[fanin1], out=values[start:end])
            else:
                np.bitwise_xor(values[fanin0], values[fanin1], out=values[start:end])
        product_planes = [int.from_bytes(values[row].tobytes(), "little") for row in self._output_rows]
        return unpack_planes(product_planes, self.m, lanes)

    def multiply_batch(
        self,
        a_words: Sequence[int],
        b_words: Sequence[int],
        chunk_size: Optional[int] = None,
    ) -> List[int]:
        """Products of ``a_words[i] · b_words[i]``, evaluated in plane chunks.

        Only the low ``m`` bits of every operand are used, matching the
        engine and the interpreted simulator.  An empty batch returns an
        empty list.
        """
        if len(a_words) != len(b_words):
            raise ValueError(
                f"operand streams differ in length: {len(a_words)} vs {len(b_words)}"
            )
        chunk = chunk_size if chunk_size is not None else self.chunk_size
        if chunk < 1:
            raise ValueError("chunk_size must be at least 1")
        mask = (1 << self.m) - 1
        results: List[int] = []
        for start in range(0, len(a_words), chunk):
            a_chunk = [word & mask for word in a_words[start:start + chunk]]
            b_chunk = [word & mask for word in b_words[start:start + chunk]]
            results.extend(self._evaluate_chunk(a_chunk, b_chunk))
        return results

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"bitslice[numpy] {self.name or 'netlist'} GF(2^{self.m}): "
            f"{self.and_count} AND, {self.xor_count} XOR in {len(self._segments)} "
            f"segments ({self.level_count} levels), {self.chunk_size} lanes/chunk"
        )


class BitsliceBackend(FieldBackend):
    """Field backend evaluating the generated multiplier netlist bitsliced.

    The circuit comes from the same process-wide multiplier cache as the
    engine backend (formally verified per ``(method, modulus)`` unless
    ``verify=False``), then is compiled once into a
    :class:`BitslicedNetlist`.  Byte-identical to the scalar reference by
    construction and asserted by the parity harness.
    """

    name = "bitslice"
    capabilities = BackendCapabilities(vectorized=True, compiled=True, min_efficient_batch=64)

    def __init__(
        self,
        field: "GF2mField",
        method: Optional[str] = None,
        chunk_size: int = DEFAULT_LANES,
        verify: bool = True,
    ) -> None:
        _require_numpy()
        super().__init__(field)
        self.method = method if method is not None else default_method_for(field.modulus)
        self.chunk_size = chunk_size
        self.verify = verify
        self._sliced: Optional[BitslicedNetlist] = None

    @property
    def sliced(self) -> BitslicedNetlist:
        """The compiled bitsliced circuit (built on first use)."""
        if self._sliced is None:
            from ..multipliers.cache import cached_multiplier

            multiplier = cached_multiplier(self.method, self.field.modulus, verify=self.verify)
            self._sliced = BitslicedNetlist(multiplier.netlist, multiplier.m, chunk_size=self.chunk_size)
        return self._sliced

    def multiply(self, a: int, b: int) -> int:
        return self.sliced.multiply_batch([a], [b])[0]

    def multiply_batch(self, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
        return self.sliced.multiply_batch(a_values, b_values)

    def describe(self) -> str:
        return self.sliced.describe()
