"""The compiled big-integer netlist engine as a :class:`FieldBackend`.

Wraps :mod:`repro.engine`: the multiplier circuit for ``(method, modulus)``
is generated, formally verified and compiled to a straight-line Python
function once (all cached process-wide), and operand batches stream through
it in bit-packed big-integer planes.  This was the path
``GF2mField.multiply_batch`` hard-coded before the backend abstraction; the
default-method selection it used to duplicate now lives in
:func:`repro.backends.base.default_method_for`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from .base import BackendCapabilities, FieldBackend, default_method_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import Engine
    from ..galois.field import GF2mField

__all__ = ["EngineBackend"]


class EngineBackend(FieldBackend):
    """Batch multiplication through the compiled big-integer circuit engine.

    Parameters
    ----------
    field:
        The bound field.
    method:
        Multiplier construction; defaults to the paper's ``thiswork``
        circuit for type II pentanomials and ``schoolbook`` otherwise.
    mode:
        Netlist compilation mode (``"exec"`` or ``"arrays"``, see
        :func:`repro.engine.compiler.compile_netlist`).
    chunk_size:
        Operand pairs per compiled call; ``None`` keeps the engine default.
    verify:
        Whether the circuit must be formally verified against its product
        specification (default).  ``verify=False`` skips the check — worth
        it for very large fields where symbolic verification grows
        quadratically; the multiplier cache upgrades the same circuit in
        place if a verified instance is requested later.
    """

    name = "engine"
    capabilities = BackendCapabilities(vectorized=True, compiled=True, min_efficient_batch=32)

    def __init__(
        self,
        field: "GF2mField",
        method: Optional[str] = None,
        mode: str = "exec",
        chunk_size: Optional[int] = None,
        verify: bool = True,
    ) -> None:
        super().__init__(field)
        self.method = method if method is not None else default_method_for(field.modulus)
        self.mode = mode
        self.chunk_size = chunk_size
        self.verify = verify
        self._engine: Optional["Engine"] = None

    @property
    def engine(self) -> "Engine":
        """The cached :class:`~repro.engine.engine.Engine` (compiled on first use)."""
        if self._engine is None:
            from ..engine.engine import engine_for

            self._engine = engine_for(
                self.method, self.field.modulus, mode=self.mode, verify=self.verify
            )
        return self._engine

    def multiply(self, a: int, b: int) -> int:
        return self.engine.multiply(a, b)

    def multiply_batch(self, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
        self._count_batch("multiply_batch", len(a_values))
        return self.engine.multiply_batch(a_values, b_values, chunk_size=self.chunk_size)

    def describe(self) -> str:
        return self.engine.describe()
