"""Plane-resident GF(2^m) compute: values that *live* in uint64 bit planes.

The bitsliced backend (:mod:`repro.backends.bitslice`) made one batched
multiplication fast, but a consumer like the Montgomery ladder calls it
``~m`` times per scalar multiplication — and every call pays two full
bit-matrix transposes (rows → planes, planes → rows) plus per-element
scalar Python for everything between the multiplications.  This module
removes the round trips: a batch of field elements is packed into a
:class:`PlaneVector` **once**, every operation of the consuming algorithm
runs directly on the ``(m, lane_words)`` ``uint64`` plane representation,
and rows are unpacked **once** at the end.

Three kinds of operation cover a whole López-Dahab ladder step:

* full products — the bitsliced multiplier netlist evaluated plane-to-plane
  (:meth:`repro.backends.bitslice.BitslicedNetlist.multiply_planes`), with
  several independent products lane-stacked into one netlist pass;
* GF(2)-**linear** maps (squaring, multiplication by a fixed curve
  constant) — a :class:`~repro.galois.field.GF2LinearMap` is lowered by
  :class:`PlaneProgram` into level-segmented gather/XOR passes, the same
  contiguous-slice trick :class:`~repro.backends.bitslice.BitslicedNetlist`
  uses for the multiplier itself;
* data movement — XOR of plane vectors and scalar-bit-dependent *selects*
  driven by a broadcast lane mask, so mixed control bits across one batch
  never leave the plane domain.

:class:`PlaneCompute` bundles these into the capability object a backend
advertises through :meth:`repro.backends.base.FieldBackend.plane_compute`;
the batched curve ladder (:meth:`repro.curves.point.BinaryCurve
.multiply_batch`) detects it and keeps all ``~m`` steps plane-resident.

Compiled :class:`PlaneProgram` s are memoized process-wide (keyed by the
map's basis images), mirroring the multiplier cache, so repeated field or
curve constructions never re-lower a linear map.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..engine.bitpack import pack_rows, unpack_planes
from ..pipeline.store import LRUCache
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from .ir import (
    K_LINEAR,
    K_MUL,
    FieldProgram,
    IRBuilder,
    cached_program,
    schedule_program,
)

try:  # pragma: no cover - exercised via monkeypatching in the tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.field import GF2LinearMap, GF2mField
    from .bitslice import BitslicedNetlist

__all__ = [
    "PlaneVector",
    "PlaneProgram",
    "PlaneCompute",
    "PlaneIRExecutor",
    "CompiledPlaneIR",
    "plane_program",
]


def _require_numpy():
    if _np is None:
        raise ImportError(
            "plane-resident compute needs numpy, which is not installed; "
            "run 'pip install numpy' (or install the gf2m-repro[bitslice] extra)"
        )
    return _np


def lane_words_for(lanes: int) -> int:
    """uint64 words per plane for a batch of ``lanes`` elements (min 1)."""
    return max(1, (lanes + 63) // 64)


def _planes_to_array(planes: Sequence[int], lane_words: int):
    """Big-integer planes → a ``(len(planes), lane_words)`` uint64 array."""
    lane_bytes = lane_words * 8
    buffer = b"".join(plane.to_bytes(lane_bytes, "little") for plane in planes)
    return _np.frombuffer(buffer, dtype="<u8").reshape(len(planes), lane_words)


def _array_to_planes(array) -> List[int]:
    """The inverse of :func:`_planes_to_array` (rows back to big integers)."""
    return [int.from_bytes(_np.ascontiguousarray(row).tobytes(), "little") for row in array]


class _LaneBufferCache:
    """Thread-local per-lane-width buffer pool, bounded to four widths.

    Shared by :class:`PlaneProgram` and
    :class:`~repro.backends.bitslice.BitslicedNetlist`: compiled evaluators
    are cached process-wide and used from multiple threads, so each thread
    gets its own buffers, keyed by lane width and evicted wholesale once
    odd tail widths would accumulate.
    """

    __slots__ = ("_factory", "_local")

    def __init__(self, factory) -> None:
        self._factory = factory
        self._local = threading.local()

    def get(self, lane_words: int):
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = self._local.buffers = {}
        entry = buffers.get(lane_words)
        if entry is None:
            if len(buffers) >= 4:
                buffers.clear()
            entry = self._factory(lane_words)
            buffers[lane_words] = entry
        return entry


@dataclass(frozen=True)
class PlaneVector:
    """A batch of GF(2^m) elements resident in uint64 bit planes.

    ``array`` has shape ``(m, lane_words)``: bit ``p`` of row ``i`` is
    coordinate ``a_i`` of batch element ``p``.  ``lanes`` is the live batch
    size; lane bits at positions ``lanes`` and above are dead (kept zero by
    :meth:`PlaneCompute.pack`, ignored by :meth:`PlaneCompute.unpack`).
    The wrapper is immutable — operations return fresh vectors, so a
    :class:`PlaneVector` can be reused freely across ladder steps.
    """

    array: "object"  # numpy (m, lane_words) uint64; untyped to keep numpy optional
    lanes: int

    @property
    def m(self) -> int:
        """Coordinate count (rows of the plane array)."""
        return self.array.shape[0]

    @property
    def lane_words(self) -> int:
        """uint64 words per plane (columns of the array)."""
        return self.array.shape[1]

    def copy(self) -> "PlaneVector":
        """An independent copy (same values, fresh storage)."""
        return PlaneVector(self.array.copy(), self.lanes)


class PlaneProgram:
    """A GF(2)-linear map compiled to level-segmented plane gather/XOR passes.

    The map sends basis vector ``y^i`` to ``masks[i]``; on plane arrays that
    means output row ``j`` is the XOR of every input row ``i`` whose mask has
    bit ``j`` set.  Each output's XOR tree is balanced, all tree gates are
    renumbered densely in level order (the contiguous-slice trick of
    :class:`~repro.backends.bitslice.BitslicedNetlist`), and one level then
    evaluates as two fancy-indexed gathers plus a single vectorized
    ``bitwise_xor`` into the output slice.  Outputs that copy a single input
    row or are identically zero cost nothing beyond the final output gather.

    Work buffers are thread-local per lane width, so cached programs shared
    across threads never corrupt each other.
    """

    def __init__(self, masks: Sequence[int], out_bits: Optional[int] = None) -> None:
        np = _require_numpy()
        self.input_bits = len(masks)
        self.out_bits = self.input_bits if out_bits is None else out_bits
        if any(mask >> self.out_bits for mask in masks):
            raise ValueError(f"a basis image exceeds the {self.out_bits}-bit output space")

        # refs are (row-kind, index, level): inputs at level 0, gates above.
        gates: List[Tuple[int, Tuple, Tuple]] = []  # (level, fanin_ref, fanin_ref)
        output_refs: List[Optional[Tuple]] = []
        for j in range(self.out_bits):
            refs = [("in", i, 0) for i in range(self.input_bits) if (masks[i] >> j) & 1]
            if not refs:
                output_refs.append(None)
                continue
            while len(refs) > 1:
                reduced = []
                for k in range(0, len(refs) - 1, 2):
                    left, right = refs[k], refs[k + 1]
                    level = 1 + max(left[2], right[2])
                    gates.append((level, left, right))
                    reduced.append(("gate", len(gates) - 1, level))
                if len(refs) % 2:
                    reduced.append(refs[-1])
                refs = reduced
            output_refs.append(refs[0])

        # Dense renumbering: input rows first, then gates sorted by level so
        # each level is one contiguous slice; one reserved all-zero row last.
        order = sorted(range(len(gates)), key=lambda g: gates[g][0])
        gate_row = {g: self.input_bits + position for position, g in enumerate(order)}
        self.row_count = self.input_bits + len(gates) + 1
        self._zero_row = self.row_count - 1

        def row_of(ref: Optional[Tuple]) -> int:
            if ref is None:
                return self._zero_row
            kind, index, _ = ref
            return index if kind == "in" else gate_row[index]

        segments: List[List] = []  # [start, end, fanin0 rows, fanin1 rows]
        current_level = None
        for g in order:
            level, left, right = gates[g]
            if level != current_level:
                segments.append([gate_row[g], gate_row[g], [], []])
                current_level = level
            segment = segments[-1]
            segment[1] = gate_row[g] + 1
            segment[2].append(row_of(left))
            segment[3].append(row_of(right))
        self._segments = [
            (start, end, np.asarray(f0, dtype=np.intp), np.asarray(f1, dtype=np.intp))
            for start, end, f0, f1 in segments
        ]
        self._output_rows = np.asarray([row_of(ref) for ref in output_refs], dtype=np.intp)
        self.xor_count = len(gates)
        self.level_count = len(self._segments)
        max_gather = max((end - start for start, end, _, _ in self._segments), default=0)
        # Work buffer zero-initialized so the reserved zero row stays zero
        # (inputs and gate slices are fully overwritten on every apply, the
        # zero row never); gather scratch for allocation-free np.take.
        self._buffers = _LaneBufferCache(
            lambda lane_words: (
                _np.zeros((self.row_count, lane_words), dtype=_np.uint64),
                _np.empty((max_gather, lane_words), dtype=_np.uint64),
                _np.empty((max_gather, lane_words), dtype=_np.uint64),
            )
        )

    def apply(self, planes):
        """Apply the map to an ``(input_bits, lane_words)`` plane array.

        Returns a fresh ``(out_bits, lane_words)`` array (the final output
        gather never aliases the reused work buffer).
        """
        if planes.shape[0] != self.input_bits:
            raise ValueError(
                f"expected {self.input_bits} input planes, got {planes.shape[0]}"
            )
        return self.apply_parts((planes,))

    def apply_parts(self, parts: Sequence) -> "object":
        """:meth:`apply` over an input space given as stacked row blocks.

        The fused-IR executor keeps each register as its own ``(m,
        lane_words)`` array; a multi-input program writes the blocks
        straight into consecutive work-buffer slices, so no concatenated
        temporary is ever allocated on the hot path.  The blocks' row
        counts must sum to :attr:`input_bits`.
        """
        np = _np
        work, gather0, gather1 = self._buffers.get(parts[0].shape[1])
        offset = 0
        for part in parts:
            rows = part.shape[0]
            work[offset:offset + rows] = part
            offset += rows
        if offset != self.input_bits:
            raise ValueError(f"expected {self.input_bits} input planes, got {offset}")
        for start, end, fanin0, fanin1 in self._segments:
            count = end - start
            np.take(work, fanin0, axis=0, out=gather0[:count], mode="clip")
            np.take(work, fanin1, axis=0, out=gather1[:count], mode="clip")
            np.bitwise_xor(gather0[:count], gather1[:count], out=work[start:end])
        return work[self._output_rows]

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"plane program {self.input_bits}->{self.out_bits} bits: "
            f"{self.xor_count} XOR in {self.level_count} levels"
        )


#: Compiled plane programs keyed by the map's basis images — repeated field
#: or curve constructions for the same modulus share one lowering.
_PROGRAM_CACHE = LRUCache(maxsize=64, name="planes.programs")


def plane_program(linear_map: "GF2LinearMap") -> PlaneProgram:
    """The memoized :class:`PlaneProgram` lowering of a ``GF2LinearMap``."""
    key = (linear_map.input_bits, linear_map.masks)
    return _PROGRAM_CACHE.get_or_create(key, lambda: PlaneProgram(linear_map.masks))


def _fused_plane_program(masks: Sequence[int], out_bits: int) -> PlaneProgram:
    """Memoized lowering of a fused LinearPass (multi-input, multi-output)."""
    key = (len(masks), tuple(masks), out_bits)
    return _PROGRAM_CACHE.get_or_create(key, lambda: PlaneProgram(masks, out_bits=out_bits))


class CompiledPlaneIR:
    """One :class:`~repro.backends.ir.FieldProgram` lowered to plane passes.

    Built by :meth:`PlaneIRExecutor.compile`; holds the per-pass plane
    lowering so executing a step costs only the numpy work:

    * a ``MulPass`` lane-stacks all its products into **one**
      :meth:`~repro.backends.bitslice.BitslicedNetlist.multiply_planes`
      evaluation over the lane-concatenated operand arrays;
    * a ``LinearPass`` becomes **one** multi-input multi-output
      :class:`PlaneProgram` (its fused basis-image masks over the stacked
      register space), applied without concatenation via
      :meth:`PlaneProgram.apply_parts`;
    * a ``SelectPass`` applies each broadcast lane mask with three
      bitwise ops per swapped register, the inverted mask computed once.

    ``run_arrays`` is the hot-loop entry point (plain arrays in schedule
    order, no dicts); :meth:`run` is the friendly name-keyed wrapper.
    """

    def __init__(self, executor: "PlaneIRExecutor", program: FieldProgram) -> None:
        np = _require_numpy()
        self.executor = executor
        self.program = program
        self.m = program.m
        ir = program.ir
        self.input_names = [name for name, _ in ir.inputs]
        self.mask_names = [name for name, _ in ir.mask_inputs]
        self.output_names = [name for name, _ in ir.outputs]
        self._input_vids = [vid for _, vid in ir.inputs]
        self._output_vids = [vid for _, vid in ir.outputs]
        lowered: List[tuple] = []
        labels: List[str] = []
        for pass_index, item in enumerate(program.passes):
            if item.kind == K_MUL:
                lowered.append((K_MUL, tuple(item.pairs)))
            elif item.kind == K_LINEAR:
                fused = _fused_plane_program(
                    item.fused_masks(self.m), len(item.outputs) * self.m
                )
                lowered.append((K_LINEAR, tuple(item.inputs), tuple(item.outputs), fused))
            else:
                lowered.append(("select", tuple(item.triples)))
            labels.append(f"ir.pass.{pass_index:02d}.{lowered[-1][0]}")
        self._passes = lowered
        # Span names are built once here so the traced hot loop never
        # formats strings; with the NullTracer installed each pass costs
        # one no-op context manager next to its numpy work.
        self._pass_labels = labels
        self._np = np

    def run_arrays(self, input_arrays: Sequence, mask_arrays: Sequence) -> List:
        """Execute over ``(m, lane_words)`` arrays in declared input order.

        ``mask_arrays`` are broadcast lane-word masks (one per declared
        mask input, as built by :meth:`PlaneIRExecutor.broadcast_bits`).
        Returns fresh output arrays in declared output order — the caller
        may feed them back in as the next step's inputs.
        """
        np = self._np
        sliced = self.executor.sliced
        m = self.m
        regs: Dict[int, object] = dict(zip(self._input_vids, input_arrays))
        masks: Dict[str, object] = dict(zip(self.mask_names, mask_arrays))
        if self.program.consts:
            lane_words = input_arrays[0].shape[1]
            live = self.executor._live_lane_words(lane_words)
            for vid, value in self.program.consts:
                const = np.zeros((m, lane_words), dtype=np.uint64)
                for i in range(m):
                    if (value >> i) & 1:
                        const[i] = live
                regs[vid] = const
        inverted: Dict[str, object] = {}
        tracer = _trace.TRACER
        for label, lowering in zip(self._pass_labels, self._passes):
            with tracer.span(label):
                if lowering[0] == K_MUL:
                    pairs = lowering[1]
                    if len(pairs) == 1:
                        a, b, out = pairs[0]
                        regs[out] = sliced.multiply_planes(regs[a], regs[b])
                        continue
                    stacked = sliced.multiply_planes(
                        np.concatenate([regs[a] for a, _, _ in pairs], axis=1),
                        np.concatenate([regs[b] for _, b, _ in pairs], axis=1),
                    )
                    width = stacked.shape[1] // len(pairs)
                    for index, (_, _, out) in enumerate(pairs):
                        regs[out] = stacked[:, index * width:(index + 1) * width]
                elif lowering[0] == K_LINEAR:
                    _, in_vids, out_vids, fused = lowering
                    result = fused.apply_parts([regs[vid] for vid in in_vids])
                    for position, vid in enumerate(out_vids):
                        regs[vid] = result[position * m:(position + 1) * m]
                else:
                    for mask_name, set_vid, clear_vid, out in lowering[1]:
                        mask = masks[mask_name]
                        inv = inverted.get(mask_name)
                        if inv is None:
                            inv = inverted[mask_name] = np.bitwise_not(mask)
                        regs[out] = np.bitwise_or(
                            np.bitwise_and(regs[set_vid], mask),
                            np.bitwise_and(regs[clear_vid], inv),
                        )
        return [regs[vid] for vid in self._output_vids]

    def run(
        self,
        inputs: Mapping[str, PlaneVector],
        masks: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> Dict[str, PlaneVector]:
        """Name-keyed execution over :class:`PlaneVector` s.

        Mask streams may be plain 0/1 bit sequences (broadcast here) or
        prebuilt lane-word mask arrays.  All inputs must share one batch
        layout.
        """
        vectors = []
        for name in self.input_names:
            if name not in inputs:
                raise KeyError(f"program {self.program.ir.name!r} needs input {name!r}")
            vectors.append(inputs[name])
        first = vectors[0]
        for vector in vectors[1:]:
            if vector.array.shape != first.array.shape or vector.lanes != first.lanes:
                raise ValueError(
                    f"inputs of one batch expected: {vector.lanes} lanes "
                    f"{vector.array.shape} vs {first.lanes} lanes {first.array.shape}"
                )
        mask_arrays = []
        for name in self.mask_names:
            if masks is None or name not in masks:
                raise KeyError(f"program {self.program.ir.name!r} needs mask {name!r}")
            stream = masks[name]
            if isinstance(stream, (list, tuple)):
                stream = self.executor.broadcast_bits(stream)
            if stream.shape != (first.lane_words,):
                raise ValueError(
                    f"mask {name!r} shape {stream.shape} does not cover "
                    f"{first.lane_words} lane words; build it with broadcast_bits "
                    "over the same batch"
                )
            mask_arrays.append(stream)
        outputs = self.run_arrays([vector.array for vector in vectors], mask_arrays)
        return {
            name: PlaneVector(array, first.lanes)
            for name, array in zip(self.output_names, outputs)
        }

    def describe(self) -> str:
        """Structural summary of the scheduled program plus the substrate."""
        return f"{self.program.describe()} on {self.executor.sliced.describe()}"


class PlaneIRExecutor:
    """The plane-resident *IR executor* capability of a bitsliced backend.

    This is the redesigned surface that replaces the op-by-op
    :class:`PlaneCompute` methods: a consumer expresses its whole formula
    as a :class:`~repro.backends.ir.FieldIR`, schedules it once
    (:func:`~repro.backends.ir.schedule_program`), hands the result to
    :meth:`compile`, and executes the returned :class:`CompiledPlaneIR`
    per step.  Only the batch boundary stays explicit: :meth:`pack` /
    :meth:`unpack` for values, :meth:`broadcast_bits` for per-lane control
    masks.

    Compiled lowerings are memoized per executor, keyed by the program's
    fingerprint (``FieldProgram.key``), so repeated ladder calls never
    re-lower.
    """

    def __init__(self, field: "GF2mField", sliced: "BitslicedNetlist") -> None:
        _require_numpy()
        self.field = field
        self.sliced = sliced
        self.m = sliced.m
        self._compiled: dict = {}
        self._live_masks: dict = {}

    @property
    def chunk_size(self) -> int:
        """Preferred batch lanes per execution (the netlist's chunk size)."""
        return self.sliced.chunk_size

    # ------------------------------------------------------------- boundary
    def pack(self, values: Sequence[int]) -> PlaneVector:
        """Pack validated field elements into a :class:`PlaneVector` (once)."""
        lanes = len(values)
        mask = (1 << self.m) - 1
        planes = pack_rows([value & mask for value in values], self.m)
        return PlaneVector(_planes_to_array(planes, lane_words_for(lanes)), lanes)

    def unpack(self, vector: PlaneVector) -> List[int]:
        """Unpack a :class:`PlaneVector` back into field elements (once)."""
        return unpack_planes(_array_to_planes(vector.array), self.m, vector.lanes)

    def vector(self, array, lanes: int) -> PlaneVector:
        """Rewrap a raw ``run_arrays`` output as a batch of ``lanes`` lanes.

        Ladder consumers thread raw arrays through repeated
        :meth:`CompiledPlaneIR.run_arrays` steps and only rewrap at the
        end; this hook keeps them executor-agnostic (the native executor
        provides the same method over its word buffers).
        """
        return PlaneVector(array, lanes)

    def broadcast_bits(self, bits: Sequence[int]):
        """Pack one control bit per lane into a broadcastable lane-word mask.

        Bit ``p`` of the result is ``bits[p] & 1``; dead lanes stay zero.
        The returned ``(lane_words,)`` array broadcasts over the ``m`` rows
        of a plane array, driving a whole select pass with one mask.
        """
        packed = 0
        for position, bit in enumerate(bits):
            if bit & 1:
                packed |= 1 << position
        lane_words = lane_words_for(len(bits))
        return _np.frombuffer(packed.to_bytes(lane_words * 8, "little"), dtype="<u8")

    def _live_lane_words(self, lane_words: int):
        """An all-live lane mask of ``lane_words`` words (consts prologue)."""
        mask = self._live_masks.get(lane_words)
        if mask is None:
            full = (1 << (lane_words * 64)) - 1
            mask = _np.frombuffer(full.to_bytes(lane_words * 8, "little"), dtype="<u8")
            self._live_masks[lane_words] = mask
        return mask

    # ------------------------------------------------------------- programs
    def compile(self, program: FieldProgram) -> CompiledPlaneIR:
        """The memoized plane lowering of a scheduled ``FieldProgram``."""
        if program.m != self.m:
            raise ValueError(
                f"program is scheduled for m={program.m}, executor is m={self.m}"
            )
        key = program.key if program.key is not None else id(program)
        entry = self._compiled.get(key)
        if entry is None or entry[0] is not program:
            with _trace.span(
                "ir.compile", backend="bitslice", program=program.ir.name
            ), _metrics.timed("ir.compile.bitslice"):
                entry = (program, CompiledPlaneIR(self, program))
            self._compiled[key] = entry
        return entry[1]

    def describe(self) -> str:
        """One-line summary used by the CLI and benchmarks."""
        return f"FieldIR plane executor on {self.sliced.describe()}"


def _warn_plane_compute(method: str) -> None:
    warnings.warn(
        f"PlaneCompute.{method}() is deprecated; express the formula as a "
        "FieldIR (repro.backends.ir) and execute it through "
        "FieldBackend.ir_executor() instead",
        DeprecationWarning,
        stacklevel=3,
    )


class PlaneCompute:
    """Deprecated op-by-op plane interface, kept as shims over FieldIR.

    The five operation methods (:meth:`multiply_planes`,
    :meth:`apply_linear_planes`, :meth:`xor_planes`, :meth:`broadcast_bits`,
    :meth:`select_planes`) predate the formula compiler: consumers drove
    the plane domain one hand-scheduled op at a time.  They now emit
    ``DeprecationWarning`` and delegate to single-op
    :class:`~repro.backends.ir.FieldIR` programs executed through the
    bound :class:`PlaneIRExecutor` — same results, one code path.  New
    code should trace a whole formula and use
    :meth:`~repro.backends.base.FieldBackend.ir_executor` directly; the
    batch boundary (:meth:`pack` / :meth:`unpack`) remains un-deprecated
    and simply forwards to the executor.
    """

    def __init__(
        self,
        field: "GF2mField",
        sliced: "BitslicedNetlist",
        executor: Optional[PlaneIRExecutor] = None,
    ) -> None:
        _require_numpy()
        self.field = field
        self.sliced = sliced
        self.m = sliced.m
        self._executor = executor if executor is not None else PlaneIRExecutor(field, sliced)

    # ------------------------------------------------------------- boundary
    def pack(self, values: Sequence[int]) -> PlaneVector:
        """Pack validated field elements into a :class:`PlaneVector` (once)."""
        return self._executor.pack(values)

    def unpack(self, vector: PlaneVector) -> List[int]:
        """Unpack a :class:`PlaneVector` back into field elements (once)."""
        return self._executor.unpack(vector)

    # -------------------------------------------------------- deprecated ops
    def _run_single_op(
        self, program: FieldProgram, vectors: Sequence[PlaneVector], mask=None
    ) -> List[PlaneVector]:
        compiled = self._executor.compile(program)
        outputs = compiled.run_arrays(
            [vector.array for vector in vectors], [] if mask is None else [mask]
        )
        lanes = vectors[0].lanes
        return [PlaneVector(array, lanes) for array in outputs]

    def multiply_planes(
        self,
        a: Union[PlaneVector, Sequence[PlaneVector]],
        b: Union[PlaneVector, Sequence[PlaneVector]],
    ) -> Union[PlaneVector, List[PlaneVector]]:
        """Deprecated: full products via a single-op (or k-op) IR program.

        Sequences lane-stack exactly as before — the scheduled k-product
        program has one ``MulPass``, which the executor evaluates as one
        netlist pass over the concatenated lanes.
        """
        _warn_plane_compute("multiply_planes")
        if isinstance(a, PlaneVector):
            if not isinstance(b, PlaneVector):
                raise TypeError("multiply_planes needs two vectors or two sequences")
            self._check_pair(a, b, "multiply_planes")
            return self._run_single_op(_op_program("mul", self.m, 1), [a, b])[0]
        a_list, b_list = list(a), list(b)
        if len(a_list) != len(b_list):
            raise ValueError(f"operand counts differ: {len(a_list)} vs {len(b_list)}")
        if not a_list:
            return []
        for pair in zip(a_list, b_list):
            self._check_pair(*pair, "multiply_planes")
        if len({(vector.lane_words, vector.lanes) for vector in a_list}) > 1:
            # Pairs of different batches cannot share one IR execution.
            single = _op_program("mul", self.m, 1)
            return [
                self._run_single_op(single, [a_vec, b_vec])[0]
                for a_vec, b_vec in zip(a_list, b_list)
            ]
        program = _op_program("mul", self.m, len(a_list))
        return self._run_single_op(program, list(a_list) + list(b_list))

    def apply_linear_planes(self, linear_map: "GF2LinearMap", vector: PlaneVector) -> PlaneVector:
        """Deprecated: one GF(2)-linear map as a single-op IR program."""
        _warn_plane_compute("apply_linear_planes")
        program = _op_program("linear", linear_map.input_bits, linear_map.masks, linear_map)
        return self._run_single_op(program, [vector])[0]

    @staticmethod
    def _check_pair(a: PlaneVector, b: PlaneVector, operation: str) -> None:
        if a.array.shape != b.array.shape or a.lanes != b.lanes:
            raise ValueError(
                f"{operation} needs vectors of one batch: "
                f"{a.lanes} lanes {a.array.shape} vs {b.lanes} lanes {b.array.shape}"
            )

    def xor_planes(self, a: PlaneVector, b: PlaneVector) -> PlaneVector:
        """Deprecated: field addition as a single-op IR program."""
        _warn_plane_compute("xor_planes")
        self._check_pair(a, b, "xor_planes")
        return self._run_single_op(_op_program("xor", self.m), [a, b])[0]

    def broadcast_bits(self, bits: Sequence[int]):
        """Deprecated: build control masks via :meth:`PlaneIRExecutor.broadcast_bits`."""
        _warn_plane_compute("broadcast_bits")
        return self._executor.broadcast_bits(bits)

    def select_planes(self, mask, when_set: PlaneVector, when_clear: PlaneVector) -> PlaneVector:
        """Deprecated: per-lane select as a single-op IR program."""
        _warn_plane_compute("select_planes")
        self._check_pair(when_set, when_clear, "select_planes")
        if mask.shape != (when_set.lane_words,):
            raise ValueError(
                f"mask shape {mask.shape} does not cover {when_set.lane_words} lane words; "
                "build it with broadcast_bits over the same batch"
            )
        program = _op_program("select", self.m)
        return self._run_single_op(program, [when_set, when_clear], mask=mask)[0]

    def describe(self) -> str:
        """One-line summary used by the CLI and benchmarks."""
        return f"plane-resident compute on {self.sliced.describe()}"


def _op_program(kind: str, m: int, extra=None, linear_map=None) -> FieldProgram:
    """Memoized single-op FieldIR programs backing the PlaneCompute shims."""
    key = ("plane-shim", kind, m, extra)

    def build() -> FieldProgram:
        builder = IRBuilder(f"plane_{kind}")
        if kind == "mul":
            count = extra
            a_vars = [builder.input(f"a{i}") for i in range(count)]
            b_vars = [builder.input(f"b{i}") for i in range(count)]
            for i in range(count):
                builder.output(f"p{i}", builder.mul(a_vars[i], b_vars[i]))
            return schedule_program(builder.build(), m, {}, key=key)
        if kind == "linear":
            builder.output("y", builder.apply_linear("map", builder.input("x")))
            return schedule_program(builder.build(), m, {"map": linear_map}, key=key)
        if kind == "xor":
            builder.output("y", builder.xor(builder.input("a"), builder.input("b")))
            return schedule_program(builder.build(), m, {}, key=key)
        bit = builder.mask_input("bit")
        builder.output(
            "y", builder.select(bit, builder.input("when_set"), builder.input("when_clear"))
        )
        return schedule_program(builder.build(), m, {}, key=key)

    return cached_program(key, build)
