"""Plane-resident GF(2^m) compute: values that *live* in uint64 bit planes.

The bitsliced backend (:mod:`repro.backends.bitslice`) made one batched
multiplication fast, but a consumer like the Montgomery ladder calls it
``~m`` times per scalar multiplication — and every call pays two full
bit-matrix transposes (rows → planes, planes → rows) plus per-element
scalar Python for everything between the multiplications.  This module
removes the round trips: a batch of field elements is packed into a
:class:`PlaneVector` **once**, every operation of the consuming algorithm
runs directly on the ``(m, lane_words)`` ``uint64`` plane representation,
and rows are unpacked **once** at the end.

Three kinds of operation cover a whole López-Dahab ladder step:

* full products — the bitsliced multiplier netlist evaluated plane-to-plane
  (:meth:`repro.backends.bitslice.BitslicedNetlist.multiply_planes`), with
  several independent products lane-stacked into one netlist pass;
* GF(2)-**linear** maps (squaring, multiplication by a fixed curve
  constant) — a :class:`~repro.galois.field.GF2LinearMap` is lowered by
  :class:`PlaneProgram` into level-segmented gather/XOR passes, the same
  contiguous-slice trick :class:`~repro.backends.bitslice.BitslicedNetlist`
  uses for the multiplier itself;
* data movement — XOR of plane vectors and scalar-bit-dependent *selects*
  driven by a broadcast lane mask, so mixed control bits across one batch
  never leave the plane domain.

:class:`PlaneCompute` bundles these into the capability object a backend
advertises through :meth:`repro.backends.base.FieldBackend.plane_compute`;
the batched curve ladder (:meth:`repro.curves.point.BinaryCurve
.multiply_batch`) detects it and keeps all ``~m`` steps plane-resident.

Compiled :class:`PlaneProgram` s are memoized process-wide (keyed by the
map's basis images), mirroring the multiplier cache, so repeated field or
curve constructions never re-lower a linear map.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from ..engine.bitpack import pack_rows, unpack_planes
from ..pipeline.store import LRUCache

try:  # pragma: no cover - exercised via monkeypatching in the tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.field import GF2LinearMap, GF2mField
    from .bitslice import BitslicedNetlist

__all__ = ["PlaneVector", "PlaneProgram", "PlaneCompute", "plane_program"]


def _require_numpy():
    if _np is None:
        raise ImportError(
            "plane-resident compute needs numpy, which is not installed; "
            "run 'pip install numpy' (or install the gf2m-repro[bitslice] extra)"
        )
    return _np


def lane_words_for(lanes: int) -> int:
    """uint64 words per plane for a batch of ``lanes`` elements (min 1)."""
    return max(1, (lanes + 63) // 64)


def _planes_to_array(planes: Sequence[int], lane_words: int):
    """Big-integer planes → a ``(len(planes), lane_words)`` uint64 array."""
    lane_bytes = lane_words * 8
    buffer = b"".join(plane.to_bytes(lane_bytes, "little") for plane in planes)
    return _np.frombuffer(buffer, dtype="<u8").reshape(len(planes), lane_words)


def _array_to_planes(array) -> List[int]:
    """The inverse of :func:`_planes_to_array` (rows back to big integers)."""
    return [int.from_bytes(_np.ascontiguousarray(row).tobytes(), "little") for row in array]


class _LaneBufferCache:
    """Thread-local per-lane-width buffer pool, bounded to four widths.

    Shared by :class:`PlaneProgram` and
    :class:`~repro.backends.bitslice.BitslicedNetlist`: compiled evaluators
    are cached process-wide and used from multiple threads, so each thread
    gets its own buffers, keyed by lane width and evicted wholesale once
    odd tail widths would accumulate.
    """

    __slots__ = ("_factory", "_local")

    def __init__(self, factory) -> None:
        self._factory = factory
        self._local = threading.local()

    def get(self, lane_words: int):
        buffers = getattr(self._local, "buffers", None)
        if buffers is None:
            buffers = self._local.buffers = {}
        entry = buffers.get(lane_words)
        if entry is None:
            if len(buffers) >= 4:
                buffers.clear()
            entry = self._factory(lane_words)
            buffers[lane_words] = entry
        return entry


@dataclass(frozen=True)
class PlaneVector:
    """A batch of GF(2^m) elements resident in uint64 bit planes.

    ``array`` has shape ``(m, lane_words)``: bit ``p`` of row ``i`` is
    coordinate ``a_i`` of batch element ``p``.  ``lanes`` is the live batch
    size; lane bits at positions ``lanes`` and above are dead (kept zero by
    :meth:`PlaneCompute.pack`, ignored by :meth:`PlaneCompute.unpack`).
    The wrapper is immutable — operations return fresh vectors, so a
    :class:`PlaneVector` can be reused freely across ladder steps.
    """

    array: "object"  # numpy (m, lane_words) uint64; untyped to keep numpy optional
    lanes: int

    @property
    def m(self) -> int:
        """Coordinate count (rows of the plane array)."""
        return self.array.shape[0]

    @property
    def lane_words(self) -> int:
        """uint64 words per plane (columns of the array)."""
        return self.array.shape[1]

    def copy(self) -> "PlaneVector":
        """An independent copy (same values, fresh storage)."""
        return PlaneVector(self.array.copy(), self.lanes)


class PlaneProgram:
    """A GF(2)-linear map compiled to level-segmented plane gather/XOR passes.

    The map sends basis vector ``y^i`` to ``masks[i]``; on plane arrays that
    means output row ``j`` is the XOR of every input row ``i`` whose mask has
    bit ``j`` set.  Each output's XOR tree is balanced, all tree gates are
    renumbered densely in level order (the contiguous-slice trick of
    :class:`~repro.backends.bitslice.BitslicedNetlist`), and one level then
    evaluates as two fancy-indexed gathers plus a single vectorized
    ``bitwise_xor`` into the output slice.  Outputs that copy a single input
    row or are identically zero cost nothing beyond the final output gather.

    Work buffers are thread-local per lane width, so cached programs shared
    across threads never corrupt each other.
    """

    def __init__(self, masks: Sequence[int], out_bits: Optional[int] = None) -> None:
        np = _require_numpy()
        self.input_bits = len(masks)
        self.out_bits = self.input_bits if out_bits is None else out_bits
        if any(mask >> self.out_bits for mask in masks):
            raise ValueError(f"a basis image exceeds the {self.out_bits}-bit output space")

        # refs are (row-kind, index, level): inputs at level 0, gates above.
        gates: List[Tuple[int, Tuple, Tuple]] = []  # (level, fanin_ref, fanin_ref)
        output_refs: List[Optional[Tuple]] = []
        for j in range(self.out_bits):
            refs = [("in", i, 0) for i in range(self.input_bits) if (masks[i] >> j) & 1]
            if not refs:
                output_refs.append(None)
                continue
            while len(refs) > 1:
                reduced = []
                for k in range(0, len(refs) - 1, 2):
                    left, right = refs[k], refs[k + 1]
                    level = 1 + max(left[2], right[2])
                    gates.append((level, left, right))
                    reduced.append(("gate", len(gates) - 1, level))
                if len(refs) % 2:
                    reduced.append(refs[-1])
                refs = reduced
            output_refs.append(refs[0])

        # Dense renumbering: input rows first, then gates sorted by level so
        # each level is one contiguous slice; one reserved all-zero row last.
        order = sorted(range(len(gates)), key=lambda g: gates[g][0])
        gate_row = {g: self.input_bits + position for position, g in enumerate(order)}
        self.row_count = self.input_bits + len(gates) + 1
        self._zero_row = self.row_count - 1

        def row_of(ref: Optional[Tuple]) -> int:
            if ref is None:
                return self._zero_row
            kind, index, _ = ref
            return index if kind == "in" else gate_row[index]

        segments: List[List] = []  # [start, end, fanin0 rows, fanin1 rows]
        current_level = None
        for g in order:
            level, left, right = gates[g]
            if level != current_level:
                segments.append([gate_row[g], gate_row[g], [], []])
                current_level = level
            segment = segments[-1]
            segment[1] = gate_row[g] + 1
            segment[2].append(row_of(left))
            segment[3].append(row_of(right))
        self._segments = [
            (start, end, np.asarray(f0, dtype=np.intp), np.asarray(f1, dtype=np.intp))
            for start, end, f0, f1 in segments
        ]
        self._output_rows = np.asarray([row_of(ref) for ref in output_refs], dtype=np.intp)
        self.xor_count = len(gates)
        self.level_count = len(self._segments)
        max_gather = max((end - start for start, end, _, _ in self._segments), default=0)
        # Work buffer zero-initialized so the reserved zero row stays zero
        # (inputs and gate slices are fully overwritten on every apply, the
        # zero row never); gather scratch for allocation-free np.take.
        self._buffers = _LaneBufferCache(
            lambda lane_words: (
                _np.zeros((self.row_count, lane_words), dtype=_np.uint64),
                _np.empty((max_gather, lane_words), dtype=_np.uint64),
                _np.empty((max_gather, lane_words), dtype=_np.uint64),
            )
        )

    def apply(self, planes):
        """Apply the map to an ``(input_bits, lane_words)`` plane array.

        Returns a fresh ``(out_bits, lane_words)`` array (the final output
        gather never aliases the reused work buffer).
        """
        np = _np
        if planes.shape[0] != self.input_bits:
            raise ValueError(
                f"expected {self.input_bits} input planes, got {planes.shape[0]}"
            )
        work, gather0, gather1 = self._buffers.get(planes.shape[1])
        work[: self.input_bits] = planes
        for start, end, fanin0, fanin1 in self._segments:
            count = end - start
            np.take(work, fanin0, axis=0, out=gather0[:count], mode="clip")
            np.take(work, fanin1, axis=0, out=gather1[:count], mode="clip")
            np.bitwise_xor(gather0[:count], gather1[:count], out=work[start:end])
        return work[self._output_rows]

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"plane program {self.input_bits}->{self.out_bits} bits: "
            f"{self.xor_count} XOR in {self.level_count} levels"
        )


#: Compiled plane programs keyed by the map's basis images — repeated field
#: or curve constructions for the same modulus share one lowering.
_PROGRAM_CACHE = LRUCache(maxsize=64)


def plane_program(linear_map: "GF2LinearMap") -> PlaneProgram:
    """The memoized :class:`PlaneProgram` lowering of a ``GF2LinearMap``."""
    key = (linear_map.input_bits, linear_map.masks)
    return _PROGRAM_CACHE.get_or_create(key, lambda: PlaneProgram(linear_map.masks))


class PlaneCompute:
    """The plane-resident capability of a bitsliced backend.

    Bound to one field and its compiled multiplier
    (:class:`~repro.backends.bitslice.BitslicedNetlist`); exposes exactly
    the operations a consumer needs to keep a whole algorithm in the plane
    domain: :meth:`pack` / :meth:`unpack` at the boundary,
    :meth:`multiply_planes` for full products, :meth:`apply_linear_planes`
    for squarings and constant multiplications, and :meth:`xor_planes` /
    :meth:`select_planes` / :meth:`broadcast_bits` for everything between.

    Independent products of the same batch can be lane-stacked: passing
    sequences to :meth:`multiply_planes` evaluates the netlist once over
    the concatenated lane words instead of once per product.
    """

    def __init__(self, field: "GF2mField", sliced: "BitslicedNetlist") -> None:
        _require_numpy()
        self.field = field
        self.sliced = sliced
        self.m = sliced.m
        # Programs keyed by map identity; the strong reference to the map
        # keeps id() stable for the cache's lifetime.
        self._programs: dict = {}

    # ------------------------------------------------------------- boundary
    def pack(self, values: Sequence[int]) -> PlaneVector:
        """Pack validated field elements into a :class:`PlaneVector` (once)."""
        lanes = len(values)
        mask = (1 << self.m) - 1
        planes = pack_rows([value & mask for value in values], self.m)
        return PlaneVector(_planes_to_array(planes, lane_words_for(lanes)), lanes)

    def unpack(self, vector: PlaneVector) -> List[int]:
        """Unpack a :class:`PlaneVector` back into field elements (once)."""
        return unpack_planes(_array_to_planes(vector.array), self.m, vector.lanes)

    # ------------------------------------------------------------ operations
    def multiply_planes(
        self,
        a: Union[PlaneVector, Sequence[PlaneVector]],
        b: Union[PlaneVector, Sequence[PlaneVector]],
    ) -> Union[PlaneVector, List[PlaneVector]]:
        """Full products entirely in the plane domain.

        With two :class:`PlaneVector` s, one netlist evaluation returns their
        elementwise product.  With two equal-length sequences, the operands
        are lane-stacked and **all** products come out of a single netlist
        evaluation — the per-step ladder multiplications cost two passes
        total instead of one per product.  Every operand pair must share
        its lane layout; a mismatch raises instead of slicing products at
        the wrong word offsets.
        """
        if isinstance(a, PlaneVector):
            if not isinstance(b, PlaneVector):
                raise TypeError("multiply_planes needs two vectors or two sequences")
            self._check_pair(a, b, "multiply_planes")
            return PlaneVector(self.sliced.multiply_planes(a.array, b.array), a.lanes)
        a_list, b_list = list(a), list(b)
        if len(a_list) != len(b_list):
            raise ValueError(f"operand counts differ: {len(a_list)} vs {len(b_list)}")
        if not a_list:
            return []
        for pair in zip(a_list, b_list):
            self._check_pair(*pair, "multiply_planes")
        if len(a_list) == 1:
            return [self.multiply_planes(a_list[0], b_list[0])]
        np = _np
        stacked = self.sliced.multiply_planes(
            np.concatenate([vector.array for vector in a_list], axis=1),
            np.concatenate([vector.array for vector in b_list], axis=1),
        )
        products: List[PlaneVector] = []
        offset = 0
        for vector in a_list:
            width = vector.lane_words
            products.append(PlaneVector(stacked[:, offset:offset + width], vector.lanes))
            offset += width
        return products

    def apply_linear_planes(self, linear_map: "GF2LinearMap", vector: PlaneVector) -> PlaneVector:
        """Apply a GF(2)-linear map (squaring, constant multiply) on planes."""
        entry = self._programs.get(id(linear_map))
        if entry is None or entry[0] is not linear_map:
            entry = (linear_map, plane_program(linear_map))
            self._programs[id(linear_map)] = entry
        return PlaneVector(entry[1].apply(vector.array), vector.lanes)

    @staticmethod
    def _check_pair(a: PlaneVector, b: PlaneVector, operation: str) -> None:
        if a.array.shape != b.array.shape or a.lanes != b.lanes:
            raise ValueError(
                f"{operation} needs vectors of one batch: "
                f"{a.lanes} lanes {a.array.shape} vs {b.lanes} lanes {b.array.shape}"
            )

    def xor_planes(self, a: PlaneVector, b: PlaneVector) -> PlaneVector:
        """Elementwise field addition (plane XOR)."""
        self._check_pair(a, b, "xor_planes")
        return PlaneVector(_np.bitwise_xor(a.array, b.array), a.lanes)

    def broadcast_bits(self, bits: Sequence[int]):
        """Pack one control bit per lane into a broadcastable lane-word mask.

        Bit ``p`` of the result is ``bits[p] & 1``; dead lanes stay zero.
        The returned ``(lane_words,)`` array broadcasts over the ``m`` rows
        of a plane array, so one mask drives a whole :meth:`select_planes`.
        """
        packed = 0
        for position, bit in enumerate(bits):
            if bit & 1:
                packed |= 1 << position
        lane_words = lane_words_for(len(bits))
        return _np.frombuffer(packed.to_bytes(lane_words * 8, "little"), dtype="<u8")

    def select_planes(self, mask, when_set: PlaneVector, when_clear: PlaneVector) -> PlaneVector:
        """Per-lane select: ``when_set`` where the mask bit is 1, else ``when_clear``.

        This is how scalar-bit-dependent ladder swaps stay in the plane
        domain with mixed control bits across the batch — no unpacking, no
        per-lane branches.  The mask must cover the vectors' lane words
        exactly (one bit per lane, as built by :meth:`broadcast_bits` for
        the same batch size); a narrower mask would silently broadcast
        lane 0-63 control bits over every word, so it is rejected.
        """
        np = _np
        self._check_pair(when_set, when_clear, "select_planes")
        if mask.shape != (when_set.lane_words,):
            raise ValueError(
                f"mask shape {mask.shape} does not cover {when_set.lane_words} lane words; "
                "build it with broadcast_bits over the same batch"
            )
        return PlaneVector(
            np.bitwise_or(
                np.bitwise_and(when_set.array, mask),
                np.bitwise_and(when_clear.array, np.bitwise_not(mask)),
            ),
            when_set.lanes,
        )

    def describe(self) -> str:
        """One-line summary used by the CLI and benchmarks."""
        return f"plane-resident compute on {self.sliced.describe()}"
