"""cffi build script and runtime loader for the native GF(2^m) kernel.

Two ways to get the compiled extension:

* **Install time** — ``pip install .[native]`` runs this module through the
  ``cffi_modules`` hook in ``setup.py``, which builds
  ``repro.backends.native._gf2m_native`` into the installed package.
* **Import time** — when the project runs from a source tree (the test and
  benchmark configuration), :func:`extension_module` compiles the kernel
  once into the shared artifact cache (``~/.cache/gf2m-repro/native``,
  ``$GF2M_REPRO_CACHE_DIR`` aware) keyed by a hash of the source, and loads
  it from there on every later run.

Both paths need a C compiler and :mod:`cffi`; every failure is collapsed
into an :class:`ImportError` whose message says how to fix it, so the
registry can degrade to the interpreted tiers cleanly.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import os
import shutil
import sys
import tempfile
from pathlib import Path

import cffi

_MODULE_NAME = "repro.backends.native._gf2m_native"

_CDEF = """
int gf2m_has_clmul(void);
void gf2m_mul_batch(const uint64_t *a, const uint64_t *b, uint64_t *out,
                    long count, int m, int nw, const int32_t *terms, int nterms);
void gf2m_square_batch(const uint64_t *values, uint64_t *out, long count,
                       int m, int nw, const int32_t *terms, int nterms);
void gf2m_run_program(const int32_t *code, int ninstr, uint64_t *regs,
                      long count, int m, int nw, const int32_t *terms,
                      int nterms, const uint64_t *tables,
                      const uint64_t *masks, long lane_words);
"""


def _kernel_source() -> str:
    return (Path(__file__).with_name("_kernel.c")).read_text(encoding="utf-8")


def _make_ffibuilder() -> cffi.FFI:
    builder = cffi.FFI()
    builder.cdef(_CDEF)
    builder.set_source(_MODULE_NAME, _kernel_source(), extra_compile_args=["-O2"])
    return builder


# Entry point consumed by setup.py's ``cffi_modules`` hook.
ffibuilder = _make_ffibuilder()


def _cache_dir() -> Path:
    from ...pipeline.store import default_cache_root

    return default_cache_root() / "native"


def _source_key() -> str:
    payload = "\n".join(
        [
            _CDEF,
            _kernel_source(),
            cffi.__version__,
            "cp%d%d" % sys.version_info[:2],
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _compile_into_cache(target: Path) -> None:
    """Build the extension in a scratch dir, then atomically publish it."""
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = tempfile.mkdtemp(prefix="build-", dir=str(target.parent))
    try:
        built = ffibuilder.compile(tmpdir=scratch, verbose=False)
        os.replace(built, target)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _load_from_path(path: Path):
    loader = importlib.machinery.ExtensionFileLoader(_MODULE_NAME, str(path))
    spec = importlib.util.spec_from_file_location(_MODULE_NAME, str(path), loader=loader)
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module


def extension_module():
    """Return the compiled kernel module, building it on first use.

    Raises :class:`ImportError` when no prebuilt extension exists and the
    environment cannot compile one (no C compiler, unwritable cache, ...).
    """
    try:  # an installed wheel ships the extension next to this file
        from . import _gf2m_native  # type: ignore[attr-defined]

        return _gf2m_native
    except ImportError:
        pass

    suffix = importlib.machinery.EXTENSION_SUFFIXES[0]
    target = _cache_dir() / f"_gf2m_native.{_source_key()}{suffix}"
    try:
        if not target.exists():
            _compile_into_cache(target)
        return _load_from_path(target)
    except Exception as error:
        raise ImportError(
            "the native backend could not build its C extension "
            f"({error.__class__.__name__}: {error}); install a C compiler "
            "and cffi (pip install .[native]) or select another backend"
        ) from error
