/* Word-level GF(2^m) kernel: carry-less multiply + sparse reduction.
 *
 * This is the native analogue of engine/bitpack.py: field elements are
 * little-endian arrays of uint64 words (nw = ceil(m/64)), products are
 * formed by 64x64 -> 128 carry-less multiplication and folded back below
 * degree m with the modulus tail y^m = sum_k y^{t_k}.  The tail term
 * degrees arrive as data, so the same code reduces every modulus in the
 * catalogue (type II pentanomials, trinomials, and the m%64 == 0 edge
 * cases like GF(2^64)); sparse moduli cost one shifted XOR per term.
 *
 * Two carry-less multiply implementations are compiled: a portable 4-bit
 * windowed shift-and-xor version, and (on x86-64 with a toolchain that
 * understands target attributes) a PCLMULQDQ version selected at runtime
 * via __builtin_cpu_supports, so one binary runs everywhere.
 *
 * gf2m_run_program executes a FieldIR instruction stream (mul / xor /
 * linear-map / lane-masked select) over a register file of batched
 * elements, which lets the fused Lopez-Dahab ladder step run as one C
 * call per scalar bit.
 */

#include <stdint.h>
#include <string.h>

#define GF2M_MAX_WORDS 16 /* supports m <= 1024 */

/* ------------------------------------------------------------------ */
/* portable carry-less multiply                                        */
/* ------------------------------------------------------------------ */

static void clmul64_portable(uint64_t a, uint64_t b, uint64_t *lo, uint64_t *hi)
{
    /* 4-bit window over a; b's top three bits are masked off so every
     * table entry fits in 64 bits, then repaired afterwards. */
    uint64_t tab[16];
    uint64_t b_low = b & 0x1FFFFFFFFFFFFFFFULL;
    uint64_t l, h, t;
    int i;

    tab[0] = 0;
    tab[1] = b_low;
    tab[2] = b_low << 1;
    tab[3] = tab[2] ^ b_low;
    tab[4] = tab[2] << 1;
    tab[5] = tab[4] ^ b_low;
    tab[6] = tab[3] << 1;
    tab[7] = tab[6] ^ b_low;
    tab[8] = tab[4] << 1;
    tab[9] = tab[8] ^ b_low;
    tab[10] = tab[5] << 1;
    tab[11] = tab[10] ^ b_low;
    tab[12] = tab[6] << 1;
    tab[13] = tab[12] ^ b_low;
    tab[14] = tab[7] << 1;
    tab[15] = tab[14] ^ b_low;

    l = tab[a & 0xF];
    h = 0;
    for (i = 4; i < 64; i += 4) {
        t = tab[(a >> i) & 0xF];
        l ^= t << i;
        h ^= t >> (64 - i);
    }
    for (i = 61; i < 64; i++) {
        if ((b >> i) & 1) {
            l ^= a << i;
            h ^= a >> (64 - i);
        }
    }
    *lo = l;
    *hi = h;
}

/* spread table: byte -> 16 bits with zeros interleaved (clmul(x, x)) */
static uint16_t sq_spread[256];
static int tables_ready = 0;

static void clsq64(uint64_t a, uint64_t *lo, uint64_t *hi)
{
    *lo = (uint64_t)sq_spread[a & 0xFF]
        | ((uint64_t)sq_spread[(a >> 8) & 0xFF] << 16)
        | ((uint64_t)sq_spread[(a >> 16) & 0xFF] << 32)
        | ((uint64_t)sq_spread[(a >> 24) & 0xFF] << 48);
    *hi = (uint64_t)sq_spread[(a >> 32) & 0xFF]
        | ((uint64_t)sq_spread[(a >> 40) & 0xFF] << 16)
        | ((uint64_t)sq_spread[(a >> 48) & 0xFF] << 32)
        | ((uint64_t)sq_spread[(a >> 56) & 0xFF] << 48);
}

static void mul_words_portable(const uint64_t *a, const uint64_t *b,
                               uint64_t *prod, int nw)
{
    uint64_t lo, hi;
    int i, j;
    for (i = 0; i < 2 * nw; i++)
        prod[i] = 0;
    for (i = 0; i < nw; i++) {
        if (!a[i])
            continue;
        for (j = 0; j < nw; j++) {
            if (!b[j])
                continue;
            clmul64_portable(a[i], b[j], &lo, &hi);
            prod[i + j] ^= lo;
            prod[i + j + 1] ^= hi;
        }
    }
}

static void sq_words_portable(const uint64_t *a, uint64_t *prod, int nw)
{
    int i;
    for (i = 0; i < nw; i++)
        clsq64(a[i], &prod[2 * i], &prod[2 * i + 1]);
}

/* ------------------------------------------------------------------ */
/* PCLMULQDQ variants (runtime-dispatched on x86-64)                   */
/* ------------------------------------------------------------------ */

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GF2M_HAVE_PCLMUL_BUILD 1
#include <immintrin.h>

__attribute__((target("pclmul,sse4.1")))
static void mul_words_pclmul(const uint64_t *a, const uint64_t *b,
                             uint64_t *prod, int nw)
{
    int i, j;
    for (i = 0; i < 2 * nw; i++)
        prod[i] = 0;
    for (i = 0; i < nw; i++) {
        __m128i va = _mm_cvtsi64_si128((long long)a[i]);
        for (j = 0; j < nw; j++) {
            __m128i vb = _mm_cvtsi64_si128((long long)b[j]);
            __m128i p = _mm_clmulepi64_si128(va, vb, 0x00);
            prod[i + j] ^= (uint64_t)_mm_cvtsi128_si64(p);
            prod[i + j + 1] ^= (uint64_t)_mm_extract_epi64(p, 1);
        }
    }
}

__attribute__((target("pclmul,sse4.1")))
static void sq_words_pclmul(const uint64_t *a, uint64_t *prod, int nw)
{
    int i;
    for (i = 0; i < nw; i++) {
        __m128i va = _mm_cvtsi64_si128((long long)a[i]);
        __m128i p = _mm_clmulepi64_si128(va, va, 0x00);
        prod[2 * i] = (uint64_t)_mm_cvtsi128_si64(p);
        prod[2 * i + 1] = (uint64_t)_mm_extract_epi64(p, 1);
    }
}
#endif

typedef void (*mul_words_fn)(const uint64_t *, const uint64_t *, uint64_t *, int);
typedef void (*sq_words_fn)(const uint64_t *, uint64_t *, int);

static mul_words_fn mul_words = mul_words_portable;
static sq_words_fn sq_words = sq_words_portable;
static int using_clmul = 0;

static void ensure_init(void)
{
    int b, i;
    uint16_t spread;
    if (tables_ready)
        return;
    for (b = 0; b < 256; b++) {
        spread = 0;
        for (i = 0; i < 8; i++)
            if ((b >> i) & 1)
                spread |= (uint16_t)(1u << (2 * i));
        sq_spread[b] = spread;
    }
#if defined(GF2M_HAVE_PCLMUL_BUILD)
    if (__builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1")) {
        mul_words = mul_words_pclmul;
        sq_words = sq_words_pclmul;
        using_clmul = 1;
    }
#endif
    tables_ready = 1;
}

int gf2m_has_clmul(void)
{
    ensure_init();
    return using_clmul;
}

/* ------------------------------------------------------------------ */
/* reduction: fold bits >= m with y^m = sum_k y^{t_k}                  */
/* ------------------------------------------------------------------ */

static void reduce_words(uint64_t *prod, uint64_t *out, int m, int nw,
                         const int32_t *terms, int nterms, uint64_t *high)
{
    int total = 2 * nw;
    int hw = m >> 6;  /* first word holding bits >= m */
    int hb = m & 63;  /* bit offset of m inside that word */
    int k, w, any;

    for (;;) {
        /* high = (bits of prod at positions >= m) >> m */
        any = 0;
        for (k = 0; k + hw < total; k++) {
            uint64_t v = prod[k + hw] >> hb;
            if (hb && k + hw + 1 < total)
                v |= prod[k + hw + 1] << (64 - hb);
            high[k] = v;
            any |= (v != 0);
        }
        if (!any)
            break;
        /* clear those bits ... */
        if (hb) {
            prod[hw] &= (1ULL << hb) - 1;
            w = hw + 1;
        } else {
            w = hw;
        }
        for (; w < total; w++)
            prod[w] = 0;
        /* ... and fold them back shifted by each tail term degree */
        for (w = 0; w < nterms; w++) {
            int t = terms[w];
            int tw = t >> 6;
            int tb = t & 63;
            for (k = 0; k + hw < total; k++) {
                uint64_t v = high[k];
                if (!v || k + tw >= total)
                    continue;
                prod[k + tw] ^= v << tb;
                if (tb && k + tw + 1 < total)
                    prod[k + tw + 1] ^= v >> (64 - tb);
            }
        }
    }
    for (k = 0; k < nw; k++)
        out[k] = prod[k];
}

/* ------------------------------------------------------------------ */
/* batch entry points                                                  */
/* ------------------------------------------------------------------ */

void gf2m_mul_batch(const uint64_t *a, const uint64_t *b, uint64_t *out,
                    long count, int m, int nw, const int32_t *terms, int nterms)
{
    uint64_t prod[2 * GF2M_MAX_WORDS], high[2 * GF2M_MAX_WORDS];
    long e;
    ensure_init();
    for (e = 0; e < count; e++) {
        mul_words(a + e * nw, b + e * nw, prod, nw);
        reduce_words(prod, out + e * nw, m, nw, terms, nterms, high);
    }
}

void gf2m_square_batch(const uint64_t *values, uint64_t *out, long count,
                       int m, int nw, const int32_t *terms, int nterms)
{
    uint64_t prod[2 * GF2M_MAX_WORDS], high[2 * GF2M_MAX_WORDS];
    long e;
    ensure_init();
    for (e = 0; e < count; e++) {
        sq_words(values + e * nw, prod, nw);
        reduce_words(prod, out + e * nw, m, nw, terms, nterms, high);
    }
}

/* ------------------------------------------------------------------ */
/* FieldIR program runner                                              */
/* ------------------------------------------------------------------ */

/* Instructions are 5 int32 words: [op, dst, x, y, z].
 *   op 1 MUL:    dst = x * y
 *   op 2 XOR:    dst = x ^ y
 *   op 3 LINEAR: dst = table[z] applied to register x   (y unused)
 *   op 4 SELECT: dst = mask[z] ? x : y  (per lane)
 * Registers are vid-indexed blocks of count*nw words; linear-map tables
 * are ceil(m/8) * 256 rows of nw words each; select masks are packed
 * lane bitmaps of lane_words words per mask. */

void gf2m_run_program(const int32_t *code, int ninstr, uint64_t *regs,
                      long count, int m, int nw, const int32_t *terms,
                      int nterms, const uint64_t *tables,
                      const uint64_t *masks, long lane_words)
{
    uint64_t prod[2 * GF2M_MAX_WORDS], high[2 * GF2M_MAX_WORDS];
    int nbytes = (m + 7) >> 3;
    long stride = count * nw;
    long e, k;
    int pc, w, bi;

    ensure_init();
    for (pc = 0; pc < ninstr; pc++) {
        const int32_t *ins = code + 5 * pc;
        uint64_t *dst = regs + (long)ins[1] * stride;
        switch (ins[0]) {
        case 1: { /* mul */
            const uint64_t *x = regs + (long)ins[2] * stride;
            const uint64_t *y = regs + (long)ins[3] * stride;
            for (e = 0; e < count; e++) {
                mul_words(x + e * nw, y + e * nw, prod, nw);
                reduce_words(prod, dst + e * nw, m, nw, terms, nterms, high);
            }
            break;
        }
        case 2: { /* xor */
            const uint64_t *x = regs + (long)ins[2] * stride;
            const uint64_t *y = regs + (long)ins[3] * stride;
            for (k = 0; k < stride; k++)
                dst[k] = x[k] ^ y[k];
            break;
        }
        case 3: { /* linear map via per-byte tables */
            const uint64_t *x = regs + (long)ins[2] * stride;
            const uint64_t *tab = tables + (long)ins[4] * nbytes * 256 * nw;
            for (e = 0; e < count; e++) {
                const uint64_t *src = x + e * nw;
                uint64_t *o = dst + e * nw;
                for (w = 0; w < nw; w++)
                    o[w] = 0;
                for (bi = 0; bi < nbytes; bi++) {
                    unsigned byte =
                        (unsigned)((src[bi >> 3] >> ((bi & 7) * 8)) & 0xFF);
                    if (byte) {
                        const uint64_t *row = tab + ((long)bi * 256 + byte) * nw;
                        for (w = 0; w < nw; w++)
                            o[w] ^= row[w];
                    }
                }
            }
            break;
        }
        case 4: { /* lane-masked select */
            const uint64_t *x = regs + (long)ins[2] * stride;
            const uint64_t *y = regs + (long)ins[3] * stride;
            const uint64_t *mask = masks + (long)ins[4] * lane_words;
            for (e = 0; e < count; e++) {
                uint64_t sel = (uint64_t)0 - ((mask[e >> 6] >> (e & 63)) & 1);
                const uint64_t *xe = x + e * nw;
                const uint64_t *ye = y + e * nw;
                uint64_t *o = dst + e * nw;
                for (w = 0; w < nw; w++)
                    o[w] = (xe[w] & sel) | (ye[w] & ~sel);
            }
            break;
        }
        default:
            return; /* unreachable: the compiler only emits ops 1-4 */
        }
    }
}
