"""The native word-level backend: C carry-less multiply + sparse reduction.

This package is the compiled tier ROADMAP item 2 calls for — the
word-level analogue of :mod:`repro.engine.bitpack`: field elements live as
little-endian ``uint64`` word arrays, products are 64x64 carry-less
multiplications (PCLMULQDQ when the CPU has it, a portable 4-bit window
otherwise) and the modulus tail folds the product back below degree ``m``
with one shifted XOR per term — exactly the sparse structure the paper's
type II pentanomials exploit.

Three layers:

* :mod:`._kernel.c` / :mod:`._build` — the C kernel, compiled through
  :mod:`cffi` at install time (``pip install .[native]``) or on first use
  into the shared artifact cache;
* :class:`NativeBackend` — the full :class:`~repro.backends.base.FieldBackend`
  surface over contiguous word buffers, one C call per batch;
* :class:`NativeIRExecutor` / :class:`CompiledNativeIR` — the
  :meth:`~repro.backends.base.FieldBackend.ir_executor` capability:
  a scheduled :class:`~repro.backends.ir.FieldProgram` lowers once to a
  flat instruction stream (mul / xor / linear-map / lane-masked select)
  that ``gf2m_run_program`` drives over a C register file, so the fused
  López-Dahab ladder step costs one Python call per scalar bit.

Everything degrades cleanly: without cffi or a C compiler the backend
raises a clear :class:`ImportError` and the registry default falls back to
the interpreted tiers (:func:`native_available` is the predicate).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from ...telemetry import metrics as _metrics
from ...telemetry import trace as _trace
from ..base import BackendCapabilities, FieldBackend
from ..ir import K_LINEAR, K_MUL, K_XOR, FieldProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...galois.field import GF2mField

__all__ = [
    "CompiledNativeIR",
    "NativeBackend",
    "NativeIRExecutor",
    "NativeVector",
    "native_available",
]

#: Preferred lanes per compiled-program execution; bounds the C register
#: file (~1 MiB at GF(2^233)) while keeping per-step Python overhead small.
DEFAULT_CHUNK = 2048

_OP_MUL, _OP_XOR, _OP_LINEAR, _OP_SELECT = 1, 2, 3, 4

_EXT = None
_EXT_ERROR: Optional[ImportError] = None
_EXT_LOCK = threading.Lock()


def _load_extension():
    """The compiled kernel module (memoized), or a clear ImportError."""
    global _EXT, _EXT_ERROR
    if _EXT is not None:
        return _EXT
    if _EXT_ERROR is not None:
        raise _EXT_ERROR
    with _EXT_LOCK:
        if _EXT is None and _EXT_ERROR is None:
            try:
                from . import _build

                _EXT = _build.extension_module()
            except ImportError as error:
                _EXT_ERROR = ImportError(
                    f"the native backend is unavailable: {error}"
                )
        if _EXT is not None:
            return _EXT
        raise _EXT_ERROR


def native_available() -> bool:
    """True when the C extension is importable (or buildable) here."""
    try:
        _load_extension()
    except ImportError:
        return False
    return True


def _lane_words_for(lanes: int) -> int:
    return max(1, (lanes + 63) // 64)


class NativeVector:
    """A batch of field elements as one contiguous word buffer.

    ``buf`` holds ``lanes`` elements of ``nw`` little-endian uint64 words
    each (element-major, the layout the C kernel indexes).  ``array``
    returns ``self`` so the executor flows of :mod:`repro.curves.point`
    (``pack(...).array`` / ``.copy()`` / ``run_arrays``) work unchanged
    across the plane and native executors.
    """

    __slots__ = ("buf", "lanes", "nw")

    def __init__(self, buf: bytearray, lanes: int, nw: int) -> None:
        self.buf = buf
        self.lanes = lanes
        self.nw = nw

    @property
    def array(self) -> "NativeVector":
        return self

    @property
    def lane_words(self) -> int:
        return _lane_words_for(self.lanes)

    def copy(self) -> "NativeVector":
        return NativeVector(bytearray(self.buf), self.lanes, self.nw)


class NativeMask:
    """A packed per-lane select mask (``lane_words`` little-endian words)."""

    __slots__ = ("buf", "lane_words")

    def __init__(self, buf: bytes, lane_words: int) -> None:
        self.buf = buf
        self.lane_words = lane_words


class NativeBackend(FieldBackend):
    """Word-level C arithmetic for one field through the cffi kernel."""

    name = "native"
    capabilities = BackendCapabilities(
        vectorized=True, compiled=True, min_efficient_batch=8, plane_resident=True
    )

    def __init__(
        self,
        field: "GF2mField",
        method: Optional[str] = None,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> None:
        if method is not None:
            raise ValueError(
                "the native backend evaluates no circuit: it computes "
                "word-level clmul+reduction directly, so method= applies "
                "only to the engine and bitslice backends"
            )
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        super().__init__(field)
        self.m = field.m
        self.chunk_size = chunk_size
        self._nw = max(1, (field.m + 63) // 64)
        if self._nw > 16:
            raise ValueError("the native kernel supports m <= 1024")
        self._ext = _load_extension()
        self._ffi = self._ext.ffi
        terms = [i for i in range(field.m) if (field.modulus >> i) & 1]
        self._terms = self._ffi.new("int32_t[]", terms)
        self._nterms = len(terms)
        self._mask = (1 << field.m) - 1
        self._executor: Optional[NativeIRExecutor] = None

    # ------------------------------------------------------------- boundary
    def _pack(self, values: Sequence[int]) -> bytes:
        nb = self._nw * 8
        mask = self._mask
        return b"".join((value & mask).to_bytes(nb, "little") for value in values)

    def _unpack(self, buf: bytearray, count: int) -> List[int]:
        nb = self._nw * 8
        return [
            int.from_bytes(buf[i * nb:(i + 1) * nb], "little") for i in range(count)
        ]

    # ------------------------------------------------------------- interface
    def multiply(self, a: int, b: int) -> int:
        return self.multiply_batch([a], [b])[0]

    def multiply_batch(self, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
        if len(a_values) != len(b_values):
            raise ValueError(
                f"operand streams differ in length: {len(a_values)} vs {len(b_values)}"
            )
        count = len(a_values)
        if not count:
            return []
        self._count_batch("multiply_batch", count)
        ffi = self._ffi
        out = bytearray(count * self._nw * 8)
        self._ext.lib.gf2m_mul_batch(
            ffi.from_buffer("uint64_t[]", self._pack(a_values)),
            ffi.from_buffer("uint64_t[]", self._pack(b_values)),
            ffi.from_buffer("uint64_t[]", out, require_writable=True),
            count, self.m, self._nw, self._terms, self._nterms,
        )
        return self._unpack(out, count)

    def square_batch(self, values: Sequence[int]) -> List[int]:
        count = len(values)
        if not count:
            return []
        ffi = self._ffi
        out = bytearray(count * self._nw * 8)
        self._ext.lib.gf2m_square_batch(
            ffi.from_buffer("uint64_t[]", self._pack(values)),
            ffi.from_buffer("uint64_t[]", out, require_writable=True),
            count, self.m, self._nw, self._terms, self._nterms,
        )
        return self._unpack(out, count)

    def inverse_batch(self, values: Sequence[int]) -> List[int]:
        """Simultaneous inversion via a product tree of batched multiplies.

        Same shape as the bitslice backend's tree: pair the values upward
        to the root product in ``log2(len)`` :meth:`multiply_batch` levels,
        invert the root once with the scalar reference, then walk back down
        handing each node's inverse to its two children.  Exact arithmetic,
        so results stay byte-identical to the sequential Montgomery chain;
        tiny batches keep the chain.
        """
        values = list(values)
        if 0 in values:
            index = values.index(0)
            raise ZeroDivisionError(f"0 has no multiplicative inverse (batch index {index})")
        if len(values) < 16:
            return super().inverse_batch(values)
        self._count_batch("inverse_batch", len(values))
        levels = [values]
        while len(levels[-1]) > 1:
            current = levels[-1]
            half = len(current) // 2
            products = self.multiply_batch(current[0:2 * half:2], current[1:2 * half:2])
            if len(current) % 2:
                products.append(current[-1])
            levels.append(products)
        inverses = [self.field.inverse(levels[-1][0])]
        for level in reversed(levels[:-1]):
            half = len(level) // 2
            left_factors: List[int] = []
            right_factors: List[int] = []
            for i in range(half):
                left_factors.extend((inverses[i], inverses[i]))
                right_factors.extend((level[2 * i + 1], level[2 * i]))
            children = self.multiply_batch(left_factors, right_factors)
            if len(level) % 2:
                children.append(inverses[half])
            inverses = children
        return inverses

    # ------------------------------------------------------------- executor
    def ir_executor(self) -> "NativeIRExecutor":
        """The FieldIR native executor (compiled instruction streams)."""
        if self._executor is None:
            self._executor = NativeIRExecutor(self)
        return self._executor

    # ----------------------------------------------------------- introspection
    def describe(self) -> str:
        clmul = "PCLMULQDQ" if self._ext.lib.gf2m_has_clmul() else "portable clmul"
        return (
            f"native[C] GF(2^{self.m}): {self._nw}x64-bit words, {clmul}, "
            f"{self._nterms}-term reduction, {self.chunk_size} lanes/chunk"
        )


class CompiledNativeIR:
    """One :class:`~repro.backends.ir.FieldProgram` as a C instruction stream.

    Built by :meth:`NativeIRExecutor.compile`.  The lowering walks the
    scheduled passes once and emits flat ``[op, dst, x, y, z]`` int32
    instructions over a vid-indexed register file; every
    :class:`~repro.galois.field.GF2LinearMap` the program references is
    rebuilt as a flat per-byte table buffer the C side indexes directly.
    ``run_arrays`` then costs a handful of ``memmove`` s plus **one** C
    call, whatever the program size — the fused ladder step runs its five
    products, all linear chains and four selects without returning to
    Python.
    """

    def __init__(self, executor: "NativeIRExecutor", program: FieldProgram) -> None:
        backend = executor.backend
        ffi = backend._ffi
        self.executor = executor
        self.program = program
        self.m = program.m
        ir = program.ir
        self.input_names = [name for name, _ in ir.inputs]
        self.mask_names = [name for name, _ in ir.mask_inputs]
        self.output_names = [name for name, _ in ir.outputs]
        self._input_vids = [vid for _, vid in ir.inputs]
        self._output_vids = [vid for _, vid in ir.outputs]
        self._nreg = program.op_count

        code: List[int] = []
        map_index: Dict[tuple, int] = {}
        map_objects: List[object] = []
        # (label, first instruction, one-past-last) per scheduled pass: when a
        # tracer is live, run_arrays executes each range as its own C call so
        # the trace shows real per-fused-pass timings; disabled runs keep the
        # single whole-program call.
        pass_ranges: List[tuple] = []
        for pass_index, item in enumerate(program.passes):
            pass_start = len(code) // 5
            if item.kind == K_MUL:
                for a_vid, b_vid, out_vid in item.pairs:
                    code += [_OP_MUL, out_vid, a_vid, b_vid, 0]
            elif item.kind == K_LINEAR:
                for op in item.ops:
                    if op[1] == K_XOR:
                        code += [_OP_XOR, op[0], op[2], op[3], 0]
                    else:
                        linear_map = op[2]
                        key = (linear_map.input_bits, linear_map.masks)
                        index = map_index.get(key)
                        if index is None:
                            if linear_map.input_bits != self.m:
                                raise ValueError(
                                    f"linear map acts on {linear_map.input_bits} bits, "
                                    f"program is scheduled for m={self.m}"
                                )
                            index = map_index[key] = len(map_objects)
                            map_objects.append(linear_map)
                        code += [_OP_LINEAR, op[0], op[3], 0, index]
            else:
                for mask_name, set_vid, clear_vid, out_vid in item.triples:
                    code += [
                        _OP_SELECT, out_vid, set_vid, clear_vid,
                        self.mask_names.index(mask_name),
                    ]
            pass_ranges.append(
                (f"ir.pass.{pass_index:02d}.{item.kind}", pass_start, len(code) // 5)
            )
        self._pass_ranges = pass_ranges
        self._ninstr = len(code) // 5
        self._code = ffi.new("int32_t[]", code)

        nb = backend._nw * 8
        nbytes = (self.m + 7) // 8
        parts: List[bytes] = []
        for linear_map in map_objects:
            for tables in linear_map.tables:
                parts.extend(value.to_bytes(nb, "little") for value in tables)
            if len(linear_map.tables) != nbytes:
                raise ValueError(
                    f"linear map has {len(linear_map.tables)} byte tables, "
                    f"expected {nbytes}"
                )
        self._tables_buf = b"".join(parts) if parts else bytes(8)
        self._tables = ffi.from_buffer("uint64_t[]", self._tables_buf)
        self._consts = [
            (vid, value.to_bytes(nb, "little")) for vid, value in program.consts
        ]
        self._empty_masks = bytes(8)
        self._regs: Dict[int, object] = {}
        self._lock = threading.Lock()

    def _regs_for(self, count: int):
        regs = self._regs.get(count)
        if regs is None:
            if len(self._regs) >= 4:
                self._regs.clear()
            regs = self.executor.backend._ffi.new(
                "uint64_t[]", self._nreg * count * self.executor.nw
            )
            self._regs[count] = regs
        return regs

    def run_arrays(self, input_arrays: Sequence[NativeVector],
                   mask_arrays: Sequence[NativeMask]) -> List[NativeVector]:
        """Execute over :class:`NativeVector` s in declared input order.

        ``mask_arrays`` are packed lane masks (one per declared mask input,
        as built by :meth:`NativeIRExecutor.broadcast_bits`).  Returns
        fresh output vectors in declared output order — the caller may
        feed them back in as the next step's inputs.
        """
        backend = self.executor.backend
        ffi = backend._ffi
        nw = self.executor.nw
        count = input_arrays[0].lanes
        lane_words = _lane_words_for(count)
        stride = count * nw
        stride_bytes = stride * 8
        if len(self.mask_names) == 0:
            masks_buf = self._empty_masks
        elif len(self.mask_names) == 1:
            masks_buf = mask_arrays[0].buf
        else:
            masks_buf = b"".join(bytes(mask.buf) for mask in mask_arrays)
        with self._lock:
            regs = self._regs_for(count)
            for vid, vector in zip(self._input_vids, input_arrays):
                ffi.memmove(regs + vid * stride, vector.buf, stride_bytes)
            for vid, const_bytes in self._consts:
                ffi.memmove(regs + vid * stride, const_bytes * count, stride_bytes)
            run = backend._ext.lib.gf2m_run_program
            masks_c = ffi.from_buffer("uint64_t[]", masks_buf)
            tracer = _trace.TRACER
            if tracer.enabled:
                # The interpreter keeps no state between instructions, so a
                # pass range executes identically as its own call.
                for label, start, end in self._pass_ranges:
                    if start == end:
                        continue
                    with tracer.span(label, lanes=count):
                        run(
                            self._code + start * 5, end - start, regs, count,
                            self.m, nw, backend._terms, backend._nterms,
                            self._tables, masks_c, lane_words,
                        )
            else:
                run(
                    self._code, self._ninstr, regs, count, self.m, nw,
                    backend._terms, backend._nterms, self._tables,
                    masks_c, lane_words,
                )
            outputs = []
            for vid in self._output_vids:
                buf = bytearray(stride_bytes)
                ffi.memmove(buf, regs + vid * stride, stride_bytes)
                outputs.append(NativeVector(buf, count, nw))
        return outputs

    def run(
        self,
        inputs: Mapping[str, NativeVector],
        masks: Optional[Mapping[str, Sequence[int]]] = None,
    ) -> Dict[str, NativeVector]:
        """Name-keyed execution over :class:`NativeVector` s.

        Mask streams may be plain 0/1 bit sequences (broadcast here) or
        prebuilt :class:`NativeMask` es.  All inputs must share one batch.
        """
        vectors = []
        for name in self.input_names:
            if name not in inputs:
                raise KeyError(f"program {self.program.ir.name!r} needs input {name!r}")
            vectors.append(inputs[name])
        first = vectors[0]
        for vector in vectors[1:]:
            if vector.lanes != first.lanes or vector.nw != first.nw:
                raise ValueError(
                    f"inputs of one batch expected: {vector.lanes} lanes "
                    f"x{vector.nw} words vs {first.lanes} lanes x{first.nw} words"
                )
        mask_arrays = []
        for name in self.mask_names:
            if masks is None or name not in masks:
                raise KeyError(f"program {self.program.ir.name!r} needs mask {name!r}")
            stream = masks[name]
            if isinstance(stream, (list, tuple)):
                stream = self.executor.broadcast_bits(stream)
            if stream.lane_words != first.lane_words:
                raise ValueError(
                    f"mask {name!r} covers {stream.lane_words} lane words, batch "
                    f"needs {first.lane_words}; build it with broadcast_bits "
                    "over the same batch"
                )
            mask_arrays.append(stream)
        outputs = self.run_arrays([vector.array for vector in vectors], mask_arrays)
        return dict(zip(self.output_names, outputs))

    def describe(self) -> str:
        """Structural summary of the scheduled program plus the substrate."""
        return f"{self.program.describe()} on {self.executor.backend.describe()}"


class NativeIRExecutor:
    """The native *IR executor* capability of a :class:`NativeBackend`.

    Same surface as :class:`~repro.backends.planes.PlaneIRExecutor` — the
    consumers in :mod:`repro.curves.point` drive either interchangeably:
    :meth:`pack` / :meth:`unpack` at the batch boundary,
    :meth:`broadcast_bits` for per-lane control masks, :meth:`compile` for
    the memoized lowering, :meth:`vector` to rewrap raw step outputs.
    """

    def __init__(self, backend: NativeBackend) -> None:
        self.backend = backend
        self.field = backend.field
        self.m = backend.m
        self.nw = backend._nw
        self._compiled: Dict[object, tuple] = {}

    @property
    def chunk_size(self) -> int:
        """Preferred batch lanes per execution (bounds the register file)."""
        return self.backend.chunk_size

    # ------------------------------------------------------------- boundary
    def pack(self, values: Sequence[int]) -> NativeVector:
        """Pack validated field elements into a :class:`NativeVector` (once)."""
        return NativeVector(
            bytearray(self.backend._pack(values)), len(values), self.nw
        )

    def unpack(self, vector: NativeVector) -> List[int]:
        """Unpack a :class:`NativeVector` back into field elements (once)."""
        return self.backend._unpack(vector.buf, vector.lanes)

    def vector(self, array: NativeVector, lanes: int) -> NativeVector:
        """Rewrap a raw ``run_arrays`` output as a batch of ``lanes`` lanes."""
        return NativeVector(array.buf, lanes, array.nw)

    def broadcast_bits(self, bits: Sequence[int]) -> NativeMask:
        """Pack one control bit per lane into a :class:`NativeMask`.

        Bit ``p`` of the result is ``bits[p] & 1``; dead lanes stay zero.
        """
        packed = 0
        for position, bit in enumerate(bits):
            if bit & 1:
                packed |= 1 << position
        lane_words = _lane_words_for(len(bits))
        return NativeMask(packed.to_bytes(lane_words * 8, "little"), lane_words)

    # ------------------------------------------------------------- programs
    def compile(self, program: FieldProgram) -> CompiledNativeIR:
        """The memoized native lowering of a scheduled ``FieldProgram``."""
        if program.m != self.m:
            raise ValueError(
                f"program is scheduled for m={program.m}, executor is m={self.m}"
            )
        key = program.key if program.key is not None else id(program)
        entry = self._compiled.get(key)
        if entry is None or entry[0] is not program:
            with _trace.span(
                "ir.compile", backend=self.backend.name, program=program.ir.name
            ), _metrics.timed("ir.compile.native"):
                entry = (program, CompiledNativeIR(self, program))
            self._compiled[key] = entry
        return entry[1]

    def describe(self) -> str:
        """One-line summary used by the CLI and benchmarks."""
        return f"FieldIR native executor on {self.backend.describe()}"
