"""The scalar big-integer reference backend.

This is the arithmetic every other backend is checked against, extracted
from the original ``GF2mField`` scalar code path: a carry-less product
(:func:`repro.galois.gf2poly.clmul`) followed by reduction modulo the
defining polynomial (:func:`repro.galois.gf2poly.poly_mod`), one pair at a
time.  No batching, no compilation, no one-time costs — which also makes
it the fastest choice for tiny batches and the only choice for fields too
small to carry a bit-parallel multiplier circuit (m < 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..galois.gf2poly import clmul, poly_mod
from .base import BackendCapabilities, FieldBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.field import GF2mField

__all__ = ["PythonIntBackend"]


class PythonIntBackend(FieldBackend):
    """Scalar carry-less multiply + reduce, the byte-exact reference.

    ``method`` is accepted for interface uniformity with the circuit-backed
    backends (the registry passes resolved options to every factory) but is
    meaningless here — the scalar path has no multiplier construction to
    select — so anything but ``None`` is rejected loudly rather than
    silently ignored.
    """

    name = "python"
    capabilities = BackendCapabilities(vectorized=False, compiled=False, min_efficient_batch=1)

    def __init__(self, field: "GF2mField", method: Optional[str] = None) -> None:
        super().__init__(field)
        if method is not None:
            raise ValueError(
                f"the python backend evaluates no circuit, so method={method!r} selects nothing; "
                "pick the 'engine' or 'bitslice' backend to choose a multiplier construction"
            )

    def multiply(self, a: int, b: int) -> int:
        return poly_mod(clmul(a, b), self.field.modulus)

    def multiply_batch(self, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
        self._count_batch("multiply_batch", len(a_values))
        modulus = self.field.modulus
        return [poly_mod(clmul(a, b), modulus) for a, b in zip(a_values, b_values)]

    def describe(self) -> str:
        return f"python[scalar] GF(2^{self.field.m}): carry-less multiply + reduce per pair"
