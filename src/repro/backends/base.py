"""The :class:`FieldBackend` contract every execution substrate implements.

A *backend* is one way of physically evaluating GF(2^m) arithmetic on
operand streams.  The repository grew three of them organically — scalar
big-int reference code in :mod:`repro.galois.field`, the compiled netlist
engine of :mod:`repro.engine`, and ad-hoc batched paths inside the curve
ladders — each wired up differently.  This module gives them one interface
so that every layer above (the field, the curve ladders, the protocol
batch APIs, the CLI) routes through a backend object and new substrates
(SIMD bitslicing, GPU kernels, C extensions) drop in without touching the
callers.

Contract
--------
* A backend is bound to one :class:`~repro.galois.field.GF2mField` and
  implements :meth:`multiply`, :meth:`multiply_batch`, :meth:`square_batch`
  and :meth:`inverse_batch`.
* Inputs are assumed to be *validated* field elements — the field layer
  performs the (hoisted, O(1)-per-batch) range checks before delegating,
  and the curve ladders feed backends internally-produced values only.
* Every backend must be **byte-identical** to the scalar reference
  (``GF2mField.multiply`` / ``square`` / ``inverse``) on all inputs; the
  parity harness (:func:`repro.backends.registry.assert_backend_parity`
  and the backend-parameterized
  :func:`repro.netlist.verify.verify_by_simulation`) asserts this
  uniformly for every registered implementation.
* :attr:`FieldBackend.capabilities` advertises coarse performance traits
  so callers can pick sensible defaults without knowing concrete classes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Sequence

from ..galois.pentanomials import type_ii_parameters
from ..telemetry import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..galois.field import GF2mField

__all__ = ["BackendCapabilities", "FieldBackend", "default_method_for"]


def default_method_for(modulus: int) -> str:
    """The default multiplier construction for a circuit-backed backend.

    The paper's ``thiswork`` multiplier exists exactly for type II
    pentanomials; every other modulus falls back to the generic
    ``schoolbook`` construction.  This is the single home of the selection
    logic that used to be duplicated in ``GF2mField.multiply_batch``.
    """
    return "thiswork" if type_ii_parameters(modulus) is not None else "schoolbook"


@dataclass(frozen=True)
class BackendCapabilities:
    """Coarse performance traits a backend advertises to callers.

    Attributes
    ----------
    vectorized:
        Whether one evaluation step processes many operand pairs at once
        (bit-packed planes); scalar backends pay per-pair cost instead.
    compiled:
        Whether the backend pays a one-time circuit generation/compilation
        cost that the caches amortize across calls.
    min_efficient_batch:
        The batch size from which the backend typically overtakes the
        scalar reference; below it the ``python`` backend usually wins.
    plane_resident:
        Whether the backend can keep whole algorithms in its packed plane
        representation (:meth:`FieldBackend.ir_executor` returns a
        :class:`~repro.backends.planes.PlaneIRExecutor`): consumers trace
        their formula as a :class:`~repro.backends.ir.FieldIR`, compile it
        once, pack operands once, run every step as fused plane passes, and
        unpack once — the batched Montgomery ladder uses this to skip
        ~2·m transposes per scalar multiplication.
    """

    vectorized: bool
    compiled: bool
    min_efficient_batch: int
    plane_resident: bool = False


class FieldBackend(ABC):
    """One execution substrate for the batch arithmetic of a single field.

    Subclasses set :attr:`name` and :attr:`capabilities` and implement the
    abstract methods.  Instances are cheap handles — expensive state
    (generated circuits, compiled evaluators, plane buffers) is built
    lazily and shared through the module-level caches, and the registry
    (:mod:`repro.backends.registry`) caches backend instances per
    ``(name, modulus, options)`` so repeated resolution costs nothing.
    """

    #: Short registry identifier (``"python"``, ``"engine"``, ``"bitslice"``).
    name: str = "abstract"
    #: Performance traits; overridden per subclass.
    capabilities: BackendCapabilities = BackendCapabilities(
        vectorized=False, compiled=False, min_efficient_batch=1
    )

    def __init__(self, field: "GF2mField") -> None:
        self.field = field

    # ------------------------------------------------------------- interface
    def _count_batch(self, op: str, elements: int) -> None:
        """Telemetry hook: one counter bump per batched call, none when off.

        Cost discipline: the disabled path is a single class-attribute
        check — no dict lookups ride along with a field operation.
        """
        registry = _metrics.REGISTRY
        if registry.enabled:
            registry.record_batch(self.name, op, elements)

    @abstractmethod
    def multiply(self, a: int, b: int) -> int:
        """The product of one validated operand pair."""

    @abstractmethod
    def multiply_batch(self, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
        """Elementwise products of two equal-length validated operand streams."""

    def square_batch(self, values: Sequence[int]) -> List[int]:
        """Elementwise squares of a validated operand stream.

        Squaring is GF(2)-linear, so the field's precomputed per-byte
        table map (:meth:`~repro.galois.field.GF2mField.square`) beats any
        general product circuit; backends only override this when their
        substrate evaluates the linear map faster still.
        """
        square = self.field.square
        return [square(value) for value in values]

    def inverse_batch(self, values: Sequence[int]) -> List[int]:
        """Inverses of a whole validated operand stream.

        Montgomery's simultaneous-inversion trick: the prefix products are
        inherently sequential, so the scalar reference multiply is the
        right substrate regardless of how the backend batches independent
        products.  Zeros are rejected *before* any product is formed, so a
        failing batch never computes with corrupted prefixes.
        """
        values = list(values)
        if 0 in values:
            index = values.index(0)
            raise ZeroDivisionError(f"0 has no multiplicative inverse (batch index {index})")
        if not values:
            return []
        self._count_batch("inverse_batch", len(values))
        field = self.field
        multiply = field.multiply
        prefix = [values[0]]
        for value in values[1:]:
            prefix.append(multiply(prefix[-1], value))
        running = field.inverse(prefix[-1])
        inverses = [0] * len(values)
        for index in range(len(values) - 1, 0, -1):
            inverses[index] = multiply(running, prefix[index - 1])
            running = multiply(running, values[index])
        inverses[0] = running
        return inverses

    def ir_executor(self):
        """The backend's FieldIR plane executor, or ``None`` when absent.

        Backends whose packed representation supports whole plane-resident
        formulas (:attr:`BackendCapabilities.plane_resident`) return a
        :class:`~repro.backends.planes.PlaneIRExecutor`, which compiles
        scheduled :class:`~repro.backends.ir.FieldProgram` s into fused
        plane passes.  The scalar and big-integer engine backends report
        the capability absent; consumers then interpret the same program
        per step through :func:`repro.backends.ir.execute_program`.
        """
        return None

    def plane_compute(self):
        """Deprecated: the op-by-op plane capability, or ``None`` when absent.

        Superseded by :meth:`ir_executor` — the returned
        :class:`~repro.backends.planes.PlaneCompute` survives only as a
        shim whose operation methods emit ``DeprecationWarning`` and
        delegate to single-op FieldIR programs.
        """
        return None

    # ----------------------------------------------------------- introspection
    def describe(self) -> str:
        """One-line summary used by the CLI and benchmarks."""
        return f"{self.name} backend for GF(2^{self.field.m})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(GF(2^{self.field.m}))"
