"""Pluggable execution backends for GF(2^m) batch arithmetic.

One abstraction (:class:`FieldBackend`) behind which every way of
physically evaluating field arithmetic lives, so the layers above — the
field, the curve ladders, the protocol batch APIs, the sweep pipeline and
the CLI — select a substrate by name instead of hard-coding a call path:

* ``python`` (:class:`PythonIntBackend`) — the scalar big-integer
  reference: carry-less multiply + reduce per pair.  No one-time costs;
  wins for tiny batches and is the arbiter every other backend must match
  byte for byte.
* ``engine`` (:class:`EngineBackend`) — the compiled netlist engine of
  :mod:`repro.engine`: one straight-line Python function evaluating the
  multiplier circuit on big-integer bit planes.  The default for
  circuit-capable fields.
* ``bitslice`` (:class:`BitsliceBackend`) — the same generated circuit
  lowered to numpy ``uint64`` plane arrays with level-segmented
  gather/scatter evaluation (:class:`BitslicedNetlist`): 64+ batch lanes
  per word op, ~9× the scalar reference at GF(2^163)/batch-2048.
  Requires the optional numpy dependency (``gf2m-repro[bitslice]``).
  It is also the one backend with the *plane-resident* capability: whole
  formulas traced as :class:`FieldIR` (:mod:`repro.backends.ir`) compile
  through its :class:`PlaneIRExecutor` into fused plane passes —
  lane-stacked netlist products, merged gather/XOR linear stages, masked
  selects — so consumers pack a batch into a :class:`PlaneVector` once,
  execute the compiled formula per step, and unpack once; the batched
  curve ladder rides on this for ~3× the per-step batch path.
* ``native`` (:class:`NativeBackend`) — the compiled word-level tier
  (:mod:`repro.backends.native`): a C kernel doing 64-bit carry-less
  multiplication (PCLMULQDQ when the CPU has it) plus sparse tail
  reduction over contiguous ``uint64`` word arrays, built through cffi at
  install or first-import time.  Its :class:`NativeIRExecutor` lowers
  scheduled :class:`FieldIR` programs to a flat C instruction stream, so
  the whole fused ladder step runs as one C call per scalar bit.  The
  per-field default whenever the extension is importable; degrades to a
  clear :class:`ImportError` (and the registry falls back to ``engine``)
  when no C compiler is available.

Selection: explicit ``backend=`` arguments (a name or an instance)
anywhere batch APIs are exposed, the ``--backend`` CLI flag, or the
``GF2M_REPRO_BACKEND`` environment variable for a process-wide default;
otherwise :func:`default_backend_name` resolves per field.  Parity of all
backends against the scalar reference is asserted uniformly by
:func:`assert_backend_parity` and the backend-parameterized
:func:`repro.netlist.verify.verify_by_simulation`.

>>> from repro.backends import get_backend
>>> from repro.galois import GF2mField, type_ii_pentanomial
>>> field = GF2mField(type_ii_pentanomial(8, 2))
>>> get_backend("python", field).multiply(0x57, 0x83) == field.multiply(0x57, 0x83)
True
"""

from .base import BackendCapabilities, FieldBackend, default_method_for
from .bitslice import BitsliceBackend, BitslicedNetlist, bitsliced_netlist, numpy_available
from .engine_backend import EngineBackend
from .native import (
    CompiledNativeIR,
    NativeBackend,
    NativeIRExecutor,
    NativeVector,
    native_available,
)
from .ir import (
    FieldIR,
    FieldProgram,
    IRBuilder,
    cached_program,
    execute_program,
    schedule_program,
)
from .planes import (
    CompiledPlaneIR,
    PlaneCompute,
    PlaneIRExecutor,
    PlaneProgram,
    PlaneVector,
    plane_program,
)
from .python_int import PythonIntBackend
from .registry import (
    BACKEND_ENV_VAR,
    assert_backend_parity,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "BackendCapabilities",
    "FieldBackend",
    "default_method_for",
    "BitsliceBackend",
    "BitslicedNetlist",
    "bitsliced_netlist",
    "numpy_available",
    "EngineBackend",
    "CompiledNativeIR",
    "NativeBackend",
    "NativeIRExecutor",
    "NativeVector",
    "native_available",
    "FieldIR",
    "FieldProgram",
    "IRBuilder",
    "cached_program",
    "execute_program",
    "schedule_program",
    "CompiledPlaneIR",
    "PlaneCompute",
    "PlaneIRExecutor",
    "PlaneProgram",
    "PlaneVector",
    "plane_program",
    "PythonIntBackend",
    "BACKEND_ENV_VAR",
    "assert_backend_parity",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
