"""The paper's published Table V numbers (post-place-and-route, ISE 14.7 / Artix-7).

These values are the reference against which EXPERIMENTS.md and the Table V
benchmark compare our Python-flow measurements.  They are transcribed
verbatim from the paper; the method keys match the generator names of
:mod:`repro.multipliers.registry`.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = ["PAPER_TABLE5", "paper_row", "paper_best_area_time"]

#: (m, n) -> method -> (LUTs, slices, time_ns, area_time)
PAPER_TABLE5: Dict[Tuple[int, int], Dict[str, Tuple[int, int, float, float]]] = {
    (8, 2): {
        "paar": (34, 11, 9.86, 335.24),
        "rashidi": (35, 14, 9.62, 336.70),
        "reyhani_hasan": (35, 13, 10.10, 353.50),
        "imana2012": (37, 14, 9.68, 358.16),
        "imana2016": (40, 13, 9.90, 396.00),
        "thiswork": (33, 12, 9.77, 322.41),
    },
    (64, 23): {
        "paar": (1836, 586, 22.63, 41548.68),
        "rashidi": (1794, 585, 20.37, 36543.78),
        "reyhani_hasan": (1749, 566, 20.91, 36571.59),
        "imana2012": (1825, 580, 20.21, 36883.25),
        "imana2016": (1854, 642, 21.28, 39453.12),
        "thiswork": (1769, 541, 20.18, 35698.42),
    },
    (113, 4): {
        "paar": (5747, 2672, 21.39, 122928.33),
        "rashidi": (5501, 2864, 23.29, 128118.29),
        "reyhani_hasan": (5424, 2637, 21.77, 118080.48),
        "imana2012": (5778, 2469, 21.28, 122955.84),
        "imana2016": (5944, 2115, 21.30, 126607.20),
        "thiswork": (5420, 2571, 20.94, 113494.80),
    },
    (113, 34): {
        "paar": (5560, 2849, 23.58, 131104.80),
        "rashidi": (5505, 2682, 23.38, 128706.90),
        "reyhani_hasan": (5445, 2563, 20.84, 113473.80),
        "imana2012": (5813, 2361, 20.36, 118352.68),
        "imana2016": (5909, 2073, 21.73, 128402.57),
        "thiswork": (5474, 2507, 21.59, 118183.66),
    },
    (122, 49): {
        "paar": (6487, 3122, 23.47, 152249.89),
        "rashidi": (6420, 3045, 23.75, 152475.00),
        "reyhani_hasan": (6305, 2024, 21.15, 133350.75),
        "imana2012": (6834, 2287, 21.83, 149186.22),
        "imana2016": (6858, 1992, 21.86, 149915.88),
        "thiswork": (6361, 1951, 20.95, 133262.95),
    },
    (139, 59): {
        "paar": (8370, 3511, 23.54, 197029.80),
        "rashidi": (8301, 3915, 23.77, 197314.77),
        "reyhani_hasan": (8139, 2657, 21.63, 176046.57),
        "imana2012": (8900, 2960, 22.29, 198381.00),
        "imana2016": (8998, 3031, 21.55, 193906.90),
        "thiswork": (8222, 2543, 21.35, 175539.70),
    },
    (148, 72): {
        "paar": (9466, 3888, 25.27, 239205.82),
        "rashidi": (9406, 3804, 23.91, 224897.46),
        "reyhani_hasan": (9252, 3156, 21.98, 203358.96),
        "imana2012": (9996, 3329, 22.40, 223910.40),
        "imana2016": (9943, 3112, 22.31, 221828.33),
        "thiswork": (9314, 3104, 21.76, 202672.64),
    },
    (163, 66): {
        "paar": (11425, 4053, 25.20, 287910.00),
        "rashidi": (11379, 4433, 23.52, 267634.08),
        "reyhani_hasan": (11179, 3361, 23.66, 264495.14),
        "imana2012": (12155, 4056, 22.48, 273244.40),
        "imana2016": (12293, 4015, 22.95, 282124.35),
        "thiswork": (11295, 3621, 22.77, 257187.15),
    },
    (163, 68): {
        "paar": (11422, 4205, 24.20, 276412.40),
        "rashidi": (11379, 4349, 24.01, 273209.79),
        "reyhani_hasan": (11172, 3105, 22.40, 250252.80),
        "imana2012": (12187, 3876, 22.83, 278229.91),
        "imana2016": (12334, 4430, 23.82, 293795.88),
        "thiswork": (11330, 3697, 22.39, 253678.70),
    },
}


def paper_row(m: int, n: int, method: str) -> Tuple[int, int, float, float]:
    """Return the paper's (LUTs, slices, time_ns, area_time) for a field/method."""
    return PAPER_TABLE5[(m, n)][method]


def paper_best_area_time(m: int, n: int) -> str:
    """The method with the best (lowest) published Area×Time for a field."""
    rows = PAPER_TABLE5[(m, n)]
    return min(rows, key=lambda method: rows[method][3])
