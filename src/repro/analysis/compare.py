"""The Table V comparison harness.

``run_comparison`` regenerates the paper's Table V: for each requested field
it generates every Table V construction, runs the implementation flow and
collects the LUT / slice / delay / Area×Time metrics.  ``compare_to_paper``
then lines our measurements up with the published numbers and evaluates the
qualitative claims the reproduction cares about (see EXPERIMENTS.md).

Since the pipeline refactor the harness is a thin consumer of
:mod:`repro.pipeline`: it expands the (field, method) grid into sweep jobs
and runs them through the staged scheduler, so it inherits process-pool
parallelism (``jobs=N``) and warm artifact-store re-runs (``store=...``)
for free while producing exactly the rows the serial flow always did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING, Tuple

from ..galois.pentanomials import PAPER_TABLE5_FIELDS, lookup_field
from ..multipliers.registry import TABLE5_METHODS
from ..pipeline.scheduler import run_jobs
from ..pipeline.sweep import build_sweep_jobs
from ..synth.device import ARTIX7
from ..synth.flow import SynthesisOptions
from ..synth.report import format_table
from .paper_data import PAPER_TABLE5

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..galois.pentanomials import FieldSpec
    from ..pipeline.store import ArtifactStore
    from ..synth.device import DeviceModel
    from ..synth.report import ImplementationResult

__all__ = ["ComparisonRow", "FieldComparison", "run_comparison", "compare_to_paper", "claims_report"]


@dataclass
class ComparisonRow:
    """Our measurement for one (field, method), with the paper's row attached."""

    result: ImplementationResult
    paper_luts: Optional[int] = None
    paper_slices: Optional[int] = None
    paper_time_ns: Optional[float] = None
    paper_area_time: Optional[float] = None

    @property
    def method(self) -> str:
        return self.result.method


@dataclass
class FieldComparison:
    """All methods compared on one field."""

    spec: FieldSpec
    rows: List[ComparisonRow] = field(default_factory=list)

    def best_measured(self, metric: str = "area_time") -> str:
        """Method with the best (lowest) measured value of the given metric."""
        return min(self.rows, key=lambda row: getattr(row.result, metric)).method

    def best_published(self) -> Optional[str]:
        """Method with the best published Area×Time, if paper data exists."""
        with_paper = [row for row in self.rows if row.paper_area_time is not None]
        if not with_paper:
            return None
        return min(with_paper, key=lambda row: row.paper_area_time).method

    def row(self, method: str) -> ComparisonRow:
        """The row of a given method."""
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"method {method!r} not part of this comparison")


def run_comparison(
    fields: Optional[Iterable[Tuple[int, int]]] = None,
    methods: Optional[Sequence[str]] = None,
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(),
    verify_up_to: int = 16,
    jobs: int = 1,
    store: Optional[ArtifactStore] = None,
) -> List[FieldComparison]:
    """Regenerate the paper's Table V for the given fields and methods.

    ``fields`` defaults to all nine paper fields; ``methods`` to the paper's
    six Table V rows.  Multipliers for fields with ``m <= verify_up_to`` are
    additionally formally verified during generation (larger ones are
    verified by the dedicated test suite instead, to keep sweeps fast).

    ``jobs`` > 1 fans the (field, method) grid out over the pipeline's
    process pool; passing an :class:`~repro.pipeline.store.ArtifactStore`
    makes re-runs incremental.  Both leave the produced rows bit-identical
    to the serial, uncached path.
    """
    selected_fields = [lookup_field(m, n) for m, n in fields] if fields is not None else list(PAPER_TABLE5_FIELDS)
    selected_methods = list(methods) if methods is not None else list(TABLE5_METHODS)
    job_list = build_sweep_jobs(
        fields=[(spec.m, spec.n) for spec in selected_fields],
        methods=selected_methods,
        devices=[device],
        options=options,
        verify_up_to=verify_up_to,
    )
    outcomes = run_jobs(job_list, parallelism=jobs, store=store)
    results = iter(outcomes)
    comparisons: List[FieldComparison] = []
    for spec in selected_fields:
        comparison = FieldComparison(spec=spec)
        paper_rows = PAPER_TABLE5.get((spec.m, spec.n), {})
        for method in selected_methods:
            result = next(results).result
            paper = paper_rows.get(method)
            comparison.rows.append(
                ComparisonRow(
                    result=result,
                    paper_luts=paper[0] if paper else None,
                    paper_slices=paper[1] if paper else None,
                    paper_time_ns=paper[2] if paper else None,
                    paper_area_time=paper[3] if paper else None,
                )
            )
        comparisons.append(comparison)
    return comparisons


def compare_to_paper(comparisons: List[FieldComparison]) -> str:
    """Render a side-by-side paper-vs-measured table (used by EXPERIMENTS.md)."""
    lines: List[str] = []
    header = (
        f"{'field':<10s} {'method':<15s} "
        f"{'LUTs':>7s} {'paper':>7s}  {'ns':>6s} {'paper':>6s}  {'AxT':>11s} {'paper':>11s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for comparison in comparisons:
        for row in comparison.rows:
            result = row.result
            lines.append(
                f"{comparison.spec.name.split('/')[-1]:<10s} {result.method:<15s} "
                f"{result.luts:>7d} {row.paper_luts if row.paper_luts is not None else '-':>7}  "
                f"{result.delay_ns:>6.2f} {row.paper_time_ns if row.paper_time_ns is not None else '-':>6}  "
                f"{result.area_time:>11.1f} {row.paper_area_time if row.paper_area_time is not None else '-':>11}"
            )
        lines.append("-" * len(header))
    return "\n".join(lines)


def claims_report(comparisons: List[FieldComparison]) -> Dict[str, object]:
    """Evaluate the paper's qualitative claims on our measurements.

    Returns a dictionary with, per claim, the fields where it holds:

    * ``proposed_beats_parenthesized`` — "this work" is at least as good as
      ref [7] in LUTs, delay and Area×Time (the paper: true for all fields);
    * ``proposed_best_area_time`` — "this work" has the best measured
      Area×Time (the paper: true for 7 of 9 fields);
    * ``proposed_lowest_delay`` — "this work" has the lowest measured delay
      (the paper: true for most fields).
    """
    beats_parenthesized: List[str] = []
    best_area_time: List[str] = []
    lowest_delay: List[str] = []
    for comparison in comparisons:
        label = f"({comparison.spec.m},{comparison.spec.n})"
        methods = {row.method for row in comparison.rows}
        if "thiswork" not in methods:
            continue
        proposed = comparison.row("thiswork").result
        if "imana2016" in methods:
            parenthesized = comparison.row("imana2016").result
            if (
                proposed.luts <= parenthesized.luts
                and proposed.delay_ns <= parenthesized.delay_ns
                and proposed.area_time <= parenthesized.area_time
            ):
                beats_parenthesized.append(label)
        if comparison.best_measured("area_time") == "thiswork":
            best_area_time.append(label)
        if comparison.best_measured("delay_ns") == "thiswork":
            lowest_delay.append(label)
    return {
        "fields": [f"({c.spec.m},{c.spec.n})" for c in comparisons],
        "proposed_beats_parenthesized": beats_parenthesized,
        "proposed_best_area_time": best_area_time,
        "proposed_lowest_delay": lowest_delay,
    }


def comparison_table(comparisons: List[FieldComparison], title: str = "") -> str:
    """Plain measured table in the paper's Table V layout."""
    results = [row.result for comparison in comparisons for row in comparison.rows]
    return format_table(results, title=title)
