"""Analysis layer: theoretical complexities, paper tables, Table V comparison."""

from .compare import (
    ComparisonRow,
    FieldComparison,
    claims_report,
    compare_to_paper,
    comparison_table,
    run_comparison,
)
from .complexity import (
    TheoreticalComplexity,
    and_gate_count,
    complexity_summary,
    minimum_xor_depth,
    split_scheme_complexity,
    unshared_xor_count,
)
from .paper_data import PAPER_TABLE5, paper_best_area_time, paper_row
from .tables import (
    render_all_tables,
    render_st_functions,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = [
    "ComparisonRow",
    "FieldComparison",
    "claims_report",
    "compare_to_paper",
    "comparison_table",
    "run_comparison",
    "TheoreticalComplexity",
    "and_gate_count",
    "complexity_summary",
    "minimum_xor_depth",
    "split_scheme_complexity",
    "unshared_xor_count",
    "PAPER_TABLE5",
    "paper_best_area_time",
    "paper_row",
    "render_all_tables",
    "render_st_functions",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
]
