"""Text renderers for the paper's Tables I-IV.

Each function reproduces one of the paper's expression tables for an
arbitrary type II pentanomial field (the paper prints them for GF(2^8)).
The strings use the same naming conventions as the paper (``S1``, ``T0^2``,
parenthesized sums, ...) so the GF(2^8) output can be compared against the
publication line by line — which is exactly what the golden tests and
``benchmarks/bench_table1..4*.py`` do.
"""

from __future__ import annotations

from typing import List

from ..galois.gf2poly import degree, poly_to_string
from ..spec.parenthesize import parenthesized_coefficients
from ..spec.reduction import split_coefficients, st_coefficients
from ..spec.siti import all_s_functions, all_t_functions
from ..spec.splitting import split_all_functions

__all__ = [
    "render_st_functions",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
]


def render_st_functions(modulus: int) -> str:
    """The S_i / T_i expansions (the running example of the paper's Section II)."""
    m = degree(modulus)
    lines = [f"S_i and T_i functions for GF(2^{m}), f(y) = {poly_to_string(modulus)}"]
    for function in all_s_functions(m) + all_t_functions(m):
        lines.append("  " + function.to_string())
    return "\n".join(lines)


def render_table1(modulus: int) -> str:
    """Paper Table I: coefficients of the product as sums of S_i / T_i."""
    m = degree(modulus)
    lines = [f"Table I - coefficients of the product for GF(2^{m}), f(y) = {poly_to_string(modulus)}"]
    for coefficient in st_coefficients(modulus):
        lines.append("  " + coefficient.to_string() + ";")
    return "\n".join(lines)


def render_table2(modulus: int) -> str:
    """Paper Table II: the split terms S_i^j / T_i^j."""
    m = degree(modulus)
    lines = [f"Table II - terms S_i^j and T_i^j for GF(2^{m})"]
    split_map = split_all_functions(m)
    for label in [f"S{i}" for i in range(1, m + 1)] + [f"T{i}" for i in range(m - 1)]:
        for term in split_map[label]:
            lines.append("  " + term.to_string())
    return "\n".join(lines)


def render_table3(modulus: int) -> str:
    """Paper Table III: coefficients with the parenthesized (delay-driven) splitting."""
    m = degree(modulus)
    lines = [f"Table III - coefficients of the product for GF(2^{m}) with splitting (parenthesized)"]
    coefficients = parenthesized_coefficients(modulus)
    for coefficient in coefficients:
        lines.append("  " + coefficient.to_string() + ";")
    worst = max(coefficient.xor_depth for coefficient in coefficients)
    lines.append(f"  -- theoretical delay: TA + {worst}TX")
    return "\n".join(lines)


def render_table4(modulus: int) -> str:
    """Paper Table IV: the proposed flat (non-parenthesized) coefficients."""
    m = degree(modulus)
    lines = [f"Table IV - new coefficients of the product for type II GF(2^{m})"]
    for coefficient in split_coefficients(modulus):
        lines.append("  " + coefficient.to_string() + ";")
    return "\n".join(lines)


def render_all_tables(modulus: int) -> List[str]:
    """All four expression tables, in paper order."""
    return [
        render_table1(modulus),
        render_table2(modulus),
        render_table3(modulus),
        render_table4(modulus),
    ]
