"""Theoretical space/time complexities of the multiplier constructions.

Section II of the paper quotes closed-form complexities for GF(2^8): the
parenthesized split scheme of ref [7] needs 64 AND and 87 XOR gates with a
delay of ``T_A + 5·T_X``, against ``T_A + 6·T_X`` (80 XOR) for ref [6] and
``T_A + 7·T_X`` (77 XOR) for ref [3].  This module provides the general
formulas used to sanity-check our generated netlists:

* every bit-parallel polynomial-basis multiplier uses exactly ``m^2`` AND
  gates (one per partial product);
* the number of XOR gates is ``total partial-product references - m``
  (each output with ``p`` products needs ``p - 1`` XOR gates before any
  sharing) and is refined per construction from the generated netlist;
* the theoretical delay of the split/parenthesized scheme is
  ``T_A + (1 + max_k ceil(log2 P_k)) ... `` — in practice we report the exact
  XOR depth measured on the generated circuit, which matches the paper's
  figures for GF(2^8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..galois.gf2poly import degree
from ..spec.parenthesize import parenthesized_coefficients
from ..spec.product_spec import ProductSpec
from ..spec.reduction import split_coefficients

__all__ = [
    "TheoreticalComplexity",
    "and_gate_count",
    "unshared_xor_count",
    "minimum_xor_depth",
    "split_scheme_complexity",
    "complexity_summary",
]


@dataclass(frozen=True)
class TheoreticalComplexity:
    """Closed-form complexity figures for one construction on one field."""

    method: str
    m: int
    and_gates: int
    xor_gates: int
    xor_depth: int

    def delay_expression(self) -> str:
        """Paper-style delay formula, e.g. ``TA + 5TX``."""
        return f"TA + {self.xor_depth}TX"


def and_gate_count(m: int) -> int:
    """Every bit-parallel PB multiplier uses exactly ``m^2`` AND gates.

    >>> and_gate_count(8)
    64
    """
    return m * m


def unshared_xor_count(modulus: int) -> int:
    """XOR gates needed with no sharing at all: ``sum_k (P_k - 1)``.

    ``P_k`` is the number of partial products feeding output ``c_k``.  Real
    constructions share logic and use fewer gates; this is the upper bound.
    """
    spec = ProductSpec.from_modulus(modulus)
    return sum(spec.pair_count(k) - 1 for k in range(spec.m))


def minimum_xor_depth(modulus: int) -> int:
    """Lower bound on XOR depth: ``max_k ceil(log2 P_k)``.

    >>> minimum_xor_depth(0b100011101)
    5
    """
    spec = ProductSpec.from_modulus(modulus)
    return max(math.ceil(math.log2(spec.pair_count(k))) for k in range(spec.m))


def split_scheme_complexity(modulus: int) -> TheoreticalComplexity:
    """Complexity of the parenthesized split scheme (ref [7] / paper Table III).

    The XOR count assumes every split term is built once (terms shared
    between coefficients) and the per-coefficient combination nodes are not
    shared.  This slightly over-counts relative to the paper's 87 XOR figure
    for GF(2^8) (the paper additionally shares identical combination nodes
    such as ``T0^0 + T4^0``), but the delay figure matches exactly
    (``T_A + 5 T_X`` for GF(2^8)).
    """
    m = degree(modulus)
    coefficients = split_coefficients(modulus)
    # XOR gates inside the split terms (each term of 2^j products needs 2^j - 1).
    seen_terms = {}
    for coefficient in coefficients:
        for term in coefficient.terms:
            seen_terms[term.label] = term.product_count - 1
    term_xors = sum(seen_terms.values())
    # Combination XOR gates: one fewer than the number of terms per coefficient.
    combination_xors = sum(len(coefficient.terms) - 1 for coefficient in coefficients)
    depth = max(coefficient.xor_depth for coefficient in parenthesized_coefficients(modulus))
    return TheoreticalComplexity(
        method="imana2016",
        m=m,
        and_gates=and_gate_count(m),
        xor_gates=term_xors + combination_xors,
        xor_depth=depth,
    )


def complexity_summary(modulus: int) -> List[Dict[str, object]]:
    """Tabular summary of the theoretical bounds for one field (used by the CLI)."""
    m = degree(modulus)
    split = split_scheme_complexity(modulus)
    return [
        {
            "quantity": "AND gates (all bit-parallel PB multipliers)",
            "value": and_gate_count(m),
        },
        {
            "quantity": "XOR gates without any sharing (upper bound)",
            "value": unshared_xor_count(modulus),
        },
        {
            "quantity": "minimum XOR depth (lower bound)",
            "value": minimum_xor_depth(modulus),
        },
        {
            "quantity": "split/parenthesized scheme XOR gates (ref [7] accounting)",
            "value": split.xor_gates,
        },
        {
            "quantity": "split/parenthesized scheme XOR depth (ref [7])",
            "value": split.xor_depth,
        },
    ]
