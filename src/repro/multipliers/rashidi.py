"""Low time-complexity bit-parallel multiplier — ref [8] (Rashidi et al. 2015).

Ref [8] targets minimum delay.  We model its bit-parallel datapath as:

* a shared plane of convolution coefficients ``d_t`` (like every
  Mastrovito-style multiplier, built here as balanced XOR trees over the
  partial products), and
* a delay-optimised reduction: each output coefficient merges ``d_k`` with
  its reduction terms using a depth-aware (Huffman-style) association that
  always combines the two shallowest operands first, instead of the
  order-based balanced tree of ref [3].

The depth-aware merge gives the construction the lowest (or joint-lowest)
XOR depth of the fixed-structure baselines — consistent with the paper's
observation that ref [8] achieves the lowest delay for GF(2^8) — while its
area stays close to the other shared-convolution schemes, as in Table V.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, TYPE_CHECKING

from ..galois.gf2poly import degree
from ..galois.matrices import reduction_matrix
from ..spec.siti import convolution_pairs
from .base import MultiplierGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .base import OperandNodes

__all__ = ["RashidiMultiplier"]


class RashidiMultiplier(MultiplierGenerator):
    """Shared convolution plane with depth-aware reduction merging (ref [8])."""

    name = "rashidi"
    reference = "[8] Rashidi, Farashahi & Sayedi 2015 (bit-parallel version)"
    description = "shared balanced convolution trees, depth-aware (Huffman) reduction merge"
    restructure_allowed = False

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        m = degree(modulus)
        d_nodes: List[int] = []
        for t in range(2 * m - 1):
            products = self.build_products_for_pairs(netlist, operands, convolution_pairs(m, t))
            d_nodes.append(netlist.xor_reduce(products, style="balanced"))
        levels = netlist.levels()
        rows = reduction_matrix(modulus)
        counter = itertools.count()
        for k in range(m):
            terms = [d_nodes[k]]
            for i, row in enumerate(rows):
                if row[k]:
                    terms.append(d_nodes[m + i])
            # Depth-aware merge: combine the two shallowest operands first.
            heap = [(levels[node], next(counter), node) for node in terms]
            heapq.heapify(heap)
            while len(heap) > 1:
                level_a, _, node_a = heapq.heappop(heap)
                level_b, _, node_b = heapq.heappop(heap)
                combined = netlist.xor2(node_a, node_b)
                while len(levels) < netlist.node_count:
                    levels.append(0)
                combined_level = max(level_a, level_b) + 1
                levels[combined] = combined_level
                heapq.heappush(heap, (combined_level, next(counter), combined))
            netlist.add_output(f"c{k}", heap[0][2])
