"""Split S_i^j / T_i^j multiplier with parenthesized restrictions — ref [7].

This is the scheme of Imaña 2016 that the paper uses as its main structural
baseline (Table III):

* every split term ``S_i^j`` / ``T_i^j`` is a complete binary XOR tree of
  depth ``j`` (shared between all outputs that use it), and
* each output coefficient combines its split terms following the
  *parenthesized, equal-depth pairing* that minimises the number of XOR
  levels (``T_A + 5·T_X`` for GF(2^8)).

The association structure is fixed by :mod:`repro.spec.parenthesize`; the
netlist reproduces it literally, and the generator marks the circuit as
*not* restructurable so the synthesis flow maps those rigid trees exactly as
written — modelling the "hard restrictions" that, per the paper's Table V,
prevent the synthesis tool from finding a better LUT mapping.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from ..spec.parenthesize import parenthesized_coefficients
from .base import MultiplierGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from ..spec.parenthesize import PairTree
    from .base import OperandNodes

__all__ = ["Imana2016Multiplier"]


class Imana2016Multiplier(MultiplierGenerator):
    """Split terms combined with the rigid equal-depth parenthesization (ref [7])."""

    name = "imana2016"
    reference = "[7] Imana 2016 (IEEE TCAS-I)"
    description = "complete-tree split terms added in parenthesized equal-depth pairs"
    restructure_allowed = False

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        term_nodes: Dict[str, int] = {}

        def build_tree(tree: PairTree) -> int:
            if tree.is_leaf:
                label = tree.term.label
                if label not in term_nodes:
                    term_nodes[label] = self.build_split_term(netlist, operands, tree.term)
                return term_nodes[label]
            left = build_tree(tree.left)
            right = build_tree(tree.right)
            return netlist.xor2(left, right)

        for coefficient in parenthesized_coefficients(modulus):
            netlist.add_output(f"c{coefficient.k}", build_tree(coefficient.tree))
