"""Mastrovito-style multiplier with shared product coefficients — ref [2] (Paar).

Paar's thesis architecture computes the product matrix / convolution
coefficients once and shares them aggressively between output bits.  We
model it as:

* the plain product coefficients ``d_t`` are built as balanced XOR trees and
  shared by every output that needs them (this is the dominant sharing in
  the construction), and
* each output coefficient accumulates ``d_k`` and its reduction terms with a
  linear chain, reflecting the row-by-row accumulation of the matrix form.

The resulting structural complexity (low area thanks to full sharing of the
``d_t`` network, delay one or two XOR levels above the tree-based schemes)
matches the relative position ref [2] occupies in the paper's Table V.
"""

from __future__ import annotations

from ..galois.gf2poly import degree
from ..galois.matrices import reduction_matrix
from ..spec.siti import convolution_pairs
from .base import MultiplierGenerator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .base import OperandNodes

__all__ = ["PaarMultiplier"]


class PaarMultiplier(MultiplierGenerator):
    """Shared-convolution Mastrovito multiplier in the style of Paar's thesis."""

    name = "paar"
    reference = "[2] Paar 1994"
    description = "shared balanced trees for the convolution, chained reduction accumulation"
    restructure_allowed = False

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        m = degree(modulus)
        d_nodes = []
        for t in range(2 * m - 1):
            products = self.build_products_for_pairs(netlist, operands, convolution_pairs(m, t))
            d_nodes.append(netlist.xor_reduce(products, style="balanced"))
        rows = reduction_matrix(modulus)
        for k in range(m):
            accumulator = d_nodes[k]
            for i, row in enumerate(rows):
                if row[k]:
                    accumulator = netlist.xor2(accumulator, d_nodes[m + i])
            netlist.add_output(f"c{k}", accumulator)
