"""Common infrastructure for bit-parallel multiplier generators.

A *generator* turns a defining polynomial into a gate-level
:class:`~repro.netlist.netlist.Netlist` that computes ``C = A·B mod f``.
All generators share the same I/O convention (inputs ``a0..a(m-1)`` /
``b0..b(m-1)``, outputs ``c0..c(m-1)``) and the same functional
specification (:class:`~repro.spec.product_spec.ProductSpec`); they differ
only in *how the XOR network is structured*, which is exactly the dimension
the paper studies.

Every generated multiplier is formally verified against its spec at
generation time (cheap, exact, and catches construction bugs immediately);
pass ``verify=False`` to skip when generating very large fields in tight
loops.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence, TYPE_CHECKING

from ..galois.gf2poly import degree, poly_to_string
from ..netlist.netlist import Netlist
from ..netlist.stats import gather_stats
from ..netlist.verify import verify_netlist
from ..spec.product_spec import ProductSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.stats import NetlistStats
    from ..spec.splitting import SplitTerm
    from ..spec.terms import Atom

__all__ = ["GeneratedMultiplier", "MultiplierGenerator", "OperandNodes"]


@dataclass(frozen=True)
class OperandNodes:
    """Node ids of the primary inputs of both operands."""

    a: Sequence[int]
    b: Sequence[int]


@dataclass
class GeneratedMultiplier:
    """A generated multiplier circuit together with its provenance.

    Attributes
    ----------
    method:
        Short generator name (e.g. ``"thiswork"``, ``"imana2016"``).
    reference:
        Bibliographic reference of the construction (paper citation key).
    modulus:
        The defining polynomial.
    netlist:
        The gate-level circuit.
    spec:
        The functional specification the circuit was verified against.
    """

    method: str
    reference: str
    modulus: int
    netlist: Netlist
    spec: ProductSpec

    @property
    def m(self) -> int:
        """The field degree."""
        return self.spec.m

    def stats(self) -> NetlistStats:
        """Structural statistics (AND/XOR counts, depth) of the circuit."""
        return gather_stats(self.netlist)

    def engine(self, mode: str = "exec"):
        """The cached batch :class:`~repro.engine.engine.Engine` for this circuit.

        The engine is compiled on first use and cached per netlist, so
        repeated calls (and the :meth:`multiply` / :meth:`multiply_batch`
        conveniences below) share one compilation.
        """
        from ..engine.engine import engine_for_netlist

        return engine_for_netlist(self.netlist, self.m, mode=mode)

    def multiply(self, a: int, b: int) -> int:
        """Multiply one pair of field elements through the circuit."""
        return self.engine(mode="arrays").multiply(a, b)

    def multiply_batch(self, a_words: Sequence[int], b_words: Sequence[int]) -> List[int]:
        """Multiply parallel operand streams through the compiled engine."""
        return self.engine(mode="exec").multiply_batch(a_words, b_words)

    def describe(self) -> str:
        """Human-readable one-liner used by the CLI and examples."""
        stats = self.stats()
        return (
            f"{self.method} multiplier for GF(2^{self.m}) mod {poly_to_string(self.modulus)}: "
            f"{stats.and_gates} AND, {stats.xor_gates} XOR, delay {stats.delay_expression()}"
        )


class MultiplierGenerator(ABC):
    """Base class of every multiplier construction.

    Subclasses define the class attributes ``name``, ``reference``,
    ``description`` and ``restructure_allowed`` and implement :meth:`build`,
    which must add outputs ``c0 .. c(m-1)`` to the netlist.
    """

    #: Short identifier used in tables and the registry.
    name: str = "abstract"
    #: Citation of the original construction (paper reference numbers).
    reference: str = ""
    #: One-line description of the structural idea.
    description: str = ""
    #: Whether the synthesis flow may re-associate the XOR network.  The
    #: paper's proposed method sets this to True ("give XST freedom"); the
    #: restricted baselines keep their hand-crafted structure.
    restructure_allowed: bool = False

    # ------------------------------------------------------------------ public
    def generate(self, modulus: int, verify: bool = True) -> GeneratedMultiplier:
        """Generate (and by default formally verify) a multiplier for ``modulus``."""
        m = degree(modulus)
        if m < 2:
            raise ValueError("bit-parallel multipliers need a modulus of degree >= 2")
        spec = ProductSpec.from_modulus(modulus)
        netlist = Netlist(
            name=f"{self.name}_gf2_{m}",
            attributes={
                "method": self.name,
                "reference": self.reference,
                "modulus": modulus,
                "m": m,
                "restructure_allowed": self.restructure_allowed,
            },
        )
        operands = OperandNodes(
            a=[netlist.add_input(f"a{i}") for i in range(m)],
            b=[netlist.add_input(f"b{i}") for i in range(m)],
        )
        self.build(netlist, modulus, operands)
        produced = {name for name, _ in netlist.outputs}
        expected = {f"c{k}" for k in range(m)}
        if produced != expected:
            raise RuntimeError(
                f"{self.name} generator produced outputs {sorted(produced)} "
                f"instead of {sorted(expected)}"
            )
        multiplier = GeneratedMultiplier(self.name, self.reference, modulus, netlist, spec)
        if verify:
            report = verify_netlist(netlist, spec)
            if not report:
                raise RuntimeError(f"{self.name} generator is functionally incorrect: {report.summary()}")
        return multiplier

    # ----------------------------------------------------------------- helpers
    @abstractmethod
    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        """Construct the circuit; must register outputs ``c0 .. c(m-1)``."""

    @staticmethod
    def partial_product(netlist: Netlist, operands: OperandNodes, i: int, j: int) -> int:
        """The AND gate computing ``a_i·b_j`` (structural hashing dedups reuse)."""
        return netlist.and2(operands.a[i], operands.b[j])

    @classmethod
    def atom_products(cls, netlist: Netlist, operands: OperandNodes, atom: Atom) -> List[int]:
        """AND nodes of all partial products inside an atom (1 for x, 2 for z)."""
        if atom.is_x:
            return [cls.partial_product(netlist, operands, atom.i, atom.i)]
        return [
            cls.partial_product(netlist, operands, atom.i, atom.j),
            cls.partial_product(netlist, operands, atom.j, atom.i),
        ]

    @classmethod
    def build_atom(cls, netlist: Netlist, operands: OperandNodes, atom: Atom) -> int:
        """Build one atom: an AND gate (x) or the XOR of two AND gates (z)."""
        products = cls.atom_products(netlist, operands, atom)
        if len(products) == 1:
            return products[0]
        return netlist.xor2(products[0], products[1])

    @classmethod
    def build_split_term(cls, netlist: Netlist, operands: OperandNodes, term: SplitTerm) -> int:
        """Build a split term ``S_i^j``/``T_i^j`` as a complete binary XOR tree.

        The term contains exactly ``2^j`` partial products, so the balanced
        reduction below has depth exactly ``j`` — matching the paper's
        definition of the term.
        """
        products: List[int] = []
        for atom in term.atoms:
            products.extend(cls.atom_products(netlist, operands, atom))
        return netlist.xor_reduce(products, style="balanced")

    @classmethod
    def build_products_for_pairs(
        cls, netlist: Netlist, operands: OperandNodes, pairs: Sequence
    ) -> List[int]:
        """AND nodes for an iterable of partial-product pairs, in sorted order."""
        return [cls.partial_product(netlist, operands, i, j) for i, j in sorted(pairs)]

    # ------------------------------------------------------------ introspection
    @classmethod
    def metadata(cls) -> Dict[str, str]:
        """Registry metadata describing this construction."""
        return {
            "name": cls.name,
            "reference": cls.reference,
            "description": cls.description,
            "restructure_allowed": str(cls.restructure_allowed),
        }
