"""Registry of multiplier constructions.

The registry maps short method names to generator classes and records the
row order of the paper's Table V so the comparison harness can reproduce it
verbatim.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING, Type

from .imana2012 import Imana2012Multiplier
from .imana2016 import Imana2016Multiplier
from .paar import PaarMultiplier
from .rashidi import RashidiMultiplier
from .reyhani_hasan import ReyhaniHasanMultiplier
from .rodriguez_koc import RodriguezKocMultiplier
from .schoolbook import SchoolbookMultiplier
from .thiswork import ThisWorkMultiplier

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import GeneratedMultiplier, MultiplierGenerator

__all__ = [
    "ALL_GENERATORS",
    "TABLE5_METHODS",
    "available_methods",
    "get_generator",
    "generate_multiplier",
    "describe_methods",
]

#: Every construction known to the library, keyed by its short name.
ALL_GENERATORS: Dict[str, Type[MultiplierGenerator]] = {
    generator.name: generator
    for generator in (
        SchoolbookMultiplier,
        PaarMultiplier,
        ReyhaniHasanMultiplier,
        RashidiMultiplier,
        Imana2012Multiplier,
        Imana2016Multiplier,
        ThisWorkMultiplier,
        RodriguezKocMultiplier,
    )
}

#: The six methods compared in the paper's Table V, in the paper's row order:
#: [2] Paar, [8] Rashidi, [3] Reyhani-Masoleh/Hasan, [6] Imana 2012,
#: [7] Imana 2016 (parenthesized), and the proposed method ("This work").
TABLE5_METHODS: List[str] = [
    "paar",
    "rashidi",
    "reyhani_hasan",
    "imana2012",
    "imana2016",
    "thiswork",
]


def available_methods() -> List[str]:
    """All registered method names, registry order."""
    return list(ALL_GENERATORS)


def get_generator(name: str) -> MultiplierGenerator:
    """Instantiate the generator registered under ``name``.

    >>> get_generator("thiswork").name
    'thiswork'
    """
    try:
        return ALL_GENERATORS[name]()
    except KeyError:
        raise KeyError(
            f"unknown multiplier method {name!r}; available: {', '.join(ALL_GENERATORS)}"
        ) from None


def generate_multiplier(
    method: str, modulus: int, verify: bool = True, use_cache: bool = True
) -> GeneratedMultiplier:
    """Look up a generator and run it on ``modulus``, caching the result.

    By default the circuit comes from the process-wide
    :class:`~repro.multipliers.cache.MultiplierCache`, so repeated requests
    for the same ``(method, modulus)`` pair — CLI invocations, comparison
    sweeps, benchmark loops — re-derive neither the SiTi splitting nor the
    formal verification.  Cached multipliers are shared: treat their
    netlists as immutable, or pass ``use_cache=False`` for a private copy.
    """
    if use_cache:
        from .cache import cached_multiplier

        return cached_multiplier(method, modulus, verify=verify)
    return get_generator(method).generate(modulus, verify=verify)


def describe_methods() -> List[Dict[str, str]]:
    """Metadata of every registered construction (for the CLI and docs)."""
    return [generator.metadata() for generator in ALL_GENERATORS.values()]
