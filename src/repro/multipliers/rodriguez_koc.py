"""Parallel multiplier for special irreducible pentanomials — ref [5].

Rodríguez-Henríquez and Koç's construction exploits the structure of special
(including type II) pentanomials: the convolution coefficients are computed
once, and the reduction is organised around the pentanomial's four non-zero
low-order terms, folding the high half onto columns ``0, n, n+1, n+2`` and
re-folding the small overflow that spills past degree ``m`` a second time.

We model that organisation explicitly: balanced shared convolution trees,
then per-column *group sums* of consecutive high coefficients (the quantities
the original paper shares between outputs) followed by a short balanced
combination per output.  The generator is an extra baseline beyond the
paper's Table V rows, mainly used by the ablation benchmarks and the tests;
it requires a type II pentanomial modulus.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING, Tuple

from ..galois.gf2poly import degree
from ..galois.matrices import reduction_matrix
from ..spec.siti import convolution_pairs
from ..galois.pentanomials import type_ii_parameters
from .base import MultiplierGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .base import OperandNodes

__all__ = ["RodriguezKocMultiplier"]


class RodriguezKocMultiplier(MultiplierGenerator):
    """Pentanomial-specialised reduction with shared column group sums (ref [5])."""

    name = "rodriguez_koc"
    reference = "[5] Rodriguez-Henriquez & Koc 2003"
    description = "shared convolution trees with pentanomial column-grouped reduction sums"
    restructure_allowed = False

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        if type_ii_parameters(modulus) is None:
            raise ValueError(
                "the Rodriguez-Henriquez/Koc generator models the special-pentanomial "
                "construction and requires a type II pentanomial modulus"
            )
        m = degree(modulus)
        d_nodes: List[int] = []
        for t in range(2 * m - 1):
            products = self.build_products_for_pairs(netlist, operands, convolution_pairs(m, t))
            d_nodes.append(netlist.xor_reduce(products, style="balanced"))

        # Group the reduction contributions of each output column into runs of
        # consecutive high coefficients; identical runs are shared between
        # outputs via structural hashing.
        rows = reduction_matrix(modulus)
        group_cache: Dict[Tuple[int, ...], int] = {}

        def group_sum(indices: Tuple[int, ...]) -> int:
            if indices not in group_cache:
                group_cache[indices] = netlist.xor_reduce(
                    [d_nodes[m + i] for i in indices], style="balanced"
                )
            return group_cache[indices]

        for k in range(m):
            sources = [i for i, row in enumerate(rows) if row[k]]
            terms = [d_nodes[k]]
            run: List[int] = []
            for index in sources:
                if run and index != run[-1] + 1:
                    terms.append(group_sum(tuple(run)))
                    run = []
                run.append(index)
            if run:
                terms.append(group_sum(tuple(run)))
            netlist.add_output(f"c{k}", netlist.xor_reduce(terms, style="balanced"))
