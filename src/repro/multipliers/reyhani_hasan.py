"""Low-complexity polynomial basis multiplier — ref [3] (Reyhani-Masoleh & Hasan 2004).

The construction separates an *inner-product network* (the convolution
coefficients ``d_t``, shared across outputs and built as balanced XOR trees)
from a *reduction network* that combines ``d_k`` with the required high
coefficients, also as balanced trees.  Compared with the chained
accumulation modelled for ref [2] this trades a few extra XOR gates in the
reduction network for a shallower critical path, which is how ref [3]
behaves in the paper's Table V (usually the lowest LUT count of the
baselines and competitive delay).
"""

from __future__ import annotations

from ..galois.gf2poly import degree
from ..galois.matrices import reduction_matrix
from ..spec.siti import convolution_pairs
from .base import MultiplierGenerator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .base import OperandNodes

__all__ = ["ReyhaniHasanMultiplier"]


class ReyhaniHasanMultiplier(MultiplierGenerator):
    """Inner-product network + balanced reduction network (ref [3])."""

    name = "reyhani_hasan"
    reference = "[3] Reyhani-Masoleh & Hasan 2004"
    description = "shared balanced convolution trees with a balanced reduction network"
    restructure_allowed = False

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        m = degree(modulus)
        d_nodes = []
        for t in range(2 * m - 1):
            products = self.build_products_for_pairs(netlist, operands, convolution_pairs(m, t))
            d_nodes.append(netlist.xor_reduce(products, style="balanced"))
        rows = reduction_matrix(modulus)
        for k in range(m):
            terms = [d_nodes[k]]
            for i, row in enumerate(rows):
                if row[k]:
                    terms.append(d_nodes[m + i])
            netlist.add_output(f"c{k}", netlist.xor_reduce(terms, style="balanced"))
