"""S_i / T_i multiplier — ref [6] (Imaña 2012), the paper's Table I scheme.

Each S_i and T_i function is built *monolithically*: a single binary XOR
tree over all of its partial products (the construction described in
Section II of the paper — "binary trees of 2-input XOR gates with a lower
level of 2-input AND gates").  Every output coefficient is then the balanced
XOR of the functions listed in Table I.

Because the functions are shared between outputs, the area is low; but the
monolithic trees cannot merge across function boundaries, so the critical
path is one level longer than the split/parenthesized scheme of ref [7]
(``T_A + 6·T_X`` vs ``T_A + 5·T_X`` for GF(2^8)), exactly as the paper
reports.
"""

from __future__ import annotations

from typing import Dict, List, TYPE_CHECKING

from ..galois.gf2poly import degree
from ..spec.reduction import st_coefficients
from ..spec.siti import st_functions
from .base import MultiplierGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .base import OperandNodes

__all__ = ["Imana2012Multiplier"]


class Imana2012Multiplier(MultiplierGenerator):
    """Monolithic S_i/T_i function trees combined per Table I (ref [6])."""

    name = "imana2012"
    reference = "[6] Imana 2012 (IEEE TCAS-II)"
    description = "monolithic balanced trees for each S_i/T_i, outputs sum whole functions"
    restructure_allowed = False

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        m = degree(modulus)
        functions = st_functions(m)
        function_nodes: Dict[str, int] = {}
        for label, function in functions.items():
            # The formulas of ref [6] are written over x_k and z_i^j terms, so
            # the z sums (a_i b_j + a_j b_i) are formed first and the function
            # tree is balanced over those atom signals.
            atoms: List[int] = [self.build_atom(netlist, operands, atom) for atom in function.atoms]
            function_nodes[label] = netlist.xor_reduce(atoms, style="balanced")
        for coefficient in st_coefficients(modulus):
            terms = [function_nodes[label] for label in coefficient.labels]
            netlist.add_output(f"c{coefficient.k}", netlist.xor_reduce(terms, style="balanced"))
