"""The paper's proposed multiplier: split terms, no parenthesized restrictions.

This is the DATE 2018 contribution (Table IV): keep the splitting of the
S_i / T_i functions into complete-binary-tree terms ``S_i^j`` / ``T_i^j``
(shared between outputs), but express every output coefficient as a *flat*
XOR of those terms with no prescribed association.  In the paper the flat
VHDL expressions give the Xilinx XST synthesiser the freedom to re-associate
and share the XOR logic during technology mapping; here the generated
netlist carries ``restructure_allowed = True`` so the Python synthesis flow
applies the equivalent freedom (re-balancing and cross-output sharing over
the shared split-term signals) before LUT mapping.

The raw netlist intentionally uses simple left-to-right chains for the flat
sums — mirroring the way the un-parenthesized VHDL is written — because the
whole point of the method is that the *mapper*, not the RTL author, chooses
the final structure.
"""

from __future__ import annotations

from typing import Dict, TYPE_CHECKING

from ..spec.reduction import split_coefficients
from .base import MultiplierGenerator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .base import OperandNodes

__all__ = ["ThisWorkMultiplier"]


class ThisWorkMultiplier(MultiplierGenerator):
    """Flat (non-parenthesized) split-term multiplier — the proposed method."""

    name = "thiswork"
    reference = "This work (Imana, DATE 2018)"
    description = "flat sums of shared split terms; synthesis flow free to restructure"
    restructure_allowed = True

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        term_nodes: Dict[str, int] = {}
        for coefficient in split_coefficients(modulus):
            operands_nodes = []
            for term in coefficient.terms:
                if term.label not in term_nodes:
                    term_nodes[term.label] = self.build_split_term(netlist, operands, term)
                operands_nodes.append(term_nodes[term.label])
            netlist.add_output(f"c{coefficient.k}", netlist.xor_reduce(operands_nodes, style="chain"))
