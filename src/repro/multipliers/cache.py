"""Process-wide caching of generated multipliers.

Generating a multiplier re-derives the S_i/T_i splitting of the field and
formally re-verifies the circuit — ~100 ms for GF(2^163) and growing
quadratically with m.  Every path that repeatedly asks for the same
``(method, modulus)`` pair (the registry, the engine and bitslice backends,
the CLI, the comparison harness, batch services) therefore goes through
:class:`MultiplierCache` instead of calling the generators directly.

The generic LRU building block lives in :mod:`repro.pipeline.store`
(:class:`~repro.pipeline.store.LRUCache`), shared with the sweep pipeline's
artifact layer; this module holds only the multiplier-specific policy.

Cached multipliers are shared objects: callers must treat the netlist as
immutable (the synthesis flow already does — restructuring builds new
netlists).
"""

from __future__ import annotations

import threading

from ..pipeline.store import LRUCache
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Optional

    from ..pipeline.store import CacheInfo

__all__ = [
    "MultiplierCache",
    "cached_multiplier",
    "default_multiplier_cache",
]


class _MultiplierEntry:
    """A cached multiplier plus whether it has been formally verified yet."""

    __slots__ = ("multiplier", "verified")

    def __init__(self, multiplier, verified: bool) -> None:
        self.multiplier = multiplier
        self.verified = verified


class MultiplierCache:
    """LRU cache of generated multipliers keyed by ``(method, modulus)``.

    The key deliberately excludes the ``verify`` flag: the circuit is
    identical either way, so a verified and an unverified request share one
    entry and verification is upgraded in place at most once.
    """

    def __init__(self, maxsize: int = 32, name: "Optional[str]" = None) -> None:
        self._cache = LRUCache(maxsize=maxsize, name=name)
        self._lock = threading.RLock()

    def get(self, method: str, modulus: int, verify: bool = True):
        """The cached (or freshly generated) multiplier for ``(method, modulus)``.

        When ``verify`` is true the returned multiplier is guaranteed to have
        been formally verified against its product specification — either at
        generation time or by an on-demand upgrade of a cached unverified
        entry.
        """
        from .registry import get_generator

        def build() -> _MultiplierEntry:
            multiplier = get_generator(method).generate(modulus, verify=verify)
            return _MultiplierEntry(multiplier, verified=verify)

        entry = self._cache.get_or_create((method, modulus), build)
        if verify and not entry.verified:
            with self._lock:
                if not entry.verified:
                    from ..netlist.verify import verify_netlist

                    report = verify_netlist(entry.multiplier.netlist, entry.multiplier.spec)
                    if not report:
                        raise RuntimeError(
                            f"cached {method} multiplier failed verification: {report.summary()}"
                        )
                    entry.verified = True
        return entry.multiplier

    def is_verified(self, method: str, modulus: int) -> bool:
        """Whether the cached entry (if any) has been formally verified."""
        entry = self._cache.peek((method, modulus))
        return bool(entry and entry.verified)

    def __contains__(self, key) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached multipliers and reset statistics."""
        self._cache.clear()

    def info(self) -> CacheInfo:
        """Hit/miss/eviction counters of the underlying LRU."""
        return self._cache.info()


#: Process-wide default cache used by the registry, CLI and benchmarks.
_DEFAULT_CACHE = MultiplierCache(maxsize=32, name="multipliers")


def default_multiplier_cache() -> MultiplierCache:
    """The process-wide :class:`MultiplierCache` shared by library entry points."""
    return _DEFAULT_CACHE


def cached_multiplier(method: str, modulus: int, verify: bool = True):
    """Fetch a multiplier through the process-wide cache (generating on miss)."""
    return _DEFAULT_CACHE.get(method, modulus, verify=verify)
