"""Bit-parallel GF(2^m) multiplier constructions (the paper's method and baselines)."""

from .base import GeneratedMultiplier, MultiplierGenerator, OperandNodes
from .cache import MultiplierCache, cached_multiplier, default_multiplier_cache
from .imana2012 import Imana2012Multiplier
from .imana2016 import Imana2016Multiplier
from .paar import PaarMultiplier
from .rashidi import RashidiMultiplier
from .registry import (
    ALL_GENERATORS,
    TABLE5_METHODS,
    available_methods,
    describe_methods,
    generate_multiplier,
    get_generator,
)
from .reyhani_hasan import ReyhaniHasanMultiplier
from .rodriguez_koc import RodriguezKocMultiplier
from .schoolbook import SchoolbookMultiplier
from .thiswork import ThisWorkMultiplier

__all__ = [
    "GeneratedMultiplier",
    "MultiplierGenerator",
    "OperandNodes",
    "MultiplierCache",
    "cached_multiplier",
    "default_multiplier_cache",
    "Imana2012Multiplier",
    "Imana2016Multiplier",
    "PaarMultiplier",
    "RashidiMultiplier",
    "ALL_GENERATORS",
    "TABLE5_METHODS",
    "available_methods",
    "describe_methods",
    "generate_multiplier",
    "get_generator",
    "ReyhaniHasanMultiplier",
    "RodriguezKocMultiplier",
    "SchoolbookMultiplier",
    "ThisWorkMultiplier",
]
