"""Classic two-step (schoolbook + reduction) multiplier — Mastrovito's starting point.

This is the textbook construction (ref [1] folds it into a matrix, but the
gate-level content is the same): compute every coefficient ``d_t`` of the
plain polynomial product with a ripple chain of XOR gates, then reduce the
high half onto the low half with further chains.  It is deliberately naive —
linear XOR chains instead of trees — and serves as the "no cleverness"
baseline that every other construction is compared against in the tests and
the ablation benchmarks (it is not one of the Table V rows).
"""

from __future__ import annotations

from ..galois.gf2poly import degree
from ..galois.matrices import reduction_matrix
from ..spec.siti import convolution_pairs
from .base import MultiplierGenerator
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .base import OperandNodes

__all__ = ["SchoolbookMultiplier"]


class SchoolbookMultiplier(MultiplierGenerator):
    """Two-step schoolbook multiplication with ripple XOR chains."""

    name = "schoolbook"
    reference = "[1] Mastrovito 1988 (two-step formulation)"
    description = "plain convolution then modular reduction, all sums as linear XOR chains"
    restructure_allowed = False

    def build(self, netlist: Netlist, modulus: int, operands: OperandNodes) -> None:
        m = degree(modulus)
        # Step 1: plain product coefficients d_0 .. d_(2m-2), each a ripple chain.
        d_nodes = []
        for t in range(2 * m - 1):
            products = self.build_products_for_pairs(netlist, operands, convolution_pairs(m, t))
            d_nodes.append(netlist.xor_reduce(products, style="chain"))
        # Step 2: reduction, c_k = d_k + sum of selected high coefficients.
        rows = reduction_matrix(modulus)
        for k in range(m):
            terms = [d_nodes[k]]
            for i, row in enumerate(rows):
                if row[k]:
                    terms.append(d_nodes[m + i])
            netlist.add_output(f"c{k}", netlist.xor_reduce(terms, style="chain"))
