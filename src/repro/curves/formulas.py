"""The curve formulas, each traced exactly once as a :class:`FieldIR`.

Before the formula compiler, every consumer of the López-Dahab step carried
its own copy of the formula: the scalar ladder in
:meth:`~repro.curves.point.BinaryCurve._ladder_ld`, a hand-written
gather/batch version in ``_ladder_ld_batch``, and a hand-scheduled plane
version in ``_ladder_ld_planes`` — three schedules to keep in sync.  This
module replaces the latter two: the **step**, the **y-recovery** and the
**curve-equation residual** are traced once as straight-line
:class:`~repro.backends.ir.FieldIR` and scheduled once per curve through
the level-scheduling fusion pass (:func:`~repro.backends.ir
.schedule_program`).  Plane-capable backends compile the scheduled program
into fused uint64 plane passes
(:meth:`~repro.backends.base.FieldBackend.ir_executor`); every other
backend interprets the same program with
:func:`~repro.backends.ir.execute_program`, which derives the per-step
``multiply_batch`` gathers from the schedule instead of hand-written loops.
The scalar ladder stays as the untouched independent reference the tests
compare both executions against.

Scheduled programs are memoized process-wide
(:func:`~repro.backends.ir.cached_program`) keyed by the curve fingerprint
(modulus plus the participating curve constants), and each plane executor
additionally memoizes its lowering by the same key — so the full chain is
cached per curve × backend × chunk and repeated ECDH calls never re-trace,
re-schedule or re-lower.

Formula conventions
-------------------
All programs use the one-bit-per-lane masked-select convention of the
batched ladder: ``select(bit, a, b)`` yields ``a`` on lanes whose scalar
bit is set.  The ladder-step registers follow López & Dahab 1999 (HMV
Alg. 3.40): ``R0 = (x1 : z1)``, ``R1 = (x2 : z2)``, invariant
``R1 - R0 = P`` with ``P = (x, y)`` the affine base point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..backends.ir import FieldIR, FieldProgram, IRBuilder, cached_program, schedule_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .point import BinaryCurve

__all__ = [
    "ladder_step_ir",
    "ladder_step_program",
    "recover_denominator_program",
    "recover_affine_program",
    "on_curve_residual_program",
    "frobenius_ir",
    "frobenius_program",
    "frobenius_add_ir",
    "frobenius_add_program",
    "ld_double_ir",
    "ld_double_program",
    "mixed_add_ir",
    "mixed_add_program",
    "small_multiples_ir",
    "small_multiples_program",
    "double_add_ir",
    "double_add_program",
    "projective_to_affine_program",
]


def ladder_step_ir() -> FieldIR:
    """One full López-Dahab Montgomery step as a traced formula.

    Inputs ``x1 z1 x2 z2`` are the ladder registers, ``x`` the affine base
    x-coordinate; mask ``bit`` is the scalar bit of the step.  Outputs
    ``x1n z1n x2n z2n`` are the post-step registers.  The five products,
    six squarings (collapsing to three composed maps), the multiply-by-b
    and the masked swaps fuse into six passes when scheduled:
    ``select×2 → mul×3 → linear → mul×2 → linear → select×4``.
    """
    builder = IRBuilder("ld_step")
    x1, z1 = builder.input("x1"), builder.input("z1")
    x2, z2 = builder.input("x2"), builder.input("z2")
    base = builder.input("x")
    bit = builder.mask_input("bit")
    # The register being doubled this step (R1 when the bit is set).
    xd = builder.select(bit, x2, x1)
    zd = builder.select(bit, z2, z1)
    # Madd cross terms and the Mdouble X*Z product — one lane-stacked pass.
    t1 = builder.mul(x1, z2)
    t2 = builder.mul(x2, z1)
    xz = builder.mul(xd, zd)
    # Everything linear between the product levels fuses into one stage;
    # square∘square and mul_b∘square∘square collapse into composed maps.
    z_sum = builder.square(builder.xor(t1, t2))
    z_dbl = builder.square(xz)
    x_dbl = builder.xor(
        builder.square(builder.square(xd)),
        builder.apply_linear("mul_b", builder.square(builder.square(zd))),
    )
    # Madd's T1*T2 and x*Z_sum — the second lane-stacked pass.
    x_sum = builder.xor(builder.mul(t1, t2), builder.mul(base, z_sum))
    builder.output("x1n", builder.select(bit, x_sum, x_dbl))
    builder.output("z1n", builder.select(bit, z_sum, z_dbl))
    builder.output("x2n", builder.select(bit, x_dbl, x_sum))
    builder.output("z2n", builder.select(bit, z_dbl, z_sum))
    return builder.build()


def ladder_step_program(curve: "BinaryCurve") -> FieldProgram:
    """The scheduled ladder step for ``curve`` (memoized per modulus and b)."""
    field = curve.field
    key = ("ld-step", field.modulus, curve.b)
    return cached_program(
        key,
        lambda: schedule_program(
            ladder_step_ir(),
            field.m,
            {"square": field.square_map, "mul_b": curve._mul_b},
            key=key,
        ),
    )


def recover_denominator_program(curve: "BinaryCurve") -> FieldProgram:
    """Stage one of batched y-recovery: the shared inversion's denominator.

    ``z1z2 = z1·z2`` and ``denom = x·z1·z2`` for every live lane; the
    caller feeds ``denom`` through the backend's Montgomery batch inverse
    (inversion is not a straight-line field op, so it stays outside the
    IR) and hands ``inv`` to :func:`recover_affine_program`.
    """
    field = curve.field
    key = ("ld-recover-denom", field.modulus)

    def build() -> FieldProgram:
        builder = IRBuilder("ld_recover_denominator")
        base = builder.input("x")
        z1, z2 = builder.input("z1"), builder.input("z2")
        z1z2 = builder.mul(z1, z2)
        builder.output("z1z2", z1z2)
        builder.output("denom", builder.mul(base, z1z2))
        return schedule_program(builder.build(), field.m, {}, key=key)

    return cached_program(key, build)


def recover_affine_program(curve: "BinaryCurve") -> FieldProgram:
    """Stage two of batched y-recovery: affine ``(x3, y3)`` from the inverse.

    Same algebra as the scalar :meth:`~repro.curves.point.BinaryCurve
    ._ladder_recover`, rearranged by the scheduler into four product
    levels (``mul×4 → mul×3 → mul → mul``) with the XOR work fused
    between them.  ``y3`` already includes the final ``⊕ y``.
    """
    field = curve.field
    key = ("ld-recover-affine", field.modulus)

    def build() -> FieldProgram:
        builder = IRBuilder("ld_recover_affine")
        base, base_y = builder.input("x"), builder.input("y")
        x1, x2 = builder.input("x1"), builder.input("x2")
        z1, z2 = builder.input("z1"), builder.input("z2")
        z1z2, inv = builder.input("z1z2"), builder.input("inv")
        x1z2 = builder.mul(x1, z2)
        xz1 = builder.mul(base, z1)
        xz2 = builder.mul(base, z2)
        xinv = builder.mul(base, inv)
        left_in = builder.xor(x1, xz1)
        right_in = builder.xor(x2, xz2)
        trace_in = builder.xor(builder.square(base), base_y)
        x3 = builder.mul(x1z2, xinv)
        left = builder.mul(left_in, right_in)
        right = builder.mul(trace_in, z1z2)
        numerator = builder.mul(builder.xor(base, x3), builder.xor(left, right))
        y3 = builder.xor(builder.mul(numerator, inv), base_y)
        builder.output("x3", x3)
        builder.output("y3", y3)
        return schedule_program(builder.build(), field.m, {"square": field.square_map}, key=key)

    return cached_program(key, build)


def _ld_mixed_add(builder: IRBuilder, x_p, y_p, z_p, x2, y2):
    """López-Dahab mixed addition ``(X:Y:Z) + (x2, y2)`` (HMV Alg. 3.26).

    Coordinates follow the LD convention ``x = X/Z``, ``y = Y/Z²``.  Eight
    products, five squarings; the curve's ``a·Z²`` terms go through the
    ``mul_a`` constant-multiplier map so one trace serves both Koblitz
    ``a`` values.  When the two summands share an x-coordinate (doubling
    or annihilation) the formula yields ``Z3 = 0`` — and a zero ``Z`` is
    *sticky* through every subsequent step, which is exactly the
    degenerate-lane flag the batched evaluators key their per-lane scalar
    fallback on.
    """
    z_sq = builder.square(z_p)
    a_term = builder.xor(builder.mul(y2, z_sq), y_p)
    b_term = builder.xor(builder.mul(x2, z_p), x_p)
    c_term = builder.mul(z_p, b_term)
    d_term = builder.mul(
        builder.square(b_term),
        builder.xor(c_term, builder.apply_linear("mul_a", z_sq)),
    )
    z3 = builder.square(c_term)
    e_term = builder.mul(a_term, c_term)
    x3 = builder.xor(builder.square(a_term), d_term, e_term)
    f_term = builder.xor(x3, builder.mul(x2, z3))
    g_term = builder.mul(builder.xor(x2, y2), builder.square(z3))
    y3 = builder.xor(builder.mul(builder.xor(e_term, z3), f_term), g_term)
    return x3, y3, z3


def _ld_double(builder: IRBuilder, x_p, y_p, z_p):
    """López-Dahab projective doubling ``2·(X:Y:Z)`` (HMV Alg. 3.25).

    Three products; the ``b·Z⁴`` terms run through the ``mul_b``
    constant-multiplier map and ``a·Z`` through ``mul_a``.  ``Z = 0``
    (infinity or the degenerate flag) stays at ``Z = 0``.
    """
    x_sq, z_sq = builder.square(x_p), builder.square(z_p)
    z_d = builder.mul(x_sq, z_sq)
    b_z4 = builder.apply_linear("mul_b", builder.square(z_sq))
    x_d = builder.xor(builder.square(x_sq), b_z4)
    y_d = builder.xor(
        builder.mul(b_z4, z_d),
        builder.mul(
            x_d,
            builder.xor(builder.apply_linear("mul_a", z_d), builder.square(y_p), b_z4),
        ),
    )
    return x_d, y_d, z_d


def _masked_point_update(builder: IRBuilder, fallthrough, added, fresh, init, add):
    """The shared select cascade of the digit-step formulas.

    Per lane: ``init`` lanes load the gathered table point directly (their
    accumulator is still the not-yet-started sentinel), ``add`` lanes take
    the mixed-add result, everyone else keeps the doubled/Frobenius
    registers.  Emits the three outputs ``Xn Yn Zn``.
    """
    one = builder.const(1)
    (x_f, y_f, z_f), (x_a, y_a, z_a), (x_t, y_t) = fallthrough, added, fresh
    builder.output("Xn", builder.select(init, x_t, builder.select(add, x_a, x_f)))
    builder.output("Yn", builder.select(init, y_t, builder.select(add, y_a, y_f)))
    builder.output("Zn", builder.select(init, one, builder.select(add, z_a, z_f)))


def frobenius_ir(power: int = 1) -> FieldIR:
    """The Frobenius power ``τ^k(X:Y:Z) = (X^2ᵏ, Y^2ᵏ, Z^2ᵏ)`` on LD coords.

    On a Koblitz curve (coefficients in GF(2)) squaring the coordinates is
    the curve endomorphism the τ-adic ladder rides.  The scheduler's chain
    collapsing composes the ``power`` squarings into **one** linear map
    per coordinate, so a whole run of zero τ-NAF digits executes as a
    single fused linear pass — no products at all — regardless of the run
    length.
    """
    builder = IRBuilder(f"tau_frobenius_{power}")
    for name in ("X", "Y", "Z"):
        var = builder.input(name)
        for _ in range(power):
            var = builder.square(var)
        builder.output(name + "n", var)
    return builder.build()


def frobenius_program(curve: "BinaryCurve", power: int = 1) -> FieldProgram:
    """The scheduled ``power``-fold zero-digit τ step (squarings only)."""
    field = curve.field
    key = ("tau-frobenius", field.modulus, power)
    return cached_program(
        key,
        lambda: schedule_program(
            frobenius_ir(power), field.m, {"square": field.square_map}, key=key
        ),
    )


def frobenius_add_ir(squarings: int = 1) -> FieldIR:
    """One nonzero τ-NAF digit step: ``τ^squarings``, masked add, selects.

    Inputs ``X Y Z`` are the LD accumulator, ``x2 y2`` the per-lane
    gathered precomputed multiple (sign already applied); masks ``add``
    and ``init`` drive the per-lane select cascade.  ``squarings`` folds
    the zero digits *preceding* this one into the same program — chain
    collapsing turns them into one composed linear map, so a window
    recoding's ``(w−1)``-zero runs cost nothing extra.  Lanes whose digit
    is zero at this position fall through with just the squarings.
    """
    builder = IRBuilder(f"tau_frobenius_add_{squarings}")
    x_p, y_p, z_p = (builder.input(name) for name in ("X", "Y", "Z"))
    x2, y2 = builder.input("x2"), builder.input("y2")
    add = builder.mask_input("add")
    init = builder.mask_input("init")
    x_f, y_f, z_f = x_p, y_p, z_p
    for _ in range(squarings):
        x_f, y_f, z_f = (builder.square(var) for var in (x_f, y_f, z_f))
    added = _ld_mixed_add(builder, x_f, y_f, z_f, x2, y2)
    _masked_point_update(builder, (x_f, y_f, z_f), added, (x2, y2), init, add)
    return builder.build()


def frobenius_add_program(curve: "BinaryCurve", squarings: int = 1) -> FieldProgram:
    """The scheduled nonzero-digit τ step (memoized per modulus, a, run)."""
    field = curve.field
    key = ("tau-frobenius-add", field.modulus, curve.a, squarings)
    return cached_program(
        key,
        lambda: schedule_program(
            frobenius_add_ir(squarings),
            field.m,
            {"square": field.square_map, "mul_a": field.constant_multiplier(curve.a)},
            key=key,
        ),
    )


def ld_double_ir() -> FieldIR:
    """Plain LD projective doubling ``2·(X:Y:Z)`` (HMV Alg. 3.25)."""
    builder = IRBuilder("ld_double")
    x_p, y_p, z_p = (builder.input(name) for name in ("X", "Y", "Z"))
    doubled = _ld_double(builder, x_p, y_p, z_p)
    for name, var in zip(("Xn", "Yn", "Zn"), doubled):
        builder.output(name, var)
    return builder.build()


def ld_double_program(curve: "BinaryCurve") -> FieldProgram:
    """The scheduled projective doubling (memoized per modulus, a and b)."""
    field = curve.field
    key = ("ld-double", field.modulus, curve.a, curve.b)
    return cached_program(
        key,
        lambda: schedule_program(
            ld_double_ir(),
            field.m,
            {
                "square": field.square_map,
                "mul_a": field.constant_multiplier(curve.a),
                "mul_b": curve._mul_b,
            },
            key=key,
        ),
    )


def mixed_add_ir() -> FieldIR:
    """Plain LD mixed addition ``(X:Y:Z) + (x2, y2)`` — no masks.

    The batched evaluators' small-multiple tables are built with this:
    the running multiple stays projective through the whole add chain and
    every entry is normalized by one shared batch inversion at the end.
    Degenerate adds yield the sticky ``Z = 0`` flag as usual.
    """
    builder = IRBuilder("ld_mixed_add")
    x_p, y_p, z_p = (builder.input(name) for name in ("X", "Y", "Z"))
    x2, y2 = builder.input("x2"), builder.input("y2")
    added = _ld_mixed_add(builder, x_p, y_p, z_p, x2, y2)
    for name, var in zip(("Xn", "Yn", "Zn"), added):
        builder.output(name, var)
    return builder.build()


def mixed_add_program(curve: "BinaryCurve") -> FieldProgram:
    """The scheduled plain mixed add (memoized per modulus and a)."""
    field = curve.field
    key = ("ld-mixed-add", field.modulus, curve.a)
    return cached_program(
        key,
        lambda: schedule_program(
            mixed_add_ir(),
            field.m,
            {"square": field.square_map, "mul_a": field.constant_multiplier(curve.a)},
            key=key,
        ),
    )


def small_multiples_ir(top: int) -> FieldIR:
    """The whole chain ``2P … top·P`` from affine ``P`` as one program.

    One trace for the τ evaluator's per-lane table: a doubling from
    ``(x2, y2, 1)`` followed by ``top − 2`` mixed adds of the base, each
    intermediate state emitted as ``X<u> Y<u> Z<u>``.  Fusing the chain
    into a single program lets the scheduler stack the linear work across
    steps and costs one executor round trip instead of ``top − 1``.
    """
    builder = IRBuilder(f"ld_small_multiples_{top}")
    x2, y2 = builder.input("x2"), builder.input("y2")
    state = _ld_double(builder, x2, y2, builder.const(1))
    for u in range(2, top + 1):
        for name, var in zip((f"X{u}", f"Y{u}", f"Z{u}"), state):
            builder.output(name, var)
        if u < top:
            state = _ld_mixed_add(builder, *state, x2, y2)
    return builder.build()


def small_multiples_program(curve: "BinaryCurve", top: int) -> FieldProgram:
    """The scheduled small-multiple chain (memoized per modulus, a, b, top)."""
    field = curve.field
    key = ("ld-small-multiples", field.modulus, curve.a, curve.b, top)
    return cached_program(
        key,
        lambda: schedule_program(
            small_multiples_ir(top),
            field.m,
            {
                "square": field.square_map,
                "mul_a": field.constant_multiplier(curve.a),
                "mul_b": curve._mul_b,
            },
            key=key,
        ),
    )


def double_add_ir() -> FieldIR:
    """One fixed-base comb column: LD double, masked mixed add, selects.

    The doubling is HMV Alg. 3.25 (three products; the ``b·Z⁴`` terms run
    through the ``mul_b`` map), the add and select cascade are shared with
    :func:`frobenius_add_ir`.  Lanes whose comb tooth pattern is zero at
    this column fall through with just the doubling.
    """
    builder = IRBuilder("comb_double_add")
    x_p, y_p, z_p = (builder.input(name) for name in ("X", "Y", "Z"))
    x2, y2 = builder.input("x2"), builder.input("y2")
    add = builder.mask_input("add")
    init = builder.mask_input("init")
    x_d, y_d, z_d = _ld_double(builder, x_p, y_p, z_p)
    added = _ld_mixed_add(builder, x_d, y_d, z_d, x2, y2)
    _masked_point_update(builder, (x_d, y_d, z_d), added, (x2, y2), init, add)
    return builder.build()


def double_add_program(curve: "BinaryCurve") -> FieldProgram:
    """The scheduled comb column step (memoized per modulus, a and b)."""
    field = curve.field
    key = ("comb-double-add", field.modulus, curve.a, curve.b)
    return cached_program(
        key,
        lambda: schedule_program(
            double_add_ir(),
            field.m,
            {
                "square": field.square_map,
                "mul_a": field.constant_multiplier(curve.a),
                "mul_b": curve._mul_b,
            },
            key=key,
        ),
    )


def projective_to_affine_program(curve: "BinaryCurve") -> FieldProgram:
    """Affine ``(x3, y3)`` from LD ``(X : Y : Z)`` given ``zi = Z⁻¹``.

    The inversion itself stays outside the IR (the callers feed every live
    lane's ``Z`` through the backend's Montgomery batch inverse first);
    this program is the two products and one squaring that remain.
    """
    field = curve.field
    key = ("ld-proj-affine", field.modulus)

    def build() -> FieldProgram:
        builder = IRBuilder("ld_projective_to_affine")
        x_p, y_p, zi = builder.input("X"), builder.input("Y"), builder.input("zi")
        builder.output("x3", builder.mul(x_p, zi))
        builder.output("y3", builder.mul(y_p, builder.square(zi)))
        return schedule_program(builder.build(), field.m, {"square": field.square_map}, key=key)

    return cached_program(key, build)


def on_curve_residual_program(curve: "BinaryCurve") -> FieldProgram:
    """The curve-equation residual ``y² + xy + x³ + a·x² + b`` per lane.

    Zero exactly when ``(x, y)`` satisfies the equation — the batched
    internal-consistency check evaluates this with one lane-stacked
    product pass (``x·y`` and ``x²·x``) and one fused linear stage
    (``y²``, ``a·x²`` as a constant-multiplier map, the XOR tree, and the
    hoisted constant ``b``).
    """
    field = curve.field
    key = ("on-curve", field.modulus, curve.a, curve.b)

    def build() -> FieldProgram:
        builder = IRBuilder("on_curve_residual")
        x, y = builder.input("x"), builder.input("y")
        x_squared = builder.square(x)
        xy = builder.mul(x, y)
        x_cubed = builder.mul(x_squared, x)
        residual = builder.xor(
            builder.square(y),
            xy,
            x_cubed,
            builder.apply_linear("mul_a", x_squared),
            builder.const(curve.b),
        )
        builder.output("residual", residual)
        return schedule_program(
            builder.build(),
            field.m,
            {"square": field.square_map, "mul_a": field.constant_multiplier(curve.a)},
            key=key,
        )

    return cached_program(key, build)
