"""The curve formulas, each traced exactly once as a :class:`FieldIR`.

Before the formula compiler, every consumer of the López-Dahab step carried
its own copy of the formula: the scalar ladder in
:meth:`~repro.curves.point.BinaryCurve._ladder_ld`, a hand-written
gather/batch version in ``_ladder_ld_batch``, and a hand-scheduled plane
version in ``_ladder_ld_planes`` — three schedules to keep in sync.  This
module replaces the latter two: the **step**, the **y-recovery** and the
**curve-equation residual** are traced once as straight-line
:class:`~repro.backends.ir.FieldIR` and scheduled once per curve through
the level-scheduling fusion pass (:func:`~repro.backends.ir
.schedule_program`).  Plane-capable backends compile the scheduled program
into fused uint64 plane passes
(:meth:`~repro.backends.base.FieldBackend.ir_executor`); every other
backend interprets the same program with
:func:`~repro.backends.ir.execute_program`, which derives the per-step
``multiply_batch`` gathers from the schedule instead of hand-written loops.
The scalar ladder stays as the untouched independent reference the tests
compare both executions against.

Scheduled programs are memoized process-wide
(:func:`~repro.backends.ir.cached_program`) keyed by the curve fingerprint
(modulus plus the participating curve constants), and each plane executor
additionally memoizes its lowering by the same key — so the full chain is
cached per curve × backend × chunk and repeated ECDH calls never re-trace,
re-schedule or re-lower.

Formula conventions
-------------------
All programs use the one-bit-per-lane masked-select convention of the
batched ladder: ``select(bit, a, b)`` yields ``a`` on lanes whose scalar
bit is set.  The ladder-step registers follow López & Dahab 1999 (HMV
Alg. 3.40): ``R0 = (x1 : z1)``, ``R1 = (x2 : z2)``, invariant
``R1 - R0 = P`` with ``P = (x, y)`` the affine base point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..backends.ir import FieldIR, FieldProgram, IRBuilder, cached_program, schedule_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .point import BinaryCurve

__all__ = [
    "ladder_step_ir",
    "ladder_step_program",
    "recover_denominator_program",
    "recover_affine_program",
    "on_curve_residual_program",
]


def ladder_step_ir() -> FieldIR:
    """One full López-Dahab Montgomery step as a traced formula.

    Inputs ``x1 z1 x2 z2`` are the ladder registers, ``x`` the affine base
    x-coordinate; mask ``bit`` is the scalar bit of the step.  Outputs
    ``x1n z1n x2n z2n`` are the post-step registers.  The five products,
    six squarings (collapsing to three composed maps), the multiply-by-b
    and the masked swaps fuse into six passes when scheduled:
    ``select×2 → mul×3 → linear → mul×2 → linear → select×4``.
    """
    builder = IRBuilder("ld_step")
    x1, z1 = builder.input("x1"), builder.input("z1")
    x2, z2 = builder.input("x2"), builder.input("z2")
    base = builder.input("x")
    bit = builder.mask_input("bit")
    # The register being doubled this step (R1 when the bit is set).
    xd = builder.select(bit, x2, x1)
    zd = builder.select(bit, z2, z1)
    # Madd cross terms and the Mdouble X*Z product — one lane-stacked pass.
    t1 = builder.mul(x1, z2)
    t2 = builder.mul(x2, z1)
    xz = builder.mul(xd, zd)
    # Everything linear between the product levels fuses into one stage;
    # square∘square and mul_b∘square∘square collapse into composed maps.
    z_sum = builder.square(builder.xor(t1, t2))
    z_dbl = builder.square(xz)
    x_dbl = builder.xor(
        builder.square(builder.square(xd)),
        builder.apply_linear("mul_b", builder.square(builder.square(zd))),
    )
    # Madd's T1*T2 and x*Z_sum — the second lane-stacked pass.
    x_sum = builder.xor(builder.mul(t1, t2), builder.mul(base, z_sum))
    builder.output("x1n", builder.select(bit, x_sum, x_dbl))
    builder.output("z1n", builder.select(bit, z_sum, z_dbl))
    builder.output("x2n", builder.select(bit, x_dbl, x_sum))
    builder.output("z2n", builder.select(bit, z_dbl, z_sum))
    return builder.build()


def ladder_step_program(curve: "BinaryCurve") -> FieldProgram:
    """The scheduled ladder step for ``curve`` (memoized per modulus and b)."""
    field = curve.field
    key = ("ld-step", field.modulus, curve.b)
    return cached_program(
        key,
        lambda: schedule_program(
            ladder_step_ir(),
            field.m,
            {"square": field.square_map, "mul_b": curve._mul_b},
            key=key,
        ),
    )


def recover_denominator_program(curve: "BinaryCurve") -> FieldProgram:
    """Stage one of batched y-recovery: the shared inversion's denominator.

    ``z1z2 = z1·z2`` and ``denom = x·z1·z2`` for every live lane; the
    caller feeds ``denom`` through the backend's Montgomery batch inverse
    (inversion is not a straight-line field op, so it stays outside the
    IR) and hands ``inv`` to :func:`recover_affine_program`.
    """
    field = curve.field
    key = ("ld-recover-denom", field.modulus)

    def build() -> FieldProgram:
        builder = IRBuilder("ld_recover_denominator")
        base = builder.input("x")
        z1, z2 = builder.input("z1"), builder.input("z2")
        z1z2 = builder.mul(z1, z2)
        builder.output("z1z2", z1z2)
        builder.output("denom", builder.mul(base, z1z2))
        return schedule_program(builder.build(), field.m, {}, key=key)

    return cached_program(key, build)


def recover_affine_program(curve: "BinaryCurve") -> FieldProgram:
    """Stage two of batched y-recovery: affine ``(x3, y3)`` from the inverse.

    Same algebra as the scalar :meth:`~repro.curves.point.BinaryCurve
    ._ladder_recover`, rearranged by the scheduler into four product
    levels (``mul×4 → mul×3 → mul → mul``) with the XOR work fused
    between them.  ``y3`` already includes the final ``⊕ y``.
    """
    field = curve.field
    key = ("ld-recover-affine", field.modulus)

    def build() -> FieldProgram:
        builder = IRBuilder("ld_recover_affine")
        base, base_y = builder.input("x"), builder.input("y")
        x1, x2 = builder.input("x1"), builder.input("x2")
        z1, z2 = builder.input("z1"), builder.input("z2")
        z1z2, inv = builder.input("z1z2"), builder.input("inv")
        x1z2 = builder.mul(x1, z2)
        xz1 = builder.mul(base, z1)
        xz2 = builder.mul(base, z2)
        xinv = builder.mul(base, inv)
        left_in = builder.xor(x1, xz1)
        right_in = builder.xor(x2, xz2)
        trace_in = builder.xor(builder.square(base), base_y)
        x3 = builder.mul(x1z2, xinv)
        left = builder.mul(left_in, right_in)
        right = builder.mul(trace_in, z1z2)
        numerator = builder.mul(builder.xor(base, x3), builder.xor(left, right))
        y3 = builder.xor(builder.mul(numerator, inv), base_y)
        builder.output("x3", x3)
        builder.output("y3", y3)
        return schedule_program(builder.build(), field.m, {"square": field.square_map}, key=key)

    return cached_program(key, build)


def on_curve_residual_program(curve: "BinaryCurve") -> FieldProgram:
    """The curve-equation residual ``y² + xy + x³ + a·x² + b`` per lane.

    Zero exactly when ``(x, y)`` satisfies the equation — the batched
    internal-consistency check evaluates this with one lane-stacked
    product pass (``x·y`` and ``x²·x``) and one fused linear stage
    (``y²``, ``a·x²`` as a constant-multiplier map, the XOR tree, and the
    hoisted constant ``b``).
    """
    field = curve.field
    key = ("on-curve", field.modulus, curve.a, curve.b)

    def build() -> FieldProgram:
        builder = IRBuilder("on_curve_residual")
        x, y = builder.input("x"), builder.input("y")
        x_squared = builder.square(x)
        xy = builder.mul(x, y)
        x_cubed = builder.mul(x_squared, x)
        residual = builder.xor(
            builder.square(y),
            xy,
            x_cubed,
            builder.apply_linear("mul_a", x_squared),
            builder.const(curve.b),
        )
        builder.output("residual", residual)
        return schedule_program(
            builder.build(),
            field.m,
            {"square": field.square_map, "mul_a": field.constant_multiplier(curve.a)},
            key=key,
        )

    return cached_program(key, build)
