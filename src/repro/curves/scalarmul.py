"""Algorithmic scalar multiplication: τ-adic Frobenius ladders and
fixed-base combs, compiled through FieldIR.

Every speedup before this module came from the execution substrate — the
compiled engine, bitsliced planes, the native C tier — while the scalar
multiplication *algorithm* stayed a generic Montgomery ladder.  This module
closes the algorithmic gap with two compiled paths, both traced once in
:mod:`repro.curves.formulas` and lowered through the same
:class:`~repro.backends.ir.FieldIR` machinery, so they run unchanged on
every backend (python/engine/bitslice/native):

* **τ-adic ladders** — on a Koblitz curve (``y² + xy = x³ + ax² + 1`` with
  ``a`` in GF(2)) the Frobenius map ``τ(x, y) = (x², y²)`` is a curve
  endomorphism satisfying ``τ² = μτ − 2`` with ``μ = (−1)^(1−a)``.  The
  scalar is partially reduced in ℤ[τ] and recoded into sparse τ-adic
  digits, replacing the ladder's ~m point doublings with squarings — the
  op the paper's pentanomial fields execute almost for free as fused
  linear passes.  The per-digit step is
  :func:`~repro.curves.formulas.frobenius_add_program` (squarings + one
  lane-masked mixed add).
* **fixed-base combs** — generator multiplies (the whole of
  ``keygen_batch``) use a Lim-Lee comb table of the generator, built
  lazily, persisted in the content-addressed
  :class:`~repro.pipeline.store.ArtifactStore` (the table is
  deterministic per curve), and evaluated with
  :func:`~repro.curves.formulas.double_add_program` — one LD doubling
  plus a lane-masked add per comb column instead of a full ladder.

Scalar reduction and recoding
-----------------------------
Rational points satisfy ``τ^m = 1`` (the Frobenius of GF(2^m) fixes every
GF(2^m) point), so scalars act through ℤ[τ]/(τ^m − 1).  The classic
Solinas reduction divides by ``δ = (τ^m − 1)/(τ − 1)``, which annihilates
the order-n subgroup only; this module reduces by the full ``τ^m − 1``
instead, which annihilates **every** rational point — that is what makes
the τ path byte-identical to :meth:`~repro.curves.point.BinaryCurve
.multiply_reference` on arbitrary inputs, cofactor components included, at
the cost of ~2 extra digits (``N(τ^m − 1) = h·n`` vs ``N(δ) = n``).

Two recodings are provided:

* :func:`tau_naf` — width-w τ-NAF (Solinas): odd digits ``|u| < 2^(w−1)``,
  at most one nonzero in any ``w`` consecutive positions, average density
  ``1/(w+1)``.  The scalar evaluation path uses it directly.
* :func:`tau_window_digits` — the batched ladder's recoding: digits are
  extracted ``w`` τ-positions at a time, so every lane of a batch has its
  nonzero digits at positions ``≡ 0 (mod w)`` (plus a short unaligned
  tail).  Alignment is what makes batching pay: at aligned positions the
  whole batch shares one masked-add step, everywhere else the step is a
  pure squaring pass.

Degenerate lanes
----------------
The mixed-add formula yields ``Z = 0`` when an add degenerates (the
accumulator meets ``±table point``), and a zero ``Z`` is sticky through
both step formulas — so a single post-ladder check finds every lane that
needs the scalar-ladder fallback.  Random scalars hit this with
probability ~2^(−m); the exhaustive toy-curve tests hit it on purpose.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..backends.ir import execute_program
from ..pipeline.store import ArtifactStore, LRUCache, canonical_fingerprint
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from .formulas import (
    double_add_program,
    frobenius_add_program,
    frobenius_program,
    projective_to_affine_program,
    small_multiples_program,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Dict, List, Optional, Sequence, Tuple

    from .point import BinaryCurve, Point

__all__ = [
    "is_koblitz",
    "tau_mu",
    "reduce_scalar",
    "tau_naf",
    "tau_window_digits",
    "tau_digits_value",
    "DEFAULT_TAU_WIDTH",
    "DEFAULT_COMB_TEETH",
    "CombTable",
    "comb_table",
    "multiply_tau",
    "multiply_tau_batch",
    "multiply_comb_batch",
]

#: Default τ-NAF / window width: 2^(w−1) precomputed multiples per base,
#: one masked add per w ladder positions.
DEFAULT_TAU_WIDTH = 4

#: Default comb teeth: 2^t − 1 stored generator combinations, ceil(bits/t)
#: double+add columns per scalar multiplication.  10 teeth ≈ 17 columns on
#: K-163 — the 1023-point table is still < 45 KiB serialized, evaluation
#: drops a fifth of its columns vs 8 teeth, and the build stays a one-off
#: behind the artifact store.
DEFAULT_COMB_TEETH = 10

#: Schema stamp of persisted comb tables; bump when the layout changes.
COMB_TABLE_VERSION = 1

#: Longest zero-digit run folded into one composed squaring map.  Bounds
#: the per-curve program-cache population; runs beyond it (possible only
#: for very sparse lanes) split into multiple fallthrough events.
MAX_FUSED_SQUARINGS = 64

#: In-process memo of deserialized comb tables (the artifact store still
#: backs cold processes); surfaced by ``repro stats`` like every named cache.
_COMB_CACHE = LRUCache(maxsize=16, name="curves.comb_tables")


# --------------------------------------------------------------- ℤ[τ] algebra
def is_koblitz(curve: "BinaryCurve") -> bool:
    """True when ``curve`` carries the Frobenius endomorphism (a, b ∈ GF(2))."""
    return curve.b == 1 and curve.a in (0, 1)


def tau_mu(curve: "BinaryCurve") -> int:
    """The sign μ in ``τ² = μτ − 2``: +1 for a = 1, −1 for a = 0."""
    if not is_koblitz(curve):
        raise ValueError(
            f"{curve.name or curve!r} is not a Koblitz curve (needs a ∈ GF(2), b = 1); "
            "the τ-adic ladder has no Frobenius endomorphism to ride"
        )
    return 2 * curve.a - 1


def _zt_mul(mu: int, x: "Tuple[int, int]", y: "Tuple[int, int]") -> "Tuple[int, int]":
    """Multiplication in ℤ[τ]: ``(x0 + x1 τ)(y0 + y1 τ)`` with ``τ² = μτ − 2``."""
    x0, x1 = x
    y0, y1 = y
    return (x0 * y0 - 2 * x1 * y1, x0 * y1 + x1 * y0 + mu * x1 * y1)


def _zt_norm(mu: int, a: int, b: int) -> int:
    """The norm ``N(a + bτ) = a² + μab + 2b²`` (always non-negative)."""
    return a * a + mu * a * b + 2 * b * b


def _tau_power_minus_one(mu: int, m: int) -> "Tuple[int, int]":
    """``τ^m − 1`` as ``(a, b)`` via the recurrence ``τ^(k+1) = −2b + (a+μb)τ``."""
    a, b = 1, 0
    for _ in range(m):
        a, b = -2 * b, a + mu * b
    return a - 1, b


def _round_div(numerator: int, denominator: int) -> int:
    """Nearest integer to ``numerator / denominator`` (``denominator > 0``)."""
    return (2 * numerator + denominator) // (2 * denominator)


def _div_tau(mu: int, r0: int, r1: int) -> "Tuple[int, int]":
    """Exact division by τ (``r0`` must be even)."""
    half = r0 >> 1
    return r1 + mu * half, -half


def _mods(value: int, power: int) -> int:
    """The balanced residue of ``value`` modulo ``power`` in ``(−power/2, power/2]``."""
    residue = value % power
    if residue > power >> 1:
        residue -= power
    return residue


def _tail_threshold(width: int) -> int:
    """The residue norm below which width-``width`` extraction may stall.

    One digit round maps ``N ↦ ≤ (√N + 2^(width−1))² / 2^width``, a strict
    decrease exactly when ``√N (2^(width/2) − 1) > 2^(width−1)``.  Below
    the squared bound the balanced-digit subtraction can cycle (width 6
    loops forever on the residue of ``2``, for instance), so extraction
    must hand over to the plain τ-NAF tail — which terminates from every
    state (verified exhaustively over ``|r0|, |r1| ≤ 2000``, max 26
    steps) — no later than this norm.
    """
    half = 1 << (width - 1)
    shrink = 2.0 ** (width / 2.0) - 1.0
    return max(7, math.ceil((half / shrink) ** 2))


def _t_width(mu: int, width: int) -> int:
    """The even root of ``t² − μt + 2 ≡ 0 (mod 2^width)``, lifted bit by bit.

    ``τ ↦ t`` realises the ring isomorphism ℤ[τ]/τ^w ≅ ℤ/2^w that digit
    extraction leans on: ``τ^w`` divides ``ρ − u`` exactly when ``2^w``
    divides ``r0 + r1·t − u``.
    """
    t = 0
    for bit in range(1, width + 1):
        if (t * t - mu * t + 2) % (1 << bit):
            t += 1 << (bit - 1)
    return t


class _TauContext:
    """Per-curve τ-adic constants: μ, ``τ^m − 1``, its norm, and t_w memos."""

    __slots__ = ("mu", "m", "d", "conj", "norm", "_t_widths", "_div_consts")

    def __init__(self, curve: "BinaryCurve") -> None:
        self.mu = tau_mu(curve)
        self.m = curve.field.m
        self.d = _tau_power_minus_one(self.mu, self.m)
        d0, d1 = self.d
        self.conj = (d0 + self.mu * d1, -d1)
        self.norm = _zt_norm(self.mu, d0, d1)
        self._t_widths: "Dict[int, int]" = {}
        self._div_consts: "Dict[int, Tuple[int, int, int]]" = {}

    def t_width(self, width: int) -> int:
        value = self._t_widths.get(width)
        if value is None:
            value = self._t_widths[width] = _t_width(self.mu, width)
        return value

    def div_constants(self, width: int) -> "Tuple[int, int, int]":
        """Constants ``(e0, e1, f)`` folding division by ``τ^width``.

        With ``e0 + e1 τ = conj(τ^width)`` and ``N(τ^width) = 2^width``,
        an exact quotient ``ρ / τ^width`` is ``ρ · conj(τ^width) >> width``
        componentwise — one shift instead of ``width`` τ-division rounds.
        ``f = e0 + μ e1`` pre-folds the τ²-reduction cross term.
        """
        value = self._div_consts.get(width)
        if value is None:
            a, b = 1, 0
            for _ in range(width):
                a, b = -2 * b, a + self.mu * b
            e0, e1 = a + self.mu * b, -b
            value = self._div_consts[width] = (e0, e1, e0 + self.mu * e1)
        return value


_TAU_CONTEXTS = LRUCache(maxsize=16, name="curves.tau_contexts")


def _tau_context(curve: "BinaryCurve") -> _TauContext:
    key = (curve.field.modulus, curve.a, curve.b)
    return _TAU_CONTEXTS.get_or_create(key, lambda: _TauContext(curve))  # type: ignore[return-value]


def reduce_scalar(curve: "BinaryCurve", scalar: int) -> "Tuple[int, int]":
    """``scalar`` partially reduced modulo ``τ^m − 1`` in ℤ[τ].

    Returns ``(r0, r1)`` with ``r0 + r1 τ ≡ scalar (mod τ^m − 1)`` and
    ``N(r0 + r1 τ) ≤ N(τ^m − 1) ≈ h·n`` — so the recoded expansion has
    ~m + 2 digits regardless of the scalar's width.  Because ``τ^m`` acts
    as the identity on every GF(2^m)-rational point, the reduced element
    computes exactly ``scalar · P`` for **every** curve point (no
    subgroup-membership assumption, unlike reduction by
    ``δ = (τ^m − 1)/(τ − 1)``).
    """
    ctx = _tau_context(curve)
    n0, n1 = _zt_mul(ctx.mu, (scalar, 0), ctx.conj)
    q = (_round_div(n0, ctx.norm), _round_div(n1, ctx.norm))
    p0, p1 = _zt_mul(ctx.mu, q, ctx.d)
    return scalar - p0, -p1


def tau_naf(curve: "BinaryCurve", scalar: int, width: int = DEFAULT_TAU_WIDTH) -> "List[int]":
    """The width-w τ-NAF digits of ``scalar`` on ``curve``, lowest first.

    Digits are zero or odd with ``|u| < 2^(width−1)``, with at most one
    nonzero in any ``width`` consecutive positions — average density
    ``1/(width+1)`` — except in the constant-size tail, which drops to
    the plain width-2 τ-NAF once the residue norm falls under
    :func:`_tail_threshold` (wider windows stop contracting there).
    Evaluating ``Σ uᵢ τ^i`` on any rational point yields exactly
    ``scalar · P`` (the expansion encodes the :func:`reduce_scalar`
    residue).
    """
    if width < 2 or width > 16:
        raise ValueError(f"τ-NAF width must be in [2, 16], got {width}")
    ctx = _tau_context(curve)
    mu = ctx.mu
    t_w = ctx.t_width(width)
    power = 1 << width
    threshold = _tail_threshold(width)
    gate = math.isqrt(2 * threshold) + 1
    r0, r1 = reduce_scalar(curve, scalar)
    digits: "List[int]" = []
    while r0 or r1:
        # Wide windows stall (or cycle) once the residue norm drops under
        # the width's threshold — finish with the plain τ-NAF there.
        if (
            power > 4
            and -gate <= r0 <= gate
            and -gate <= r1 <= gate
            and r0 * r0 + mu * r0 * r1 + 2 * r1 * r1 <= threshold
        ):
            t_w, power = ctx.t_width(2), 4
        if r0 & 1:
            u = _mods(r0 + r1 * t_w, power)
            digits.append(u)
            r0 -= u
        else:
            digits.append(0)
        r0, r1 = _div_tau(mu, r0, r1)
    return digits


def tau_window_digits(
    curve: "BinaryCurve", scalar: int, width: int = DEFAULT_TAU_WIDTH
) -> "List[int]":
    """Batch-aligned τ-adic digits of ``scalar``, lowest first.

    Digits (``|u| ≤ 2^(width−1)``, even values allowed) are extracted a
    whole window at a time, so nonzeros land only at positions
    ``≡ 0 (mod width)`` — every lane of a batch shares one masked-add
    schedule.  Window extraction is a strict norm contraction only while
    the residue norm exceeds :func:`_tail_threshold`; the constant-size
    remainder drains through the plain τ-NAF (±1 digits at unaligned
    trailing positions, guaranteed to terminate).
    """
    if width < 2 or width > 16:
        raise ValueError(f"window width must be in [2, 16], got {width}")
    events, span = _tau_sparse_digits(curve, scalar, width)
    digits = [0] * span
    for position, digit in events:
        digits[position] = digit
    return digits


def _tau_sparse_digits(
    curve: "BinaryCurve", scalar: int, width: int = DEFAULT_TAU_WIDTH
) -> "Tuple[List[Tuple[int, int]], int]":
    """:func:`tau_window_digits` as sparse ``(position, digit)`` events.

    Returns ``(events, span)`` with events ordered lowest position first
    and ``span`` the dense digit count (highest position + 1).  The
    batched evaluator consumes this directly — zero runs never
    materialise, they fold into the next event's composed squaring map.
    """
    ctx = _tau_context(curve)
    mu = ctx.mu
    t_w = ctx.t_width(width)
    e0, e1, f = ctx.div_constants(width)
    power = 1 << width
    half = power >> 1
    mask = power - 1
    threshold = _tail_threshold(width)
    gate = math.isqrt(2 * threshold) + 1
    r0, r1 = reduce_scalar(curve, scalar)
    events: "List[Tuple[int, int]]" = []
    position = 0
    while True:
        # Magnitude gate before the exact norm: the tail region forces
        # ``|a|, |b| ≤ √(2·threshold)``, so large residues skip the three
        # norm multiplications entirely.
        if (
            -gate <= r0 <= gate
            and -gate <= r1 <= gate
            and r0 * r0 + mu * r0 * r1 + 2 * r1 * r1 <= threshold
        ):
            break
        # Only the window's low bits matter: u ≡ r0 + r1·t_w (mod 2^w)
        # computed on masked small ints, not full-width bigints.
        u = ((r0 & mask) + (r1 & mask) * t_w) & mask
        if u > half:
            u -= power
        if u:
            events.append((position, u))
            r0 -= u
        # ρ − u is divisible by τ^width: divide in one folded step via
        # conj(τ^width) and an exact arithmetic shift (N(τ^width) = 2^width).
        r0, r1 = (r0 * e0 - 2 * r1 * e1) >> width, (r0 * e1 + r1 * f) >> width
        position += width
    # Below the threshold the window recurrence no longer shrinks the
    # norm (see _tail_threshold), so the constant-size remainder drains
    # through the plain τ-NAF: ±1 digits at unaligned trailing positions,
    # terminating from every state.
    t_2 = ctx.t_width(2)
    while r0 or r1:
        if r0 & 1:
            u = _mods(r0 + r1 * t_2, 4)
            events.append((position, u))
            r0 -= u
        r0, r1 = _div_tau(mu, r0, r1)
        position += 1
    return events, (events[-1][0] + 1) if events else 0


def tau_digits_value(curve: "BinaryCurve", digits: "Sequence[int]") -> "Tuple[int, int]":
    """``Σ digits[i] · τ^i`` back in ℤ[τ] — the recoding tests' round trip."""
    mu = tau_mu(curve)
    r0, r1 = 0, 0
    for digit in reversed(digits):
        # Horner: (r0 + r1 τ) · τ + digit.
        r0, r1 = -2 * r1 + digit, r0 + mu * r1
    return r0, r1


# ----------------------------------------------------------- shared plumbing
def _resolve_executor(backend, plane_resident: "Optional[bool]"):
    """The backend's FieldIR executor per the ``plane_resident`` contract."""
    if plane_resident is False:
        return None
    executor = backend.ir_executor()
    if executor is None and plane_resident:
        raise ValueError(
            f"backend {backend.name!r} has no plane-resident IR executor; "
            "use the 'bitslice' or 'native' backend or plane_resident=False"
        )
    return executor


def _run_program_chunked(backend, program, inputs: "Dict[str, List[int]]"):
    """Run a mask-less FieldProgram on int lists, compiled where possible.

    IR-capable backends get the compiled lowering, chunked at the
    executor's lane width (pack → run → unpack per chunk); everything
    else interprets the same program via :func:`execute_program`.
    """
    executor = backend.ir_executor()
    if executor is None:
        return execute_program(program, backend, inputs)
    columns = [inputs[name] for name, _ in program.ir.inputs]
    out_names = [name for name, _ in program.ir.outputs]
    count = len(columns[0])
    chunk = executor.chunk_size
    compiled = executor.compile(program)
    outputs: "Dict[str, List[int]]" = {name: [] for name in out_names}
    unpack = executor.unpack
    for start in range(0, count, chunk):
        stop = min(start + chunk, count)
        lanes = stop - start
        arrays = compiled.run_arrays(
            tuple(executor.pack(column[start:stop]).array for column in columns), ()
        )
        for name, array in zip(out_names, arrays):
            outputs[name] += unpack(executor.vector(array, lanes))
    return outputs


def _small_multiples_batch(curve, backend, base_x, base_y, top):
    """Per-lane multiples ``u·P`` for ``u = 1..top``, built projectively.

    The add chain ``2P, 3P, …`` runs through the compiled LD doubling /
    mixed-add formulas — no inversions anywhere in the chain — and every
    entry is normalized to affine by **one** shared Montgomery batch
    inversion at the end.  Returns ``(tables, degenerate)``:
    ``tables[u]`` the affine coordinate lists of ``u · P_lane`` (zeros on
    dead lanes) and ``degenerate`` the lanes whose chain hit the sticky
    ``Z = 0`` flag (tiny point orders) and must take the scalar fallback.
    """
    count = len(base_x)
    tables: "Dict[int, Tuple[List[int], List[int]]]" = {1: (list(base_x), list(base_y))}
    if top < 2:
        return tables, set()
    program = small_multiples_program(curve, top)
    chain = _run_program_chunked(
        backend, program, {"x2": base_x, "y2": base_y}
    )
    degenerate = {
        lane
        for u in range(2, top + 1)
        for lane in range(count)
        if chain[f"Z{u}"][lane] == 0
    }
    flat_x: "List[int]" = []
    flat_y: "List[int]" = []
    flat_z: "List[int]" = []
    slots: "List[Tuple[int, int]]" = []
    for u in range(2, top + 1):
        tables[u] = ([0] * count, [0] * count)
        xs, ys, zs = chain[f"X{u}"], chain[f"Y{u}"], chain[f"Z{u}"]
        for lane in range(count):
            if lane not in degenerate:
                slots.append((u, lane))
                flat_x.append(xs[lane])
                flat_y.append(ys[lane])
                flat_z.append(zs[lane])
    if slots:
        with _trace.span("scalarmul.table_inverse", count=len(slots)):
            inverses = backend.inverse_batch(flat_z)
        affine = _run_program_chunked(
            backend,
            projective_to_affine_program(curve),
            {"X": flat_x, "Y": flat_y, "zi": inverses},
        )
        for (u, lane), x3, y3 in zip(slots, affine["x3"], affine["y3"]):
            tables[u][0][lane] = x3
            tables[u][1][lane] = y3
    return tables, degenerate


def _finalize_projective(curve, backend, x_acc, y_acc, z_acc):
    """Affine points from LD accumulators; ``None`` marks fallback lanes.

    A zero ``Z`` is the sticky degenerate/never-started flag — those lanes
    (plus any the caller already marked) are returned as ``None`` for the
    per-lane scalar-ladder fallback.  Live lanes share one Montgomery
    batch inversion and one compiled conversion formula.
    """
    from .point import Point

    count = len(z_acc)
    live = [index for index in range(count) if z_acc[index] != 0]
    points: "List[Optional[Point]]" = [None] * count
    if live:
        with _trace.span("scalarmul.inverse_batch", count=len(live)):
            inverses = backend.inverse_batch([z_acc[i] for i in live])
        affine = _run_program_chunked(
            backend,
            projective_to_affine_program(curve),
            {
                "X": [x_acc[i] for i in live],
                "Y": [y_acc[i] for i in live],
                "zi": inverses,
            },
        )
        for slot, index in enumerate(live):
            points[index] = Point(curve, affine["x3"][slot], affine["y3"][slot])
    return points


def _run_masked_steps(
    curve,
    backend,
    plane_resident,
    count,
    rows_for,
    *,
    program_for,
    span_prefix,
):
    """Drive a digit/column schedule through the compiled step formulas.

    ``rows_for(start, stop)`` yields, highest position first, one
    ``(key, row)`` event per step for the lane slice ``[start, stop)``:
    ``row`` is either ``None`` for a fallthrough-only event (a whole run
    of zero digits / a plain doubling, no gathered inputs) or slice-width
    ``(x2, y2, add_bits, init_bits)`` lists.  ``program_for(key,
    has_add)`` supplies the :class:`~repro.backends.ir.FieldProgram` of
    an event class — the τ evaluator keys on the folded squaring count,
    the comb evaluator has a single class.  Every lane starts from the
    not-yet-started LD sentinel ``(1, 1, 0)``.  Runs plane/word-resident
    on IR-capable backends — chunked at the executor's lane width, each
    chunk packing once, stepping per event and unpacking once — and
    interprets the same programs everywhere else.  Returns the final
    accumulator triple as int lists.
    """
    executor = _resolve_executor(backend, plane_resident)
    tracer = _trace.TRACER
    if executor is None:
        state = {"X": [1] * count, "Y": [1] * count, "Z": [0] * count}
        for key, row in rows_for(0, count):
            if row is None:
                out = execute_program(program_for(key, False), backend, state)
            else:
                x2, y2, add_bits, init_bits = row
                out = execute_program(
                    program_for(key, True),
                    backend,
                    {**state, "x2": x2, "y2": y2},
                    {"add": add_bits, "init": init_bits},
                )
            state = {"X": out["Xn"], "Y": out["Yn"], "Z": out["Zn"]}
        return state["X"], state["Y"], state["Z"]
    compiled: "Dict[Tuple[object, bool], object]" = {}

    def compile_for(key, has_add):
        entry = compiled.get((key, has_add))
        if entry is None:
            entry = compiled[(key, has_add)] = executor.compile(program_for(key, has_add))
        return entry

    chunk = executor.chunk_size
    x_out: "List[int]" = []
    y_out: "List[int]" = []
    z_out: "List[int]" = []
    for start in range(0, count, chunk):
        lanes = min(chunk, count - start)
        with tracer.span(f"{span_prefix}.pack", lanes=lanes):
            x_arr = executor.pack([1] * lanes).array
            y_arr = executor.pack([1] * lanes).array
            z_arr = executor.pack([0] * lanes).array
        for key, row in rows_for(start, start + lanes):
            with tracer.span(f"{span_prefix}.step"):
                if row is None:
                    x_arr, y_arr, z_arr = compile_for(key, False).run_arrays(
                        (x_arr, y_arr, z_arr), ()
                    )
                else:
                    x2, y2, add_bits, init_bits = row
                    x_arr, y_arr, z_arr = compile_for(key, True).run_arrays(
                        (
                            x_arr,
                            y_arr,
                            z_arr,
                            executor.pack(x2).array,
                            executor.pack(y2).array,
                        ),
                        (
                            executor.broadcast_bits(add_bits),
                            executor.broadcast_bits(init_bits),
                        ),
                    )
        with tracer.span(f"{span_prefix}.unpack", lanes=lanes):
            unpack = executor.unpack
            x_out += unpack(executor.vector(x_arr, lanes))
            y_out += unpack(executor.vector(y_arr, lanes))
            z_out += unpack(executor.vector(z_arr, lanes))
    return x_out, y_out, z_out


# ------------------------------------------------------------- τ-adic ladder
def multiply_tau(
    curve: "BinaryCurve",
    point: "Point",
    scalar: int,
    width: int = DEFAULT_TAU_WIDTH,
) -> "Point":
    """Scalar τ-NAF multiplication on affine points (the unbatched path).

    The caller (``BinaryCurve.multiply``) has already screened negatives,
    zero scalars, infinity and the order-two point.  Evaluation is the
    plain Horner scheme over :func:`tau_naf` digits with the field's
    squaring map as τ — byte-identical to the binary ladder by group
    arithmetic.
    """
    from .point import Point

    field = curve.field
    digits = tau_naf(curve, scalar, width)
    registry = _metrics.REGISTRY
    if registry.enabled:
        registry.inc("ladder.tau.digits", len(digits))
    table: "Dict[int, Point]" = {1: point}
    if any(abs(digit) > 1 for digit in digits):
        double = curve.double(point)
        for u in range(3, 1 << (width - 1), 2):
            table[u] = curve.add(table[u - 2], double)
    result = curve.infinity()
    square = field.square
    for digit in reversed(digits):
        if not result.is_infinity:
            result = Point(curve, square(result.x), square(result.y))
        if digit:
            entry = table[abs(digit)]
            result = curve.add(result, entry if digit > 0 else curve.negate(entry))
    return result


def multiply_tau_batch(
    curve: "BinaryCurve",
    base_x: "List[int]",
    base_y: "List[int]",
    scalars: "List[int]",
    *,
    backend,
    plane_resident: "Optional[bool]" = None,
    width: int = DEFAULT_TAU_WIDTH,
) -> "List[Point]":
    """Batched τ-adic ladder over independent ``(point, scalar)`` lanes.

    Per-lane sparse window recodings (:func:`tau_window_digits` events)
    share one masked-add schedule (their nonzeros are window-aligned);
    the per-lane small-multiple tables come from one fused
    :func:`~repro.curves.formulas.small_multiples_program` chain plus a
    shared Montgomery batch inversion.  Every scheduled event runs the
    compiled
    :func:`~repro.curves.formulas.frobenius_program` (squarings only) or
    :func:`~repro.curves.formulas.frobenius_add_program` (squarings plus
    the lane-masked add).  Lanes that finish with the sticky ``Z = 0``
    flag — degenerate adds or annihilated scalars — take the scalar
    ladder per lane; the result is byte-identical to the binary paths.
    """
    count = len(base_x)
    lane_events: "List[Dict[int, int]]" = []
    span_total = 0
    for scalar in scalars:
        events, span = _tau_sparse_digits(curve, scalar, width)
        lane_events.append(dict(events))
        span_total += span
    registry = _metrics.REGISTRY
    if registry.enabled:
        registry.inc("ladder.tau.digits", span_total)
    top = 1 << (width - 1)
    tables, degenerate = _small_multiples_batch(curve, backend, base_x, base_y, top)
    for lane in degenerate:
        lane_events[lane] = {}

    def rows_for(start, stop):
        # Runs of zero digits fold into the following add event (or a
        # trailing pure-Frobenius event): τ^k is one composed linear map,
        # so an event costs the same whatever k — the call count drops to
        # the number of positions where *some* lane has a nonzero digit.
        # Events are indexed sparsely by position up front, so each step
        # touches only the lanes that actually add (~1/width of the slice)
        # instead of scanning the whole slice per position.
        slots = stop - start
        started = [False] * slots
        by_position: "Dict[int, List[Tuple[int, int]]]" = {}
        for slot in range(slots):
            for position, digit in lane_events[start + slot].items():
                by_position.setdefault(position, []).append((slot, digit))
        previous: "Optional[int]" = None
        for position in sorted(by_position, reverse=True):
            squarings = 1 if previous is None else previous - position
            previous = position
            while squarings > MAX_FUSED_SQUARINGS:
                yield MAX_FUSED_SQUARINGS, None
                squarings -= MAX_FUSED_SQUARINGS
            x2 = [0] * slots
            y2 = [0] * slots
            add_bits = [0] * slots
            init_bits = [0] * slots
            for slot, digit in by_position[position]:
                xs, ys = tables[digit if digit > 0 else -digit]
                x = xs[start + slot]
                y = ys[start + slot]
                if digit < 0:
                    y ^= x  # −(x, y) = (x, x + y) on a binary curve
                x2[slot] = x
                y2[slot] = y
                if started[slot]:
                    add_bits[slot] = 1
                else:
                    init_bits[slot] = 1
                    started[slot] = True
            yield squarings, (x2, y2, add_bits, init_bits)
        pending = previous if previous else 0
        while pending > 0:
            squarings = min(pending, MAX_FUSED_SQUARINGS)
            yield squarings, None
            pending -= squarings

    def program_for(squarings, has_add):
        if has_add:
            return frobenius_add_program(curve, squarings)
        return frobenius_program(curve, squarings)

    x_acc, y_acc, z_acc = _run_masked_steps(
        curve,
        backend,
        plane_resident,
        count,
        rows_for,
        program_for=program_for,
        span_prefix="ladder.tau",
    )
    for lane in degenerate:
        z_acc[lane] = 0
    points = _finalize_projective(curve, backend, x_acc, y_acc, z_acc)
    from .point import Point

    for index in range(count):
        if points[index] is None:
            points[index] = curve.multiply(
                Point(curve, base_x[index], base_y[index]), scalars[index]
            )
            if registry.enabled:
                registry.inc("ladder.tau.fallbacks")
    return points  # type: ignore[return-value]


# ------------------------------------------------------------ fixed-base comb
class CombTable:
    """A Lim-Lee comb table for one curve's generator.

    ``points[pattern]`` (1-indexed; pattern ``Σ bⱼ 2^j``) holds the affine
    coordinates of ``Σ bⱼ · 2^(j·columns) · G``.  ``columns`` is the comb
    evaluation depth: scalars up to ``2^(teeth·columns)`` are covered,
    which includes every private key the protocols draw.
    """

    __slots__ = ("teeth", "columns", "points")

    def __init__(self, teeth: int, columns: int, points: "List[Tuple[int, int]]") -> None:
        self.teeth = teeth
        self.columns = columns
        self.points = points

    @property
    def capacity_bits(self) -> int:
        """Scalars below ``2^capacity_bits`` evaluate in one comb pass."""
        return self.teeth * self.columns


def _comb_fingerprint(curve: "BinaryCurve", teeth: int, columns: int) -> str:
    """The content address of one curve's comb table in the artifact store."""
    return canonical_fingerprint(
        {
            "kind": "comb-table",
            "version": COMB_TABLE_VERSION,
            "modulus": curve.field.modulus,
            "a": curve.a,
            "b": curve.b,
            "generator": [curve.generator.x, curve.generator.y],
            "teeth": teeth,
            "columns": columns,
        }
    )


def _build_comb_points(
    curve: "BinaryCurve", teeth: int, columns: int
) -> "List[Tuple[int, int]]":
    """All ``2^teeth − 1`` tooth combinations of the generator, affine.

    Pure affine group law — exact, deterministic, and cheap next to the
    ladders it replaces (``teeth`` strided doublings plus one add per
    combination).
    """
    strides = [curve.generator]
    for _ in range(1, teeth):
        point = strides[-1]
        for _ in range(columns):
            point = curve.double(point)
        strides.append(point)
    points: "List[Tuple[int, int]]" = []
    for pattern in range(1, 1 << teeth):
        total = curve.infinity()
        for tooth in range(teeth):
            if (pattern >> tooth) & 1:
                total = curve.add(total, strides[tooth])
        if total.is_infinity:  # pragma: no cover - needs a tiny-order generator
            raise ArithmeticError(
                f"comb tooth pattern {pattern} of {curve.name or curve!r} collapsed "
                "to infinity; lower the teeth count for this curve"
            )
        points.append((total.x, total.y))
    return points


def comb_table(
    curve: "BinaryCurve",
    *,
    teeth: int = DEFAULT_COMB_TEETH,
    store: "Optional[ArtifactStore]" = None,
) -> CombTable:
    """The (lazily built, artifact-store-persisted) comb table of ``curve``.

    Tables are deterministic per curve, so they live in the
    content-addressed store keyed by the curve constants and comb shape:
    warm processes hit the in-memory LRU, warm machines hit the store
    (``comb.table.hit``), and only cold caches pay the build
    (``comb.table.build``).
    """
    if teeth < 2 or teeth > 10:
        raise ValueError(f"comb teeth must be in [2, 10], got {teeth}")
    bound = curve.order if curve.order is not None else curve.field.order
    bits = max(bound.bit_length(), 1)
    columns = -(-bits // teeth)
    key = _comb_fingerprint(curve, teeth, columns)

    def load() -> CombTable:
        backing = store if store is not None else ArtifactStore()
        registry = _metrics.REGISTRY
        payload = backing.get_json(key)
        if payload is not None:
            if registry.enabled:
                registry.inc("comb.table.hit")
            points = [(int(x), int(y)) for x, y in payload["points"]]
            return CombTable(teeth, columns, points)
        if registry.enabled:
            registry.inc("comb.table.build")
        with _metrics.timed("comb.table.build_s"), _trace.span(
            "comb.table.build", curve=curve.name or "?", teeth=teeth
        ):
            points = _build_comb_points(curve, teeth, columns)
        backing.put_json(
            key,
            {
                "version": COMB_TABLE_VERSION,
                "curve": curve.name,
                "teeth": teeth,
                "columns": columns,
                "points": [[x, y] for x, y in points],
            },
        )
        return CombTable(teeth, columns, points)

    return _COMB_CACHE.get_or_create(key, load)  # type: ignore[return-value]


def multiply_comb_batch(
    curve: "BinaryCurve",
    scalars: "List[int]",
    *,
    backend,
    plane_resident: "Optional[bool]" = None,
    teeth: int = DEFAULT_COMB_TEETH,
    store: "Optional[ArtifactStore]" = None,
) -> "List[Point]":
    """Batched fixed-base multiplication ``scalar · G`` via the comb table.

    One :func:`~repro.curves.formulas.double_add_program` step per comb
    column — an LD doubling plus a lane-masked table add — instead of a
    full ladder; the table rows are gathered per lane and per column from
    :func:`comb_table`.  Scalars must lie in ``[1, 2^capacity_bits)``
    (the protocol layer's draws always do; ``BinaryCurve.multiply_batch``
    routes anything else through the generic paths).
    """
    table = comb_table(curve, teeth=teeth, store=store)
    count = len(scalars)
    columns, width = table.columns, table.teeth
    registry = _metrics.REGISTRY
    if registry.enabled:
        registry.inc("comb.columns", columns * count)

    def rows_for(start, stop):
        slots = stop - start
        started = [False] * slots
        # One pass over each scalar's *set* bits fills every column's
        # tooth pattern — bit index ``tooth·columns + column`` lands in
        # ``patterns[column]`` — instead of teeth·columns shift/mask
        # probes per lane.
        lane_patterns: "List[List[int]]" = []
        for slot in range(slots):
            scalar = scalars[start + slot]
            patterns = [0] * columns
            while scalar:
                index = (scalar & -scalar).bit_length() - 1
                scalar &= scalar - 1
                patterns[index % columns] |= 1 << (index // columns)
            lane_patterns.append(patterns)
        for column in range(columns - 1, -1, -1):
            x2 = [0] * slots
            y2 = [0] * slots
            add_bits = [0] * slots
            init_bits = [0] * slots
            for slot in range(slots):
                pattern = lane_patterns[slot][column]
                if not pattern:
                    continue
                x2[slot], y2[slot] = table.points[pattern - 1]
                if started[slot]:
                    add_bits[slot] = 1
                else:
                    init_bits[slot] = 1
                    started[slot] = True
            yield 0, (x2, y2, add_bits, init_bits)

    x_acc, y_acc, z_acc = _run_masked_steps(
        curve,
        backend,
        plane_resident,
        count,
        rows_for,
        program_for=lambda key, has_add: double_add_program(curve),
        span_prefix="comb",
    )
    points = _finalize_projective(curve, backend, x_acc, y_acc, z_acc)
    generator = curve.generator
    for index in range(count):
        if points[index] is None:
            points[index] = curve.multiply(generator, scalars[index])
            if registry.enabled:
                registry.inc("comb.fallbacks")
    return points  # type: ignore[return-value]
