"""Protocol workloads on binary curves: ECDH key agreement and ECDSA-style
signatures, with batched variants shaped like real bulk traffic.

The batched entry points (:func:`keygen_batch`, :func:`ecdh_batch`) are the
subsystem's reason to exist from the ROADMAP's point of view: a batch of
``N`` key agreements performs ``~6 N`` independent field multiplications
per ladder step, and :meth:`repro.curves.point.BinaryCurve.multiply_batch`
gathers all of them into compiled-engine calls
(:meth:`~repro.galois.field.GF2mField.multiply_batch`).  The batched
results are byte-identical to the scalar reference path — asserted in the
tests and in ``benchmarks/bench_curve_ops.py``.

ECDSA here is "ECDSA-style": the digest is taken as an integer reduced
modulo ``n`` and the default nonce is derived deterministically from the
key and digest with SHA-256 (reproducible runs; not RFC 6979).  Signing
needs a curve with a known subgroup order — the Koblitz catalog entries —
while ECDH works on every catalog curve.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING


if TYPE_CHECKING:  # pragma: no cover - typing only
    from .point import BinaryCurve, Point

__all__ = [
    "KeyPair",
    "Signature",
    "generate_keypair",
    "keygen_batch",
    "ecdh_shared",
    "ecdh_batch",
    "ecdsa_sign",
    "sign_batch",
    "ecdsa_verify",
]


@dataclass(frozen=True)
class KeyPair:
    """A private scalar and its public point ``Q = d * G``."""

    private: int
    public: Point


@dataclass(frozen=True)
class Signature:
    """An ECDSA-style signature pair."""

    r: int
    s: int


def _scalar_bound(curve: BinaryCurve) -> int:
    """Exclusive upper bound for private scalars on ``curve``.

    The subgroup order when known; otherwise the field order, which keeps
    key generation meaningful on the unknown-order B-family (any scalar is
    a valid ECDH secret — throughput workloads never need ``n``).
    """
    return curve.order if curve.order is not None else curve.field.order


def _require_order(curve: BinaryCurve, what: str) -> int:
    if curve.order is None:
        raise ValueError(
            f"{what} needs a curve with a known subgroup order; "
            f"{curve.name or 'this curve'} does not record one (use a K-curve)"
        )
    return curve.order


def generate_keypair(curve: BinaryCurve, rng: random.Random) -> KeyPair:
    """Draw a private scalar and compute its public point."""
    private = rng.randrange(1, _scalar_bound(curve))
    return KeyPair(private, curve.multiply(curve.generator, private))


def keygen_batch(
    curve: BinaryCurve,
    count: int,
    *,
    rng: Optional[random.Random] = None,
    seed: Optional[int] = None,
    batched: bool = True,
    backend=None,
    plane_resident: Optional[bool] = None,
    scalar_rep: str = "auto",
    fixed_base: Optional[bool] = None,
) -> List[KeyPair]:
    """Generate ``count`` key pairs, deriving the public points in one batch.

    ``seed`` (or an explicit ``rng``) makes the draw reproducible.
    ``backend`` selects the execution substrate of the batched ladder
    (:mod:`repro.backends`; results are byte-identical across backends) and
    ``plane_resident`` forces or pins its ladder path (see
    :meth:`~repro.curves.point.BinaryCurve.multiply_batch`).  Every
    public point is a generator multiply, so by default (``fixed_base=
    None``) the batch evaluates through the precomputed comb table —
    ``fixed_base=False`` pins the ladders, and ``scalar_rep`` then picks
    the recoding (``"auto"``: τ-adic on Koblitz curves).  With
    ``batched=False`` each public point is computed by the scalar ladder
    instead — the reference path the batch is checked against.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if rng is None:
        rng = random.Random(seed)
    bound = _scalar_bound(curve)
    privates = [rng.randrange(1, bound) for _ in range(count)]
    generator = curve.generator
    if batched:
        publics = curve.multiply_batch(
            [generator] * count,
            privates,
            backend=backend,
            plane_resident=plane_resident,
            scalar_rep=scalar_rep,
            fixed_base=fixed_base,
        )
    else:
        publics = [curve.multiply(generator, private) for private in privates]
    return [KeyPair(private, public) for private, public in zip(privates, publics)]


def ecdh_shared(curve: BinaryCurve, private: int, peer_public: Point) -> Point:
    """The Diffie-Hellman shared point ``d * Q_peer`` (validates the peer)."""
    if not curve.contains(peer_public) or peer_public.is_infinity:
        raise ValueError("the peer public key is not a finite point of the curve")
    return curve.multiply(peer_public, private)


def ecdh_batch(
    curve: BinaryCurve,
    privates: Sequence[int],
    peer_publics: Sequence[Point],
    *,
    batched: bool = True,
    backend=None,
    plane_resident: Optional[bool] = None,
    scalar_rep: str = "auto",
) -> List[Point]:
    """Shared points for many independent ``(private, peer)`` pairs.

    The batched path routes every ladder step through one execution
    backend (:mod:`repro.backends`; the compiled engine by default,
    selectable via ``backend``).  A plane-resident backend (``bitslice``)
    keeps all ladder steps in its packed plane domain; ``plane_resident``
    forces or pins that path (see
    :meth:`~repro.curves.point.BinaryCurve.multiply_batch`).
    ``scalar_rep`` picks the scalar recoding: the default ``"auto"``
    rides the τ-adic Frobenius ladder on Koblitz curves and the binary
    ladder elsewhere; ``"tau"`` demands τ (raising on non-Koblitz
    curves), ``"binary"`` pins the ladder.  ``batched=False`` is the
    scalar reference.  All paths return byte-identical points.
    """
    if len(privates) != len(peer_publics):
        raise ValueError(
            f"batch size mismatch: {len(privates)} privates vs {len(peer_publics)} peers"
        )
    # On-curve validation happens once inside the ladder entry points; only
    # the infinity screen (a protocol-level concern) is needed here.
    for peer in peer_publics:
        if peer.is_infinity:
            raise ValueError("a peer public key is the point at infinity")
    if batched:
        return curve.multiply_batch(
            list(peer_publics),
            list(privates),
            backend=backend,
            plane_resident=plane_resident,
            scalar_rep=scalar_rep,
        )
    return [curve.multiply(peer, private) for private, peer in zip(privates, peer_publics)]


def _deterministic_nonce(curve: BinaryCurve, private: int, digest: int, counter: int) -> int:
    order = curve.order or curve.field.order
    width = (order.bit_length() + 7) // 8
    material = hashlib.sha256(
        b"gf2m-repro nonce"
        + private.to_bytes(width, "big")
        + digest.to_bytes(max((digest.bit_length() + 7) // 8, 1), "big")
        + counter.to_bytes(4, "big")
    ).digest()
    while len(material) < width:
        material += hashlib.sha256(material).digest()
    return int.from_bytes(material[:width], "big") % order


def ecdsa_sign(
    curve: BinaryCurve,
    private: int,
    digest: int,
    *,
    nonce: Optional[int] = None,
) -> Signature:
    """ECDSA-style signature of an integer digest.

    Without an explicit ``nonce`` a deterministic one is derived from the
    key and digest, so signing is reproducible.  Raises ``ValueError`` on
    curves without a recorded subgroup order.
    """
    order = _require_order(curve, "ECDSA signing")
    if not 1 <= private < order:
        raise ValueError("the private key must satisfy 1 <= d < n")
    e = digest % order
    counter = 0
    while True:
        k = nonce if nonce is not None else _deterministic_nonce(curve, private, digest, counter)
        counter += 1
        if not 1 <= k < order:
            if nonce is not None:
                raise ValueError("the nonce must satisfy 1 <= k < n")
            continue
        point = curve.multiply(curve.generator, k)
        r = point.x % order
        if r == 0:
            if nonce is not None:
                raise ValueError("unlucky nonce: r = 0, pick another")
            continue
        s = (pow(k, -1, order) * (e + private * r)) % order
        if s == 0:
            if nonce is not None:
                raise ValueError("unlucky nonce: s = 0, pick another")
            continue
        return Signature(r, s)


def sign_batch(
    curve: BinaryCurve,
    privates: Sequence[int],
    digests: Sequence[int],
    *,
    batched: bool = True,
    backend=None,
    plane_resident: Optional[bool] = None,
    scalar_rep: str = "auto",
    fixed_base: Optional[bool] = None,
) -> List[Signature]:
    """Sign many independent ``(private, digest)`` pairs in one batch.

    The expensive step of every signature is the nonce multiply
    ``k * G`` — a generator multiply, exactly the shape :func:`keygen_batch`
    batches — so each retry round gathers the pending nonce multiplies
    into one :meth:`~repro.curves.point.BinaryCurve.multiply_batch` call
    (comb table by default, ``fixed_base``/``scalar_rep``/``backend`` as
    in :func:`keygen_batch`).  The deterministic nonce schedule, its
    retry-counter semantics and the resulting ``(r, s)`` pairs are
    byte-identical to calling :func:`ecdsa_sign` per pair, on every
    backend; ``batched=False`` is that scalar reference.  Retries beyond
    the first round are astronomically rare (``k`` invalid, ``r = 0`` or
    ``s = 0``), but the loop replicates them faithfully.
    """
    order = _require_order(curve, "ECDSA signing")
    if len(privates) != len(digests):
        raise ValueError(
            f"batch size mismatch: {len(privates)} privates vs {len(digests)} digests"
        )
    for private in privates:
        if not 1 <= private < order:
            raise ValueError("every private key must satisfy 1 <= d < n")
    if not batched:
        return [
            ecdsa_sign(curve, private, digest)
            for private, digest in zip(privates, digests)
        ]
    count = len(privates)
    results: "List[Optional[Signature]]" = [None] * count
    counters = [0] * count
    pending = list(range(count))
    generator = curve.generator
    while pending:
        retry: List[int] = []
        lanes: List[tuple] = []
        for index in pending:
            k = _deterministic_nonce(curve, privates[index], digests[index], counters[index])
            counters[index] += 1
            if not 1 <= k < order:
                retry.append(index)
                continue
            lanes.append((index, k))
        if lanes:
            points = curve.multiply_batch(
                [generator] * len(lanes),
                [k for _, k in lanes],
                backend=backend,
                plane_resident=plane_resident,
                scalar_rep=scalar_rep,
                fixed_base=fixed_base,
            )
            for (index, k), point in zip(lanes, points):
                r = point.x % order
                if r == 0:
                    retry.append(index)
                    continue
                e = digests[index] % order
                s = (pow(k, -1, order) * (e + privates[index] * r)) % order
                if s == 0:
                    retry.append(index)
                    continue
                results[index] = Signature(r, s)
        pending = retry
    return results  # type: ignore[return-value]


def ecdsa_verify(curve: BinaryCurve, public: Point, digest: int, signature: Signature) -> bool:
    """Check an ECDSA-style signature against a public point."""
    order = _require_order(curve, "ECDSA verification")
    if not curve.contains(public) or public.is_infinity:
        return False
    r, s = signature.r, signature.s
    if not (1 <= r < order and 1 <= s < order):
        return False
    e = digest % order
    w = pow(s, -1, order)
    u1 = (e * w) % order
    u2 = (r * w) % order
    point = curve.add(curve.multiply(curve.generator, u1), curve.multiply(public, u2))
    if point.is_infinity:
        return False
    return point.x % order == r
