"""repro.telemetry — zero-dependency observability for every substrate.

Three pieces, importable independently and free of any intra-``repro``
imports at module level (so the hot backends can instrument themselves
without cycles):

* :mod:`repro.telemetry.metrics` — process-wide counters / gauges /
  timing observations with **mergeable** snapshots, so sweep workers and
  ECDH shards report back across process boundaries;
* :mod:`repro.telemetry.trace` — span tracing exported as Chrome
  trace-event JSON (open in Perfetto), behind the global ``--trace-out``
  CLI flag;
* :mod:`repro.telemetry.dashboard` — the perf-trajectory dashboard over
  the committed ``BENCH_*.json`` files with advisory regression flags.

:func:`snapshot_all` is the one aggregate view (`repro stats` and a
future service's ``/stats`` payload): the metrics registry plus the
hit/miss/eviction stats of every named :class:`~repro.pipeline.store.LRUCache`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import dashboard, metrics, trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict

__all__ = ["metrics", "trace", "dashboard", "snapshot_all"]


def snapshot_all() -> "Dict[str, Any]":
    """Metrics snapshot plus every named LRU cache's live stats."""
    # Imported lazily: pipeline.store itself records into this package.
    from ..pipeline.store import named_caches

    caches = {
        name: {
            "hits": info.hits,
            "misses": info.misses,
            "evictions": info.evictions,
            "currsize": info.currsize,
            "maxsize": info.maxsize,
        }
        for name, info in sorted(
            (name, cache.info()) for name, cache in named_caches().items()
        )
    }
    return {"metrics": metrics.REGISTRY.snapshot(), "caches": caches}
