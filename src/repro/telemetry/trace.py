"""Span tracing with Chrome trace-event export.

``with span("ladder.step", m=163, backend="native"): ...`` records one
complete ("ph": "X") event per exit — name, start offset and duration in
microseconds, process/thread ids and the keyword arguments — into the
process-wide :data:`TRACER`.  The buffer serialises to the Chrome
trace-event JSON format, so a file written by ``repro --trace-out
FILE …`` opens directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` with spans nested by their timestamps.

Tracing is **off by default**: the shared :class:`NullTracer` hands back
one reusable no-op span, so an instrumented hot loop pays one attribute
check plus one no-op ``with`` per span.  Per-ladder-step spans are
therefore affordable to leave in the code; the expensive part (building
event dicts, and on the native backend splitting the fused program into
one C call per pass) only happens once a real :class:`Tracer` is
installed via :func:`enable` or :func:`set_tracer`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict, List, Optional

__all__ = [
    "Tracer",
    "NullTracer",
    "TRACER",
    "span",
    "set_tracer",
    "enable",
    "disable",
    "write_chrome_trace",
    "aggregate_spans",
]


class _Span:
    """A live span: records one complete event on ``__exit__``."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: "Dict[str, Any]") -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        self._tracer._record(self.name, self.args, self._start, end - self._start)


class _NullSpan:
    """Shared reusable no-op span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``enabled`` is False, spans are shared no-ops."""

    enabled = False

    def span(self, name: str, **args: "Any") -> _NullSpan:
        return _NULL_SPAN

    def events(self) -> "List[Dict[str, Any]]":
        return []


class Tracer:
    """Collects Chrome trace-event complete ("X") events in memory."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: "List[Dict[str, Any]]" = []
        self._t0 = time.perf_counter()
        self._pid = os.getpid()

    def span(self, name: str, **args: "Any") -> _Span:
        return _Span(self, name, args)

    def _record(self, name: str, args: "Dict[str, Any]", start: float, duration: float) -> None:
        event = {
            "name": name,
            "ph": "X",
            "ts": (start - self._t0) * 1e6,
            "dur": duration * 1e6,
            "pid": self._pid,
            "tid": threading.get_ident() & 0xFFFFFFFF,
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def events(self) -> "List[Dict[str, Any]]":
        with self._lock:
            return list(self._events)

    def chrome_trace(self) -> "Dict[str, Any]":
        """The full buffer in Chrome trace-event JSON form."""
        return {"traceEvents": self.events(), "displayTimeUnit": "ms"}


#: The process-wide tracer.  Instrumented call sites read this module
#: attribute at call time (``trace.TRACER``) and gate on ``.enabled``.
TRACER: "Tracer | NullTracer" = NullTracer()


def set_tracer(tracer: "Tracer | NullTracer") -> "Tracer | NullTracer":
    """Install ``tracer`` process-wide; returns the previous one."""
    global TRACER
    previous = TRACER
    TRACER = tracer
    return previous


def enable() -> Tracer:
    """Install (and return) a fresh collecting tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable() -> None:
    set_tracer(NullTracer())


def span(name: str, **args: "Any") -> "_Span | _NullSpan":
    """A span on the current process-wide tracer."""
    return TRACER.span(name, **args)


def record_span(name: str, start_s: float, duration_s: float, **args: "Any") -> None:
    """Record one complete span from explicit ``time.perf_counter`` stamps.

    The ``with span(...)`` form cannot describe intervals whose start and
    end happen on different threads — a batch assembled on the event loop
    but completed by an executor callback, say.  The serving layer stamps
    ``perf_counter`` at both ends itself and records the finished span
    here; a no-op when the :class:`NullTracer` is installed.
    """
    tracer = TRACER
    if tracer.enabled:
        tracer._record(name, args, start_s, duration_s)


def write_chrome_trace(path: str, tracer: "Optional[Tracer]" = None) -> int:
    """Write the tracer's buffer as Chrome trace-event JSON; returns event count."""
    target = tracer if tracer is not None else TRACER
    if isinstance(target, NullTracer):
        payload: "Dict[str, Any]" = {"traceEvents": [], "displayTimeUnit": "ms"}
        count = 0
    else:
        payload = target.chrome_trace()
        count = len(payload["traceEvents"])
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return count


def aggregate_spans(
    events: "List[Dict[str, Any]]", prefix: str = ""
) -> "Dict[str, Dict[str, float]]":
    """Per-name ``{count, total_s}`` over ``events`` (filtered by name prefix).

    Used by ``repro bench --profile`` to turn a buffer of per-pass spans
    into a per-pass breakdown table.
    """
    summary: "Dict[str, Dict[str, float]]" = {}
    for event in events:
        name = event.get("name", "")
        if prefix and not name.startswith(prefix):
            continue
        entry = summary.get(name)
        seconds = event.get("dur", 0.0) / 1e6
        if entry is None:
            summary[name] = {"count": 1, "total_s": seconds}
        else:
            entry["count"] += 1
            entry["total_s"] += seconds
    return summary
