"""Process-wide metrics: counters, gauges and timing observations.

The registry is deliberately tiny — three dictionaries behind one lock —
because it sits inside hot paths (``multiply_batch`` on every backend,
the artifact store, the sweep scheduler).  Two design rules keep it out
of the way of the benchmarks:

* **one attribute check gates everything** — instrumented call sites do
  ``reg = REGISTRY`` then ``if reg.enabled:``; with the no-op
  :class:`NullRegistry` installed that is a single class-attribute load
  and the hot path performs no dict lookups at all;
* **snapshots are mergeable** — process-pool sweep workers and ``repro
  ecdh --jobs`` shards run with their own local registry, return
  :meth:`MetricsRegistry.snapshot` next to their results, and the parent
  folds them in with :meth:`MetricsRegistry.merge`.  Counters and
  observation summaries add; gauges are last-write-wins.

Histogram-style data is kept as *observations*: per-name
``count/total/min/max`` summaries.  That is what merging across
processes can do exactly (quantiles cannot be merged without sketches,
and a sketch is not worth a third-party dependency here).

Telemetry is **on by default** — the per-batch cost is two dict updates,
invisible next to any field operation — and can be switched off for
A/B measurements with ``GF2M_REPRO_TELEMETRY=0`` or
``set_registry(NullRegistry())``.
"""

from __future__ import annotations

import os
import threading
import time
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict, Optional

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "Stopwatch",
    "REGISTRY",
    "default_registry",
    "set_registry",
    "enable",
    "disable",
    "timed",
]


class Stopwatch:
    """Context manager that always measures and optionally records.

    ``with timed("cli.bench.compiled") as timer: ...`` then
    ``timer.seconds`` — the elapsed time is available to the caller even
    when telemetry is off (the CLI prints rates from it), and is folded
    into the registry's observations only when the registry is enabled.
    """

    __slots__ = ("_registry", "name", "seconds", "_start")

    def __init__(self, registry: "MetricsRegistry | NullRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start
        registry = self._registry
        if registry.enabled:
            registry.observe(self.name, self.seconds)


class MetricsRegistry:
    """Thread-safe counters / gauges / observations with mergeable snapshots."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "Dict[str, int]" = {}
        self._gauges: "Dict[str, float]" = {}
        # name -> [count, total_seconds, min_seconds, max_seconds]
        self._observations: "Dict[str, list]" = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            entry = self._observations.get(name)
            if entry is None:
                self._observations[name] = [1, seconds, seconds, seconds]
            else:
                entry[0] += 1
                entry[1] += seconds
                if seconds < entry[2]:
                    entry[2] = seconds
                if seconds > entry[3]:
                    entry[3] = seconds

    def record_batch(self, backend_name: str, op: str, elements: int) -> None:
        """Count one batched field-op call and its element width."""
        prefix = f"backend.{backend_name}.{op}"
        with self._lock:
            counters = self._counters
            counters[prefix + ".calls"] = counters.get(prefix + ".calls", 0) + 1
            counters[prefix + ".elements"] = counters.get(prefix + ".elements", 0) + elements

    def timed(self, name: str) -> Stopwatch:
        return Stopwatch(self, name)

    # -- snapshots ----------------------------------------------------

    def snapshot(self) -> "Dict[str, Any]":
        """A plain-dict copy, safe to pickle across process boundaries."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "observations": {
                    name: {
                        "count": entry[0],
                        "total_s": entry[1],
                        "min_s": entry[2],
                        "max_s": entry[3],
                    }
                    for name, entry in self._observations.items()
                },
            }

    def merge(self, snapshot: "Optional[Dict[str, Any]]") -> None:
        """Fold a :meth:`snapshot` from another registry into this one."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, summary in snapshot.get("observations", {}).items():
                entry = self._observations.get(name)
                if entry is None:
                    self._observations[name] = [
                        summary["count"],
                        summary["total_s"],
                        summary["min_s"],
                        summary["max_s"],
                    ]
                else:
                    entry[0] += summary["count"]
                    entry[1] += summary["total_s"]
                    entry[2] = min(entry[2], summary["min_s"])
                    entry[3] = max(entry[3], summary["max_s"])

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._observations.clear()


class NullRegistry:
    """No-op stand-in: ``enabled`` is False and every method does nothing."""

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def record_batch(self, backend_name: str, op: str, elements: int) -> None:
        pass

    def timed(self, name: str) -> Stopwatch:
        return Stopwatch(self, name)

    def snapshot(self) -> "Dict[str, Any]":
        return {"counters": {}, "gauges": {}, "observations": {}}

    def merge(self, snapshot: "Optional[Dict[str, Any]]") -> None:
        pass

    def reset(self) -> None:
        pass


def _initial_registry() -> "MetricsRegistry | NullRegistry":
    flag = os.environ.get("GF2M_REPRO_TELEMETRY", "1").strip().lower()
    if flag in ("0", "off", "false", "no"):
        return NullRegistry()
    return MetricsRegistry()


#: The process-wide default registry.  Instrumented call sites read this
#: module attribute at call time (``metrics.REGISTRY``), so swapping it
#: with :func:`set_registry` redirects all future recording.
REGISTRY: "MetricsRegistry | NullRegistry" = _initial_registry()


def default_registry() -> "MetricsRegistry | NullRegistry":
    return REGISTRY


def set_registry(registry: "MetricsRegistry | NullRegistry") -> "MetricsRegistry | NullRegistry":
    """Install ``registry`` process-wide; returns the previous one."""
    global REGISTRY
    previous = REGISTRY
    REGISTRY = registry
    return previous


def enable() -> MetricsRegistry:
    """Ensure a live registry is installed (keeps an existing live one)."""
    global REGISTRY
    if not isinstance(REGISTRY, MetricsRegistry):
        REGISTRY = MetricsRegistry()
    return REGISTRY


def disable() -> None:
    """Install the no-op registry (hot paths cost one attribute check)."""
    set_registry(NullRegistry())


def timed(name: str) -> Stopwatch:
    """A :class:`Stopwatch` bound to the current process-wide registry."""
    return Stopwatch(REGISTRY, name)
