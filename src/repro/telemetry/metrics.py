"""Process-wide metrics: counters, gauges and timing observations.

The registry is deliberately tiny — three dictionaries behind one lock —
because it sits inside hot paths (``multiply_batch`` on every backend,
the artifact store, the sweep scheduler).  Two design rules keep it out
of the way of the benchmarks:

* **one attribute check gates everything** — instrumented call sites do
  ``reg = REGISTRY`` then ``if reg.enabled:``; with the no-op
  :class:`NullRegistry` installed that is a single class-attribute load
  and the hot path performs no dict lookups at all;
* **snapshots are mergeable** — process-pool sweep workers and ``repro
  ecdh --jobs`` shards run with their own local registry, return
  :meth:`MetricsRegistry.snapshot` next to their results, and the parent
  folds them in with :meth:`MetricsRegistry.merge`.  Counters and
  observation summaries add; gauges are last-write-wins.

Histogram-style data is kept as *observations*: per-name
``count/total/min/max`` summaries **plus a log-spaced bucket histogram**
(:data:`HISTOGRAM_BOUNDS`: powers of two from ~1 µs to 512, one shared
axis for every observation so latencies and batch-fill lane counts use
the same machinery).  Bucket counts merge across process snapshots by
plain element-wise addition — merged histograms are *exactly* equal to
the serial ones, which is what lets the serving layer report real
p50/p95/p99 (:func:`summary_quantile`) from worker-process snapshots
without a third-party sketch dependency.

Telemetry is **on by default** — the per-batch cost is two dict updates,
invisible next to any field operation — and can be switched off for
A/B measurements with ``GF2M_REPRO_TELEMETRY=0`` or
``set_registry(NullRegistry())``.
"""

from __future__ import annotations

import os
import threading
import time
from bisect import bisect_left
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict, Optional, Sequence

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "Stopwatch",
    "REGISTRY",
    "HISTOGRAM_BOUNDS",
    "default_registry",
    "set_registry",
    "enable",
    "disable",
    "timed",
    "summary_quantile",
    "summary_quantiles",
]

#: Shared log-spaced bucket upper bounds for every observation histogram:
#: powers of two from 2^-20 (~0.95 µs) to 2^9 (512).  One fixed axis keeps
#: bucket counts mergeable by plain addition across process snapshots; the
#: range covers both sub-millisecond span timings and lane-count
#: observations like ``service.batch_fill`` (≤ 512 lanes).  Values above
#: the last bound land in a final overflow bucket.
HISTOGRAM_BOUNDS: "tuple" = tuple(2.0 ** exponent for exponent in range(-20, 10))

_BUCKETS = len(HISTOGRAM_BOUNDS) + 1


class Stopwatch:
    """Context manager that always measures and optionally records.

    ``with timed("cli.bench.compiled") as timer: ...`` then
    ``timer.seconds`` — the elapsed time is available to the caller even
    when telemetry is off (the CLI prints rates from it), and is folded
    into the registry's observations only when the registry is enabled.
    """

    __slots__ = ("_registry", "name", "seconds", "_start")

    def __init__(self, registry: "MetricsRegistry | NullRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.seconds = 0.0
        self._start = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds = time.perf_counter() - self._start
        registry = self._registry
        if registry.enabled:
            registry.observe(self.name, self.seconds)


class MetricsRegistry:
    """Thread-safe counters / gauges / observations with mergeable snapshots."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: "Dict[str, int]" = {}
        self._gauges: "Dict[str, float]" = {}
        # name -> [count, total_seconds, min_seconds, max_seconds]
        self._observations: "Dict[str, list]" = {}

    # -- recording ----------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        bucket = bisect_left(HISTOGRAM_BOUNDS, seconds)
        with self._lock:
            entry = self._observations.get(name)
            if entry is None:
                buckets = [0] * _BUCKETS
                buckets[bucket] = 1
                self._observations[name] = [1, seconds, seconds, seconds, buckets]
            else:
                entry[0] += 1
                entry[1] += seconds
                if seconds < entry[2]:
                    entry[2] = seconds
                if seconds > entry[3]:
                    entry[3] = seconds
                entry[4][bucket] += 1

    def record_batch(self, backend_name: str, op: str, elements: int) -> None:
        """Count one batched field-op call and its element width."""
        prefix = f"backend.{backend_name}.{op}"
        with self._lock:
            counters = self._counters
            counters[prefix + ".calls"] = counters.get(prefix + ".calls", 0) + 1
            counters[prefix + ".elements"] = counters.get(prefix + ".elements", 0) + elements

    def timed(self, name: str) -> Stopwatch:
        return Stopwatch(self, name)

    # -- snapshots ----------------------------------------------------

    def snapshot(self) -> "Dict[str, Any]":
        """A plain-dict copy, safe to pickle across process boundaries."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "observations": {
                    name: {
                        "count": entry[0],
                        "total_s": entry[1],
                        "min_s": entry[2],
                        "max_s": entry[3],
                        "buckets": list(entry[4]),
                    }
                    for name, entry in self._observations.items()
                },
            }

    def merge(self, snapshot: "Optional[Dict[str, Any]]") -> None:
        """Fold a :meth:`snapshot` from another registry into this one."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = value
            for name, summary in snapshot.get("observations", {}).items():
                # Snapshots from before the histogram change carry no
                # bucket counts; they merge as all-zero histograms so the
                # count/total/min/max summary stays exact either way.
                incoming = summary.get("buckets") or [0] * _BUCKETS
                entry = self._observations.get(name)
                if entry is None:
                    self._observations[name] = [
                        summary["count"],
                        summary["total_s"],
                        summary["min_s"],
                        summary["max_s"],
                        list(incoming),
                    ]
                else:
                    entry[0] += summary["count"]
                    entry[1] += summary["total_s"]
                    entry[2] = min(entry[2], summary["min_s"])
                    entry[3] = max(entry[3], summary["max_s"])
                    buckets = entry[4]
                    for index, value in enumerate(incoming):
                        buckets[index] += value

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._observations.clear()


class NullRegistry:
    """No-op stand-in: ``enabled`` is False and every method does nothing."""

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, seconds: float) -> None:
        pass

    def record_batch(self, backend_name: str, op: str, elements: int) -> None:
        pass

    def timed(self, name: str) -> Stopwatch:
        return Stopwatch(self, name)

    def snapshot(self) -> "Dict[str, Any]":
        return {"counters": {}, "gauges": {}, "observations": {}}

    def merge(self, snapshot: "Optional[Dict[str, Any]]") -> None:
        pass

    def reset(self) -> None:
        pass


def _initial_registry() -> "MetricsRegistry | NullRegistry":
    flag = os.environ.get("GF2M_REPRO_TELEMETRY", "1").strip().lower()
    if flag in ("0", "off", "false", "no"):
        return NullRegistry()
    return MetricsRegistry()


#: The process-wide default registry.  Instrumented call sites read this
#: module attribute at call time (``metrics.REGISTRY``), so swapping it
#: with :func:`set_registry` redirects all future recording.
REGISTRY: "MetricsRegistry | NullRegistry" = _initial_registry()


def default_registry() -> "MetricsRegistry | NullRegistry":
    return REGISTRY


def set_registry(registry: "MetricsRegistry | NullRegistry") -> "MetricsRegistry | NullRegistry":
    """Install ``registry`` process-wide; returns the previous one."""
    global REGISTRY
    previous = REGISTRY
    REGISTRY = registry
    return previous


def enable() -> MetricsRegistry:
    """Ensure a live registry is installed (keeps an existing live one)."""
    global REGISTRY
    if not isinstance(REGISTRY, MetricsRegistry):
        REGISTRY = MetricsRegistry()
    return REGISTRY


def disable() -> None:
    """Install the no-op registry (hot paths cost one attribute check)."""
    set_registry(NullRegistry())


def timed(name: str) -> Stopwatch:
    """A :class:`Stopwatch` bound to the current process-wide registry."""
    return Stopwatch(REGISTRY, name)


def summary_quantile(summary: "Dict[str, Any]", q: float) -> "Optional[float]":
    """Estimated ``q``-quantile of one observation summary's histogram.

    Walks the cumulative bucket counts to the bucket holding the target
    rank and interpolates geometrically inside it (the buckets are
    log-spaced, so geometric interpolation is the unbiased choice); the
    estimate is clamped into the exact recorded ``[min_s, max_s]`` range.
    Returns ``None`` for empty summaries or pre-histogram snapshots that
    carry no bucket counts.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    count = summary.get("count", 0)
    buckets = summary.get("buckets")
    if not count or not buckets or not any(buckets):
        return None
    minimum, maximum = summary["min_s"], summary["max_s"]
    rank = max(1, min(count, int(q * count + 0.5)) if q > 0 else 1)
    if q >= 1.0:
        return maximum
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if not bucket_count:
            continue
        cumulative += bucket_count
        if cumulative < rank:
            continue
        lower = HISTOGRAM_BOUNDS[index - 1] if index > 0 else minimum
        upper = HISTOGRAM_BOUNDS[index] if index < len(HISTOGRAM_BOUNDS) else maximum
        fraction = (rank - (cumulative - bucket_count)) / bucket_count
        if lower > 0 and upper > lower:
            estimate = lower * (upper / lower) ** fraction
        else:
            estimate = lower + (upper - lower) * fraction
        return min(max(estimate, minimum), maximum)
    return maximum  # pragma: no cover - bucket counts always sum to count


def summary_quantiles(
    summary: "Dict[str, Any]", qs: "Sequence[float]" = (0.5, 0.95, 0.99)
) -> "Dict[str, Optional[float]]":
    """``{"p50": ..., "p95": ..., "p99": ...}`` for one observation summary."""
    return {f"p{round(q * 100)}": summary_quantile(summary, q) for q in qs}
