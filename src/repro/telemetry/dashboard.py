"""Perf-trajectory dashboard over the committed ``BENCH_*.json`` files.

The repo's performance story lives in the bench reports committed at the
repo root: one file per bench, each either a single snapshot (``{bench,
commit_pr, config, results}``) or a list of such snapshots — the
trajectory form that :func:`benchmarks._harness.write_bench_json` now
appends to.  This module reads all of them, pivots every throughput-like
result field into per-series trajectories (one series per bench × result
identity, e.g. ``backend=native m=163``), renders the table as markdown
or standalone HTML, and flags any series whose latest value fell more
than ``tolerance`` below the best value recorded under an *earlier*
``commit_pr``.

Metric fields are recognised by name: ``rate``/``*_rate``/``*_per_s``/
``speedup*`` — all higher-is-better throughputs or ratios.  Regression
flags are advisory (``repro dashboard --check`` warns but exits 0):
shared runners are noisy, and the hard perf floors in CI remain the
gate.
"""

from __future__ import annotations

import glob
import html as _html
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import Any, Dict, List, Tuple

__all__ = [
    "TrajectoryPoint",
    "Regression",
    "is_metric_key",
    "load_bench_files",
    "validate_snapshot",
    "build_trajectory",
    "find_regressions",
    "render_markdown",
    "render_html",
    "render_dashboard",
]

DEFAULT_TOLERANCE = 0.10

#: Result-row keys that identify a series (as opposed to carrying a metric).
IDENTITY_KEYS = ("backend", "curve", "method", "m", "n", "batch", "pairs")

_REQUIRED_SNAPSHOT_KEYS = ("bench", "commit_pr", "config", "results")


def is_metric_key(key: str) -> bool:
    """True for higher-is-better throughput/ratio fields by naming convention."""
    return key == "rate" or key.endswith("_rate") or key.endswith("_per_s") or key.startswith("speedup")


@dataclass(frozen=True)
class TrajectoryPoint:
    """One metric value from one snapshot of one bench series."""

    bench: str
    series: str
    metric: str
    value: float
    commit_pr: int
    timestamp: str
    source: str


@dataclass(frozen=True)
class Regression:
    """A series whose latest value dropped below the best prior PR's."""

    latest: TrajectoryPoint
    best_prior: TrajectoryPoint
    drop: float  # fractional drop vs best prior, e.g. 0.12 for -12%

    def describe(self) -> str:
        return (
            f"{self.latest.bench} [{self.latest.series}] {self.latest.metric}: "
            f"{self.latest.value:.4g} (PR {self.latest.commit_pr}) vs best "
            f"{self.best_prior.value:.4g} (PR {self.best_prior.commit_pr}) "
            f"= -{self.drop * 100:.1f}%"
        )


def validate_snapshot(snapshot: "Dict[str, Any]") -> "List[str]":
    """Schema problems in one ``{bench, commit_pr, config, results}`` snapshot."""
    problems: "List[str]" = []
    if not isinstance(snapshot, dict):
        return [f"snapshot is {type(snapshot).__name__}, expected object"]
    for key in _REQUIRED_SNAPSHOT_KEYS:
        if key not in snapshot:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if not isinstance(snapshot["bench"], str):
        problems.append("bench is not a string")
    if not isinstance(snapshot["commit_pr"], int):
        problems.append("commit_pr is not an integer")
    config = snapshot["config"]
    if not isinstance(config, dict):
        problems.append("config is not an object")
    else:
        platform = config.get("platform")
        if not isinstance(platform, dict) or "python" not in platform or "machine" not in platform:
            problems.append("config.platform must carry python + machine stamps")
    results = snapshot["results"]
    if not isinstance(results, list) or not results:
        problems.append("results must be a non-empty list")
    elif not all(isinstance(row, dict) for row in results):
        problems.append("results rows must be objects")
    return problems


def _coerce_entries(payload: "Any", source: str) -> "List[Dict[str, Any]]":
    """A bench file's payload as a list of snapshots (both shapes accepted)."""
    entries = payload if isinstance(payload, list) else [payload]
    for index, entry in enumerate(entries):
        problems = validate_snapshot(entry)
        if problems:
            raise ValueError(f"{source} entry {index}: " + "; ".join(problems))
    return entries


def load_bench_files(
    directory: str, pattern: str = "BENCH_*.json"
) -> "List[Tuple[str, Dict[str, Any]]]":
    """All snapshots under ``directory`` as ``(filename, snapshot)`` pairs.

    Raises :class:`ValueError` naming the offending file on malformed
    JSON or schema violations, and if no bench files are found at all.
    """
    paths = sorted(glob.glob(os.path.join(directory, pattern)))
    if not paths:
        raise ValueError(f"no {pattern} files found in {directory}")
    loaded: "List[Tuple[str, Dict[str, Any]]]" = []
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{name}: {exc}") from exc
        for entry in _coerce_entries(payload, name):
            loaded.append((name, entry))
    return loaded


def _series_label(row: "Dict[str, Any]") -> str:
    parts = [f"{key}={row[key]}" for key in IDENTITY_KEYS if key in row]
    return " ".join(parts) if parts else "(all)"


def build_trajectory(
    entries: "List[Tuple[str, Dict[str, Any]]]",
) -> "Dict[Tuple[str, str, str], List[TrajectoryPoint]]":
    """Pivot snapshots into per-(bench, series, metric) point lists.

    Points are ordered by ``(commit_pr, timestamp)`` so the last element
    of every list is the latest measurement.
    """
    trajectory: "Dict[Tuple[str, str, str], List[TrajectoryPoint]]" = {}
    for source, snapshot in entries:
        bench = snapshot["bench"]
        commit_pr = snapshot["commit_pr"]
        timestamp = str(snapshot["config"].get("timestamp_utc", ""))
        for row in snapshot["results"]:
            series = _series_label(row)
            for key, value in row.items():
                if not is_metric_key(key) or not isinstance(value, (int, float)):
                    continue
                point = TrajectoryPoint(
                    bench=bench,
                    series=series,
                    metric=key,
                    value=float(value),
                    commit_pr=commit_pr,
                    timestamp=timestamp,
                    source=source,
                )
                trajectory.setdefault((bench, series, key), []).append(point)
    for points in trajectory.values():
        points.sort(key=lambda point: (point.commit_pr, point.timestamp))
    return trajectory


def find_regressions(
    trajectory: "Dict[Tuple[str, str, str], List[TrajectoryPoint]]",
    tolerance: float = DEFAULT_TOLERANCE,
) -> "List[Regression]":
    """Series whose latest value fell beyond ``tolerance`` below the best prior PR."""
    regressions: "List[Regression]" = []
    for points in trajectory.values():
        latest = points[-1]
        prior = [point for point in points if point.commit_pr < latest.commit_pr]
        if not prior:
            continue
        best_prior = max(prior, key=lambda point: point.value)
        if best_prior.value <= 0:
            continue
        drop = 1.0 - latest.value / best_prior.value
        if drop > tolerance:
            regressions.append(Regression(latest=latest, best_prior=best_prior, drop=drop))
    regressions.sort(key=lambda reg: -reg.drop)
    return regressions


# ---------------------------------------------------------------------------
# rendering


@dataclass
class _BenchTable:
    """One bench's pivot: rows = series × metric, columns = commit PRs."""

    bench: str
    sources: "List[str]" = field(default_factory=list)
    prs: "List[int]" = field(default_factory=list)
    # (series, metric) -> {commit_pr: latest point for that PR}
    rows: "Dict[Tuple[str, str], Dict[int, TrajectoryPoint]]" = field(default_factory=dict)


def _tabulate(
    trajectory: "Dict[Tuple[str, str, str], List[TrajectoryPoint]]",
) -> "List[_BenchTable]":
    tables: "Dict[str, _BenchTable]" = {}
    for (bench, series, metric), points in sorted(trajectory.items()):
        table = tables.setdefault(bench, _BenchTable(bench=bench))
        cells = table.rows.setdefault((series, metric), {})
        for point in points:
            cells[point.commit_pr] = point  # later timestamps win within a PR
            if point.commit_pr not in table.prs:
                table.prs.append(point.commit_pr)
            if point.source not in table.sources:
                table.sources.append(point.source)
    for table in tables.values():
        table.prs.sort()
    return [tables[name] for name in sorted(tables)]


def _format_value(value: float) -> str:
    return f"{value:,.0f}" if abs(value) >= 1000 else f"{value:.3g}"


def _delta_cell(
    cells: "Dict[int, TrajectoryPoint]", prs: "List[int]", tolerance: float
) -> str:
    """The "vs best prior" column: signed % change, flagged beyond tolerance."""
    latest_pr = max(cells)
    latest = cells[latest_pr]
    prior = [cells[pr] for pr in cells if pr < latest_pr]
    if not prior:
        return "—"
    best = max(prior, key=lambda point: point.value)
    if best.value <= 0:
        return "—"
    change = latest.value / best.value - 1.0
    text = f"{change * 100:+.1f}%"
    if change < -tolerance:
        text = f"⚠ {text} (best PR {best.commit_pr})"
    return text


def render_markdown(
    trajectory: "Dict[Tuple[str, str, str], List[TrajectoryPoint]]",
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """The whole trajectory as one markdown document."""
    tables = _tabulate(trajectory)
    regressions = find_regressions(trajectory, tolerance)
    lines = ["# Perf trajectory", ""]
    lines.append(
        f"{len(trajectory)} series across {len(tables)} benches; "
        f"{len(regressions)} regression flag(s) beyond {tolerance * 100:.0f}% tolerance."
    )
    lines.append("")
    for table in tables:
        lines.append(f"## {table.bench}  ({', '.join(table.sources)})")
        lines.append("")
        header = ["series", "metric"] + [f"PR {pr}" for pr in table.prs] + ["vs best prior"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for (series, metric), cells in sorted(table.rows.items()):
            row = [series, metric]
            for pr in table.prs:
                point = cells.get(pr)
                row.append(_format_value(point.value) if point is not None else "")
            row.append(_delta_cell(cells, table.prs, tolerance))
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    if regressions:
        lines.append("## Regression flags")
        lines.append("")
        for regression in regressions:
            lines.append(f"- ⚠ {regression.describe()}")
        lines.append("")
    return "\n".join(lines)


_HTML_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a1a2e; }
table { border-collapse: collapse; margin: 1rem 0 2rem; }
th, td { border: 1px solid #c8c8d8; padding: 0.3rem 0.7rem; text-align: right; }
th, td.label { text-align: left; }
td.flag { background: #ffe3e3; font-weight: 600; }
caption { caption-side: top; text-align: left; font-weight: 600; padding: 0.3rem 0; }
"""


def render_html(
    trajectory: "Dict[Tuple[str, str, str], List[TrajectoryPoint]]",
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """The trajectory as one standalone HTML page."""
    tables = _tabulate(trajectory)
    regressions = find_regressions(trajectory, tolerance)
    out = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'><title>Perf trajectory</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        "<h1>Perf trajectory</h1>",
        f"<p>{len(trajectory)} series across {len(tables)} benches; "
        f"{len(regressions)} regression flag(s) beyond {tolerance * 100:.0f}% tolerance.</p>",
    ]
    for table in tables:
        out.append("<table>")
        out.append(f"<caption>{_html.escape(table.bench)} ({_html.escape(', '.join(table.sources))})</caption>")
        header = ["series", "metric"] + [f"PR {pr}" for pr in table.prs] + ["vs best prior"]
        out.append("<tr>" + "".join(f"<th>{_html.escape(cell)}</th>" for cell in header) + "</tr>")
        for (series, metric), cells in sorted(table.rows.items()):
            delta = _delta_cell(cells, table.prs, tolerance)
            cls = " class='flag'" if delta.startswith("⚠") else ""
            cells_html = [
                f"<td class='label'>{_html.escape(series)}</td>",
                f"<td class='label'>{_html.escape(metric)}</td>",
            ]
            for pr in table.prs:
                point = cells.get(pr)
                cells_html.append(f"<td>{_format_value(point.value) if point is not None else ''}</td>")
            cells_html.append(f"<td{cls}>{_html.escape(delta)}</td>")
            out.append("<tr>" + "".join(cells_html) + "</tr>")
        out.append("</table>")
    if regressions:
        out.append("<h2>Regression flags</h2><ul>")
        for regression in regressions:
            out.append(f"<li>⚠ {_html.escape(regression.describe())}</li>")
        out.append("</ul>")
    out.append("</body></html>")
    return "\n".join(out)


def render_dashboard(
    directory: str,
    fmt: str = "markdown",
    tolerance: float = DEFAULT_TOLERANCE,
) -> "Tuple[str, List[Regression]]":
    """Load, pivot and render in one call; returns (document, regressions)."""
    trajectory = build_trajectory(load_bench_files(directory))
    renderer = render_html if fmt == "html" else render_markdown
    return renderer(trajectory, tolerance), find_regressions(trajectory, tolerance)
