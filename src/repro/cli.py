"""Command-line interface: ``gf2m-repro`` / ``python -m repro``.

Subcommands
-----------
``tables``      print the paper's Tables I-IV for a field
``methods``     list the available multiplier constructions
``generate``    generate a multiplier, verify it and print its statistics
``implement``   run the full FPGA flow on one multiplier
``compare``     regenerate (part of) the paper's Table V
``emit``        write VHDL/Verilog (and optionally a testbench) to a file
``fields``      list the paper's field catalog
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.compare import claims_report, comparison_table, compare_to_paper, run_comparison
from .analysis.tables import render_table1, render_table2, render_table3, render_table4
from .galois.gf2poly import poly_to_string
from .galois.pentanomials import PAPER_TABLE5_FIELDS, type_ii_pentanomial
from .hdl.testbench import vhdl_testbench
from .hdl.verilog import netlist_to_verilog
from .hdl.vhdl import multiplier_to_behavioral_vhdl, netlist_to_vhdl
from .multipliers.registry import TABLE5_METHODS, describe_methods, generate_multiplier
from .synth.flow import SynthesisOptions, implement

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="gf2m-repro",
        description="Reproduction of 'Reconfigurable implementation of GF(2^m) bit-parallel multipliers' (DATE 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_field_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("-m", type=int, default=8, help="field degree m (default 8)")
        subparser.add_argument("-n", type=int, default=2, help="pentanomial parameter n (default 2)")

    tables = subparsers.add_parser("tables", help="print the paper's Tables I-IV for a field")
    add_field_arguments(tables)
    tables.add_argument("--which", choices=["1", "2", "3", "4", "all"], default="all")

    subparsers.add_parser("methods", help="list available multiplier constructions")
    subparsers.add_parser("fields", help="list the paper's field catalog")

    generate = subparsers.add_parser("generate", help="generate and verify one multiplier")
    add_field_arguments(generate)
    generate.add_argument("--method", default="thiswork", help="construction name (default thiswork)")

    implement_cmd = subparsers.add_parser("implement", help="run the FPGA flow on one multiplier")
    add_field_arguments(implement_cmd)
    implement_cmd.add_argument("--method", default="thiswork")
    implement_cmd.add_argument("--effort", type=int, default=2, help="mapping effort (default 2)")

    compare = subparsers.add_parser("compare", help="regenerate (part of) the paper's Table V")
    compare.add_argument(
        "--fields",
        default="8:2,64:23",
        help="comma separated m:n pairs, or 'paper' for all nine paper fields",
    )
    compare.add_argument("--methods", default=",".join(TABLE5_METHODS))
    compare.add_argument("--effort", type=int, default=2)
    compare.add_argument("--paper", action="store_true", help="show paper values side by side")
    compare.add_argument("--claims", action="store_true", help="evaluate the paper's qualitative claims")

    emit = subparsers.add_parser("emit", help="emit HDL for one multiplier")
    add_field_arguments(emit)
    emit.add_argument("--method", default="thiswork")
    emit.add_argument("--language", choices=["vhdl", "vhdl-behavioral", "verilog"], default="vhdl")
    emit.add_argument("--testbench", action="store_true", help="also emit a VHDL testbench")
    emit.add_argument("--output", default="-", help="output file (default stdout)")
    return parser


def _parse_fields(text: str) -> List[tuple]:
    if text.strip().lower() == "paper":
        return [(spec.m, spec.n) for spec in PAPER_TABLE5_FIELDS]
    fields = []
    for chunk in text.split(","):
        m_text, n_text = chunk.split(":")
        fields.append((int(m_text), int(n_text)))
    return fields


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "methods":
        for metadata in describe_methods():
            print(f"{metadata['name']:<15s} {metadata['reference']:<45s} {metadata['description']}")
        return 0

    if args.command == "fields":
        for spec in PAPER_TABLE5_FIELDS:
            print(f"({spec.m},{spec.n})  {spec.standard or '-':<6s} {spec.modulus_string()}")
        return 0

    if args.command == "tables":
        modulus = type_ii_pentanomial(args.m, args.n)
        renderers = {"1": render_table1, "2": render_table2, "3": render_table3, "4": render_table4}
        selected = renderers.values() if args.which == "all" else [renderers[args.which]]
        for renderer in selected:
            print(renderer(modulus))
            print()
        return 0

    if args.command == "generate":
        modulus = type_ii_pentanomial(args.m, args.n)
        multiplier = generate_multiplier(args.method, modulus)
        print(multiplier.describe())
        print(f"modulus: {poly_to_string(modulus)}")
        print("formally verified against the product specification: yes")
        return 0

    if args.command == "implement":
        modulus = type_ii_pentanomial(args.m, args.n)
        multiplier = generate_multiplier(args.method, modulus, verify=args.m <= 16)
        result = implement(multiplier, options=SynthesisOptions(effort=args.effort))
        for key, value in result.as_dict().items():
            print(f"{key:20s} {value}")
        return 0

    if args.command == "compare":
        fields = _parse_fields(args.fields)
        methods = [name.strip() for name in args.methods.split(",") if name.strip()]
        comparisons = run_comparison(fields=fields, methods=methods, options=SynthesisOptions(effort=args.effort))
        if args.paper:
            print(compare_to_paper(comparisons))
        else:
            print(comparison_table(comparisons, title="Measured comparison (paper Table V layout)"))
        if args.claims:
            report = claims_report(comparisons)
            print()
            for claim, fields_holding in report.items():
                print(f"{claim}: {fields_holding}")
        return 0

    if args.command == "emit":
        modulus = type_ii_pentanomial(args.m, args.n)
        multiplier = generate_multiplier(args.method, modulus, verify=args.m <= 16)
        if args.language == "vhdl":
            text = netlist_to_vhdl(multiplier.netlist)
        elif args.language == "vhdl-behavioral":
            text = multiplier_to_behavioral_vhdl(multiplier)
        else:
            text = netlist_to_verilog(multiplier.netlist)
        if args.testbench:
            text += "\n" + vhdl_testbench(modulus)
        if args.output == "-":
            print(text)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
