"""Command-line interface: ``gf2m-repro`` / ``python -m repro``.

Subcommands
-----------
``tables``      print the paper's Tables I-IV for a field
``methods``     list the available multiplier constructions
``generate``    generate a multiplier, verify it and print its statistics
``implement``   run the full FPGA flow on one multiplier
``compare``     regenerate (part of) the paper's Table V
``emit``        write VHDL/Verilog (and optionally a testbench) to a file
``fields``      list the paper's field catalog
``batch``       multiply operand streams through a batch backend
``bench``       measure backend vs scalar-reference throughput (or, without
                ``--backend``, interpreted vs compiled)
``sweep``       run a field x method x device x effort grid through the
                parallel pipeline with the persistent artifact store
``curves``      list the elliptic-curve catalog (NIST-degree K/B curves)
``ecdh``        run the batched ECDH workload on one curve and report ops/s
                (``--ladder planes|steps|auto`` picks the plane-resident or
                per-step batched-ladder path)
``stats``       print the telemetry registry (counters, timing summaries)
                and every named LRU cache's hit/miss/eviction stats
``dashboard``   render the per-PR perf trajectory from the committed
                ``BENCH_*.json`` files, with advisory regression flags

``batch``, ``bench``, ``ecdh`` and ``sweep`` accept ``--backend``
(``python`` | ``engine`` | ``bitslice`` | ``native``, see
:mod:`repro.backends`); the
``GF2M_REPRO_BACKEND`` environment variable sets the process default.
The flag is declared once on a shared parent parser (as are ``--method``
for ``batch``/``bench``, ``--ladder`` for ``ecdh`` and ``--trace-out``
for every heavy subcommand) and resolved at a single site,
:func:`_resolve_cli_backend` — subcommands cannot drift apart in
spelling, defaults or error behavior.

``--trace-out FILE`` (top level or on batch/bench/ecdh/sweep) records a
span trace of the run and writes it as Chrome trace-event JSON — open it
in Perfetto (https://ui.perfetto.dev) to see pack / per-fused-pass /
unpack / inversion timings nested under each ladder.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import List, Optional

from .analysis.compare import claims_report, comparison_table, compare_to_paper, run_comparison
from .analysis.tables import render_table1, render_table2, render_table3, render_table4
from .backends import BACKEND_ENV_VAR, available_backends, default_backend_name, get_backend
from .curves import CURVES, curve_by_name, ecdh_batch, keygen_batch
from .engine import default_multiplier_cache, engine_for
from .galois.field import GF2mField
from .galois.gf2poly import poly_to_string
from .galois.pentanomials import PAPER_TABLE5_FIELDS, type_ii_pentanomial
from .hdl.testbench import vhdl_testbench
from .hdl.verilog import netlist_to_verilog
from .hdl.vhdl import multiplier_to_behavioral_vhdl, netlist_to_vhdl
from .multipliers.registry import TABLE5_METHODS, describe_methods, generate_multiplier
from .netlist.simulate import simulate_words
from .pipeline.store import ArtifactStore
from .pipeline.sweep import format_outcome_stats, format_sweep, run_sweep
from .synth.device import DEVICES, device_by_name
from .synth.flow import SynthesisOptions, implement
from .telemetry import metrics as telemetry_metrics
from .telemetry import snapshot_all
from .telemetry import trace as telemetry_trace
from .telemetry.dashboard import DEFAULT_TOLERANCE, render_dashboard

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="gf2m-repro",
        description="Reproduction of 'Reconfigurable implementation of GF(2^m) bit-parallel multipliers' (DATE 2018)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record a span trace of this run and write it as Chrome "
        "trace-event JSON (open in Perfetto or chrome://tracing)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared option groups, declared once.  Every backend-aware subcommand
    # inherits the same --backend flag (and batch/bench the same --method,
    # ecdh the same --ladder) from these parents, and all of them resolve
    # through the one _resolve_cli_backend site below.
    backend_parent = argparse.ArgumentParser(add_help=False)
    backend_parent.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend (default: $GF2M_REPRO_BACKEND or per-field resolution); "
        "for 'sweep' it is also part of the artifact cache key",
    )
    method_parent = argparse.ArgumentParser(add_help=False)
    method_parent.add_argument(
        "--method",
        default=None,
        help="circuit construction for circuit backends (default thiswork for type II fields)",
    )
    ladder_parent = argparse.ArgumentParser(add_help=False)
    ladder_parent.add_argument(
        "--ladder",
        choices=["auto", "planes", "steps"],
        default="auto",
        help="batched-ladder path: 'planes' demands the plane-resident FieldIR executor, "
        "'steps' pins the per-step batch path, 'auto' (default) compiles to planes when "
        "the backend supports it",
    )
    # The same --trace-out accepted after the subcommand.  SUPPRESS keeps a
    # subparser that was not given the flag from overwriting the top-level
    # value with its own default.
    trace_parent = argparse.ArgumentParser(add_help=False)
    trace_parent.add_argument(
        "--trace-out", default=argparse.SUPPRESS, metavar="FILE",
        help="record a span trace of this run as Chrome trace-event JSON",
    )

    def add_field_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("-m", type=int, default=8, help="field degree m (default 8)")
        subparser.add_argument("-n", type=int, default=2, help="pentanomial parameter n (default 2)")

    tables = subparsers.add_parser("tables", help="print the paper's Tables I-IV for a field")
    add_field_arguments(tables)
    tables.add_argument("--which", choices=["1", "2", "3", "4", "all"], default="all")

    subparsers.add_parser("methods", help="list available multiplier constructions")
    subparsers.add_parser("fields", help="list the paper's field catalog")

    generate = subparsers.add_parser("generate", help="generate and verify one multiplier")
    add_field_arguments(generate)
    generate.add_argument("--method", default="thiswork", help="construction name (default thiswork)")

    implement_cmd = subparsers.add_parser("implement", help="run the FPGA flow on one multiplier")
    add_field_arguments(implement_cmd)
    implement_cmd.add_argument("--method", default="thiswork")
    implement_cmd.add_argument("--effort", type=int, default=2, help="mapping effort (default 2)")

    def add_cache_arguments(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--cache-dir",
            default=None,
            help="artifact store directory (default ~/.cache/gf2m-repro or $GF2M_REPRO_CACHE_DIR)",
        )
        subparser.add_argument(
            "--no-cache", action="store_true", help="bypass the on-disk artifact store entirely"
        )
        subparser.add_argument(
            "--jobs", type=int, default=1, help="worker processes for the sweep scheduler (default 1)"
        )

    compare = subparsers.add_parser("compare", help="regenerate (part of) the paper's Table V")
    compare.add_argument(
        "--fields",
        default="8:2,64:23",
        help="comma separated m:n pairs, or 'paper' for all nine paper fields",
    )
    compare.add_argument("--methods", default=",".join(TABLE5_METHODS))
    compare.add_argument("--effort", type=int, default=2)
    compare.add_argument("--paper", action="store_true", help="show paper values side by side")
    compare.add_argument("--claims", action="store_true", help="evaluate the paper's qualitative claims")
    add_cache_arguments(compare)

    sweep = subparsers.add_parser(
        "sweep",
        parents=[backend_parent, trace_parent],
        help="run a field x method x device x effort grid through the parallel pipeline",
    )
    sweep.add_argument(
        "--fields",
        default="paper",
        help="comma separated m:n pairs, or 'paper' for all nine paper fields (default)",
    )
    sweep.add_argument("--methods", default=",".join(TABLE5_METHODS))
    sweep.add_argument(
        "--devices",
        default="artix7",
        help=f"comma separated device names (default artix7; known: {', '.join(sorted(DEVICES))})",
    )
    sweep.add_argument("--efforts", default="2", help="comma separated mapping efforts (default 2)")
    sweep.add_argument("--format", choices=["table", "json", "csv"], default="table")
    sweep.add_argument("--stats", action="store_true", help="also print per-run scheduler/cache statistics")
    add_cache_arguments(sweep)

    emit = subparsers.add_parser("emit", help="emit HDL for one multiplier")
    add_field_arguments(emit)
    emit.add_argument("--method", default="thiswork")
    emit.add_argument("--language", choices=["vhdl", "vhdl-behavioral", "verilog"], default="vhdl")
    emit.add_argument("--testbench", action="store_true", help="also emit a VHDL testbench")
    emit.add_argument("--output", default="-", help="output file (default stdout)")

    batch = subparsers.add_parser(
        "batch",
        parents=[backend_parent, method_parent, trace_parent],
        help="multiply operand streams through a batch backend",
    )
    add_field_arguments(batch)
    batch.add_argument("--count", type=int, default=1000, help="number of random operand pairs (default 1000)")
    batch.add_argument("--seed", type=int, default=2018, help="seed for the random operand stream")
    batch.add_argument("--input", help="file with one 'hexA hexB' pair per line instead of random operands")
    batch.add_argument(
        "--chunk-size", type=int, default=None,
        help="pairs per evaluation of a circuit backend (default: the backend's)",
    )
    batch.add_argument("--check", action="store_true", help="verify every product against the reference field")
    batch.add_argument("--stats", action="store_true", help="print throughput and cache statistics")
    batch.add_argument("--output", default="-", help="output file for hex products (default stdout)")

    bench = subparsers.add_parser(
        "bench",
        parents=[backend_parent, method_parent, trace_parent],
        help="throughput of one field: backend vs scalar reference (or interpreted vs compiled)",
    )
    add_field_arguments(bench)
    bench.add_argument(
        "--check", action="store_true",
        help="with --backend: cross-check every product against the scalar reference",
    )
    bench.add_argument("--pairs", type=int, default=2048, help="operand pairs per measurement (default 2048)")
    bench.add_argument("--quick", action="store_true", help="small fast run for CI smoke tests")
    bench.add_argument(
        "--describe", action="store_true",
        help="print the FieldIR pass schedule of the López-Dahab ladder step (and its compiled "
        "plane lowering when the backend has one) instead of benchmarking",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="trace the compiled López-Dahab ladder step and print a per-fused-pass "
        "timing breakdown instead of benchmarking (needs a FieldIR-capable backend)",
    )

    subparsers.add_parser("curves", help="list the elliptic-curve catalog")

    ecdh = subparsers.add_parser(
        "ecdh",
        parents=[backend_parent, ladder_parent, trace_parent],
        help="batched ECDH key agreement workload on one curve",
    )
    ecdh.add_argument("--curve", default="B-163", help="catalog curve name (default B-163; see 'repro curves')")
    ecdh.add_argument("--batch", type=int, default=64, help="independent key agreements per side (default 64)")
    ecdh.add_argument("--jobs", type=int, default=1, help="worker processes sharding the batch (default 1)")
    ecdh.add_argument(
        "--start-method", default=None, metavar="METHOD",
        help="multiprocessing start method for --jobs (default: fork where "
        "available, else spawn; shard results are byte-identical either way)",
    )
    ecdh.add_argument("--seed", type=int, default=2018, help="seed for the key draws")
    ecdh.add_argument(
        "--check", type=int, default=0, metavar="N",
        help="cross-check the first N results against the scalar-ladder reference path",
    )
    ecdh.add_argument(
        "--scalar-rep",
        choices=["auto", "binary", "tau"],
        default="auto",
        help="scalar recoding: 'tau' demands the τ-adic Frobenius ladder (Koblitz "
        "curves only), 'binary' pins the Montgomery ladder, 'auto' (default) picks "
        "τ exactly when the curve supports it",
    )

    keygen = subparsers.add_parser(
        "keygen",
        parents=[backend_parent, ladder_parent, trace_parent],
        help="batched key generation workload on one curve (fixed-base comb by default)",
    )
    keygen.add_argument("--curve", default="K-163", help="catalog curve name (default K-163; see 'repro curves')")
    keygen.add_argument("--batch", type=int, default=256, help="key pairs to generate (default 256)")
    keygen.add_argument("--seed", type=int, default=2018, help="seed for the key draws")
    keygen.add_argument(
        "--path",
        choices=["auto", "comb", "ladder"],
        default="auto",
        help="fixed-base route: 'comb' demands the precomputed comb table, 'ladder' "
        "pins the generic ladders, 'auto' (default) uses the comb when the table "
        "covers the draw",
    )
    keygen.add_argument(
        "--scalar-rep",
        choices=["auto", "binary", "tau"],
        default="auto",
        help="scalar recoding of the ladder route (see 'repro ecdh --scalar-rep')",
    )
    keygen.add_argument(
        "--check", type=int, default=0, metavar="N",
        help="cross-check the first N public keys against the scalar-ladder reference path",
    )

    serve = subparsers.add_parser(
        "serve",
        parents=[backend_parent, trace_parent],
        help="run the batching crypto service (JSON over HTTP/1.1, stdlib asyncio)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8742, help="bind port (default 8742; 0 picks a free port)")
    serve.add_argument(
        "--curves", default="B-163,K-163", metavar="NAMES",
        help="comma-separated catalog curves to warm and serve (default B-163,K-163)",
    )
    serve.add_argument(
        "--max-lanes", type=int, default=256,
        help="flush a batch group when it reaches this many requests (default 256)",
    )
    serve.add_argument(
        "--max-delay-ms", type=float, default=5.0,
        help="flush a batch group this long after its oldest request (default 5 ms)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes executing batches (default: CPU count; 0 runs "
        "batches inline on one worker thread — best on single-core machines)",
    )
    serve.add_argument(
        "--start-method", default=None, metavar="METHOD",
        help="multiprocessing start method for the worker pool (default: fork "
        "where available, else spawn)",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="seed the server-side keygen scalar draws (reproducible runs)",
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a running service with many concurrent single-request clients",
    )
    loadgen.add_argument("--host", default="127.0.0.1", help="service address (default 127.0.0.1)")
    loadgen.add_argument("--port", type=int, default=8742, help="service port (default 8742)")
    loadgen.add_argument("--op", choices=["ecdh", "keygen", "sign"], default="ecdh")
    loadgen.add_argument("--curve", default="B-163", help="catalog curve name (default B-163)")
    loadgen.add_argument("--clients", type=int, default=64, help="concurrent closed-loop clients (default 64)")
    loadgen.add_argument(
        "--requests", type=int, default=4, metavar="N",
        help="requests per client, sent back-to-back on one keep-alive connection (default 4)",
    )
    loadgen.add_argument("--seed", type=int, default=0, help="workload seed (default 0)")
    loadgen.add_argument(
        "--scalar-rep", choices=["auto", "binary", "tau"], default="auto",
        help="scalar recoding requested from the service (see 'repro ecdh --scalar-rep')",
    )
    loadgen.add_argument(
        "--check", type=int, default=4, metavar="N",
        help="additionally recompute the first N responses on the scalar "
        "reference path (default 4; every response is always verified "
        "against the locally batched expectation)",
    )
    loadgen.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="S",
        help="keep retrying the initial connections for this long (default 30 s)",
    )
    loadgen.add_argument(
        "--stats", action="store_true",
        help="fetch and print the service's /stats after the run",
    )

    stats = subparsers.add_parser(
        "stats",
        help="print the telemetry registry and every named LRU cache's statistics",
    )
    stats.add_argument("--format", choices=["table", "json"], default="table")

    dashboard = subparsers.add_parser(
        "dashboard",
        help="render the per-PR perf trajectory from the committed BENCH_*.json files",
    )
    dashboard.add_argument(
        "--dir", default=".", help="directory holding the BENCH_*.json files (default: .)"
    )
    dashboard.add_argument("--format", choices=["markdown", "html"], default="markdown")
    dashboard.add_argument("--output", default="-", help="output file (default stdout)")
    dashboard.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="fractional drop vs the best prior PR that raises a regression flag "
        f"(default {DEFAULT_TOLERANCE})",
    )
    dashboard.add_argument(
        "--check", action="store_true",
        help="print regression flags to stderr instead of the rendered document; "
        "warn-only by default — exits 0 unless --strict is also given",
    )
    dashboard.add_argument(
        "--strict", action="store_true",
        help="with --check: exit 1 when any regression is flagged (CI uses this on "
        "the committed-trajectory job; PR runs stay warn-only)",
    )
    return parser


def _read_operand_pairs(path: str, m: int) -> tuple:
    """Read one whitespace-separated hex pair per line (blank lines ignored)."""
    a_values: List[int] = []
    b_values: List[int] = []
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError as error:
        raise SystemExit(f"cannot read operand file: {error}") from None
    with handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise SystemExit(f"{path}:{line_number}: expected 'hexA hexB', got {stripped!r}")
            try:
                a, b = int(parts[0], 16), int(parts[1], 16)
            except ValueError:
                raise SystemExit(
                    f"{path}:{line_number}: operands must be hexadecimal, got {stripped!r}"
                ) from None
            if a.bit_length() > m or b.bit_length() > m:
                raise SystemExit(
                    f"{path}:{line_number}: operand wider than m={m} bits: {stripped!r}"
                )
            a_values.append(a)
            b_values.append(b)
    return a_values, b_values


def _resolve_cli_backend(field: GF2mField, name, method=None, chunk_size=None, verify=True):
    """Resolve a ``--backend``/``--method`` pair, exiting cleanly on errors.

    ``name=None`` resolves through the registry default, so the
    ``$GF2M_REPRO_BACKEND`` override applies to every subcommand.
    Registry failures (unknown names, a bad env override), contradictory
    options (``--method`` with the scalar or native backend), a missing
    numpy for ``bitslice`` and a missing C toolchain for ``native`` all
    surface as actionable messages instead of tracebacks.  ``verify=False``
    skips formal circuit verification (the large-field fast path of
    ``repro batch``/``bench``); it does not apply to ``native``, which
    evaluates no generated circuit.
    """
    try:
        if name is None:
            name = default_backend_name(field)
        options = {}
        if method is not None:
            options["method"] = method
        if name in ("engine", "bitslice", "native"):
            if chunk_size is not None:
                options["chunk_size"] = chunk_size
            if name != "native" and not verify:
                options["verify"] = False
        return get_backend(name, field, **options)
    except (KeyError, ValueError, ImportError) as error:
        raise SystemExit(str(error.args[0]) if error.args else str(error)) from None


def _run_batch(args) -> int:
    modulus = type_ii_pentanomial(args.m, args.n)
    if args.input:
        a_values, b_values = _read_operand_pairs(args.input, args.m)
    else:
        rng = random.Random(args.seed)
        a_values = [rng.getrandbits(args.m) for _ in range(args.count)]
        b_values = [rng.getrandbits(args.m) for _ in range(args.count)]
    field = GF2mField(modulus, check_irreducible=False)
    backend = _resolve_cli_backend(
        field, args.backend, method=args.method, chunk_size=args.chunk_size, verify=args.m <= 16
    )
    backend.multiply_batch(a_values[:1], b_values[:1])  # pay one-time costs up front
    with telemetry_metrics.timed("cli.batch.multiply") as timer:
        products = backend.multiply_batch(a_values, b_values)
    elapsed = timer.seconds
    if args.check:
        for a, b, product in zip(a_values, b_values, products):
            if product != field.multiply(a, b):
                raise SystemExit(f"MISMATCH: {a:x} * {b:x} -> {product:x} != reference")
    digits = (args.m + 3) // 4
    lines = "\n".join(f"{product:0{digits}x}" for product in products)
    if args.output == "-":
        if lines:
            print(lines)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(lines + ("\n" if lines else ""))
        print(f"wrote {len(products)} products to {args.output}")
    if args.check:
        print(f"checked {len(products)} products against the reference field: all match")
    if args.stats:
        rate = len(products) / elapsed if elapsed > 0 else float("inf")
        print(backend.describe())
        print(f"{len(products)} products in {elapsed * 1000:.1f} ms ({rate:,.0f} products/s)")
        print(f"multiplier cache: {default_multiplier_cache().info()}")
    return 0


def _run_bench_backend(args) -> int:
    """``repro bench --backend X``: backend vs scalar reference throughput.

    Always cross-checks a subset against ``GF2mField.multiply``;
    ``--check`` extends the cross-check to every product (the CI parity
    smoke step relies on this).
    """
    modulus = type_ii_pentanomial(args.m, args.n)
    pairs = min(args.pairs, 512) if args.quick else args.pairs
    rng = random.Random(2018)
    a_values = [rng.getrandbits(args.m) for _ in range(pairs)]
    b_values = [rng.getrandbits(args.m) for _ in range(pairs)]
    field = GF2mField(modulus, check_irreducible=False)
    backend = _resolve_cli_backend(field, args.backend, method=args.method, verify=args.m <= 16)

    backend.multiply_batch(a_values[:1], b_values[:1])  # pay one-time costs up front
    with telemetry_metrics.timed("cli.bench.backend") as backend_timer:
        products = backend.multiply_batch(a_values, b_values)
    backend_s = backend_timer.seconds

    scalar_pairs = pairs if args.check else min(pairs, 256)
    with telemetry_metrics.timed("cli.bench.scalar") as scalar_timer:
        reference = [field.multiply(a, b) for a, b in zip(a_values[:scalar_pairs], b_values[:scalar_pairs])]
    scalar_s = scalar_timer.seconds

    if products[:scalar_pairs] != reference:
        raise SystemExit(
            f"MISMATCH: backend {backend.name!r} disagrees with the scalar reference "
            "— refusing to report throughput"
        )
    backend_rate = pairs / backend_s if backend_s > 0 else float("inf")
    scalar_rate = scalar_pairs / scalar_s if scalar_s > 0 else float("inf")
    print(backend.describe())
    print(f"GF(2^{args.m}) {backend.name}: {pairs} pairs")
    print(f"  scalar ref   {scalar_rate:>12,.0f} products/s")
    print(f"  {backend.name:<12s} {backend_rate:>12,.0f} products/s")
    print(f"  speedup      {backend_rate / scalar_rate:>12.1f}x")
    if args.check:
        print(f"checked {pairs} products against the scalar reference: all match")
    return 0


def _run_bench_describe(args) -> int:
    """``repro bench --describe``: the formula compiler's pass schedule.

    Prints the scheduled López-Dahab ladder-step :class:`FieldProgram` for
    the bench field — the headline consumer of the formula compiler — and,
    when the resolved backend advertises a plane IR executor, its compiled
    plane lowering.  A catalog curve over the bench field supplies the
    curve constant ``b``; fields without a catalog curve describe the
    schedule with ``b = 1``, which has the identical pass structure.
    """
    from .backends.ir import schedule_program
    from .curves.formulas import ladder_step_ir, ladder_step_program

    modulus = type_ii_pentanomial(args.m, args.n)
    field = GF2mField(modulus, check_irreducible=False)
    backend = _resolve_cli_backend(field, args.backend, method=args.method, verify=args.m <= 16)
    curve = next(
        (curve_by_name(spec.name) for spec in CURVES if (spec.m, spec.n) == (args.m, args.n)),
        None,
    )
    if curve is not None:
        program = ladder_step_program(curve)
        print(f"formula: López-Dahab ladder step on {curve.name}")
    else:
        program = schedule_program(
            ladder_step_ir(), field.m,
            {"square": field.square_map, "mul_b": field.constant_multiplier(1)},
        )
        print(f"formula: López-Dahab ladder step over GF(2^{args.m}) (no catalog curve; b=1)")
    print(backend.describe())
    print(program.describe())
    executor = backend.ir_executor()
    if executor is None:
        print(f"backend {backend.name!r} has no plane IR executor; the program runs interpreted")
    else:
        print(f"compiled: {executor.compile(program).describe()}")
    return 0


def _run_bench_profile(args) -> int:
    """``repro bench --profile``: per-fused-pass timings of the ladder step.

    Compiles the López-Dahab ladder-step formula for the bench field on
    the resolved backend, runs ``m`` steps over a packed random batch
    under a temporary tracer, and prints where each step's time goes —
    the per-pass breakdown behind the one ``ladder.step`` number.
    """
    from .backends.ir import schedule_program
    from .curves.formulas import ladder_step_ir, ladder_step_program

    modulus = type_ii_pentanomial(args.m, args.n)
    field = GF2mField(modulus, check_irreducible=False)
    backend = _resolve_cli_backend(field, args.backend, method=args.method, verify=args.m <= 16)
    executor = backend.ir_executor()
    if executor is None:
        raise SystemExit(
            f"--profile needs a backend with a FieldIR executor; {backend.name!r} "
            "has none (use --backend native or bitslice)"
        )
    curve = next(
        (curve_by_name(spec.name) for spec in CURVES if (spec.m, spec.n) == (args.m, args.n)),
        None,
    )
    if curve is not None:
        program = ladder_step_program(curve)
        formula = f"López-Dahab ladder step on {curve.name}"
    else:
        program = schedule_program(
            ladder_step_ir(), field.m,
            {"square": field.square_map, "mul_b": field.constant_multiplier(1)},
        )
        formula = f"López-Dahab ladder step over GF(2^{args.m}) (no catalog curve; b=1)"
    compiled = executor.compile(program)
    lanes = min(256, executor.chunk_size, max(1, args.pairs))
    steps = field.m if not args.quick else min(field.m, 24)
    rng = random.Random(2018)
    base = executor.pack([rng.getrandbits(args.m) or 1 for _ in range(lanes)]).array
    state = (
        executor.pack([1] * lanes).array,
        executor.pack([0] * lanes).array,
        base.copy(),
        executor.pack([1] * lanes).array,
    )
    bits = [[rng.getrandbits(1) for _ in range(lanes)] for _ in range(steps)]
    compiled.run_arrays((*state, base), (executor.broadcast_bits(bits[0]),))  # warm
    previous = telemetry_trace.set_tracer(telemetry_trace.Tracer())
    try:
        with telemetry_metrics.timed("cli.bench.profile") as timer:
            for step in range(steps):
                mask = executor.broadcast_bits(bits[step])
                state = tuple(compiled.run_arrays((*state, base), (mask,)))
        summary = telemetry_trace.aggregate_spans(
            telemetry_trace.TRACER.events(), prefix="ir.pass."
        )
    finally:
        telemetry_trace.set_tracer(previous)
    print(f"formula: {formula}")
    print(backend.describe())
    print(f"{steps} fused steps x {lanes} lanes, traced per pass:")
    total_s = sum(entry["total_s"] for entry in summary.values())
    header = f"  {'pass':<24s} {'count':>7s} {'total ms':>10s} {'share':>7s} {'per-step µs':>12s}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name in sorted(summary):
        entry = summary[name]
        share = entry["total_s"] / total_s * 100 if total_s > 0 else 0.0
        per_step_us = entry["total_s"] / steps * 1e6
        print(
            f"  {name:<24s} {entry['count']:>7.0f} {entry['total_s'] * 1000:>10.2f} "
            f"{share:>6.1f}% {per_step_us:>12.1f}"
        )
    overhead_s = timer.seconds - total_s
    print(
        f"  {'(outside passes)':<24s} {'':>7s} {overhead_s * 1000:>10.2f} "
        f"{(overhead_s / timer.seconds * 100 if timer.seconds > 0 else 0.0):>6.1f}%"
    )
    print(
        f"total {timer.seconds * 1000:.2f} ms "
        f"({steps * lanes / timer.seconds:,.0f} ladder-step-lanes/s)"
    )
    return 0


def _run_bench(args) -> int:
    if args.describe:
        return _run_bench_describe(args)
    if args.profile:
        return _run_bench_profile(args)
    if args.backend or os.environ.get(BACKEND_ENV_VAR):
        # An explicit flag or the process-wide env default selects the
        # backend-vs-scalar comparison (a bad env value fails loudly there).
        return _run_bench_backend(args)
    modulus = type_ii_pentanomial(args.m, args.n)
    method = args.method or "thiswork"
    pairs = min(args.pairs, 256) if args.quick else args.pairs
    rng = random.Random(2018)
    a_values = [rng.getrandbits(args.m) for _ in range(pairs)]
    b_values = [rng.getrandbits(args.m) for _ in range(pairs)]
    multiplier = generate_multiplier(method, modulus, verify=args.m <= 16)

    with telemetry_metrics.timed("cli.bench.interpreted") as interpreted_timer:
        interpreted = simulate_words(multiplier.netlist, args.m, a_values, b_values)
    interpreted_s = interpreted_timer.seconds

    engine = engine_for(method, modulus, verify=False)
    engine.multiply_batch(a_values[:1], b_values[:1])  # warm the compiled path
    with telemetry_metrics.timed("cli.bench.compiled") as compiled_timer:
        compiled = engine.multiply_batch(a_values, b_values)
    compiled_s = compiled_timer.seconds

    if compiled != interpreted:
        raise SystemExit("engine and interpreter disagree — refusing to report throughput")
    print(f"GF(2^{args.m}) {method}: {pairs} pairs")
    print(f"  interpreted  {pairs / interpreted_s:>12,.0f} products/s")
    print(f"  compiled     {pairs / compiled_s:>12,.0f} products/s")
    print(f"  speedup      {interpreted_s / compiled_s:>12.1f}x")
    return 0


def _ecdh_agreements(
    curve, privates, peers, jobs: int, backend=None, plane_resident=None,
    scalar_rep="auto", start_method=None,
) -> List:
    """The batch of shared points, optionally sharded over worker processes.

    Delegates to :func:`repro.serve.workers.ecdh_sharded`, the same
    start-method-agnostic pool code the serving layer uses — under
    ``fork`` the children inherit the parent's warm caches, under
    ``spawn`` each shard warms itself, and shard results are
    byte-identical either way.
    """
    from .serve.workers import ecdh_sharded

    return ecdh_sharded(
        curve, privates, peers, jobs, backend=backend,
        plane_resident=plane_resident, scalar_rep=scalar_rep,
        start_method=start_method,
    )


def _run_ecdh(args) -> int:
    try:
        curve = curve_by_name(args.curve)
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from None
    if args.batch < 1:
        raise SystemExit("--batch must be at least 1")
    if args.check < 0:
        raise SystemExit("--check must be non-negative")
    # Resolve eagerly so a bad backend (or missing numpy) fails before work.
    resolved = _resolve_cli_backend(curve.field, args.backend)
    plane_resident = {"auto": None, "planes": True, "steps": False}[args.ladder]
    if plane_resident and resolved.ir_executor() is None:
        raise SystemExit(
            f"--ladder planes needs a plane-resident backend (one with a FieldIR "
            f"executor); {resolved.name!r} has no such capability (use --backend "
            "native or bitslice)"
        )
    try:
        resolved_rep = curve._resolve_scalar_rep(args.scalar_rep)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    print(curve.describe())

    with telemetry_metrics.timed("cli.ecdh.keygen") as keygen_timer:
        alice = keygen_batch(
            curve, args.batch, seed=args.seed, backend=args.backend,
            plane_resident=plane_resident, scalar_rep=args.scalar_rep,
        )
        bob = keygen_batch(
            curve, args.batch, seed=args.seed + 1, backend=args.backend,
            plane_resident=plane_resident, scalar_rep=args.scalar_rep,
        )
    keygen_s = keygen_timer.seconds

    alice_privates = [pair.private for pair in alice]
    bob_privates = [pair.private for pair in bob]
    with telemetry_metrics.timed("cli.ecdh.agreement") as agree_timer:
        alice_shared = _ecdh_agreements(
            curve,
            alice_privates,
            [pair.public for pair in bob],
            args.jobs,
            backend=args.backend,
            plane_resident=plane_resident,
            scalar_rep=args.scalar_rep,
            start_method=args.start_method,
        )
        bob_shared = _ecdh_agreements(
            curve,
            bob_privates,
            [pair.public for pair in alice],
            args.jobs,
            backend=args.backend,
            plane_resident=plane_resident,
            scalar_rep=args.scalar_rep,
            start_method=args.start_method,
        )
    agree_s = agree_timer.seconds

    if alice_shared != bob_shared:
        raise SystemExit("ECDH FAILURE: the two sides disagree on the shared secret")
    if args.check:
        count = min(args.check, args.batch)
        for index in range(count):
            reference = curve.multiply(bob[index].public, alice[index].private)
            if alice_shared[index] != reference:
                raise SystemExit(f"MISMATCH: batched agreement {index} != scalar-ladder reference")
        print(f"checked {count} agreements against the scalar-ladder reference: byte-identical")

    ladders = 2 * args.batch  # one per side per agreement
    keygen_rate = 2 * args.batch / keygen_s if keygen_s > 0 else float("inf")
    agree_rate = ladders / agree_s if agree_s > 0 else float("inf")
    backend_label = args.backend or default_backend_name(curve.field)
    if plane_resident is False or resolved.ir_executor() is None:
        ladder_label = "per-step ladder"
    else:
        ladder_label = "plane-resident ladder"
    rep_label = "tau-adic" if resolved_rep == "tau" else "binary"
    print(
        f"batch {args.batch}, jobs {args.jobs}, backend {backend_label} ({ladder_label}, "
        f"{rep_label} scalars): all {args.batch} shared secrets agree"
    )
    print(f"  keygen     {2 * args.batch:>6d} ladders in {keygen_s * 1000:>8.1f} ms ({keygen_rate:,.1f} ops/s)")
    print(f"  agreement  {ladders:>6d} ladders in {agree_s * 1000:>8.1f} ms ({agree_rate:,.1f} ops/s)")
    return 0


def _run_keygen(args) -> int:
    """``repro keygen``: the batched key-generation workload on one curve."""
    try:
        curve = curve_by_name(args.curve)
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from None
    if args.batch < 1:
        raise SystemExit("--batch must be at least 1")
    if args.check < 0:
        raise SystemExit("--check must be non-negative")
    resolved = _resolve_cli_backend(curve.field, args.backend)
    plane_resident = {"auto": None, "planes": True, "steps": False}[args.ladder]
    if plane_resident and resolved.ir_executor() is None:
        raise SystemExit(
            f"--ladder planes needs a plane-resident backend (one with a FieldIR "
            f"executor); {resolved.name!r} has no such capability (use --backend "
            "native or bitslice)"
        )
    fixed_base = {"auto": None, "comb": True, "ladder": False}[args.path]
    print(curve.describe())
    curve.generator  # derive outside the timed region (shared by all paths)
    try:
        with telemetry_metrics.timed("cli.keygen") as timer:
            pairs = keygen_batch(
                curve,
                args.batch,
                seed=args.seed,
                backend=args.backend,
                plane_resident=plane_resident,
                scalar_rep=args.scalar_rep,
                fixed_base=fixed_base,
            )
    except ValueError as error:
        raise SystemExit(str(error)) from None
    seconds = timer.seconds
    if args.check:
        count = min(args.check, args.batch)
        for index in range(count):
            reference = curve.multiply(curve.generator, pairs[index].private)
            if pairs[index].public != reference:
                raise SystemExit(f"MISMATCH: batched keypair {index} != scalar-ladder reference")
        print(f"checked {count} public keys against the scalar-ladder reference: byte-identical")
    rate = args.batch / seconds if seconds > 0 else float("inf")
    backend_label = args.backend or default_backend_name(curve.field)
    path_label = {"auto": "auto (comb when covered)", "comb": "comb", "ladder": "ladder"}[args.path]
    print(
        f"batch {args.batch}, backend {backend_label}, path {path_label}: "
        f"{args.batch} key pairs in {seconds * 1000:.1f} ms ({rate:,.1f} keys/s)"
    )
    registry = telemetry_metrics.REGISTRY
    if registry.enabled:
        snapshot = registry.snapshot()
        counters = snapshot.get("counters", {})
        hits = counters.get("comb.table.hit", 0)
        builds = counters.get("comb.table.build", 0)
        if hits or builds:
            print(f"  comb table: {builds} build(s), {hits} store hit(s)")
    return 0


def _parse_fields(text: str) -> List[tuple]:
    """Parse ``--fields`` ('paper' or comma separated ``m:n`` pairs).

    Malformed specs exit with an actionable message instead of a bare
    ``ValueError`` traceback.
    """
    if text.strip().lower() == "paper":
        return [(spec.m, spec.n) for spec in PAPER_TABLE5_FIELDS]
    fields = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        m_text, sep, n_text = chunk.partition(":")
        try:
            if not sep:
                raise ValueError
            m_value, n_value = int(m_text), int(n_text)
        except ValueError:
            raise SystemExit(
                f"invalid field spec {chunk!r}: expected 'm:n' with decimal integers "
                f"(e.g. '163:66'), or 'paper' for the paper's nine fields"
            ) from None
        try:
            type_ii_pentanomial(m_value, n_value)
        except ValueError as error:
            raise SystemExit(f"invalid field spec {chunk!r}: {error}") from None
        fields.append((m_value, n_value))
    if not fields:
        raise SystemExit("no fields given: pass comma separated 'm:n' pairs or 'paper'")
    return fields


def _parse_int_list(text: str, what: str) -> List[int]:
    """Parse a comma separated integer list CLI argument."""
    try:
        values = [int(chunk) for chunk in text.split(",") if chunk.strip()]
    except ValueError:
        raise SystemExit(f"invalid {what} list {text!r}: expected comma separated integers") from None
    if not values:
        raise SystemExit(f"no {what} given in {text!r}")
    return values


def _artifact_store(args) -> Optional[ArtifactStore]:
    """The artifact store selected by --cache-dir/--no-cache (None = disabled)."""
    if args.no_cache:
        return None
    return ArtifactStore(args.cache_dir) if args.cache_dir else ArtifactStore()


def _run_sweep(args) -> int:
    fields = _parse_fields(args.fields)
    methods = [name.strip() for name in args.methods.split(",") if name.strip()]
    if not methods:
        raise SystemExit("no methods given: pass comma separated construction names (see 'repro methods')")
    try:
        devices = [device_by_name(name) for name in args.devices.split(",") if name.strip()]
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from None
    if not devices:
        raise SystemExit("no devices given: pass comma separated device names (e.g. 'artix7')")
    efforts = _parse_int_list(args.efforts, "effort")
    store = _artifact_store(args)
    try:
        result = run_sweep(
            fields=fields,
            methods=methods,
            devices=devices,
            efforts=efforts,
            jobs=args.jobs,
            store=store,
            backend=args.backend,
        )
    except KeyError as error:
        raise SystemExit(str(error.args[0])) from None
    print(format_sweep(result, fmt=args.format))
    if args.stats:
        for line in format_outcome_stats(result.outcomes):
            print(line, file=sys.stderr)
    print(f"sweep: {result.summary()}", file=sys.stderr)
    return 0


def _run_serve(args) -> int:
    """``repro serve``: run the batching service until interrupted."""
    import asyncio

    from .serve import CryptoService

    curves = tuple(name.strip() for name in args.curves.split(",") if name.strip())
    if not curves:
        raise SystemExit("--curves must name at least one catalog curve")
    try:
        service = CryptoService(
            backend=args.backend,
            curves=curves,
            max_lanes=args.max_lanes,
            max_delay_ms=args.max_delay_ms,
            workers=args.workers,
            start_method=args.start_method,
            seed=args.seed,
        )
    except (KeyError, ValueError) as error:
        raise SystemExit(str(error.args[0] if error.args else error)) from None
    print(service.pool.describe(), file=sys.stderr)

    def announce(port: int) -> None:
        print(
            f"serving {', '.join(curves)} on http://{args.host}:{port} "
            f"(max_lanes {args.max_lanes}, max_delay {args.max_delay_ms} ms)",
            file=sys.stderr,
        )

    try:
        asyncio.run(service.run(args.host, args.port, announce=announce))
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
    return 0


def _run_loadgen(args) -> int:
    """``repro loadgen``: fire many small clients at a running service."""
    import asyncio
    import json as json_module

    from .serve.loadgen import generate_load, http_get

    if args.clients < 1 or args.requests < 1:
        raise SystemExit("--clients and --requests must be at least 1")
    try:
        result = generate_load(
            args.host, args.port,
            op=args.op, curve=args.curve,
            clients=args.clients, requests_per_client=args.requests,
            seed=args.seed, scalar_rep=args.scalar_rep,
            spot_checks=args.check, connect_timeout_s=args.connect_timeout,
        )
    except (KeyError, ValueError) as error:
        raise SystemExit(str(error.args[0] if error.args else error)) from None
    except OSError as error:
        raise SystemExit(
            f"cannot reach the service at {args.host}:{args.port}: {error}"
        ) from None
    quantiles = result.latency_quantiles()
    print(
        f"{args.op} on {args.curve}: {result.completed}/{result.total} completed, "
        f"{result.verified} verified against the batched reference "
        f"({result.spot_checked} also against the scalar ladder)"
    )
    print(
        f"  throughput {result.throughput:>10,.1f} req/s over {result.elapsed_s * 1000:.1f} ms "
        f"({args.clients} clients x {args.requests} requests)"
    )
    if quantiles:
        print(
            "  latency    "
            + "  ".join(f"{name} {value * 1000:.2f} ms" for name, value in quantiles.items())
        )
    for line in result.errors[:10]:
        print(f"  error: {line}", file=sys.stderr)
    if len(result.errors) > 10:
        print(f"  ... and {len(result.errors) - 10} more errors", file=sys.stderr)
    if args.stats:
        status, payload = asyncio.run(http_get(args.host, args.port, "/stats"))
        print(json_module.dumps(payload, indent=2))
    return 1 if result.errors or result.completed != result.total else 0


def _run_stats(args) -> int:
    """``repro stats``: the registry plus every named cache, table or JSON."""
    snapshot = snapshot_all()
    if args.format == "json":
        import json

        print(json.dumps(snapshot, indent=1, sort_keys=True))
        return 0
    counters = snapshot["metrics"]["counters"]
    observations = snapshot["metrics"]["observations"]
    gauges = snapshot["metrics"]["gauges"]
    print("counters")
    for name in sorted(counters):
        print(f"  {name:<48s} {counters[name]:>14,d}")
    if not counters:
        print("  (none)")
    if gauges:
        print("gauges")
        for name in sorted(gauges):
            print(f"  {name:<48s} {gauges[name]:>14,.6g}")
    print("timings")
    for name in sorted(observations):
        entry = observations[name]
        mean_ms = entry["total_s"] / entry["count"] * 1000 if entry["count"] else 0.0
        print(
            f"  {name:<48s} {entry['count']:>8,d} x {mean_ms:>10.3f} ms avg "
            f"(total {entry['total_s']:.3f} s, min {entry['min_s'] * 1000:.3f} ms, "
            f"max {entry['max_s'] * 1000:.3f} ms)"
        )
    if not observations:
        print("  (none)")
    print("caches  (hits / misses / evictions / size)")
    for name, info in sorted(snapshot["caches"].items()):
        print(
            f"  {name:<48s} {info['hits']:>8,d} / {info['misses']:>6,d} / "
            f"{info['evictions']:>4,d} / {info['currsize']}({info['maxsize']})"
        )
    return 0


def _run_dashboard(args) -> int:
    """``repro dashboard``: perf trajectory over the committed bench files."""
    try:
        document, regressions = render_dashboard(
            args.dir, fmt=args.format, tolerance=args.tolerance
        )
    except ValueError as error:
        raise SystemExit(f"dashboard: {error}") from None
    if args.check:
        if regressions:
            mode = "strict" if args.strict else "warn-only"
            flag = "FAIL" if args.strict else "WARN"
            print(
                f"dashboard: {len(regressions)} regression flag(s) beyond "
                f"{args.tolerance * 100:.0f}% tolerance ({mode}):",
                file=sys.stderr,
            )
            for regression in regressions:
                print(f"  {flag} {regression.describe()}", file=sys.stderr)
            return 1 if args.strict else 0
        print("dashboard: no regressions flagged", file=sys.stderr)
        return 0
    if args.output == "-":
        print(document)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
        print(f"wrote {args.format} dashboard to {args.output}", file=sys.stderr)
    if regressions:
        print(
            f"dashboard: {len(regressions)} regression flag(s) beyond "
            f"{args.tolerance * 100:.0f}% tolerance (warn-only)",
            file=sys.stderr,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    if not trace_out:
        return _dispatch(parser, args)
    # --trace-out: collect spans for the whole command, write the Chrome
    # trace-event file even when the command exits early, then restore the
    # no-op tracer (main() may be called repeatedly in one process).
    telemetry_trace.enable()
    try:
        return _dispatch(parser, args)
    finally:
        count = telemetry_trace.write_chrome_trace(trace_out)
        print(f"wrote {count} trace events to {trace_out}", file=sys.stderr)
        telemetry_trace.disable()


def _dispatch(parser: argparse.ArgumentParser, args) -> int:
    """Route parsed arguments to their subcommand implementation."""
    if args.command == "methods":
        for metadata in describe_methods():
            print(f"{metadata['name']:<15s} {metadata['reference']:<45s} {metadata['description']}")
        return 0

    if args.command == "fields":
        for spec in PAPER_TABLE5_FIELDS:
            print(f"({spec.m},{spec.n})  {spec.standard or '-':<6s} {spec.modulus_string()}")
        return 0

    if args.command == "curves":
        print(f"{'name':<7s} {'field':<10s} {'a':>1s} {'order':<12s} {'standard':<12s} note")
        for spec in CURVES:
            order = f"{spec.order.bit_length()}-bit n" if spec.order else "unknown"
            print(
                f"{spec.name:<7s} ({spec.m},{spec.n:<3d})  {spec.a:>1d} {order:<12s} "
                f"{spec.standard or '-':<12s} {spec.note}"
            )
        return 0

    if args.command == "ecdh":
        return _run_ecdh(args)

    if args.command == "keygen":
        return _run_keygen(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "loadgen":
        return _run_loadgen(args)

    if args.command == "stats":
        return _run_stats(args)

    if args.command == "dashboard":
        return _run_dashboard(args)

    if args.command == "tables":
        modulus = type_ii_pentanomial(args.m, args.n)
        renderers = {"1": render_table1, "2": render_table2, "3": render_table3, "4": render_table4}
        selected = renderers.values() if args.which == "all" else [renderers[args.which]]
        for renderer in selected:
            print(renderer(modulus))
            print()
        return 0

    if args.command == "generate":
        modulus = type_ii_pentanomial(args.m, args.n)
        multiplier = generate_multiplier(args.method, modulus)
        print(multiplier.describe())
        print(f"modulus: {poly_to_string(modulus)}")
        print("formally verified against the product specification: yes")
        return 0

    if args.command == "implement":
        modulus = type_ii_pentanomial(args.m, args.n)
        multiplier = generate_multiplier(args.method, modulus, verify=args.m <= 16)
        result = implement(multiplier, options=SynthesisOptions(effort=args.effort))
        for key, value in result.as_dict().items():
            print(f"{key:20s} {value}")
        return 0

    if args.command == "sweep":
        return _run_sweep(args)

    if args.command == "compare":
        fields = _parse_fields(args.fields)
        methods = [name.strip() for name in args.methods.split(",") if name.strip()]
        try:
            comparisons = run_comparison(
                fields=fields,
                methods=methods,
                options=SynthesisOptions(effort=args.effort),
                jobs=args.jobs,
                store=_artifact_store(args),
            )
        except KeyError as error:
            raise SystemExit(str(error.args[0])) from None
        if args.paper:
            print(compare_to_paper(comparisons))
        else:
            print(comparison_table(comparisons, title="Measured comparison (paper Table V layout)"))
        if args.claims:
            report = claims_report(comparisons)
            print()
            for claim, fields_holding in report.items():
                print(f"{claim}: {fields_holding}")
        return 0

    if args.command == "batch":
        return _run_batch(args)

    if args.command == "bench":
        return _run_bench(args)

    if args.command == "emit":
        modulus = type_ii_pentanomial(args.m, args.n)
        multiplier = generate_multiplier(args.method, modulus, verify=args.m <= 16)
        if args.language == "vhdl":
            text = netlist_to_vhdl(multiplier.netlist)
        elif args.language == "vhdl-behavioral":
            text = multiplier_to_behavioral_vhdl(multiplier)
        else:
            text = netlist_to_verilog(multiplier.netlist)
        if args.testbench:
            text += "\n" + vhdl_testbench(modulus)
        if args.output == "-":
            print(text)
        else:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.output}")
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
