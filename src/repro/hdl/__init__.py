"""HDL emitters (VHDL, Verilog, testbenches) for generated multipliers."""

from .testbench import reference_vectors, vhdl_testbench
from .verilog import netlist_to_verilog
from .vhdl import multiplier_to_behavioral_vhdl, netlist_to_vhdl

__all__ = [
    "reference_vectors",
    "vhdl_testbench",
    "netlist_to_verilog",
    "multiplier_to_behavioral_vhdl",
    "netlist_to_vhdl",
]
