"""Reduction and Mastrovito product matrices for GF(2^m) multiplication.

Classic two-step polynomial basis multiplication computes the degree-(2m-2)
product ``D(y) = A(y)·B(y)`` and then reduces it modulo the defining
polynomial ``f(y)``.  Because reduction is GF(2)-linear it can be written as
a matrix:

    c = d_low + R^T · d_high

where ``d_low = (d_0 .. d_(m-1))``, ``d_high = (d_m .. d_(2m-2))`` and row
``i`` of the *reduction matrix* ``R`` holds the coordinates of
``y^(m+i) mod f(y)``.

Mastrovito's construction folds the two steps into a single ``m × m`` product
matrix ``M(A)`` such that ``c = M(A) · b``.  Both forms are provided here;
the circuit generators and the symbolic :class:`~repro.spec.product_spec.ProductSpec`
are all derived from the reduction matrix, so this module is the single
source of truth for how coefficients of the product are composed.
"""

from __future__ import annotations

from typing import List, Sequence

from .gf2poly import degree, poly_mod

__all__ = [
    "power_residues",
    "reduction_matrix",
    "reduction_rows_as_masks",
    "mastrovito_matrix",
    "multiply_with_reduction_matrix",
    "matrix_vector_product",
]


def power_residues(modulus: int, highest_power: int | None = None) -> List[int]:
    """Return ``y^k mod f`` for ``k = m .. highest_power`` as bit masks.

    ``highest_power`` defaults to ``2m - 2``, the highest degree reached by
    the product of two degree-(m-1) polynomials.

    >>> [hex(r) for r in power_residues(0b100011101, 9)]
    ['0x1d', '0x3a']
    """
    m = degree(modulus)
    if m < 1:
        raise ValueError("the modulus must have degree >= 1")
    if highest_power is None:
        highest_power = 2 * m - 2
    if highest_power < m:
        return []
    residues = []
    current = poly_mod(1 << m, modulus)
    residues.append(current)
    for _ in range(m + 1, highest_power + 1):
        current <<= 1
        if current >> m & 1:
            current = (current ^ (1 << m)) ^ poly_mod(1 << m, modulus)
        residues.append(current)
    return residues


def reduction_matrix(modulus: int) -> List[List[int]]:
    """Return the ``(m-1) × m`` reduction matrix ``R`` over GF(2).

    ``R[i][k]`` is the coefficient of ``y^k`` in ``y^(m+i) mod f(y)``, i.e.
    the contribution of the high product coefficient ``d_(m+i)`` to the
    output coefficient ``c_k``.

    >>> R = reduction_matrix(0b1011)           # y^3 + y + 1
    >>> R
    [[1, 1, 0], [0, 1, 1]]
    """
    m = degree(modulus)
    residues = power_residues(modulus)
    return [[(residue >> k) & 1 for k in range(m)] for residue in residues]


def reduction_rows_as_masks(modulus: int) -> List[int]:
    """Return the reduction matrix rows packed as integers (bit ``k`` = column ``k``)."""
    return list(power_residues(degree(modulus) and modulus))


def mastrovito_matrix(modulus: int, a_coordinates: Sequence[int]) -> List[List[int]]:
    """Build the Mastrovito product matrix ``M(A)`` for a concrete operand ``A``.

    ``M`` is ``m × m`` over GF(2) and satisfies ``c = M · b`` where ``b`` and
    ``c`` are coordinate column vectors.  Row ``k`` collects, for each ``j``,
    the parity of the set of partial products ``a_i·b_j`` that reach ``c_k``.

    >>> M = mastrovito_matrix(0b1011, [1, 0, 1])        # A = 1 + y^2 in GF(2^3)
    >>> M
    [[1, 1, 0], [0, 0, 1], [1, 0, 0]]
    """
    m = degree(modulus)
    if len(a_coordinates) != m:
        raise ValueError(f"expected {m} coordinates for A, got {len(a_coordinates)}")
    rows = reduction_matrix(modulus)
    matrix = [[0] * m for _ in range(m)]
    for i, a_i in enumerate(a_coordinates):
        if not a_i & 1:
            continue
        for j in range(m):
            deg = i + j
            if deg < m:
                matrix[deg][j] ^= 1
            else:
                row = rows[deg - m]
                for k in range(m):
                    if row[k]:
                        matrix[k][j] ^= 1
    return matrix


def matrix_vector_product(matrix: Sequence[Sequence[int]], vector: Sequence[int]) -> List[int]:
    """Multiply a GF(2) matrix by a GF(2) column vector (lists of 0/1)."""
    if matrix and len(matrix[0]) != len(vector):
        raise ValueError(f"matrix has {len(matrix[0])} columns but the vector has {len(vector)} entries")
    result = []
    for row in matrix:
        acc = 0
        for entry, value in zip(row, vector):
            acc ^= entry & value
        result.append(acc)
    return result


def multiply_with_reduction_matrix(modulus: int, a: int, b: int) -> int:
    """Multiply two field elements using the explicit matrix formulation.

    This is a second, independent implementation of GF(2^m) multiplication
    (the first being :meth:`repro.galois.field.GF2mField.multiply`); the test
    suite cross-checks the two.
    """
    m = degree(modulus)
    a_bits = [(a >> i) & 1 for i in range(m)]
    b_bits = [(b >> i) & 1 for i in range(m)]
    # Plain polynomial product coefficients d_0 .. d_(2m-2).
    d = [0] * (2 * m - 1)
    for i in range(m):
        if not a_bits[i]:
            continue
        for j in range(m):
            d[i + j] ^= a_bits[i] & b_bits[j]
    rows = reduction_matrix(modulus)
    c = d[:m]
    for i, row in enumerate(rows):
        if not d[m + i]:
            continue
        for k in range(m):
            c[k] ^= row[k]
    value = 0
    for k, bit in enumerate(c):
        if bit:
            value |= 1 << k
    return value
