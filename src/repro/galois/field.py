"""Binary extension field GF(2^m) arithmetic in polynomial (canonical) basis.

This is the functional reference model against which every generated
multiplier circuit is verified.  Elements of GF(2^m) are represented in the
canonical basis ``{1, x, ..., x^(m-1)}`` and stored as integers whose bit
``i`` is the coordinate ``a_i``.

General multiplication stays deliberately straightforward (carry-less
multiply then reduce); its job is correctness — batch operand streams are
delegated to a pluggable execution *backend* (:mod:`repro.backends`: the
scalar reference, the compiled circuit engine, or numpy bitslicing; see
:meth:`GF2mField.multiply_batch` and the ``backend`` constructor
parameter).  The GF(2)-**linear** operations that dominate elliptic-curve
point arithmetic do get native fast paths, because no batching can hide
their latency inside a scalar-multiplication ladder:

* :meth:`GF2mField.square` applies a precomputed sparse linear map (squaring
  permutes basis coordinates and reduces, it never needs a full product);
* :meth:`GF2mField.inverse` walks the Itoh-Tsujii addition chain — ``m - 1``
  fast squarings plus ``O(log m)`` multiplications — with Fermat's
  ``a^(2^m - 2)`` power kept as the independent cross-check reference;
* :meth:`GF2mField.constant_multiplier` compiles multiplication by a fixed
  element into the same kind of table-driven linear map;
* :meth:`GF2mField.inverse_batch` amortizes one inversion over a whole
  operand stream with Montgomery's simultaneous-inversion trick.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from .gf2poly import (
    clmul,
    degree,
    is_irreducible,
    poly_mod,
    poly_powmod,
    poly_to_string,
)
from .pentanomials import type_ii_parameters

__all__ = ["GF2mField", "FieldElement", "GF2LinearMap"]


class GF2LinearMap:
    """A GF(2)-linear map on field elements, compiled to per-byte tables.

    The map is defined by the images ``masks[i]`` of the basis vectors
    ``y^i``; applying it to an element XORs the images of its set bits.
    Bits are consumed eight at a time through 256-entry lookup tables, so an
    application costs ``ceil(m / 8)`` table lookups and XORs — for the
    NIST-size fields that is 20-70 word operations instead of a full
    carry-less product and reduction.

    The defining images stay available as :attr:`masks` so other execution
    substrates can re-lower the same map — the plane-resident backend
    compiles them into gather/XOR passes over uint64 bit planes
    (:class:`repro.backends.planes.PlaneProgram`).
    """

    __slots__ = ("tables", "input_bits", "masks")

    def __init__(self, masks: Sequence[int]) -> None:
        self.masks = tuple(masks)
        self.input_bits = len(masks)
        tables: List[List[int]] = []
        for start in range(0, len(masks), 8):
            chunk = masks[start:start + 8]
            table = [0] * 256
            for bit, mask in enumerate(chunk):
                step = 1 << bit
                for base in range(0, 256, step << 1):
                    for offset in range(step):
                        table[base + step + offset] = table[base + offset] ^ mask
            tables.append(table)
        self.tables = tables

    def __call__(self, value: int) -> int:
        if value < 0 or value >> self.input_bits:
            raise ValueError(
                f"0x{value:x} is outside the map's {self.input_bits}-bit input space"
            )
        result = 0
        index = 0
        tables = self.tables
        while value:
            result ^= tables[index][value & 0xFF]
            value >>= 8
            index += 1
        return result

    def compose(self, inner: "GF2LinearMap") -> "GF2LinearMap":
        """The map ``self ∘ inner`` as a single table-compiled map.

        Linear maps over GF(2) compose exactly: the image of basis vector
        ``i`` under the composition is ``self(inner.masks[i])``.  The IR
        fusion pass (:mod:`repro.backends.ir`) uses this to collapse
        ``square ∘ square`` or ``mul_b ∘ square ∘ square`` chains into one
        map, halving both table applications and plane gather work.
        """
        if inner.masks and max(inner.masks).bit_length() > self.input_bits:
            raise ValueError(
                f"cannot compose: inner map produces {max(inner.masks).bit_length()}-bit "
                f"values but the outer map reads {self.input_bits} bits"
            )
        return GF2LinearMap([self(mask) for mask in inner.masks])


class GF2mField:
    """The binary extension field GF(2^m) defined by an irreducible polynomial.

    Parameters
    ----------
    modulus:
        The defining polynomial ``f(y)`` encoded as an integer (bit ``i`` is
        the coefficient of ``y^i``).  Its degree determines ``m``.
    check_irreducible:
        When true (default) the constructor verifies irreducibility with
        Rabin's test and raises ``ValueError`` otherwise.  Reduction-based
        multiplication is well defined for any modulus, so callers that only
        need the ring structure (e.g. experimental pentanomials) may disable
        the check.
    backend:
        The default execution backend for the batch operations
        (:meth:`multiply_batch`, :meth:`square_batch`,
        :meth:`inverse_batch`): a registered name (``"python"``,
        ``"engine"``, ``"bitslice"``), a
        :class:`~repro.backends.base.FieldBackend` instance, or ``None``
        for the registry default (``$GF2M_REPRO_BACKEND`` override, else
        per-field resolution).  Resolution is lazy, so constructing a
        field never compiles a circuit.  Backend choice does not affect
        equality/hashing — fields with equal moduli are equal and their
        results are byte-identical by the backend parity contract.

    Examples
    --------
    >>> field = GF2mField(0b100011101)      # y^8+y^4+y^3+y^2+1, the paper's GF(2^8)
    >>> field.m
    8
    >>> (field(0x57) * field(0x83)).value == field.multiply(0x57, 0x83)
    True
    """

    def __init__(self, modulus: int, check_irreducible: bool = True, backend=None) -> None:
        m = degree(modulus)
        if m < 1:
            raise ValueError("the field modulus must have degree >= 1")
        if check_irreducible and not is_irreducible(modulus):
            raise ValueError(
                f"{poly_to_string(modulus)} is not irreducible over GF(2); "
                "pass check_irreducible=False to build the quotient ring anyway"
            )
        self._modulus = modulus
        self._m = m
        self._irreducible = is_irreducible(modulus) if not check_irreducible else True
        self._square_map: Optional[GF2LinearMap] = None
        self._backend_spec = backend
        self._backend = None  # resolved lazily (avoids import cost / circuit builds)

    # ------------------------------------------------------------------ meta
    @property
    def modulus(self) -> int:
        """The defining polynomial ``f(y)`` as an integer."""
        return self._modulus

    @property
    def m(self) -> int:
        """The extension degree ``m``."""
        return self._m

    @property
    def order(self) -> int:
        """The number of field elements, ``2^m``."""
        return 1 << self._m

    @property
    def is_field(self) -> bool:
        """True when the modulus is irreducible (so inverses exist)."""
        return self._irreducible

    def modulus_string(self) -> str:
        """The defining polynomial rendered as text."""
        return poly_to_string(self._modulus)

    def type_ii_parameters(self) -> Optional[tuple]:
        """``(m, n)`` when the modulus is a type II pentanomial, else ``None``."""
        return type_ii_parameters(self._modulus)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF2mField(m={self._m}, f={self.modulus_string()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF2mField) and other._modulus == self._modulus

    def __hash__(self) -> int:
        return hash(("GF2mField", self._modulus))

    # -------------------------------------------------------------- backends
    @property
    def backend(self):
        """The field's default :class:`~repro.backends.base.FieldBackend`.

        Resolved lazily from the ``backend`` constructor argument through
        the registry (honouring ``$GF2M_REPRO_BACKEND``); every batch
        operation without an explicit ``backend=`` argument runs here.
        """
        if self._backend is None:
            from ..backends.registry import resolve_backend

            self._backend = resolve_backend(self, self._backend_spec)
        return self._backend

    def resolve_backend(self, backend=None, method: Optional[str] = None):
        """Resolve a per-call backend spec (name, instance or ``None``).

        ``method`` picks the multiplier construction of circuit-backed
        backends; passing only ``method`` selects the engine, preserving
        the historical ``multiply_batch(..., method=...)`` meaning.  With
        neither argument the field's default :attr:`backend` is returned.
        """
        if backend is None and method is None:
            return self.backend
        from ..backends.registry import resolve_backend

        return resolve_backend(self, backend, method=method)

    # ------------------------------------------------------------- arithmetic
    def _check(self, value: int) -> int:
        if not 0 <= value < self.order:
            raise ValueError(f"0x{value:x} is not a valid GF(2^{self._m}) element")
        return value

    def _check_batch(self, values: Sequence[int]) -> None:
        """Range-check a whole operand stream in O(1) Python-level work.

        One ``min``/``max`` pass (C speed) replaces the per-element
        ``_check`` loop that used to dominate small-field batch calls; the
        slow per-element walk runs only to name the offender once a batch
        is known to be bad.
        """
        if not values:
            return
        if min(values) < 0 or max(values).bit_length() > self._m:
            for value in values:
                self._check(value)
            raise AssertionError("unreachable: a bad batch must contain a bad element")

    def add(self, a: int, b: int) -> int:
        """Field addition (bitwise XOR of coordinates)."""
        return self._check(a) ^ self._check(b)

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication: carry-less product reduced modulo ``f``."""
        return poly_mod(clmul(self._check(a), self._check(b)), self._modulus)

    def multiply_batch(
        self,
        a_values: List[int],
        b_values: List[int],
        method: Optional[str] = None,
        backend=None,
    ) -> List[int]:
        """Elementwise products of two operand streams, at batch speed.

        Heavy traffic should not pay the per-call reduce of :meth:`multiply`:
        the whole batch is delegated to an execution backend
        (:mod:`repro.backends`) — by default the compiled circuit engine,
        which bit-packs the streams and evaluates a generated multiplier
        netlist on all pairs at once; the numpy ``bitslice`` backend
        evaluates the same netlist over ``uint64`` plane arrays instead.

        ``backend`` names the substrate (or passes an instance); ``method``
        selects the circuit construction of circuit-backed backends (by
        default the paper's ``thiswork`` multiplier for type II pentanomial
        moduli, generic ``schoolbook`` otherwise).  Backends and their
        compiled circuits are cached, so only the first call pays one-time
        costs.  The scalar :meth:`multiply` remains the independent
        reference implementation every backend is verified against.
        """
        if len(a_values) != len(b_values):
            raise ValueError(
                f"operand streams differ in length: {len(a_values)} vs {len(b_values)}"
            )
        self._check_batch(a_values)
        self._check_batch(b_values)
        return self.resolve_backend(backend, method=method).multiply_batch(a_values, b_values)

    def square_batch(self, values: Sequence[int], backend=None) -> List[int]:
        """Elementwise squares of an operand stream (backend-delegated)."""
        self._check_batch(values)
        return self.resolve_backend(backend).square_batch(values)

    # --------------------------------------------------- linear-map fast paths
    def _reduce_partial(self, value: int) -> int:
        """Reduce a value a few bits wider than ``m`` (used by mask builders)."""
        m = self._m
        modulus = self._modulus
        while True:
            excess = value.bit_length() - 1 - m
            if excess < 0:
                return value
            value ^= modulus << excess

    def _basis_images(self, seed: int, shift: int) -> List[int]:
        """Images ``seed * y^(shift*i) mod f`` of the basis vectors ``y^i``."""
        masks = []
        current = seed
        for _ in range(self._m):
            masks.append(current)
            current = self._reduce_partial(current << shift)
        return masks

    def linear_map(self, masks: Sequence[int]) -> GF2LinearMap:
        """Compile the GF(2)-linear map sending ``y^i`` to ``masks[i]``."""
        if len(masks) != self._m:
            raise ValueError(f"expected {self._m} basis images, got {len(masks)}")
        return GF2LinearMap([self._check(mask) for mask in masks])

    def constant_multiplier(self, c: int) -> Callable[[int], int]:
        """A fast callable computing ``c * v`` for the fixed element ``c``.

        Multiplication by a constant is GF(2)-linear, so it compiles to the
        same per-byte tables as :meth:`square`.  Worth it whenever the same
        constant multiplies many operands (the base-point ``x`` and the
        curve ``b`` inside a Montgomery ladder, for instance); for one-off
        products plain :meth:`multiply` is cheaper than building the map.
        """
        return GF2LinearMap(self._basis_images(self._check(c), 1))

    @property
    def square_map(self) -> GF2LinearMap:
        """The squaring map ``y^i -> y^(2i) mod f`` as a :class:`GF2LinearMap`.

        Built lazily and cached per field; :meth:`square` applies it one
        element at a time, while plane-resident backends re-lower its
        :attr:`~GF2LinearMap.masks` into batched plane programs.
        """
        square_map = self._square_map
        if square_map is None:
            square_map = self.linear_map(self._basis_images(1, 2))
            self._square_map = square_map
        return square_map

    def square(self, a: int) -> int:
        """Field squaring via a precomputed sparse linear map.

        Squaring is linear over GF(2): ``(sum a_i y^i)^2 = sum a_i y^(2i)``,
        so the map ``y^i -> y^(2i) mod f`` is fixed per field and is
        compiled to byte tables on first use.  Costs ``ceil(m/8)`` lookups
        instead of the carry-less product + reduction a generic
        :meth:`multiply` pays; the agreement with ``multiply(a, a)`` is
        pinned down by the property tests.
        """
        return self.square_map(self._check(a))

    def sqrt(self, a: int) -> int:
        """The unique square root ``a^(2^(m-1))`` (Frobenius is bijective)."""
        self._check(a)
        for _ in range(self._m - 1):
            a = self.square(a)
        return a

    def half_trace(self, a: int) -> int:
        """Half-trace ``H(a) = sum a^(4^i)``, defined for odd ``m``.

        For odd extension degrees ``z = H(c)`` solves ``z^2 + z = c``
        whenever ``Tr(c) = 0`` — the workhorse for finding points on binary
        elliptic curves (:mod:`repro.curves`).
        """
        if self._m % 2 == 0:
            raise ValueError(f"the half-trace needs an odd extension degree, got m={self._m}")
        self._check(a)
        result = a
        for _ in range((self._m - 1) // 2):
            result = self.square(self.square(result)) ^ a
        return result

    def power(self, a: int, exponent: int) -> int:
        """Raise ``a`` to any integer power (negative powers invert first)."""
        self._check(a)
        if exponent < 0:
            # Inversion raises ZeroDivisionError for 0 and ValueError when the
            # modulus is reducible, exactly as a direct inverse() call would.
            a = self.inverse(a)
            exponent = -exponent
        if a == 0:
            return 1 if exponent == 0 else 0
        return poly_powmod(a, exponent, self._modulus)

    def inverse(self, a: int, method: str = "itoh-tsujii") -> int:
        """Multiplicative inverse ``a^(2^m - 2)``.

        ``method="itoh-tsujii"`` (default) walks the Itoh-Tsujii addition
        chain: ``m - 1`` fast squarings and ``O(log m)`` multiplications.
        ``method="fermat"`` is the seed implementation — a full
        square-and-multiply power with ``~2m`` generic products — kept as
        the independent cross-check reference.
        """
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        if not self._irreducible:
            raise ValueError("inverses are only defined when the modulus is irreducible")
        if method == "fermat":
            return poly_powmod(a, self.order - 2, self._modulus)
        if method != "itoh-tsujii":
            raise ValueError(f"unknown inversion method {method!r}: use 'itoh-tsujii' or 'fermat'")
        return self._itoh_tsujii(a)

    def _itoh_tsujii(self, a: int) -> int:
        """Itoh-Tsujii inversion: ``(a^(2^(m-1) - 1))^2`` by addition chain.

        Maintains ``beta = a^(2^k - 1)`` while building ``k`` up to ``m - 1``
        along the binary expansion of ``m - 1``: doubling ``k`` costs ``k``
        squarings and one multiplication, absorbing a set bit costs one more
        squaring and multiplication.
        """
        beta = a
        k = 1
        square = self.square
        multiply = self.multiply
        for bit in bin(self._m - 1)[3:]:
            shifted = beta
            for _ in range(k):
                shifted = square(shifted)
            beta = multiply(shifted, beta)
            k <<= 1
            if bit == "1":
                beta = multiply(square(beta), a)
                k += 1
        return square(beta)

    def inverse_batch(self, values: Sequence[int], backend=None) -> List[int]:
        """Inverses of a whole operand stream for the cost of one inversion.

        Montgomery's simultaneous-inversion trick (delegated to the
        backend): form the prefix products, invert only the total, then
        walk back unwinding one factor at a time — ``3(len - 1)``
        multiplications plus a single :meth:`inverse`.  Raises
        ``ZeroDivisionError`` *before any product is formed* if any input
        is zero, identifying the first offending index.
        """
        self._check_batch(values)
        if not self._irreducible and values:
            raise ValueError("inverses are only defined when the modulus is irreducible")
        return self.resolve_backend(backend).inverse_batch(values)

    def trace(self, a: int) -> int:
        """Absolute trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1)) in GF(2)."""
        self._check(a)
        total = 0
        current = a
        for _ in range(self._m):
            total ^= current
            current = self.square(current)
        # The trace of any element lies in GF(2) = {0, 1}.
        return total & 1

    # ------------------------------------------------------------- conversion
    def coordinates(self, a: int) -> List[int]:
        """Return the canonical-basis coordinates ``[a_0, ..., a_(m-1)]``."""
        self._check(a)
        return [(a >> i) & 1 for i in range(self._m)]

    def from_coordinates(self, coordinates: List[int]) -> int:
        """Build an element from canonical-basis coordinates (low bit first)."""
        if len(coordinates) > self._m:
            raise ValueError(f"expected at most {self._m} coordinates, got {len(coordinates)}")
        value = 0
        for i, coordinate in enumerate(coordinates):
            if coordinate & 1:
                value |= 1 << i
        return value

    def elements(self) -> Iterator["FieldElement"]:
        """Iterate over every field element (use only for small ``m``)."""
        for value in range(self.order):
            yield FieldElement(self, value)

    def random_element(self, rng) -> "FieldElement":
        """Draw a uniformly random element using ``rng`` (a ``random.Random``)."""
        return FieldElement(self, rng.getrandbits(self._m) % self.order)

    def __call__(self, value: int) -> "FieldElement":
        """Wrap an integer as a :class:`FieldElement` of this field."""
        return FieldElement(self, self._check(value))


@dataclass(frozen=True)
class FieldElement:
    """An element of a :class:`GF2mField` supporting operator syntax.

    The element is immutable; arithmetic returns new elements.  Mixing
    elements of different fields raises ``ValueError``.
    """

    field: GF2mField
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < self.field.order:
            raise ValueError(f"0x{self.value:x} is not a valid element of {self.field!r}")

    def _coerce(self, other) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise ValueError("cannot mix elements of different fields")
            return other
        if isinstance(other, int):
            return FieldElement(self.field, other)
        raise TypeError(f"cannot combine FieldElement with {type(other).__name__}")

    def __add__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.field, self.field.add(self.value, other.value))

    __radd__ = __add__
    __sub__ = __add__  # Characteristic 2: subtraction equals addition.
    __rsub__ = __add__

    def __mul__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.field, self.field.multiply(self.value, other.value))

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(self.field, self.field.power(self.value, exponent))

    def __truediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return self * other.inverse()

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse of this element."""
        return FieldElement(self.field, self.field.inverse(self.value))

    def square(self) -> "FieldElement":
        """The square of this element."""
        return FieldElement(self.field, self.field.square(self.value))

    def trace(self) -> int:
        """Absolute trace (an element of GF(2), returned as 0 or 1)."""
        return self.field.trace(self.value)

    def coordinates(self) -> List[int]:
        """Canonical-basis coordinates ``[a_0, ..., a_(m-1)]``."""
        return self.field.coordinates(self.value)

    def __int__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FieldElement(GF(2^{self.field.m}), 0x{self.value:x})"
