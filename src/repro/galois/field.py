"""Binary extension field GF(2^m) arithmetic in polynomial (canonical) basis.

This is the functional reference model against which every generated
multiplier circuit is verified.  Elements of GF(2^m) are represented in the
canonical basis ``{1, x, ..., x^(m-1)}`` and stored as integers whose bit
``i`` is the coordinate ``a_i``.

The implementation is deliberately straightforward (multiply then reduce);
its job is correctness, not speed — the *circuits* produced by
:mod:`repro.multipliers` are the objects whose structure matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .gf2poly import (
    clmul,
    degree,
    is_irreducible,
    poly_mod,
    poly_powmod,
    poly_to_string,
)
from .pentanomials import type_ii_parameters

__all__ = ["GF2mField", "FieldElement"]


class GF2mField:
    """The binary extension field GF(2^m) defined by an irreducible polynomial.

    Parameters
    ----------
    modulus:
        The defining polynomial ``f(y)`` encoded as an integer (bit ``i`` is
        the coefficient of ``y^i``).  Its degree determines ``m``.
    check_irreducible:
        When true (default) the constructor verifies irreducibility with
        Rabin's test and raises ``ValueError`` otherwise.  Reduction-based
        multiplication is well defined for any modulus, so callers that only
        need the ring structure (e.g. experimental pentanomials) may disable
        the check.

    Examples
    --------
    >>> field = GF2mField(0b100011101)      # y^8+y^4+y^3+y^2+1, the paper's GF(2^8)
    >>> field.m
    8
    >>> (field(0x57) * field(0x83)).value == field.multiply(0x57, 0x83)
    True
    """

    def __init__(self, modulus: int, check_irreducible: bool = True) -> None:
        m = degree(modulus)
        if m < 1:
            raise ValueError("the field modulus must have degree >= 1")
        if check_irreducible and not is_irreducible(modulus):
            raise ValueError(
                f"{poly_to_string(modulus)} is not irreducible over GF(2); "
                "pass check_irreducible=False to build the quotient ring anyway"
            )
        self._modulus = modulus
        self._m = m
        self._irreducible = is_irreducible(modulus) if not check_irreducible else True

    # ------------------------------------------------------------------ meta
    @property
    def modulus(self) -> int:
        """The defining polynomial ``f(y)`` as an integer."""
        return self._modulus

    @property
    def m(self) -> int:
        """The extension degree ``m``."""
        return self._m

    @property
    def order(self) -> int:
        """The number of field elements, ``2^m``."""
        return 1 << self._m

    @property
    def is_field(self) -> bool:
        """True when the modulus is irreducible (so inverses exist)."""
        return self._irreducible

    def modulus_string(self) -> str:
        """The defining polynomial rendered as text."""
        return poly_to_string(self._modulus)

    def type_ii_parameters(self) -> Optional[tuple]:
        """``(m, n)`` when the modulus is a type II pentanomial, else ``None``."""
        return type_ii_parameters(self._modulus)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF2mField(m={self._m}, f={self.modulus_string()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF2mField) and other._modulus == self._modulus

    def __hash__(self) -> int:
        return hash(("GF2mField", self._modulus))

    # ------------------------------------------------------------- arithmetic
    def _check(self, value: int) -> int:
        if not 0 <= value < self.order:
            raise ValueError(f"0x{value:x} is not a valid GF(2^{self._m}) element")
        return value

    def add(self, a: int, b: int) -> int:
        """Field addition (bitwise XOR of coordinates)."""
        return self._check(a) ^ self._check(b)

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication: carry-less product reduced modulo ``f``."""
        return poly_mod(clmul(self._check(a), self._check(b)), self._modulus)

    def multiply_batch(self, a_values: List[int], b_values: List[int], method: Optional[str] = None) -> List[int]:
        """Elementwise products of two operand streams, at batch speed.

        Heavy traffic should not pay the per-call reduce of :meth:`multiply`:
        this routes the whole batch through the compiled circuit engine
        (:mod:`repro.engine`), which bit-packs the streams and evaluates a
        generated multiplier netlist on all pairs at once — 15-30× faster
        than scalar calls for large batches.

        ``method`` selects the circuit construction; by default the paper's
        ``thiswork`` multiplier is used when the modulus is a type II
        pentanomial and the generic ``schoolbook`` construction otherwise.
        The engine (and the underlying multiplier) is cached per
        ``(method, modulus)``, so the first call pays a one-time compilation.
        The scalar :meth:`multiply` remains the independent reference
        implementation the circuits are verified against.
        """
        if len(a_values) != len(b_values):
            raise ValueError(
                f"operand streams differ in length: {len(a_values)} vs {len(b_values)}"
            )
        for value in a_values:
            self._check(value)
        for value in b_values:
            self._check(value)
        if method is None:
            method = "thiswork" if type_ii_parameters(self._modulus) is not None else "schoolbook"
        from ..engine.engine import engine_for

        return engine_for(method, self._modulus).multiply_batch(a_values, b_values)

    def square(self, a: int) -> int:
        """Field squaring (a linear map over GF(2))."""
        return self.multiply(a, a)

    def power(self, a: int, exponent: int) -> int:
        """Raise ``a`` to a non-negative integer power."""
        if exponent < 0:
            return self.power(self.inverse(a), -exponent)
        return poly_powmod(self._check(a), exponent, self._modulus) if a else (1 if exponent == 0 else 0)

    def inverse(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem (``a^(2^m - 2)``)."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        if not self._irreducible:
            raise ValueError("inverses are only defined when the modulus is irreducible")
        return self.power(a, self.order - 2)

    def trace(self, a: int) -> int:
        """Absolute trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1)) in GF(2)."""
        self._check(a)
        total = 0
        current = a
        for _ in range(self._m):
            total ^= current
            current = self.square(current)
        # The trace of any element lies in GF(2) = {0, 1}.
        return total & 1

    # ------------------------------------------------------------- conversion
    def coordinates(self, a: int) -> List[int]:
        """Return the canonical-basis coordinates ``[a_0, ..., a_(m-1)]``."""
        self._check(a)
        return [(a >> i) & 1 for i in range(self._m)]

    def from_coordinates(self, coordinates: List[int]) -> int:
        """Build an element from canonical-basis coordinates (low bit first)."""
        if len(coordinates) > self._m:
            raise ValueError(f"expected at most {self._m} coordinates, got {len(coordinates)}")
        value = 0
        for i, coordinate in enumerate(coordinates):
            if coordinate & 1:
                value |= 1 << i
        return value

    def elements(self) -> Iterator["FieldElement"]:
        """Iterate over every field element (use only for small ``m``)."""
        for value in range(self.order):
            yield FieldElement(self, value)

    def random_element(self, rng) -> "FieldElement":
        """Draw a uniformly random element using ``rng`` (a ``random.Random``)."""
        return FieldElement(self, rng.getrandbits(self._m) % self.order)

    def __call__(self, value: int) -> "FieldElement":
        """Wrap an integer as a :class:`FieldElement` of this field."""
        return FieldElement(self, self._check(value))


@dataclass(frozen=True)
class FieldElement:
    """An element of a :class:`GF2mField` supporting operator syntax.

    The element is immutable; arithmetic returns new elements.  Mixing
    elements of different fields raises ``ValueError``.
    """

    field: GF2mField
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < self.field.order:
            raise ValueError(f"0x{self.value:x} is not a valid element of {self.field!r}")

    def _coerce(self, other) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise ValueError("cannot mix elements of different fields")
            return other
        if isinstance(other, int):
            return FieldElement(self.field, other)
        raise TypeError(f"cannot combine FieldElement with {type(other).__name__}")

    def __add__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.field, self.field.add(self.value, other.value))

    __radd__ = __add__
    __sub__ = __add__  # Characteristic 2: subtraction equals addition.
    __rsub__ = __add__

    def __mul__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement(self.field, self.field.multiply(self.value, other.value))

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(self.field, self.field.power(self.value, exponent))

    def __truediv__(self, other) -> "FieldElement":
        other = self._coerce(other)
        return self * other.inverse()

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse of this element."""
        return FieldElement(self.field, self.field.inverse(self.value))

    def square(self) -> "FieldElement":
        """The square of this element."""
        return FieldElement(self.field, self.field.square(self.value))

    def trace(self) -> int:
        """Absolute trace (an element of GF(2), returned as 0 or 1)."""
        return self.field.trace(self.value)

    def coordinates(self) -> List[int]:
        """Canonical-basis coordinates ``[a_0, ..., a_(m-1)]``."""
        return self.field.coordinates(self.value)

    def __int__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FieldElement(GF(2^{self.field.m}), 0x{self.value:x})"
