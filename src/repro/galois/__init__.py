"""Binary field substrate: GF(2)[y] polynomials, pentanomials, GF(2^m) fields.

This subpackage is the mathematical foundation of the reproduction: every
multiplier circuit is verified against :class:`~repro.galois.field.GF2mField`,
and every field in the paper's evaluation is described by a
:class:`~repro.galois.pentanomials.FieldSpec` from the catalog.
"""

from .field import FieldElement, GF2LinearMap, GF2mField
from .gf2poly import (
    clmul,
    degree,
    exponents,
    from_coefficient_list,
    from_exponents,
    is_irreducible,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_mulmod,
    poly_powmod,
    poly_square,
    poly_to_string,
    to_coefficient_list,
    weight,
)
from .matrices import (
    mastrovito_matrix,
    matrix_vector_product,
    multiply_with_reduction_matrix,
    power_residues,
    reduction_matrix,
)
from .pentanomials import (
    NIST_ECDSA_DEGREES,
    PAPER_FIELDS,
    PAPER_TABLE5_FIELDS,
    FieldSpec,
    field_catalog,
    find_type_ii_pentanomials,
    is_type_ii_pentanomial,
    lookup_field,
    smallest_type_ii_pentanomial,
    trinomial,
    type_i_pentanomial,
    type_ii_parameters,
    type_ii_pentanomial,
)

__all__ = [
    "FieldElement",
    "GF2LinearMap",
    "GF2mField",
    "clmul",
    "degree",
    "exponents",
    "from_coefficient_list",
    "from_exponents",
    "is_irreducible",
    "poly_divmod",
    "poly_gcd",
    "poly_mod",
    "poly_mulmod",
    "poly_powmod",
    "poly_square",
    "poly_to_string",
    "to_coefficient_list",
    "weight",
    "mastrovito_matrix",
    "matrix_vector_product",
    "multiply_with_reduction_matrix",
    "power_residues",
    "reduction_matrix",
    "NIST_ECDSA_DEGREES",
    "PAPER_FIELDS",
    "PAPER_TABLE5_FIELDS",
    "FieldSpec",
    "field_catalog",
    "find_type_ii_pentanomials",
    "is_type_ii_pentanomial",
    "lookup_field",
    "smallest_type_ii_pentanomial",
    "trinomial",
    "type_i_pentanomial",
    "type_ii_parameters",
    "type_ii_pentanomial",
]
