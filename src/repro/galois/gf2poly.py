"""Polynomial arithmetic over GF(2).

Polynomials over GF(2) are represented as Python integers: bit ``i`` of the
integer is the coefficient of ``y^i``.  This is the standard "bit-vector"
encoding used by carry-less multiplication hardware and lets arbitrarily
large fields (the paper goes up to ``m = 163``) be handled with native
integer operations.

The module provides everything the rest of the library needs from GF(2)[y]:
multiplication, euclidean division, gcd, modular exponentiation, squaring,
irreducibility testing (Rabin's test) and a handful of structural helpers
(degree, Hamming weight, exponent extraction).

All functions are pure and operate on plain ``int`` values, so they compose
freely with :mod:`repro.galois.field` and the pentanomial catalog.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

__all__ = [
    "degree",
    "weight",
    "exponents",
    "from_exponents",
    "to_coefficient_list",
    "from_coefficient_list",
    "poly_to_string",
    "clmul",
    "poly_mod",
    "poly_divmod",
    "poly_mulmod",
    "poly_powmod",
    "poly_square",
    "poly_gcd",
    "is_irreducible",
    "distinct_prime_factors",
]


def degree(poly: int) -> int:
    """Return the degree of ``poly``; the zero polynomial has degree ``-1``.

    >>> degree(0b1011)
    3
    >>> degree(1)
    0
    >>> degree(0)
    -1
    """
    if poly < 0:
        raise ValueError("polynomials over GF(2) are encoded as non-negative integers")
    return poly.bit_length() - 1


def weight(poly: int) -> int:
    """Return the Hamming weight (number of non-zero coefficients) of ``poly``.

    >>> weight(0b10011)
    3
    """
    if poly < 0:
        raise ValueError("polynomials over GF(2) are encoded as non-negative integers")
    return bin(poly).count("1")


def exponents(poly: int) -> List[int]:
    """Return the exponents with non-zero coefficients, highest first.

    >>> exponents(0b100011101)
    [8, 4, 3, 2, 0]
    """
    result = []
    for bit in range(degree(poly), -1, -1):
        if (poly >> bit) & 1:
            result.append(bit)
    return result


def from_exponents(exps: Iterable[int]) -> int:
    """Build a polynomial from an iterable of exponents.

    Repeated exponents cancel (coefficients live in GF(2)).

    >>> from_exponents([8, 4, 3, 2, 0]) == 0b100011101
    True
    >>> from_exponents([3, 3]) == 0
    True
    """
    poly = 0
    for exp in exps:
        if exp < 0:
            raise ValueError("exponents must be non-negative")
        poly ^= 1 << exp
    return poly


def to_coefficient_list(poly: int, length: int | None = None) -> List[int]:
    """Return coefficients ``[c_0, c_1, ...]`` (low degree first).

    When ``length`` is given the list is padded or an error is raised if the
    polynomial does not fit.

    >>> to_coefficient_list(0b1011)
    [1, 1, 0, 1]
    >>> to_coefficient_list(0b11, length=4)
    [1, 1, 0, 0]
    """
    natural = degree(poly) + 1 if poly else 0
    if length is None:
        length = max(natural, 1)
    elif natural > length:
        raise ValueError(f"polynomial of degree {natural - 1} does not fit in {length} coefficients")
    return [(poly >> i) & 1 for i in range(length)]


def from_coefficient_list(coefficients: Iterable[int]) -> int:
    """Build a polynomial from coefficients ``[c_0, c_1, ...]`` (low first).

    Coefficients are reduced modulo 2.

    >>> from_coefficient_list([1, 1, 0, 1]) == 0b1011
    True
    """
    poly = 0
    for i, coefficient in enumerate(coefficients):
        if coefficient & 1:
            poly |= 1 << i
    return poly


def poly_to_string(poly: int, variable: str = "y") -> str:
    """Render a readable polynomial string such as ``y^8 + y^4 + y^3 + y^2 + 1``.

    >>> poly_to_string(0b100011101)
    'y^8 + y^4 + y^3 + y^2 + 1'
    >>> poly_to_string(0)
    '0'
    """
    if poly == 0:
        return "0"
    parts = []
    for exp in exponents(poly):
        if exp == 0:
            parts.append("1")
        elif exp == 1:
            parts.append(variable)
        else:
            parts.append(f"{variable}^{exp}")
    return " + ".join(parts)


def clmul(a: int, b: int) -> int:
    """Carry-less (GF(2)[y]) multiplication of two polynomials.

    >>> clmul(0b11, 0b11)  # (y + 1)^2 = y^2 + 1
    5
    >>> clmul(0, 0b1010)
    0
    """
    if a < 0 or b < 0:
        raise ValueError("polynomials over GF(2) are encoded as non-negative integers")
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def poly_divmod(dividend: int, divisor: int) -> Tuple[int, int]:
    """Euclidean division in GF(2)[y]: return ``(quotient, remainder)``.

    >>> poly_divmod(0b100011101, 0b100011101)
    (1, 0)
    >>> q, r = poly_divmod(0b1100101, 0b1011)
    >>> clmul(q, 0b1011) ^ r == 0b1100101
    True
    """
    if divisor == 0:
        raise ZeroDivisionError("polynomial division by zero")
    quotient = 0
    remainder = dividend
    divisor_degree = degree(divisor)
    while degree(remainder) >= divisor_degree:
        shift = degree(remainder) - divisor_degree
        quotient ^= 1 << shift
        remainder ^= divisor << shift
    return quotient, remainder


def poly_mod(value: int, modulus: int) -> int:
    """Reduce ``value`` modulo ``modulus`` in GF(2)[y].

    >>> poly_mod(0b100000000, 0b100011101)  # y^8 mod AES-like pentanomial
    29
    """
    return poly_divmod(value, modulus)[1]


def poly_mulmod(a: int, b: int, modulus: int) -> int:
    """Multiply two polynomials and reduce modulo ``modulus``."""
    return poly_mod(clmul(a, b), modulus)


def poly_square(a: int) -> int:
    """Square a polynomial over GF(2) (interleave its bits with zeros).

    Squaring is linear over GF(2): ``(sum y^i)^2 = sum y^(2i)``.

    >>> poly_square(0b111) == 0b10101
    True
    """
    result = 0
    bit = 0
    while a:
        if a & 1:
            result |= 1 << (2 * bit)
        a >>= 1
        bit += 1
    return result


def poly_powmod(base: int, exponent: int, modulus: int) -> int:
    """Compute ``base**exponent mod modulus`` by square-and-multiply.

    >>> poly_powmod(0b10, 8, 0b100011101)  # y^8 mod f
    29
    """
    if exponent < 0:
        raise ValueError("negative exponents are not defined in GF(2)[y]")
    result = 1
    base = poly_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, modulus)
        base = poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two polynomials over GF(2).

    >>> poly_gcd(clmul(0b111, 0b1011), clmul(0b111, 0b11))
    7
    >>> poly_gcd(0, 0b101)
    5
    """
    while b:
        a, b = b, poly_mod(a, b)
    return a


def distinct_prime_factors(value: int) -> List[int]:
    """Return the distinct prime factors of a positive integer, ascending.

    Used by Rabin's irreducibility test on the extension degree ``m``.

    >>> distinct_prime_factors(163)
    [163]
    >>> distinct_prime_factors(148)
    [2, 37]
    """
    if value < 1:
        raise ValueError("value must be a positive integer")
    factors = []
    remaining = value
    candidate = 2
    while candidate * candidate <= remaining:
        if remaining % candidate == 0:
            factors.append(candidate)
            while remaining % candidate == 0:
                remaining //= candidate
        candidate += 1 if candidate == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin's irreducibility test for a polynomial over GF(2).

    ``f`` of degree ``m`` is irreducible iff ``y^(2^m) = y (mod f)`` and for
    every prime divisor ``p`` of ``m``, ``gcd(y^(2^(m/p)) - y, f) = 1``.

    >>> is_irreducible(0b100011101)   # y^8+y^4+y^3+y^2+1 (CCSDS / Reed-Solomon)
    True
    >>> is_irreducible(0b100011011)   # y^8+y^4+y^3+y+1 (AES polynomial)
    True
    >>> is_irreducible(0b101)         # y^2+1 = (y+1)^2
    False
    """
    m = degree(poly)
    if m <= 0:
        return False
    if m == 1:
        return True
    if not poly & 1:
        # Divisible by y.
        return False
    y = 0b10
    # Repeated squaring of y modulo poly: after k squarings we hold y^(2^k).
    power = y
    powers_at = {}
    needed = {m} | {m // p for p in distinct_prime_factors(m)}
    for step in range(1, m + 1):
        power = poly_mulmod(power, power, poly)
        if step in needed:
            powers_at[step] = power
    if powers_at[m] != y:
        return False
    for p in distinct_prime_factors(m):
        if poly_gcd(powers_at[m // p] ^ y, poly) != 1:
            return False
    return True
