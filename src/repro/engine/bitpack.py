"""Word-level bit-matrix transposition for batch simulation.

Feeding K operand pairs through a bit-parallel multiplier netlist requires a
*transpose*: the caller holds K row words (one per operand, ``m`` bits each)
while the simulator wants ``m`` plane words (one per input bit, K bits each).
The obvious double loop costs O(K·m) Python-level bit operations and easily
dominates the whole batch — in the interpreted simulator it is ~97% of the
runtime for GF(2^163).

This module transposes through whole machine words instead.  The K×m bit
matrix is carved into square power-of-two blocks, each block is transposed
in-place inside a single Python big integer with the classic mask-and-shift
block-swap recursion (log2(B) passes of a few full-width integer operations),
and rows/planes move between the block world and the caller's integers via
``int.to_bytes`` / ``int.from_bytes``, which run at C speed.  The result is
a ~30× faster packing path that the :class:`repro.engine.engine.Engine`
builds on.

The two public helpers are exact inverses of each other:

* :func:`pack_rows` — K row words of ``width`` bits → ``width`` planes of K bits,
* :func:`unpack_planes` — ``width`` planes of K bits → K row words.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["transpose_square", "pack_rows", "unpack_planes", "block_size_for"]

#: Cached mask/shift schedules of :func:`transpose_square`, keyed by block size.
_MASK_CACHE: Dict[int, List[Tuple[int, int]]] = {}


def _transpose_masks(n: int) -> List[Tuple[int, int]]:
    """The (shift, mask) schedule transposing an n×n bit matrix (n a power of 2).

    Step ``s`` swaps, within every 2s×2s tile on the diagonal, the upper-right
    and lower-left s×s sub-blocks.  ``mask`` selects the upper-right sub-block
    bits of every tile; the matching lower-left bit sits ``s·(n-1)`` positions
    higher (s rows up, s columns down in row-major order).
    """
    masks = _MASK_CACHE.get(n)
    if masks is not None:
        return masks
    masks = []
    s = n >> 1
    while s:
        period = 2 * s
        col_unit = ((1 << s) - 1) << s
        col_pattern = 0
        for tile in range(n // period):
            col_pattern |= col_unit << (tile * period)
        row_block = 0
        for row in range(s):
            row_block |= col_pattern << (row * n)
        mask = 0
        for tile in range(n // period):
            mask |= row_block << (tile * period * n)
        masks.append((s * (n - 1), mask))
        s >>= 1
    _MASK_CACHE[n] = masks
    return masks


def transpose_square(x: int, n: int) -> int:
    """Bit-transpose an n×n matrix packed row-major into the integer ``x``.

    Bit ``r·n + c`` of ``x`` is matrix element (r, c); the result holds the
    transposed matrix in the same layout.  ``n`` must be a power of two.
    """
    if n & (n - 1) or n < 1:
        raise ValueError(f"block size must be a power of two, got {n}")
    for shift, mask in _transpose_masks(n):
        upper = (x >> shift) & mask
        lower = (x & mask) << shift
        x = (x & ~(mask | (mask << shift))) | upper | lower
    return x


def block_size_for(width: int) -> int:
    """The square block size used for a matrix of ``width``-bit rows."""
    if width < 1:
        raise ValueError("width must be at least 1")
    return 1 << max(6, (width - 1).bit_length())


def _row_buffer(rows: Sequence[int], row_bytes: int, block: int) -> bytes:
    try:
        buffer = b"".join(value.to_bytes(row_bytes, "little") for value in rows)
    except OverflowError:
        raise ValueError(
            f"row values must be non-negative integers below 2^{row_bytes * 8}"
        ) from None
    if len(rows) < block:
        buffer += bytes(row_bytes * (block - len(rows)))
    return buffer


def pack_rows(rows: Sequence[int], width: int, block: Optional[int] = None) -> List[int]:
    """Transpose K row words of ``width`` bits into ``width`` plane words.

    Plane ``i`` of the result holds bit ``i`` of every row: bit ``p`` of
    ``result[i]`` equals bit ``i`` of ``rows[p]``.  Row bits at positions
    ``width`` and above are ignored (they fall into planes the caller never
    sees), mirroring the masking semantics of the interpreted simulator.
    """
    if block is None:
        block = block_size_for(width)
    elif block & (block - 1) or block < width:
        raise ValueError(f"block must be a power of two >= width, got {block}")
    if not rows:
        return [0] * width
    row_bytes = block // 8
    block_count = (len(rows) + block - 1) // block
    plane_slices: List[List[bytes]] = [[] for _ in range(width)]
    for index in range(block_count):
        chunk = rows[index * block:(index + 1) * block]
        matrix = int.from_bytes(_row_buffer(chunk, row_bytes, block), "little")
        transposed = transpose_square(matrix, block).to_bytes(block * row_bytes, "little")
        for i in range(width):
            plane_slices[i].append(transposed[i * row_bytes:(i + 1) * row_bytes])
    return [int.from_bytes(b"".join(slices), "little") for slices in plane_slices]


def unpack_planes(
    planes: Sequence[int], width: int, count: int, block: Optional[int] = None
) -> List[int]:
    """Inverse of :func:`pack_rows`: ``width`` planes back into ``count`` rows."""
    if len(planes) != width:
        raise ValueError(f"expected {width} planes, got {len(planes)}")
    if block is None:
        block = block_size_for(width)
    elif block & (block - 1) or block < width:
        raise ValueError(f"block must be a power of two >= width, got {block}")
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return []
    row_bytes = block // 8
    block_count = (count + block - 1) // block
    total_bytes = block_count * row_bytes
    try:
        plane_bytes = [plane.to_bytes(total_bytes, "little") for plane in planes]
    except OverflowError:
        raise ValueError(
            f"plane values must be non-negative integers below 2^{total_bytes * 8}"
        ) from None
    rows: List[int] = []
    for index in range(block_count):
        buffer = b"".join(
            plane[index * row_bytes:(index + 1) * row_bytes] for plane in plane_bytes
        )
        buffer += bytes(row_bytes * (block - width))
        transposed = transpose_square(int.from_bytes(buffer, "little"), block)
        block_bytes = transposed.to_bytes(block * row_bytes, "little")
        rows_here = min(block, count - index * block)
        for r in range(rows_here):
            rows.append(int.from_bytes(block_bytes[r * row_bytes:(r + 1) * row_bytes], "little"))
    return rows
