"""The batch multiplication engine: compiled netlists fed by word transposes.

:class:`Engine` is the production execution path of this project.  It takes
a generated multiplier circuit, compiles it once
(:mod:`repro.engine.compiler`), and then streams arbitrarily long operand
batches through the compiled function in bit-packed chunks
(:mod:`repro.engine.bitpack`):

1. a chunk of up to ``chunk_size`` operand pairs is transposed from row
   words into per-input-bit plane words,
2. one call of the compiled straight-line function evaluates every gate on
   all pairs of the chunk simultaneously (bit ``p`` of every intermediate
   word belongs to pair ``p``),
3. the output planes are transposed back into product words.

Throughput at GF(2^163) is 15-30× the interpreted
:func:`repro.netlist.simulate.simulate_words` path (see
``benchmarks/bench_engine_throughput.py``).

Module-level factories cache engines so that repeated callers — the CLI,
:meth:`repro.galois.field.GF2mField.multiply_batch`, the verification
helpers — never recompile:

* :func:`engine_for` keys on ``(method, modulus, mode)`` and obtains the
  circuit through the process-wide multiplier cache;
* :func:`engine_for_netlist` weakly keys on an existing netlist object, for
  callers that already hold a circuit (restructured variants, tests).
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from ..multipliers.cache import cached_multiplier
from ..pipeline.store import LRUCache
from .bitpack import pack_rows, unpack_planes
from .compiler import compile_netlist

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist
    from .compiler import CompiledNetlist

__all__ = ["Engine", "engine_for", "engine_for_netlist"]

#: Default number of operand pairs evaluated per compiled call.
DEFAULT_CHUNK_SIZE = 4096


class Engine:
    """Compiled batch-multiplication engine for one multiplier circuit.

    Parameters
    ----------
    multiplier:
        A :class:`~repro.multipliers.base.GeneratedMultiplier`.  Mutually
        exclusive with ``netlist``/``m``.
    netlist, m:
        A raw multiplier netlist following the ``a<i>``/``b<j>`` → ``c<k>``
        I/O convention, and its field degree.
    mode:
        ``"exec"`` (generated straight-line function, fastest) or
        ``"arrays"`` (flat schedule, no codegen; instant construction).
    chunk_size:
        Operand pairs per compiled call.  Larger chunks amortize per-call
        overhead against bigger intermediate words; 4096 is a good default.

    Only the low ``m`` bits of every operand are used, matching the
    interpreted simulator's semantics.
    """

    def __init__(
        self,
        multiplier=None,
        *,
        netlist: Optional[Netlist] = None,
        m: Optional[int] = None,
        mode: str = "exec",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if multiplier is not None:
            if netlist is not None or m is not None:
                raise ValueError("pass either a multiplier or netlist+m, not both")
            netlist = multiplier.netlist
            m = multiplier.m
            self.method: Optional[str] = multiplier.method
            self.modulus: Optional[int] = multiplier.modulus
        else:
            if netlist is None or m is None:
                raise ValueError("an Engine needs a multiplier or a netlist with its degree m")
            self.method = netlist.attributes.get("method")
            self.modulus = netlist.attributes.get("modulus")
        if chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.m = m
        self.chunk_size = chunk_size
        self.compiled: CompiledNetlist = compile_netlist(netlist, mode=mode)
        self._input_sources = self._map_inputs(self.compiled.input_names, m)
        self._output_order = self._map_outputs(self.compiled.output_names, m)

    # ------------------------------------------------------------- I/O wiring
    @staticmethod
    def _map_inputs(input_names: Sequence[str], m: int) -> List[Tuple[int, int]]:
        sources = []
        for name in input_names:
            operand, digits = name[:1], name[1:]
            if operand not in ("a", "b") or not digits.isdigit() or int(digits) >= m:
                raise ValueError(
                    f"input {name!r} does not follow the a<i>/b<j> convention for m={m}"
                )
            sources.append((0 if operand == "a" else 1, int(digits)))
        return sources

    @staticmethod
    def _map_outputs(output_names: Sequence[str], m: int) -> List[int]:
        position = {name: index for index, name in enumerate(output_names)}
        order = []
        for k in range(m):
            index = position.get(f"c{k}")
            if index is None:
                raise ValueError(f"netlist is missing output c{k}")
            order.append(index)
        return order

    @property
    def mode(self) -> str:
        """The compilation mode of the underlying evaluator."""
        return self.compiled.mode

    # --------------------------------------------------------------- multiply
    def multiply(self, a: int, b: int) -> int:
        """Multiply a single pair of field elements through the compiled circuit."""
        return self.multiply_batch([a], [b])[0]

    def multiply_batch(
        self,
        a_words: Sequence[int],
        b_words: Sequence[int],
        chunk_size: Optional[int] = None,
    ) -> List[int]:
        """Products of ``a_words[i] · b_words[i]`` for every ``i``, in order.

        The streams may be arbitrarily long; they are processed in chunks of
        ``chunk_size`` pairs (default: the engine's configured chunk size).
        An empty batch returns an empty list.
        """
        if len(a_words) != len(b_words):
            raise ValueError(
                f"operand streams differ in length: {len(a_words)} vs {len(b_words)}"
            )
        chunk = chunk_size if chunk_size is not None else self.chunk_size
        if chunk < 1:
            raise ValueError("chunk_size must be at least 1")
        m = self.m
        mask = (1 << m) - 1
        results: List[int] = []
        for start in range(0, len(a_words), chunk):
            a_chunk = [word & mask for word in a_words[start:start + chunk]]
            b_chunk = [word & mask for word in b_words[start:start + chunk]]
            a_planes = pack_rows(a_chunk, m)
            b_planes = pack_rows(b_chunk, m)
            planes = (a_planes, b_planes)
            inputs = [planes[operand][bit] for operand, bit in self._input_sources]
            outputs = self.compiled.evaluate(inputs)
            product_planes = [outputs[index] for index in self._output_order]
            results.extend(unpack_planes(product_planes, m, len(a_chunk)))
        return results

    def describe(self) -> str:
        """One-line summary used by the CLI."""
        compiled = self.compiled
        label = self.method or compiled.name or "netlist"
        return (
            f"engine[{compiled.mode}] {label} GF(2^{self.m}): "
            f"{compiled.and_count} AND, {compiled.xor_count} XOR, "
            f"{compiled.level_count} levels, chunk {self.chunk_size}"
        )


#: Engines keyed by (method, modulus, mode) — the hot path of `engine_for`.
_ENGINE_CACHE = LRUCache(maxsize=16, name="engine.compiled")

#: Engines for caller-owned netlists, dropped when the netlist is collected.
_NETLIST_ENGINES: "weakref.WeakKeyDictionary[Netlist, Dict[Tuple[int, str], Engine]]" = (
    weakref.WeakKeyDictionary()
)
_NETLIST_LOCK = threading.RLock()


def engine_for(method: str, modulus: int, *, mode: str = "exec", verify: bool = True) -> Engine:
    """A cached :class:`Engine` for the given construction and modulus.

    The multiplier circuit is obtained through the process-wide
    :func:`repro.multipliers.cache.cached_multiplier`, so neither the SiTi
    splitting derivation nor the formal verification nor the compilation is
    repeated for the same ``(method, modulus, mode)`` triple.
    """
    # Resolve the multiplier before consulting the engine cache: a cached
    # engine must not short-circuit the verify upgrade a verify=True caller
    # is entitled to when the circuit was first generated unverified.
    multiplier = cached_multiplier(method, modulus, verify=verify)
    return _ENGINE_CACHE.get_or_create(
        (method, modulus, mode), lambda: Engine(multiplier, mode=mode)
    )


def engine_for_netlist(netlist: Netlist, m: int, mode: str = "exec") -> Engine:
    """A cached :class:`Engine` wrapping an existing netlist object.

    Entries are held weakly: once the caller drops the netlist, the engine
    is collected with it.  Used by the simulation convenience helpers and
    :func:`repro.netlist.verify.verify_by_simulation`.
    """
    with _NETLIST_LOCK:
        per_netlist = _NETLIST_ENGINES.get(netlist)
        if per_netlist is None:
            per_netlist = {}
            _NETLIST_ENGINES[netlist] = per_netlist
        engine = per_netlist.get((m, mode))
        if engine is None:
            engine = Engine(netlist=netlist, m=m, mode=mode)
            per_netlist[(m, mode)] = engine
        return engine
