"""Deprecated shim — the caches moved to their domain homes in PR 2/PR 4.

* :class:`~repro.pipeline.store.LRUCache` and
  :class:`~repro.pipeline.store.CacheInfo` live in
  :mod:`repro.pipeline.store` (the generic caching layer);
* :class:`~repro.multipliers.cache.MultiplierCache`,
  :func:`~repro.multipliers.cache.cached_multiplier` and
  :func:`~repro.multipliers.cache.default_multiplier_cache` live in
  :mod:`repro.multipliers.cache` (the multiplier-specific policy).

Importing this module keeps working but emits a :class:`DeprecationWarning`;
update imports to the new locations.  Nothing inside the library imports
this module any more.
"""

from __future__ import annotations

import warnings

from ..multipliers.cache import (
    MultiplierCache,
    cached_multiplier,
    default_multiplier_cache,
)
from ..pipeline.store import CacheInfo, LRUCache

__all__ = [
    "CacheInfo",
    "LRUCache",
    "MultiplierCache",
    "cached_multiplier",
    "default_multiplier_cache",
]

warnings.warn(
    "repro.engine.cache is deprecated: import LRUCache/CacheInfo from "
    "repro.pipeline.store and MultiplierCache/cached_multiplier/"
    "default_multiplier_cache from repro.multipliers.cache",
    DeprecationWarning,
    stacklevel=2,
)
