"""Thread-safe LRU caches for generated multipliers and compiled engines.

Generating a multiplier re-derives the S_i/T_i splitting of the field and
formally re-verifies the circuit — ~100 ms for GF(2^163) and growing
quadratically with m.  Compiling its netlist to a straight-line evaluator
costs another second.  Every path that repeatedly asks for the same
``(method, modulus)`` pair (the CLI, the comparison harness, the benchmark
suite, batch services) therefore goes through the caches in this module
instead of calling the generators directly.

* :class:`~repro.pipeline.store.LRUCache` — the generic thread-safe LRU
  building block, shared with the sweep pipeline's artifact layer
  (:mod:`repro.pipeline.store`) and re-exported here for compatibility.
* :class:`MultiplierCache` — :class:`~repro.multipliers.base.GeneratedMultiplier`
  objects keyed by ``(method, modulus)``.  Verification state is tracked per
  entry: a multiplier first generated with ``verify=False`` is verified (at
  most once) when a caller later requests a verified instance, so identical
  circuits are never formally verified twice in one process.
* :func:`cached_multiplier` / :func:`default_multiplier_cache` — the
  process-wide default instance used by the registry and the CLI.

Cached multipliers are shared objects: callers must treat the netlist as
immutable (the synthesis flow already does — restructuring builds new
netlists).
"""

from __future__ import annotations

import threading

from ..pipeline.store import CacheInfo, LRUCache

__all__ = [
    "CacheInfo",
    "LRUCache",
    "MultiplierCache",
    "cached_multiplier",
    "default_multiplier_cache",
]


class _MultiplierEntry:
    """A cached multiplier plus whether it has been formally verified yet."""

    __slots__ = ("multiplier", "verified")

    def __init__(self, multiplier, verified: bool) -> None:
        self.multiplier = multiplier
        self.verified = verified


class MultiplierCache:
    """LRU cache of generated multipliers keyed by ``(method, modulus)``.

    The key deliberately excludes the ``verify`` flag: the circuit is
    identical either way, so a verified and an unverified request share one
    entry and verification is upgraded in place at most once.
    """

    def __init__(self, maxsize: int = 32) -> None:
        self._cache = LRUCache(maxsize=maxsize)
        self._lock = threading.RLock()

    def get(self, method: str, modulus: int, verify: bool = True):
        """The cached (or freshly generated) multiplier for ``(method, modulus)``.

        When ``verify`` is true the returned multiplier is guaranteed to have
        been formally verified against its product specification — either at
        generation time or by an on-demand upgrade of a cached unverified
        entry.
        """
        from ..multipliers.registry import get_generator

        def build() -> _MultiplierEntry:
            multiplier = get_generator(method).generate(modulus, verify=verify)
            return _MultiplierEntry(multiplier, verified=verify)

        entry = self._cache.get_or_create((method, modulus), build)
        if verify and not entry.verified:
            with self._lock:
                if not entry.verified:
                    from ..netlist.verify import verify_netlist

                    report = verify_netlist(entry.multiplier.netlist, entry.multiplier.spec)
                    if not report:
                        raise RuntimeError(
                            f"cached {method} multiplier failed verification: {report.summary()}"
                        )
                    entry.verified = True
        return entry.multiplier

    def is_verified(self, method: str, modulus: int) -> bool:
        """Whether the cached entry (if any) has been formally verified."""
        entry = self._cache.peek((method, modulus))
        return bool(entry and entry.verified)

    def __contains__(self, key) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached multipliers and reset statistics."""
        self._cache.clear()

    def info(self) -> CacheInfo:
        """Hit/miss/eviction counters of the underlying LRU."""
        return self._cache.info()


#: Process-wide default cache used by the registry, CLI and benchmarks.
_DEFAULT_CACHE = MultiplierCache(maxsize=32)


def default_multiplier_cache() -> MultiplierCache:
    """The process-wide :class:`MultiplierCache` shared by library entry points."""
    return _DEFAULT_CACHE


def cached_multiplier(method: str, modulus: int, verify: bool = True):
    """Fetch a multiplier through the process-wide cache (generating on miss)."""
    return _DEFAULT_CACHE.get(method, modulus, verify=verify)
