"""Thread-safe LRU caches for generated multipliers and compiled engines.

Generating a multiplier re-derives the S_i/T_i splitting of the field and
formally re-verifies the circuit — ~100 ms for GF(2^163) and growing
quadratically with m.  Compiling its netlist to a straight-line evaluator
costs another second.  Every path that repeatedly asks for the same
``(method, modulus)`` pair (the CLI, the comparison harness, the benchmark
suite, batch services) therefore goes through the caches in this module
instead of calling the generators directly.

* :class:`LRUCache` — a small generic thread-safe LRU used as the building
  block for both caches below.
* :class:`MultiplierCache` — :class:`~repro.multipliers.base.GeneratedMultiplier`
  objects keyed by ``(method, modulus)``.  Verification state is tracked per
  entry: a multiplier first generated with ``verify=False`` is verified (at
  most once) when a caller later requests a verified instance, so identical
  circuits are never formally verified twice in one process.
* :func:`cached_multiplier` / :func:`default_multiplier_cache` — the
  process-wide default instance used by the registry and the CLI.

Cached multipliers are shared objects: callers must treat the netlist as
immutable (the synthesis flow already does — restructuring builds new
netlists).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, NamedTuple, Optional

__all__ = [
    "CacheInfo",
    "LRUCache",
    "MultiplierCache",
    "cached_multiplier",
    "default_multiplier_cache",
]


class CacheInfo(NamedTuple):
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int


class LRUCache:
    """A bounded mapping with least-recently-used eviction and a lock.

    ``get_or_create`` is the primary interface: it runs the factory under the
    cache lock, so concurrent requests for the same key never duplicate the
    (potentially expensive) construction work.  Pure-Python multiplier
    generation holds the GIL anyway, so serializing builders costs nothing.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_create(self, key: Hashable, factory: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building it with ``factory`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            value = factory()
            self._entries[key] = value
            if len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def peek(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (or None) without touching LRU order or stats."""
        with self._lock:
            return self._entries.get(key)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the statistics counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def info(self) -> CacheInfo:
        """Hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return CacheInfo(self._hits, self._misses, self._evictions, len(self._entries), self._maxsize)


class _MultiplierEntry:
    """A cached multiplier plus whether it has been formally verified yet."""

    __slots__ = ("multiplier", "verified")

    def __init__(self, multiplier, verified: bool) -> None:
        self.multiplier = multiplier
        self.verified = verified


class MultiplierCache:
    """LRU cache of generated multipliers keyed by ``(method, modulus)``.

    The key deliberately excludes the ``verify`` flag: the circuit is
    identical either way, so a verified and an unverified request share one
    entry and verification is upgraded in place at most once.
    """

    def __init__(self, maxsize: int = 32) -> None:
        self._cache = LRUCache(maxsize=maxsize)
        self._lock = threading.RLock()

    def get(self, method: str, modulus: int, verify: bool = True):
        """The cached (or freshly generated) multiplier for ``(method, modulus)``.

        When ``verify`` is true the returned multiplier is guaranteed to have
        been formally verified against its product specification — either at
        generation time or by an on-demand upgrade of a cached unverified
        entry.
        """
        from ..multipliers.registry import get_generator

        def build() -> _MultiplierEntry:
            multiplier = get_generator(method).generate(modulus, verify=verify)
            return _MultiplierEntry(multiplier, verified=verify)

        entry = self._cache.get_or_create((method, modulus), build)
        if verify and not entry.verified:
            with self._lock:
                if not entry.verified:
                    from ..netlist.verify import verify_netlist

                    report = verify_netlist(entry.multiplier.netlist, entry.multiplier.spec)
                    if not report:
                        raise RuntimeError(
                            f"cached {method} multiplier failed verification: {report.summary()}"
                        )
                    entry.verified = True
        return entry.multiplier

    def is_verified(self, method: str, modulus: int) -> bool:
        """Whether the cached entry (if any) has been formally verified."""
        entry = self._cache.peek((method, modulus))
        return bool(entry and entry.verified)

    def __contains__(self, key) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached multipliers and reset statistics."""
        self._cache.clear()

    def info(self) -> CacheInfo:
        """Hit/miss/eviction counters of the underlying LRU."""
        return self._cache.info()


#: Process-wide default cache used by the registry, CLI and benchmarks.
_DEFAULT_CACHE = MultiplierCache(maxsize=32)


def default_multiplier_cache() -> MultiplierCache:
    """The process-wide :class:`MultiplierCache` shared by library entry points."""
    return _DEFAULT_CACHE


def cached_multiplier(method: str, modulus: int, verify: bool = True):
    """Fetch a multiplier through the process-wide cache (generating on miss)."""
    return _DEFAULT_CACHE.get(method, modulus, verify=verify)
