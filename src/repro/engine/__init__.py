"""Compiled batch-multiplication engine with multiplier caching.

This package is the production execution layer on top of the paper
reproduction: where :mod:`repro.netlist.simulate` interprets a netlist node
by node (the readable reference), :mod:`repro.engine` compiles the circuit
once and pushes bit-packed operand batches through it at word speed.

Layers, bottom up:

* :mod:`repro.engine.bitpack` — word-level bit-matrix transposition between
  operand row words and per-input-bit plane words;
* :mod:`repro.engine.compiler` — levelization of a netlist into flat
  op/fanin schedules and generated straight-line Python evaluators;
* :mod:`repro.engine.engine` — the :class:`Engine` batch API
  (``multiply_batch``) and the cached :func:`engine_for` /
  :func:`engine_for_netlist` factories.

Multiplier caching lives in :mod:`repro.multipliers.cache` and the generic
LRU in :mod:`repro.pipeline.store`; both are re-exported here for
convenience.

Quick start
-----------
>>> from repro.engine import engine_for
>>> from repro.galois import type_ii_pentanomial
>>> engine = engine_for("thiswork", type_ii_pentanomial(8, 2))
>>> engine.multiply_batch([0x57, 0x01], [0x83, 0x2a])
[49, 42]
"""

from ..multipliers.cache import (
    MultiplierCache,
    cached_multiplier,
    default_multiplier_cache,
)
from ..pipeline.store import CacheInfo, LRUCache
from .bitpack import block_size_for, pack_rows, transpose_square, unpack_planes
from .compiler import CompiledNetlist, compile_netlist
from .engine import Engine, engine_for, engine_for_netlist

__all__ = [
    "block_size_for",
    "pack_rows",
    "transpose_square",
    "unpack_planes",
    "CacheInfo",
    "LRUCache",
    "MultiplierCache",
    "cached_multiplier",
    "default_multiplier_cache",
    "CompiledNetlist",
    "compile_netlist",
    "Engine",
    "engine_for",
    "engine_for_netlist",
]
