"""Netlist compiler: levelized flat schedules and generated Python evaluators.

The interpreted simulator (:func:`repro.netlist.simulate.simulate`) walks the
:class:`~repro.netlist.netlist.Netlist` node by node, paying a method call,
a bounds check and a tuple construction per gate.  For the 55k-gate GF(2^163)
multiplier that dispatch overhead is an order of magnitude more expensive
than the bitwise work itself.  This module removes it in two stages:

``mode="arrays"``
    The live cone of the netlist is *levelized* — nodes are renumbered
    densely in level order — and flattened into one schedule list of
    ``(node, fanin0, fanin1, is_and)`` tuples.  Evaluation is a single tight
    Python loop with list indexing only: no method calls, no per-node dict
    lookups.  Compiles in microseconds; evaluates ~3× faster than the
    interpreted walk.

``mode="exec"``
    The schedule is further emitted as the source of a straight-line Python
    function (one ``v123 = v45 ^ v67`` statement per gate), compiled once
    with :func:`compile`/``exec``.  Each gate then costs exactly one bytecode
    binary operation on the packed words — another ~5-10× over the flat
    loop.  Compilation takes ~1 s per 50k gates, which the engine-level
    caches amortize away.

Both modes evaluate *packed* words: every value is an arbitrary-precision
integer whose bit ``p`` belongs to test vector ``p``, so one call evaluates
as many operand pairs as the words are wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING, Tuple

from ..netlist.netlist import OP_AND, OP_CONST0, OP_INPUT, OP_XOR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist

__all__ = ["CompiledNetlist", "compile_netlist"]

#: Supported compilation modes.
MODES = ("exec", "arrays")


@dataclass
class CompiledNetlist:
    """A netlist lowered to a flat, dispatch-free evaluator.

    Instances are produced by :func:`compile_netlist`.  ``input_names`` fixes
    the positional order of :meth:`evaluate`'s argument; ``output_names`` the
    order of its result.  The original netlist is not referenced after
    compilation, so compiled objects are safe to share across threads (they
    are immutable after construction).
    """

    name: str
    mode: str
    input_names: Tuple[str, ...]
    output_names: Tuple[str, ...]
    node_count: int
    gate_count: int
    and_count: int
    xor_count: int
    level_count: int
    _input_slots: List[int] = field(repr=False, default_factory=list)
    _schedule: List[Tuple[int, int, int, bool]] = field(repr=False, default_factory=list)
    _output_nodes: List[int] = field(repr=False, default_factory=list)
    _function: Optional[Callable] = field(repr=False, default=None)
    _source: Optional[str] = field(repr=False, default=None)

    @property
    def source(self) -> Optional[str]:
        """Generated Python source (``exec`` mode only, for inspection)."""
        return self._source

    def evaluate(self, input_words: Sequence[int]) -> List[int]:
        """Run the circuit on packed words, one per entry of ``input_names``.

        Bit ``p`` of every input word belongs to test vector ``p``; the
        returned list holds one packed word per entry of ``output_names``.
        """
        if len(input_words) != len(self.input_names):
            raise ValueError(
                f"expected {len(self.input_names)} input words, got {len(input_words)}"
            )
        if self._function is not None:
            return list(self._function(input_words))
        values = [0] * self.node_count
        for slot, node in enumerate(self._input_slots):
            if node >= 0:
                values[node] = input_words[slot]
        for node, fanin0, fanin1, is_and in self._schedule:
            if is_and:
                values[node] = values[fanin0] & values[fanin1]
            else:
                values[node] = values[fanin0] ^ values[fanin1]
        return [values[node] for node in self._output_nodes]


def _levelize(netlist: Netlist) -> Tuple[List[int], Dict[int, int], int]:
    """Live nodes sorted by logic level, their dense renumbering, and #levels."""
    live = netlist.live_nodes()
    level: Dict[int, int] = {}
    for node in live:
        if netlist.op(node) in (OP_AND, OP_XOR):
            fanin0, fanin1 = netlist.fanins(node)
            level[node] = 1 + max(level.get(fanin0, 0), level.get(fanin1, 0))
        else:
            level[node] = 0
    ordered = sorted(live, key=lambda node: level[node])
    renumber = {node: index for index, node in enumerate(ordered)}
    level_count = (max(level.values()) + 1) if level else 0
    return ordered, renumber, level_count


def _generate_source(
    netlist: Netlist, ordered: Sequence[int], input_slot_of: Dict[int, int]
) -> str:
    """Emit the straight-line evaluator function for ``exec`` mode."""
    lines = ["def _netlist_eval(inputs):"]
    for node in ordered:
        op = netlist.op(node)
        if op == OP_INPUT:
            lines.append(f"    v{node} = inputs[{input_slot_of[node]}]")
        elif op == OP_CONST0:
            lines.append(f"    v{node} = 0")
        else:
            fanin0, fanin1 = netlist.fanins(node)
            symbol = "&" if op == OP_AND else "^"
            lines.append(f"    v{node} = v{fanin0} {symbol} v{fanin1}")
    returns = ", ".join(f"v{node}" for _, node in netlist.outputs)
    lines.append(f"    return ({returns},)")
    return "\n".join(lines)


def compile_netlist(netlist: Netlist, mode: str = "exec") -> CompiledNetlist:
    """Compile a netlist into a :class:`CompiledNetlist` evaluator.

    ``mode`` selects ``"exec"`` (generated straight-line Python function,
    fastest, ~1 s compile per 50k gates) or ``"arrays"`` (flat levelized
    schedule, instant compile).  Only the live cone of the circuit — nodes
    reaching at least one output — is compiled.
    """
    if mode not in MODES:
        raise ValueError(f"unknown compile mode {mode!r}; expected one of {MODES}")
    if not netlist.outputs:
        raise ValueError("cannot compile a netlist without outputs")
    ordered, renumber, level_count = _levelize(netlist)
    input_names = tuple(netlist.inputs)
    input_slot_of = {
        netlist.input_node(name): slot
        for slot, name in enumerate(input_names)
        if netlist.input_node(name) in renumber
    }
    and_count = sum(1 for node in ordered if netlist.op(node) == OP_AND)
    xor_count = sum(1 for node in ordered if netlist.op(node) == OP_XOR)
    compiled = CompiledNetlist(
        name=netlist.name,
        mode=mode,
        input_names=input_names,
        output_names=tuple(name for name, _ in netlist.outputs),
        node_count=len(ordered),
        gate_count=and_count + xor_count,
        and_count=and_count,
        xor_count=xor_count,
        level_count=level_count,
    )
    if mode == "exec":
        source = _generate_source(netlist, ordered, input_slot_of)
        namespace: Dict[str, object] = {}
        exec(compile(source, f"<compiled netlist {netlist.name or 'anonymous'}>", "exec"), namespace)
        compiled._function = namespace["_netlist_eval"]
        compiled._source = source
        return compiled
    # arrays mode: dense renumbered schedule.
    input_slots = [-1] * len(input_names)
    for node, slot in input_slot_of.items():
        input_slots[slot] = renumber[node]
    schedule: List[Tuple[int, int, int, bool]] = []
    for node in ordered:
        op = netlist.op(node)
        if op in (OP_AND, OP_XOR):
            fanin0, fanin1 = netlist.fanins(node)
            schedule.append((renumber[node], renumber[fanin0], renumber[fanin1], op == OP_AND))
    compiled._input_slots = input_slots
    compiled._schedule = schedule
    compiled._output_nodes = [renumber[node] for _, node in netlist.outputs]
    return compiled
