"""Static timing analysis of mapped LUT networks.

The paper reports the post-place-and-route combinational critical path of
each multiplier (pad to pad, in nanoseconds).  This module computes the
equivalent figure for our mapped networks with the delay model of
:class:`~repro.synth.device.DeviceModel`:

* every primary input starts at the input-buffer delay,
* traversing a net adds a routing delay that grows with the driving signal's
  fanout and with the overall design size (congestion),
* every LUT adds its propagation delay,
* the slowest output additionally pays the output-buffer delay.

The result object keeps the whole arrival-time map plus the critical path so
tests can assert monotonicity properties (e.g. more LUT levels or higher
fanout can never make the model faster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING


if TYPE_CHECKING:  # pragma: no cover - typing only
    from .device import DeviceModel
    from .lutmap import MappedNetwork

__all__ = ["TimingResult", "analyze_timing"]


@dataclass
class TimingResult:
    """Critical-path report of a mapped network."""

    critical_path_ns: float
    arrival_ns: Dict[int, float]
    critical_output: str
    critical_path_nodes: List[int] = field(default_factory=list)
    logic_levels: int = 0

    def summary(self) -> str:
        """One-line report, e.g. ``9.84 ns (4 LUT levels, critical output c2)``."""
        return (
            f"{self.critical_path_ns:.2f} ns ({self.logic_levels} LUT levels, "
            f"critical output {self.critical_output})"
        )


def analyze_timing(mapped: MappedNetwork, device: DeviceModel) -> TimingResult:
    """Compute the pad-to-pad critical path of a mapped network."""
    design_luts = max(1, mapped.lut_count)
    fanout = mapped.signal_fanouts()
    arrival: Dict[int, float] = {}
    predecessor: Dict[int, int] = {}

    source = mapped.source
    for name in source.inputs:
        node = source.input_node(name)
        arrival[node] = device.ibuf_delay_ns
    # Constant nodes (if any survive) arrive at time zero.
    for node in source.nodes():
        if source.op(node) == 1 and node not in arrival:  # OP_CONST0
            arrival[node] = 0.0

    for lut in sorted(mapped.luts, key=lambda lut: (lut.level, lut.root)):
        best_time = 0.0
        best_leaf = -1
        for leaf in lut.leaves:
            leaf_arrival = arrival.get(leaf, device.ibuf_delay_ns)
            edge = leaf_arrival + device.net_delay_ns(fanout.get(leaf, 1), design_luts)
            if edge > best_time:
                best_time = edge
                best_leaf = leaf
        arrival[lut.root] = best_time + device.lut_delay_ns
        predecessor[lut.root] = best_leaf

    critical_output = ""
    critical_node = -1
    worst = 0.0
    for name, node in mapped.outputs:
        node_arrival = arrival.get(node, device.ibuf_delay_ns)
        total = node_arrival + device.net_delay_ns(fanout.get(node, 1), design_luts) + device.obuf_delay_ns
        if total >= worst:
            worst = total
            critical_output = name
            critical_node = node

    # Trace the critical path back to a primary input for reporting.
    path: List[int] = []
    node = critical_node
    while node in predecessor and node >= 0:
        path.append(node)
        node = predecessor[node]
    if node >= 0:
        path.append(node)
    path.reverse()
    logic_levels = mapped.lut_of_root[critical_node].level if critical_node in mapped.lut_of_root else 0
    return TimingResult(
        critical_path_ns=worst,
        arrival_ns=arrival,
        critical_output=critical_output,
        critical_path_nodes=path,
        logic_levels=logic_levels,
    )
