"""XOR network restructuring — the freedom the paper hands to the synthesiser.

The proposed multiplier (Table IV) writes every output as a flat,
un-parenthesized XOR of split terms precisely so that the synthesis tool can
choose the association and share logic.  This module implements that freedom
for our Python flow:

* :func:`collect_xor_leaves` flattens the XOR cone of each output down to
  its *leaf signals* — AND gates, primary inputs and any XOR node that is
  shared with another cone (fanout > 1).  Shared signals are kept as leaves
  so sharing decided by the generator survives restructuring; duplicated
  leaves cancel in pairs (GF(2)).
* :func:`restructure` rebuilds every output cone as a balanced XOR tree over
  its leaves (minimum depth), optionally after the cross-output sharing pass
  of :mod:`repro.synth.xor_cse`.

Netlists whose generator set ``restructure_allowed = False`` (the
parenthesized method of ref [7] and the other fixed-structure baselines) are
passed through untouched by the main flow, modelling synthesis that honours
the hand-written association.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Tuple

from ..netlist.netlist import OP_AND, OP_CONST0, OP_INPUT, OP_XOR, Netlist

__all__ = ["collect_xor_leaves", "copy_cone", "depth_aware_xor", "rebuild_netlist", "restructure"]


def collect_xor_leaves(netlist: Netlist, root: int, fanout: List[int]) -> List[int]:
    """Flatten the XOR cone rooted at ``root`` into its leaf signals.

    Descends through XOR nodes that are private to this cone (fanout 1); any
    other node (AND, input, constant, or an XOR shared with another cone)
    becomes a leaf.  Leaves appearing an even number of times cancel.
    """
    parity: Dict[int, int] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        op = netlist.op(node)
        if op == OP_XOR and (node == root or fanout[node] <= 1):
            fanin0, fanin1 = netlist.fanins(node)
            stack.append(fanin0)
            stack.append(fanin1)
        else:
            parity[node] = parity.get(node, 0) ^ 1
    return sorted(node for node, odd in parity.items() if odd)


def copy_cone(source: Netlist, target: Netlist, node: int, mapping: Dict[int, int]) -> int:
    """Recursively copy ``node`` (and its cone) from ``source`` into ``target``.

    ``mapping`` memoises already-copied nodes so shared logic stays shared.
    """
    if node in mapping:
        return mapping[node]
    op = source.op(node)
    if op == OP_INPUT:
        new_node = target.add_input(source.input_name(node))
    elif op == OP_CONST0:
        new_node = target.const0()
    else:
        fanin0, fanin1 = source.fanins(node)
        new_fanin0 = copy_cone(source, target, fanin0, mapping)
        new_fanin1 = copy_cone(source, target, fanin1, mapping)
        new_node = target.and2(new_fanin0, new_fanin1) if op == OP_AND else target.xor2(new_fanin0, new_fanin1)
    mapping[node] = new_node
    return new_node


def depth_aware_xor(target: Netlist, nodes: List[int], levels: List[int]) -> int:
    """XOR a list of nodes, always combining the two shallowest operands first.

    This is the Huffman-style association that minimises the depth of the
    resulting XOR tree when the operands themselves sit at different logic
    levels (shared split terms of different sizes, AND gates, CSE signals).
    ``levels`` is the per-node level table of ``target`` and is extended in
    place for the newly created gates.
    """
    if not nodes:
        return target.const0()
    counter = itertools.count()
    heap = [(levels[node], next(counter), node) for node in nodes]
    heapq.heapify(heap)
    while len(heap) > 1:
        level_a, _, node_a = heapq.heappop(heap)
        level_b, _, node_b = heapq.heappop(heap)
        combined = target.xor2(node_a, node_b)
        while len(levels) < target.node_count:
            levels.append(0)
        combined_level = max(level_a, level_b) + 1
        levels[combined] = combined_level
        heapq.heappush(heap, (combined_level, next(counter), combined))
    return heap[0][2]


def rebuild_netlist(
    source: Netlist,
    output_leaves: Dict[str, List[int]],
    extra_definitions: Optional[List[Tuple[int, List[int]]]] = None,
) -> Netlist:
    """Build a new netlist with every output a balanced XOR over its leaves.

    ``output_leaves`` maps output names to leaf node ids *of the source
    netlist*.  ``extra_definitions`` optionally defines intermediate shared
    signals created by the CSE pass: a list of ``(virtual_id, leaf_ids)``
    pairs, processed in order, whose virtual ids may then appear as leaves of
    later definitions or of outputs.

    Each output (and each shared definition) is rebuilt with the depth-aware
    association of :func:`depth_aware_xor`, so the freedom granted by the
    flat form is used both for area (sharing) and for delay (balancing).
    """
    target = Netlist(name=source.name + "_resyn", attributes=dict(source.attributes))
    for name in source.inputs:
        target.add_input(name)
    mapping: Dict[int, int] = {}
    levels: List[int] = []

    def refresh_levels() -> None:
        # Recompute levels lazily after copying cones (copied gates get exact levels).
        nonlocal levels
        levels = target.levels()

    def materialise(leaf: int) -> int:
        if leaf in mapping:
            return mapping[leaf]
        node = copy_cone(source, target, leaf, mapping)
        return node

    for virtual_id, leaf_ids in extra_definitions or []:
        nodes = [materialise(leaf) for leaf in leaf_ids]
        refresh_levels()
        mapping[virtual_id] = depth_aware_xor(target, nodes, levels)

    for name, _ in source.outputs:
        leaves = output_leaves[name]
        nodes = [materialise(leaf) for leaf in leaves]
        refresh_levels()
        target.add_output(name, depth_aware_xor(target, nodes, levels))
    return target


def restructure(netlist: Netlist, share_rounds: int = 2, group_sharing: bool = True) -> Netlist:
    """Re-associate the XOR network of a restructurable netlist.

    ``group_sharing`` first extracts groups of leaves that always occur
    together (see :func:`repro.synth.xor_cse.group_by_signature`), which
    recovers the natural function-level sharing of the flat form without any
    depth penalty.  ``share_rounds`` > 0 additionally runs the greedy
    pairwise sharing pass of :mod:`repro.synth.xor_cse` on top (0 disables
    it).  Returns a new, functionally equivalent netlist.
    """
    from .xor_cse import greedy_share, group_by_signature  # local import to avoid a cycle

    fanout = netlist.fanout_counts()
    output_leaves: Dict[str, List[int]] = {}
    for name, node in netlist.outputs:
        output_leaves[name] = collect_xor_leaves(netlist, node, fanout)
    extra_definitions: List[Tuple[int, List[int]]] = []
    next_virtual = netlist.node_count
    if group_sharing:
        output_leaves, group_definitions, next_virtual = group_by_signature(
            output_leaves, first_virtual_id=next_virtual
        )
        extra_definitions.extend(group_definitions)
    if share_rounds > 0:
        output_leaves, pair_definitions = greedy_share(
            output_leaves, rounds=share_rounds, first_virtual_id=next_virtual
        )
        extra_definitions.extend(pair_definitions)
    return rebuild_netlist(netlist, output_leaves, extra_definitions)
