"""Greedy cross-output XOR sharing (common subexpression extraction).

This is the "resource sharing" half of the freedom the paper gives the
synthesis tool: when several output coefficients XOR the same two signals,
computing that pair once and reusing it saves a gate (and usually a LUT
input) in every other output.

The classical reference algorithm is Paar's greedy CSE for GF(2) matrices:
repeatedly extract the pair of operands that co-occurs in the most rows.
Re-counting after every single extraction is too slow for the m = 163 fields
of the paper (tens of thousands of candidate pairs), so :func:`greedy_share`
works in *rounds*: count all co-occurring pairs once, extract a maximal set
of non-overlapping pairs with count >= 2 in descending-count order, rewrite
the rows, repeat.  Two or three rounds recover the bulk of the sharing at a
small fraction of the cost, which is the right fidelity/runtime trade-off
for a flow whose purpose is architectural comparison.

The pass works purely on *leaf-id lists* (as produced by
:func:`repro.synth.balance.collect_xor_leaves`); newly created shared signals
get fresh "virtual" ids which :func:`repro.synth.balance.rebuild_netlist`
turns into real XOR nodes.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

__all__ = ["count_cooccurring_pairs", "group_by_signature", "greedy_share"]


def group_by_signature(
    rows: Dict[str, List[int]],
    first_virtual_id: int,
    min_group: int = 2,
) -> Tuple[Dict[str, List[int]], List[Tuple[int, List[int]]], int]:
    """Extract groups of leaves that always appear together.

    Two leaves have the same *signature* when they occur in exactly the same
    set of rows.  Every signature shared by at least two rows and containing
    at least ``min_group`` leaves becomes one shared signal computed once and
    referenced by all of those rows.  For the paper's flat multiplier this
    recovers, in a single linear pass, the natural sharing of the split terms
    belonging to the same T_i function (they always travel together through
    the reduction), without the depth penalty that chained pairwise
    extraction would introduce.

    Returns ``(new_rows, definitions, next_virtual_id)``.
    """
    signature: Dict[int, frozenset] = {}
    for name, leaves in rows.items():
        for leaf in set(leaves):
            signature.setdefault(leaf, frozenset())
    occurrences: Dict[int, set] = {leaf: set() for leaf in signature}
    for name, leaves in rows.items():
        for leaf in set(leaves):
            occurrences[leaf].add(name)
    groups: Dict[frozenset, List[int]] = {}
    for leaf, rows_with_leaf in occurrences.items():
        if len(rows_with_leaf) >= 2:
            groups.setdefault(frozenset(rows_with_leaf), []).append(leaf)

    definitions: List[Tuple[int, List[int]]] = []
    replacement: Dict[int, int] = {}
    next_id = first_virtual_id
    for rows_with_group, leaves in sorted(groups.items(), key=lambda item: sorted(item[1])):
        if len(leaves) < min_group:
            continue
        definitions.append((next_id, sorted(leaves)))
        for leaf in leaves:
            replacement[leaf] = next_id
        next_id += 1

    new_rows: Dict[str, List[int]] = {}
    for name, leaves in rows.items():
        rewritten: List[int] = []
        added: set = set()
        for leaf in leaves:
            if leaf in replacement:
                virtual = replacement[leaf]
                if virtual not in added:
                    rewritten.append(virtual)
                    added.add(virtual)
            else:
                rewritten.append(leaf)
        new_rows[name] = rewritten
    return new_rows, definitions, next_id


def count_cooccurring_pairs(rows: Dict[str, List[int]]) -> Counter:
    """Count, over all rows, how often each unordered pair of leaves co-occurs."""
    counts: Counter = Counter()
    for leaves in rows.values():
        ordered = sorted(set(leaves))
        for index, first in enumerate(ordered):
            for second in ordered[index + 1:]:
                counts[(first, second)] += 1
    return counts


def greedy_share(
    rows: Dict[str, List[int]],
    rounds: int = 2,
    first_virtual_id: int = 1 << 40,
    min_count: int = 2,
) -> Tuple[Dict[str, List[int]], List[Tuple[int, List[int]]]]:
    """Extract shared XOR pairs from the given rows.

    Parameters
    ----------
    rows:
        Mapping from output name to its list of leaf ids.
    rounds:
        Number of count-extract-rewrite rounds (0 disables sharing).
    first_virtual_id:
        Ids assigned to newly created shared signals start here (must not
        collide with existing node ids).
    min_count:
        Only pairs co-occurring in at least this many rows are extracted.

    Returns
    -------
    (new_rows, definitions):
        ``new_rows`` has the same keys with pairs replaced by virtual ids;
        ``definitions`` lists ``(virtual_id, [leaf_a, leaf_b])`` in creation
        order (later definitions may reference earlier virtual ids).
    """
    current = {name: list(leaves) for name, leaves in rows.items()}
    definitions: List[Tuple[int, List[int]]] = []
    next_id = first_virtual_id
    for _ in range(max(0, rounds)):
        counts = count_cooccurring_pairs(current)
        if not counts:
            break
        used: set = set()
        chosen: List[Tuple[int, int]] = []
        for (first, second), count in counts.most_common():
            if count < min_count:
                break
            if first in used or second in used:
                continue
            chosen.append((first, second))
            used.add(first)
            used.add(second)
        if not chosen:
            break
        replacement: Dict[Tuple[int, int], int] = {}
        for pair in chosen:
            replacement[pair] = next_id
            definitions.append((next_id, [pair[0], pair[1]]))
            next_id += 1
        for name, leaves in current.items():
            present = set(leaves)
            new_leaves = list(leaves)
            for (first, second), virtual in replacement.items():
                if first in present and second in present:
                    new_leaves.remove(first)
                    new_leaves.remove(second)
                    new_leaves.append(virtual)
                    present.discard(first)
                    present.discard(second)
                    present.add(virtual)
            current[name] = new_leaves
    return current, definitions
