"""Priority-cut k-LUT technology mapping with area recovery.

This is the central piece of the "reconfigurable implementation" substrate:
it converts a 2-input AND/XOR netlist into a network of ``k``-input LUTs the
way an FPGA synthesis tool (the paper uses Xilinx XST) would:

1. **Cut enumeration** — for every gate, candidate cuts are formed by merging
   the priority cuts of its fanins and keeping the best few, ranked primarily
   by mapped depth and secondarily by area flow.  Because cuts are merged on
   the *given* DAG, the structure chosen by the multiplier generator directly
   constrains what the mapper can do — this is precisely the effect the paper
   studies (rigid parenthesized trees vs. free flat expressions).
2. **Area-recovering covering** — starting from the outputs, each required
   node is realised by the stored cut that adds the fewest *new* LUTs to the
   mapping, among the cuts whose depth stays within ``depth_slack`` levels of
   the node's depth-optimal arrival.  Combinational GF(2^m) multipliers are
   I/O- and routing-dominated on FPGAs (the paper's Table V delays vary by a
   few percent between methods), so trading a level of logic for area mirrors
   what the vendor flow does at its default effort.

The mapper is structural (no Boolean resynthesis), which matches XST's
behaviour on XOR-dominated datapaths and keeps the pure-Python runtime
acceptable for the m = 163 fields of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, TYPE_CHECKING, Tuple

from ..netlist.netlist import OP_AND, OP_CONST0, OP_INPUT, OP_XOR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netlist.netlist import Netlist

__all__ = ["MappedLUT", "MappedNetwork", "map_to_luts"]


@dataclass(frozen=True)
class MappedLUT:
    """One mapped LUT: a root gate implemented in terms of its cut leaves."""

    root: int
    leaves: Tuple[int, ...]
    level: int

    @property
    def input_count(self) -> int:
        """Number of distinct leaf signals (LUT inputs actually used)."""
        return len(self.leaves)


@dataclass
class MappedNetwork:
    """The result of LUT mapping: a DAG of LUTs over the original netlist's inputs."""

    source: Netlist
    luts: List[MappedLUT]
    outputs: List[Tuple[str, int]]
    lut_of_root: Dict[int, MappedLUT] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.lut_of_root:
            self.lut_of_root = {lut.root: lut for lut in self.luts}

    @property
    def lut_count(self) -> int:
        """Number of LUTs in the mapping (the paper's "LUTs" column)."""
        return len(self.luts)

    @property
    def depth(self) -> int:
        """LUT levels on the longest path."""
        return max((lut.level for lut in self.luts), default=0)

    def signal_fanouts(self) -> Dict[int, int]:
        """Fanout of every signal (primary inputs and LUT outputs) in the mapped network."""
        fanout: Dict[int, int] = {}
        for lut in self.luts:
            for leaf in lut.leaves:
                fanout[leaf] = fanout.get(leaf, 0) + 1
        for _, node in self.outputs:
            fanout[node] = fanout.get(node, 0) + 1
        return fanout

    def lut_input_histogram(self) -> Dict[int, int]:
        """How many LUTs use 1, 2, ... k inputs (utilisation quality metric)."""
        histogram: Dict[int, int] = {}
        for lut in self.luts:
            histogram[lut.input_count] = histogram.get(lut.input_count, 0) + 1
        return dict(sorted(histogram.items()))


def _cut_depth(cut: FrozenSet[int], arrival: List[int]) -> int:
    return 1 + max((arrival[leaf] for leaf in cut), default=0)


def _cut_flow(cut: FrozenSet[int], area_flow: List[float]) -> float:
    return 1.0 + sum(area_flow[leaf] for leaf in cut)


def map_to_luts(
    netlist: Netlist,
    lut_inputs: int = 6,
    cut_limit: int = 8,
    depth_slack: int = 1,
) -> MappedNetwork:
    """Map a netlist to ``lut_inputs``-input LUTs with priority cuts.

    Parameters
    ----------
    netlist:
        The AND/XOR netlist to map.
    lut_inputs:
        Maximum cut size ``k`` (6 for Artix-7).
    cut_limit:
        Number of priority cuts kept per node (larger = better quality,
        slower mapping).
    depth_slack:
        Global depth slack: the covering may make the mapped network up to
        this many LUT levels deeper than the depth-optimal mapping when that
        saves area (0 = pure depth-oriented mapping).
    """
    if lut_inputs < 2:
        raise ValueError("LUTs need at least 2 inputs")
    if cut_limit < 1:
        raise ValueError("cut_limit must be at least 1")
    if depth_slack < 0:
        raise ValueError("depth_slack must be non-negative")

    node_count = netlist.node_count
    fanout = netlist.fanout_counts()
    cuts: List[List[FrozenSet[int]]] = [[] for _ in range(node_count)]
    arrival: List[int] = [0] * node_count
    area_flow: List[float] = [0.0] * node_count

    live = set(netlist.live_nodes())
    # ------------------------------------------------------- cut enumeration
    for node in netlist.nodes():
        if node not in live:
            continue
        op = netlist.op(node)
        if op in (OP_INPUT, OP_CONST0):
            cuts[node] = [frozenset({node})]
            arrival[node] = 0
            area_flow[node] = 0.0
            continue
        fanin0, fanin1 = netlist.fanins(node)
        candidates: Set[FrozenSet[int]] = set()
        for cut0 in cuts[fanin0]:
            for cut1 in cuts[fanin1]:
                union = cut0 | cut1
                if len(union) <= lut_inputs:
                    candidates.add(union)
        if not candidates:
            # Both fanin cut lists were pruned too hard; the immediate-fanin
            # cut is always feasible for a 2-input gate.
            candidates.add(frozenset({fanin0, fanin1}))
        by_depth = sorted(
            candidates,
            key=lambda cut: (_cut_depth(cut, arrival), _cut_flow(cut, area_flow), len(cut)),
        )
        by_flow = sorted(
            candidates,
            key=lambda cut: (_cut_flow(cut, area_flow), _cut_depth(cut, arrival), len(cut)),
        )
        kept: List[FrozenSet[int]] = []
        for cut in by_depth[: max(1, cut_limit - 2)] + by_flow[:2]:
            if cut not in kept:
                kept.append(cut)
        best = kept[0]
        arrival[node] = _cut_depth(best, arrival)
        area_flow[node] = _cut_flow(best, area_flow) / max(1, fanout[node])
        # The trivial cut lets fanout gates treat this node as a leaf signal.
        cuts[node] = kept + [frozenset({node})]

    # --------------------------------------------------- area-recovery cover
    # Covering runs over decreasing node id (reverse topological order), so a
    # node's depth budget is fully known — inherited from all of its mapped
    # consumers — before its own cut is chosen.  A cut is only admissible if
    # every leaf can still be implemented within the remaining budget
    # (arrival[leaf] <= budget - 1), which bounds the final mapped depth by
    # the depth-optimal value plus ``depth_slack``.
    selected: Dict[int, FrozenSet[int]] = {}
    needed: Set[int] = set()
    budget: Dict[int, int] = {}
    optimal_depth = 0
    for _, node in netlist.outputs:
        if netlist.op(node) in (OP_AND, OP_XOR):
            needed.add(node)
            optimal_depth = max(optimal_depth, arrival[node])
    for _, node in netlist.outputs:
        if node in needed:
            budget[node] = max(arrival[node], optimal_depth) + depth_slack

    for node in range(node_count - 1, -1, -1):
        if node not in needed or netlist.op(node) not in (OP_AND, OP_XOR):
            continue
        node_budget = budget.get(node, arrival[node] + depth_slack)
        best_choice: Optional[FrozenSet[int]] = None
        best_cost: Optional[Tuple[int, int, int]] = None
        for cut in cuts[node]:
            if len(cut) == 1 and node in cut:
                continue  # trivial cut cannot implement the node
            depth = _cut_depth(cut, arrival)
            if depth > node_budget:
                continue
            new_gates = sum(
                1
                for leaf in cut
                if leaf not in needed and netlist.op(leaf) in (OP_AND, OP_XOR)
            )
            cost = (new_gates, len(cut), depth)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_choice = cut
        if best_choice is None:  # pragma: no cover - the depth-optimal cut is always admissible
            best_choice = cuts[node][0]
        selected[node] = best_choice
        for leaf in best_choice:
            if netlist.op(leaf) in (OP_AND, OP_XOR):
                needed.add(leaf)
                leaf_budget = node_budget - 1
                budget[leaf] = min(budget.get(leaf, leaf_budget), leaf_budget)

    # --------------------------------------------------------- level assignment
    level: Dict[int, int] = {}
    lut_of_root: Dict[int, MappedLUT] = {}
    for node in sorted(selected):
        cut = selected[node]
        lut_level = 1 + max((level.get(leaf, 0) for leaf in cut), default=0)
        level[node] = lut_level
        lut_of_root[node] = MappedLUT(root=node, leaves=tuple(sorted(cut)), level=lut_level)

    luts = [lut_of_root[node] for node in sorted(lut_of_root)]
    return MappedNetwork(source=netlist, luts=luts, outputs=list(netlist.outputs), lut_of_root=lut_of_root)
