"""FPGA device and timing model.

The paper implements every multiplier on a Xilinx Artix-7 XC7A200T-FFG1156
with ISE 14.7 / XST and reports post-place-and-route LUTs, slices and the
combinational critical path (pad to pad).  We cannot run ISE, so this module
defines the device abstraction our Python flow targets:

* **logic**: ``lut_inputs``-input LUTs (6 for the 7-series), packed
  ``luts_per_slice`` to a slice (4 LUT6 per 7-series slice);
* **timing**: a pad-to-pad delay model

      T = T_ibuf + T_obuf + Σ_levels (T_lut + T_net(fanout))
      T_net(f) = net_base + net_per_fanout·log2(1 + f) + congestion

  with a congestion term that grows with the logical size of the design
  (large bit-parallel multipliers are routing dominated, which is why the
  paper's delays grow from ~10 ns at m = 8 to ~22 ns at m = 163 despite only
  a few extra LUT levels).

The default constants are calibrated so that the *absolute* delays land in
the same range as the paper's Table V; the experiments only rely on
relative comparisons, which are driven by mapped depth, fanout and LUT
count rather than by the constants themselves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "DeviceModel",
    "ARTIX7",
    "VIRTEX5_LIKE",
    "GENERIC_4LUT",
    "DEVICES",
    "device_by_name",
]


@dataclass(frozen=True)
class DeviceModel:
    """Capacity and timing parameters of a target FPGA family."""

    name: str
    #: Number of inputs of one look-up table.
    lut_inputs: int
    #: LUTs packed into one slice/CLB cluster.
    luts_per_slice: int
    #: Combinational LUT propagation delay (ns).
    lut_delay_ns: float
    #: Input buffer + input-pad routing delay (ns).
    ibuf_delay_ns: float
    #: Output buffer + output-pad routing delay (ns).
    obuf_delay_ns: float
    #: Base routing delay of any net (ns).
    net_base_ns: float
    #: Additional routing delay per doubling of the fanout (ns).
    net_per_fanout_ns: float
    #: Additional routing delay per doubling of design size in LUTs (ns),
    #: modelling congestion / wire length growth of large flat netlists.
    congestion_per_size_ns: float

    def net_delay_ns(self, fanout: int, design_luts: int) -> float:
        """Routing delay of a net with the given fanout inside a design of the given size."""
        fanout = max(1, fanout)
        design_luts = max(1, design_luts)
        return (
            self.net_base_ns
            + self.net_per_fanout_ns * math.log2(1 + fanout)
            + self.congestion_per_size_ns * math.log2(design_luts)
        )

    def io_overhead_ns(self) -> float:
        """Pad-to-pad constant overhead (input buffer + output buffer)."""
        return self.ibuf_delay_ns + self.obuf_delay_ns


#: The paper's target: Artix-7 XC7A200T (6-input LUTs, 4 LUTs per slice).
ARTIX7 = DeviceModel(
    name="xc7a200t-ffg1156",
    lut_inputs=6,
    luts_per_slice=4,
    lut_delay_ns=0.23,
    ibuf_delay_ns=1.10,
    obuf_delay_ns=2.60,
    net_base_ns=0.20,
    net_per_fanout_ns=0.18,
    congestion_per_size_ns=0.13,
)

#: A 6-input-LUT family with slower routing, for sensitivity studies.
VIRTEX5_LIKE = DeviceModel(
    name="virtex5-like",
    lut_inputs=6,
    luts_per_slice=4,
    lut_delay_ns=0.28,
    ibuf_delay_ns=2.0,
    obuf_delay_ns=3.8,
    net_base_ns=0.55,
    net_per_fanout_ns=0.22,
    congestion_per_size_ns=0.11,
)

#: A classic 4-input-LUT architecture (Spartan-3 era), used by the ablation
#: benchmarks to show how the conclusions shift with LUT granularity.
GENERIC_4LUT = DeviceModel(
    name="generic-4lut",
    lut_inputs=4,
    luts_per_slice=2,
    lut_delay_ns=0.35,
    ibuf_delay_ns=1.6,
    obuf_delay_ns=3.2,
    net_base_ns=0.50,
    net_per_fanout_ns=0.20,
    congestion_per_size_ns=0.10,
)

#: Sweep-friendly catalog: short aliases the CLI accepts (``--devices``) in
#: addition to every model's full ``name``.
DEVICES = {
    "artix7": ARTIX7,
    "virtex5": VIRTEX5_LIKE,
    "4lut": GENERIC_4LUT,
}


def device_by_name(name: str) -> DeviceModel:
    """Resolve a device by short alias (``artix7``) or full model name.

    >>> device_by_name("artix7").lut_inputs
    6
    """
    key = name.strip().lower()
    if key in DEVICES:
        return DEVICES[key]
    for device in DEVICES.values():
        if device.name.lower() == key:
            return device
    known = ", ".join(sorted(DEVICES) + sorted(device.name for device in DEVICES.values()))
    raise KeyError(f"unknown device {name!r}; known devices: {known}")
