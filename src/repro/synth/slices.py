"""Slice packing model.

Xilinx 7-series slices hold four 6-input LUTs.  After placement, the vendor
report counts *occupied* slices — slices holding at least one of the design's
LUTs — and the ratio LUTs/slice typically lands between 2 and 3.5 for flat
combinational datapaths because the packer clusters connected LUTs to keep
nets short but will not fill a slice with unrelated logic.

:func:`pack_slices` models that behaviour: LUTs are visited in topological
order and added to the currently open slice when they share at least one
signal with it (or while the slice holds fewer than ``min_fill`` LUTs, which
models the packer's willingness to pair small amounts of unrelated logic);
otherwise a new slice is opened.  The result is deterministic, respects the
hard capacity of the device and tracks connectivity, which is what the
paper's slice column responds to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, TYPE_CHECKING


if TYPE_CHECKING:  # pragma: no cover - typing only
    from .device import DeviceModel
    from .lutmap import MappedLUT, MappedNetwork

__all__ = ["Slice", "SlicePacking", "pack_slices"]


@dataclass
class Slice:
    """One occupied slice: up to ``luts_per_slice`` LUTs plus their signal set."""

    index: int
    luts: List[MappedLUT]
    signals: Set[int]

    @property
    def lut_count(self) -> int:
        """Number of LUTs packed into this slice."""
        return len(self.luts)


@dataclass
class SlicePacking:
    """Result of packing a mapped network into slices."""

    slices: List[Slice]

    @property
    def slice_count(self) -> int:
        """Number of occupied slices (the paper's "Slices" column)."""
        return len(self.slices)

    @property
    def lut_count(self) -> int:
        """Total LUTs across all slices (sanity check against the mapping)."""
        return sum(slice_.lut_count for slice_ in self.slices)

    def average_fill(self) -> float:
        """Average LUTs per occupied slice."""
        if not self.slices:
            return 0.0
        return self.lut_count / len(self.slices)


def pack_slices(mapped: MappedNetwork, device: DeviceModel, min_fill: int = 2) -> SlicePacking:
    """Pack the LUTs of a mapped network into slices of the target device.

    ``min_fill`` is the number of LUTs the packer will co-locate even without
    shared signals; beyond it, a LUT must share at least one signal with the
    open slice to join it.
    """
    if min_fill < 1:
        raise ValueError("min_fill must be at least 1")
    capacity = device.luts_per_slice
    ordered = sorted(mapped.luts, key=lambda lut: (lut.level, lut.root))
    slices: List[Slice] = []
    current: List[MappedLUT] = []
    current_signals: Set[int] = set()

    def close_current() -> None:
        nonlocal current, current_signals
        if current:
            slices.append(Slice(index=len(slices), luts=current, signals=current_signals))
            current = []
            current_signals = set()

    for lut in ordered:
        lut_signals = set(lut.leaves) | {lut.root}
        if not current:
            current = [lut]
            current_signals = lut_signals
            continue
        has_room = len(current) < capacity
        connected = bool(lut_signals & current_signals)
        if has_room and (connected or len(current) < min_fill):
            current.append(lut)
            current_signals |= lut_signals
        else:
            close_current()
            current = [lut]
            current_signals = lut_signals
    close_current()
    return SlicePacking(slices=slices)
