"""Pure-Python FPGA implementation flow (synthesis, mapping, packing, timing)."""

from .balance import collect_xor_leaves, rebuild_netlist, restructure
from .device import ARTIX7, DEVICES, GENERIC_4LUT, VIRTEX5_LIKE, DeviceModel, device_by_name
from .flow import (
    FlowArtifacts,
    MappingCandidate,
    PackedCandidate,
    RestructureOutcome,
    SynthesisOptions,
    TimedCandidate,
    implement,
    implement_netlist,
    stage_generate,
    stage_map,
    stage_pack,
    stage_report,
    stage_restructure,
    stage_time,
)
from .lutmap import MappedLUT, MappedNetwork, map_to_luts
from .report import ImplementationResult, format_table
from .slices import Slice, SlicePacking, pack_slices
from .timing import TimingResult, analyze_timing
from .xor_cse import count_cooccurring_pairs, greedy_share

__all__ = [
    "collect_xor_leaves",
    "rebuild_netlist",
    "restructure",
    "ARTIX7",
    "DEVICES",
    "GENERIC_4LUT",
    "VIRTEX5_LIKE",
    "DeviceModel",
    "device_by_name",
    "FlowArtifacts",
    "MappingCandidate",
    "PackedCandidate",
    "RestructureOutcome",
    "SynthesisOptions",
    "TimedCandidate",
    "implement",
    "implement_netlist",
    "stage_generate",
    "stage_map",
    "stage_pack",
    "stage_report",
    "stage_restructure",
    "stage_time",
    "MappedLUT",
    "MappedNetwork",
    "map_to_luts",
    "ImplementationResult",
    "format_table",
    "Slice",
    "SlicePacking",
    "pack_slices",
    "TimingResult",
    "analyze_timing",
    "count_cooccurring_pairs",
    "greedy_share",
]
