"""Pure-Python FPGA implementation flow (synthesis, mapping, packing, timing)."""

from .balance import collect_xor_leaves, rebuild_netlist, restructure
from .device import ARTIX7, GENERIC_4LUT, VIRTEX5_LIKE, DeviceModel
from .flow import FlowArtifacts, SynthesisOptions, implement, implement_netlist
from .lutmap import MappedLUT, MappedNetwork, map_to_luts
from .report import ImplementationResult, format_table
from .slices import Slice, SlicePacking, pack_slices
from .timing import TimingResult, analyze_timing
from .xor_cse import count_cooccurring_pairs, greedy_share

__all__ = [
    "collect_xor_leaves",
    "rebuild_netlist",
    "restructure",
    "ARTIX7",
    "GENERIC_4LUT",
    "VIRTEX5_LIKE",
    "DeviceModel",
    "FlowArtifacts",
    "SynthesisOptions",
    "implement",
    "implement_netlist",
    "MappedLUT",
    "MappedNetwork",
    "map_to_luts",
    "ImplementationResult",
    "format_table",
    "Slice",
    "SlicePacking",
    "pack_slices",
    "TimingResult",
    "analyze_timing",
    "count_cooccurring_pairs",
    "greedy_share",
]
