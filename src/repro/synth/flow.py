"""The end-to-end FPGA implementation flow.

``implement()`` takes a generated multiplier and produces the metrics the
paper reports (LUTs, slices, delay, Area×Time), running the same steps a
vendor flow would:

1. *Optional restructuring* — if the multiplier's generator allowed it (the
   paper's proposed flat form), the XOR network is re-associated and shared
   (:mod:`repro.synth.balance`, :mod:`repro.synth.xor_cse`).  Fixed-structure
   baselines skip this step, modelling synthesis that honours the written
   association (the "hard parenthesized restrictions" of ref [7]).
2. *Technology mapping* to k-input LUTs (:mod:`repro.synth.lutmap`).
3. *Slice packing* (:mod:`repro.synth.slices`).
4. *Static timing analysis* with the device's delay model
   (:mod:`repro.synth.timing`).

The flow optionally re-verifies the (possibly restructured) netlist against
the multiplier's :class:`~repro.spec.product_spec.ProductSpec` so that no
optimisation can silently change the function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..multipliers.base import GeneratedMultiplier
from ..netlist.netlist import Netlist
from ..netlist.stats import gather_stats
from ..netlist.verify import verify_netlist
from .balance import restructure
from .device import ARTIX7, DeviceModel
from .lutmap import MappedNetwork, map_to_luts
from .report import ImplementationResult
from .slices import pack_slices
from .timing import analyze_timing

__all__ = ["SynthesisOptions", "FlowArtifacts", "implement", "implement_netlist"]


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the implementation flow.

    Attributes
    ----------
    restructure:
        ``None`` (default) honours the netlist's ``restructure_allowed``
        attribute; ``True``/``False`` force the behaviour (used by the
        ablation benchmarks).
    share_rounds:
        Rounds of greedy cross-output XOR sharing applied when restructuring
        (0 = balancing only).
    cut_limit:
        Priority cuts kept per node during LUT mapping.
    verify:
        Re-verify the netlist against the spec after restructuring.
    min_slice_fill:
        Packer willingness to co-locate unconnected LUTs (see
        :func:`repro.synth.slices.pack_slices`).
    """

    restructure: Optional[bool] = None
    share_rounds: int = 4
    cut_limit: int = 6
    verify: bool = True
    min_slice_fill: int = 2
    #: Mapping effort: number of alternative mapping strategies explored, the
    #: best result (by Area x Time) being kept.  Models the strategy search a
    #: vendor tool performs at its default/high effort settings.
    effort: int = 2
    #: Depth slack (LUT levels above depth-optimal) allowed for area recovery.
    depth_slack: int = 1


@dataclass
class FlowArtifacts:
    """Everything produced by one run of the flow (for inspection and tests)."""

    result: ImplementationResult
    netlist: Netlist
    mapped: MappedNetwork
    restructured: bool


def _mapping_configurations(options: SynthesisOptions):
    """The (cut_limit, depth_slack) pairs explored at the requested effort."""
    configurations = [(options.cut_limit, options.depth_slack)]
    extras = [
        (options.cut_limit, max(0, options.depth_slack - 1)),
        (options.cut_limit + 2, options.depth_slack),
        (options.cut_limit, options.depth_slack + 1),
        (max(2, options.cut_limit - 2), options.depth_slack),
    ]
    for extra in extras[: max(0, options.effort - 1)]:
        if extra not in configurations:
            configurations.append(extra)
    return configurations


def implement(
    multiplier: GeneratedMultiplier,
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(),
    keep_artifacts: bool = False,
):
    """Run the full implementation flow on a generated multiplier.

    At ``options.effort`` > 1 several mapping strategies (and, for
    restructurable netlists, several sharing depths) are explored and the
    best implementation by Area×Time is reported — mirroring the strategy
    search of a vendor flow.  Returns an :class:`ImplementationResult`, or a
    :class:`FlowArtifacts` bundle when ``keep_artifacts`` is true.
    """
    source = multiplier.netlist
    allowed = source.attributes.get("restructure_allowed", False)
    do_restructure = allowed if options.restructure is None else options.restructure

    candidates = [source]
    if do_restructure:
        candidates = [restructure(source, share_rounds=options.share_rounds)]
        if options.effort > 1:
            # A sharing-free, purely re-balanced variant: sometimes the extra
            # shared signals cost a LUT level, and the best Area x Time comes
            # from the shallower network.
            candidates.append(restructure(source, share_rounds=0))
        if options.effort > 2:
            candidates.append(restructure(source, share_rounds=options.share_rounds + 2))
        if options.verify:
            for candidate in candidates:
                report = verify_netlist(candidate, multiplier.spec)
                if not report:
                    raise RuntimeError(
                        f"restructuring changed the function of {multiplier.method}: {report.summary()}"
                    )

    best = None
    for netlist in candidates:
        for cut_limit, depth_slack in _mapping_configurations(options):
            mapped_try = map_to_luts(
                netlist, lut_inputs=device.lut_inputs, cut_limit=cut_limit, depth_slack=depth_slack
            )
            packing_try = pack_slices(mapped_try, device, min_fill=options.min_slice_fill)
            timing_try = analyze_timing(mapped_try, device)
            score = mapped_try.lut_count * timing_try.critical_path_ns
            if best is None or score < best[0]:
                best = (score, netlist, mapped_try, packing_try, timing_try)

    _, netlist, mapped, packing, timing = best
    stats = gather_stats(netlist)

    field_params = None
    from ..galois.pentanomials import type_ii_parameters

    parameters = type_ii_parameters(multiplier.modulus)
    if parameters is not None:
        field_params = parameters[1]

    result = ImplementationResult(
        method=multiplier.method,
        reference=multiplier.reference,
        m=multiplier.m,
        n=field_params,
        luts=mapped.lut_count,
        slices=packing.slice_count,
        delay_ns=timing.critical_path_ns,
        and_gates=stats.and_gates,
        xor_gates=stats.xor_gates,
        lut_levels=mapped.depth,
        average_slice_fill=packing.average_fill(),
        restructured=do_restructure,
        device=device.name,
    )
    if keep_artifacts:
        return FlowArtifacts(result=result, netlist=netlist, mapped=mapped, restructured=do_restructure)
    return result


def implement_netlist(
    netlist: Netlist,
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(restructure=False, verify=False),
) -> ImplementationResult:
    """Implement a bare netlist (no spec available — used for generic circuits)."""
    mapped = map_to_luts(netlist, lut_inputs=device.lut_inputs, cut_limit=options.cut_limit)
    packing = pack_slices(mapped, device, min_fill=options.min_slice_fill)
    timing = analyze_timing(mapped, device)
    stats = gather_stats(netlist)
    return ImplementationResult(
        method=netlist.attributes.get("method", netlist.name or "netlist"),
        reference=netlist.attributes.get("reference", ""),
        m=netlist.attributes.get("m", len(netlist.outputs)),
        n=None,
        luts=mapped.lut_count,
        slices=packing.slice_count,
        delay_ns=timing.critical_path_ns,
        and_gates=stats.and_gates,
        xor_gates=stats.xor_gates,
        lut_levels=mapped.depth,
        average_slice_fill=packing.average_fill(),
        restructured=False,
        device=device.name,
    )
