"""The end-to-end FPGA implementation flow, decomposed into pipeline stages.

``implement()`` takes a generated multiplier and produces the metrics the
paper reports (LUTs, slices, delay, Area×Time), running the same steps a
vendor flow would:

1. *Optional restructuring* — if the multiplier's generator allowed it (the
   paper's proposed flat form), the XOR network is re-associated and shared
   (:mod:`repro.synth.balance`, :mod:`repro.synth.xor_cse`).  Fixed-structure
   baselines skip this step, modelling synthesis that honours the written
   association (the "hard parenthesized restrictions" of ref [7]).
2. *Technology mapping* to k-input LUTs (:mod:`repro.synth.lutmap`).
3. *Slice packing* (:mod:`repro.synth.slices`).
4. *Static timing analysis* with the device's delay model
   (:mod:`repro.synth.timing`).

The flow optionally re-verifies the (possibly restructured) netlist against
the multiplier's :class:`~repro.spec.product_spec.ProductSpec` so that no
optimisation can silently change the function.

Every step lives in its own ``stage_*`` function (``stage_generate``,
``stage_restructure``, ``stage_map``, ``stage_pack``, ``stage_time``,
``stage_report``) — the single source of truth shared by ``implement()``
(which chains them serially, preserving the historical behaviour exactly)
and by :mod:`repro.pipeline`, whose staged-job graph runs the same functions
per sweep job under a process pool with on-disk artifact caching.

Memory note: the stage boundaries keep every explored mapping candidate
alive until ``stage_report`` selects the winner (the pre-pipeline loop kept
only a running best).  The effort search caps the grid at ≤ 3 netlists × 5
configurations, tens of MB at the paper's largest field (m = 163) — a
deliberate trade for stage-level caching, scheduling and introspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, TYPE_CHECKING

from ..netlist.stats import gather_stats
from ..netlist.verify import verify_netlist
from .balance import restructure
from .device import ARTIX7
from .lutmap import map_to_luts
from .report import ImplementationResult
from .slices import pack_slices
from .timing import analyze_timing

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..multipliers.base import GeneratedMultiplier
    from ..netlist.netlist import Netlist
    from .device import DeviceModel
    from .lutmap import MappedNetwork
    from .slices import SlicePacking
    from .timing import TimingResult

__all__ = [
    "SynthesisOptions",
    "FlowArtifacts",
    "RestructureOutcome",
    "MappingCandidate",
    "PackedCandidate",
    "TimedCandidate",
    "stage_generate",
    "stage_restructure",
    "stage_map",
    "stage_pack",
    "stage_time",
    "stage_report",
    "implement",
    "implement_netlist",
]


@dataclass(frozen=True)
class SynthesisOptions:
    """Knobs of the implementation flow.

    Attributes
    ----------
    restructure:
        ``None`` (default) honours the netlist's ``restructure_allowed``
        attribute; ``True``/``False`` force the behaviour (used by the
        ablation benchmarks).
    share_rounds:
        Rounds of greedy cross-output XOR sharing applied when restructuring
        (0 = balancing only).
    cut_limit:
        Priority cuts kept per node during LUT mapping.
    verify:
        Re-verify the netlist against the spec after restructuring.
    min_slice_fill:
        Packer willingness to co-locate unconnected LUTs (see
        :func:`repro.synth.slices.pack_slices`).
    """

    restructure: Optional[bool] = None
    share_rounds: int = 4
    cut_limit: int = 6
    verify: bool = True
    min_slice_fill: int = 2
    #: Mapping effort: number of alternative mapping strategies explored, the
    #: best result (by Area x Time) being kept.  Models the strategy search a
    #: vendor tool performs at its default/high effort settings.
    effort: int = 2
    #: Depth slack (LUT levels above depth-optimal) allowed for area recovery.
    depth_slack: int = 1


@dataclass
class FlowArtifacts:
    """Everything produced by one run of the flow (for inspection and tests).

    Besides the report and the winning netlist/mapping, the bundle carries
    the slice-packing and timing results of the chosen implementation, so
    callers never have to re-run those stages to inspect them.
    """

    result: ImplementationResult
    netlist: Netlist
    mapped: MappedNetwork
    restructured: bool
    packing: Optional[SlicePacking] = None
    timing: Optional[TimingResult] = None


@dataclass
class RestructureOutcome:
    """Output of the restructure stage: candidate netlists to map.

    ``candidates`` preserves exploration order (the order the legacy
    monolithic loop used), so downstream best-candidate selection is
    deterministic and byte-identical to the serial flow.
    """

    candidates: List[Netlist]
    restructured: bool


@dataclass
class MappingCandidate:
    """One (netlist, mapping-configuration) point of the effort search."""

    netlist: Netlist
    mapped: MappedNetwork
    cut_limit: int
    depth_slack: int


@dataclass
class PackedCandidate:
    """A mapping candidate with its slice packing attached."""

    netlist: Netlist
    mapped: MappedNetwork
    packing: SlicePacking


@dataclass
class TimedCandidate:
    """A packed candidate with timing and its Area×Time selection score."""

    netlist: Netlist
    mapped: MappedNetwork
    packing: SlicePacking
    timing: TimingResult

    @property
    def score(self) -> float:
        """The flow's selection metric: LUT count × critical path."""
        return self.mapped.lut_count * self.timing.critical_path_ns


def _mapping_configurations(options: SynthesisOptions):
    """The (cut_limit, depth_slack) pairs explored at the requested effort."""
    configurations = [(options.cut_limit, options.depth_slack)]
    extras = [
        (options.cut_limit, max(0, options.depth_slack - 1)),
        (options.cut_limit + 2, options.depth_slack),
        (options.cut_limit, options.depth_slack + 1),
        (max(2, options.cut_limit - 2), options.depth_slack),
    ]
    for extra in extras[: max(0, options.effort - 1)]:
        if extra not in configurations:
            configurations.append(extra)
    return configurations


# ------------------------------------------------------------------- stages
def stage_generate(
    method: str, modulus: int, verify: bool = True, use_cache: bool = True
) -> GeneratedMultiplier:
    """Pipeline stage 1: obtain the generated multiplier circuit.

    Routes through the process-wide multiplier LRU by default, so a sweep
    visiting the same ``(method, modulus)`` with several devices or efforts
    derives the SiTi splitting exactly once per process.
    """
    from ..multipliers.registry import generate_multiplier

    return generate_multiplier(method, modulus, verify=verify, use_cache=use_cache)


def stage_restructure(
    multiplier: GeneratedMultiplier, options: SynthesisOptions = SynthesisOptions()
) -> RestructureOutcome:
    """Pipeline stage 2: build the candidate netlists the mapper will explore.

    Fixed-structure baselines pass through unchanged; restructurable
    netlists yield one re-associated variant per explored sharing depth.
    When ``options.verify`` is set every rebuilt netlist is formally checked
    against the multiplier's spec before it may proceed down the flow.
    """
    source = multiplier.netlist
    allowed = source.attributes.get("restructure_allowed", False)
    do_restructure = allowed if options.restructure is None else options.restructure

    candidates = [source]
    if do_restructure:
        candidates = [restructure(source, share_rounds=options.share_rounds)]
        if options.effort > 1:
            # A sharing-free, purely re-balanced variant: sometimes the extra
            # shared signals cost a LUT level, and the best Area x Time comes
            # from the shallower network.
            candidates.append(restructure(source, share_rounds=0))
        if options.effort > 2:
            candidates.append(restructure(source, share_rounds=options.share_rounds + 2))
        if options.verify:
            for candidate in candidates:
                report = verify_netlist(candidate, multiplier.spec)
                if not report:
                    raise RuntimeError(
                        f"restructuring changed the function of {multiplier.method}: {report.summary()}"
                    )
    return RestructureOutcome(candidates=candidates, restructured=do_restructure)


def stage_map(
    outcome: RestructureOutcome,
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(),
) -> List[MappingCandidate]:
    """Pipeline stage 3: technology-map every candidate at every effort point.

    The candidate-major, configuration-minor order mirrors the legacy
    nested loop, keeping best-candidate tie-breaking identical.
    """
    mappings: List[MappingCandidate] = []
    for netlist in outcome.candidates:
        for cut_limit, depth_slack in _mapping_configurations(options):
            mapped = map_to_luts(
                netlist, lut_inputs=device.lut_inputs, cut_limit=cut_limit, depth_slack=depth_slack
            )
            mappings.append(
                MappingCandidate(netlist=netlist, mapped=mapped, cut_limit=cut_limit, depth_slack=depth_slack)
            )
    return mappings


def stage_pack(
    mappings: Sequence[MappingCandidate],
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(),
) -> List[PackedCandidate]:
    """Pipeline stage 4: pack every mapped candidate into device slices."""
    return [
        PackedCandidate(
            netlist=candidate.netlist,
            mapped=candidate.mapped,
            packing=pack_slices(candidate.mapped, device, min_fill=options.min_slice_fill),
        )
        for candidate in mappings
    ]


def stage_time(
    packed: Sequence[PackedCandidate], device: DeviceModel = ARTIX7
) -> List[TimedCandidate]:
    """Pipeline stage 5: static timing analysis of every packed candidate."""
    return [
        TimedCandidate(
            netlist=candidate.netlist,
            mapped=candidate.mapped,
            packing=candidate.packing,
            timing=analyze_timing(candidate.mapped, device),
        )
        for candidate in packed
    ]


def stage_report(
    timed: Sequence[TimedCandidate],
    multiplier: GeneratedMultiplier,
    device: DeviceModel = ARTIX7,
    restructured: bool = False,
) -> FlowArtifacts:
    """Pipeline stage 6: pick the best candidate and build the report.

    Selection is a strict minimum over the Area×Time score in exploration
    order — the first candidate wins ties, exactly as the monolithic loop
    did before the decomposition.
    """
    if not timed:
        raise ValueError("stage_report needs at least one timed candidate")
    best = timed[0]
    for candidate in timed[1:]:
        if candidate.score < best.score:
            best = candidate
    stats = gather_stats(best.netlist)

    field_params = None
    from ..galois.pentanomials import type_ii_parameters

    parameters = type_ii_parameters(multiplier.modulus)
    if parameters is not None:
        field_params = parameters[1]

    result = ImplementationResult(
        method=multiplier.method,
        reference=multiplier.reference,
        m=multiplier.m,
        n=field_params,
        luts=best.mapped.lut_count,
        slices=best.packing.slice_count,
        delay_ns=best.timing.critical_path_ns,
        and_gates=stats.and_gates,
        xor_gates=stats.xor_gates,
        lut_levels=best.mapped.depth,
        average_slice_fill=best.packing.average_fill(),
        restructured=restructured,
        device=device.name,
    )
    return FlowArtifacts(
        result=result,
        netlist=best.netlist,
        mapped=best.mapped,
        restructured=restructured,
        packing=best.packing,
        timing=best.timing,
    )


# ------------------------------------------------------------------ drivers
def implement(
    multiplier: GeneratedMultiplier,
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(),
    keep_artifacts: bool = False,
):
    """Run the full implementation flow on a generated multiplier.

    A thin serial driver over the pipeline stages: restructure → map → pack
    → time → report.  At ``options.effort`` > 1 several mapping strategies
    (and, for restructurable netlists, several sharing depths) are explored
    and the best implementation by Area×Time is reported — mirroring the
    strategy search of a vendor flow.  Returns an
    :class:`ImplementationResult`, or the full :class:`FlowArtifacts` bundle
    when ``keep_artifacts`` is true.
    """
    outcome = stage_restructure(multiplier, options)
    mappings = stage_map(outcome, device, options)
    packed = stage_pack(mappings, device, options)
    timed = stage_time(packed, device)
    artifacts = stage_report(timed, multiplier, device, restructured=outcome.restructured)
    if keep_artifacts:
        return artifacts
    return artifacts.result


def implement_netlist(
    netlist: Netlist,
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(restructure=False, verify=False),
) -> ImplementationResult:
    """Implement a bare netlist (no spec available — used for generic circuits)."""
    mapped = map_to_luts(netlist, lut_inputs=device.lut_inputs, cut_limit=options.cut_limit)
    packing = pack_slices(mapped, device, min_fill=options.min_slice_fill)
    timing = analyze_timing(mapped, device)
    stats = gather_stats(netlist)
    return ImplementationResult(
        method=netlist.attributes.get("method", netlist.name or "netlist"),
        reference=netlist.attributes.get("reference", ""),
        m=netlist.attributes.get("m", len(netlist.outputs)),
        n=None,
        luts=mapped.lut_count,
        slices=packing.slice_count,
        delay_ns=timing.critical_path_ns,
        and_gates=stats.and_gates,
        xor_gates=stats.xor_gates,
        lut_levels=mapped.depth,
        average_slice_fill=packing.average_fill(),
        restructured=False,
        device=device.name,
    )
