"""Implementation reports — the rows of the paper's Table V.

An :class:`ImplementationResult` bundles everything the paper reports for
one multiplier implementation (LUTs, slices, delay, Area×Time) together with
the structural metrics our flow additionally knows (gate counts, LUT levels,
average slice fill), plus enough provenance to regenerate the row.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Optional

__all__ = ["ImplementationResult", "format_table"]


@dataclass
class ImplementationResult:
    """Post-implementation metrics of one multiplier on one field."""

    method: str
    reference: str
    m: int
    n: Optional[int]
    luts: int
    slices: int
    delay_ns: float
    and_gates: int = 0
    xor_gates: int = 0
    lut_levels: int = 0
    average_slice_fill: float = 0.0
    restructured: bool = False
    device: str = ""

    @property
    def area_time(self) -> float:
        """The paper's A×T metric: LUTs × critical path (LUTs·ns, lower is better)."""
        return self.luts * self.delay_ns

    @property
    def field_label(self) -> str:
        """``(m,n)`` label used in the paper's tables."""
        return f"({self.m},{self.n})" if self.n is not None else f"(m={self.m})"

    def to_json_dict(self) -> Dict[str, object]:
        """Lossless field dictionary for the artifact store.

        Unlike :meth:`as_dict` nothing is rounded here, so a result
        rehydrated from the store is bit-identical to the freshly computed
        one — the property the sweep determinism tests rely on.
        """
        return {field.name: getattr(self, field.name) for field in fields(self)}

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "ImplementationResult":
        """Rebuild a result from :meth:`to_json_dict` output (extra keys ignored)."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary view (used by table rendering and JSON export)."""
        return {
            "method": self.method,
            "reference": self.reference,
            "field": self.field_label,
            "m": self.m,
            "n": self.n,
            "luts": self.luts,
            "slices": self.slices,
            "delay_ns": round(self.delay_ns, 2),
            "area_time": round(self.area_time, 2),
            "and_gates": self.and_gates,
            "xor_gates": self.xor_gates,
            "lut_levels": self.lut_levels,
            "average_slice_fill": round(self.average_slice_fill, 2),
            "restructured": self.restructured,
            "device": self.device,
        }


def format_table(results: List[ImplementationResult], title: str = "") -> str:
    """Render results in the layout of the paper's Table V.

    Rows are grouped by field (in first-appearance order) and, within a
    field, listed in the order given — the comparison harness passes them in
    the paper's method order.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'method':<15s} {'LUTs':>7s} {'Slices':>7s} {'Time (ns)':>10s} {'AxT':>12s}  field"
    lines.append(header)
    lines.append("-" * len(header))
    current_field = None
    for result in results:
        if result.field_label != current_field:
            if current_field is not None:
                lines.append("-" * len(header))
            current_field = result.field_label
        lines.append(
            f"{result.method:<15s} {result.luts:>7d} {result.slices:>7d} "
            f"{result.delay_ns:>10.2f} {result.area_time:>12.2f}  {result.field_label}"
        )
    return "\n".join(lines)
