"""Production sweep API: field × method × device × effort grids.

``run_sweep`` is what the ``repro sweep`` CLI subcommand and the Table V
comparison harness drive: it expands a grid into :class:`SweepJob` tuples
(field-major, then method, device, effort — the paper's Table V row order),
executes them through the scheduler (serially or on a process pool, with
the artifact store short-circuiting warm jobs) and renders the results as a
table, JSON or CSV.
"""

from __future__ import annotations

import csv
import io
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING, Tuple

from ..galois.pentanomials import PAPER_TABLE5_FIELDS, lookup_field
from ..multipliers.registry import TABLE5_METHODS, available_methods
from ..synth.device import ARTIX7
from ..synth.flow import SynthesisOptions
from ..synth.report import format_table
from .scheduler import SweepJob, outcome_rows, run_jobs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synth.device import DeviceModel
    from .scheduler import JobOutcome
    from .store import ArtifactStore

__all__ = [
    "SweepResult",
    "build_sweep_jobs",
    "run_sweep",
    "format_sweep",
    "format_outcome_stats",
]

#: Fields with m at or below this are formally verified during generation
#: (mirrors ``run_comparison``'s default).
DEFAULT_VERIFY_UP_TO = 16


@dataclass
class SweepResult:
    """Everything one sweep produced, in deterministic grid order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0
    parallelism: int = 1
    cache_dir: Optional[str] = None

    @property
    def cache_hits(self) -> int:
        """Jobs served straight from the artifact store."""
        return sum(1 for outcome in self.outcomes if outcome.cache_hit)

    @property
    def cache_misses(self) -> int:
        """Jobs that had to run the full synthesis flow."""
        return len(self.outcomes) - self.cache_hits

    def rows(self) -> List[Dict[str, Any]]:
        """Flat dict rows (metrics + effort + cache flag) for export."""
        return outcome_rows(self.outcomes)

    def summary(self) -> str:
        """One-line report the CLI prints (and the CI warm-cache step greps)."""
        cache = (
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses ({self.cache_dir})"
            if self.cache_dir is not None
            else "cache: disabled"
        )
        return (
            f"{len(self.outcomes)} jobs in {self.elapsed_s:.2f}s "
            f"(parallelism {self.parallelism}) | {cache}"
        )


def _resolve_methods(methods: Optional[Sequence[str]]) -> List[str]:
    if methods is None:
        return list(TABLE5_METHODS)
    known = set(available_methods())
    resolved = [name.strip() for name in methods if name.strip()]
    unknown = [name for name in resolved if name not in known]
    if unknown:
        raise KeyError(f"unknown multiplier method(s) {unknown}; available: {', '.join(sorted(known))}")
    return resolved


def build_sweep_jobs(
    fields: Optional[Iterable[Tuple[int, int]]] = None,
    methods: Optional[Sequence[str]] = None,
    devices: Optional[Sequence[DeviceModel]] = None,
    efforts: Optional[Sequence[int]] = None,
    options: SynthesisOptions = SynthesisOptions(),
    verify_up_to: int = DEFAULT_VERIFY_UP_TO,
    backend: Optional[str] = None,
) -> List[SweepJob]:
    """Expand the grid into jobs, field-major in the paper's Table V order.

    ``fields`` defaults to the paper's nine Table V fields, ``methods`` to
    its six rows, ``devices`` to Artix-7 and ``efforts`` to the effort baked
    into ``options`` — so a bare ``build_sweep_jobs()`` reproduces exactly
    the grid of the serial comparison harness.  ``backend`` stamps every
    job with an execution backend (part of the artifact cache key).
    """
    selected_fields = (
        [lookup_field(m, n) for m, n in fields] if fields is not None else list(PAPER_TABLE5_FIELDS)
    )
    selected_methods = _resolve_methods(methods)
    selected_devices = list(devices) if devices is not None else [ARTIX7]
    selected_efforts = list(efforts) if efforts is not None else [options.effort]
    jobs: List[SweepJob] = []
    for spec in selected_fields:
        for method in selected_methods:
            for device in selected_devices:
                for effort in selected_efforts:
                    jobs.append(
                        SweepJob(
                            method=method,
                            m=spec.m,
                            n=spec.n,
                            device=device,
                            options=replace(options, effort=effort),
                            verify=spec.m <= verify_up_to,
                            backend=backend,
                        )
                    )
    return jobs


def run_sweep(
    fields: Optional[Iterable[Tuple[int, int]]] = None,
    methods: Optional[Sequence[str]] = None,
    devices: Optional[Sequence[DeviceModel]] = None,
    efforts: Optional[Sequence[int]] = None,
    options: SynthesisOptions = SynthesisOptions(),
    jobs: int = 1,
    store: Optional[ArtifactStore] = None,
    verify_up_to: int = DEFAULT_VERIFY_UP_TO,
    backend: Optional[str] = None,
) -> SweepResult:
    """Run a full sweep grid and return its deterministic result set.

    ``jobs`` is the scheduler parallelism (1 = serial, in-process).  Pass an
    :class:`ArtifactStore` to make the sweep incremental: a warm re-run of
    the same grid reads every row from disk and touches no synthesis code
    (``backend`` is part of the cache key, so runs under different
    execution backends never serve each other's artifacts).
    """
    job_list = build_sweep_jobs(
        fields=fields,
        methods=methods,
        devices=devices,
        efforts=efforts,
        options=options,
        verify_up_to=verify_up_to,
        backend=backend,
    )
    started = time.perf_counter()
    outcomes = run_jobs(job_list, parallelism=jobs, store=store)
    return SweepResult(
        outcomes=outcomes,
        elapsed_s=time.perf_counter() - started,
        parallelism=max(1, jobs),
        cache_dir=str(store.root) if store is not None else None,
    )


def _format_table(result: SweepResult) -> str:
    """Table rendering: paper layout, with device/effort columns when swept."""
    devices = {outcome.job.device.name for outcome in result.outcomes}
    efforts = {outcome.job.options.effort for outcome in result.outcomes}
    if len(devices) <= 1 and len(efforts) <= 1:
        # Single-point grid: identical rows to the serial `compare` table.
        return format_table([outcome.result for outcome in result.outcomes], title="Sweep results")
    lines: List[str] = ["Sweep results"]
    header = (
        f"{'method':<15s} {'LUTs':>7s} {'Slices':>7s} {'Time (ns)':>10s} {'AxT':>12s}"
        f"  {'field':<10s} {'device':<18s} {'effort':>6s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for outcome in result.outcomes:
        row = outcome.result
        lines.append(
            f"{row.method:<15s} {row.luts:>7d} {row.slices:>7d} "
            f"{row.delay_ns:>10.2f} {row.area_time:>12.2f}  {row.field_label:<10s} "
            f"{outcome.job.device.name:<18s} {outcome.job.options.effort:>6d}"
        )
    return "\n".join(lines)


def format_outcome_stats(outcomes: Sequence["JobOutcome"]) -> List[str]:
    """The per-job ``--stats`` lines: cache status, label, elapsed time.

    One line per outcome, straight from the scheduler's recorded
    ``cache_hit``/``elapsed_s`` fields — the CLI prints these verbatim and
    the tests assert the correspondence end-to-end.
    """
    lines: List[str] = []
    for outcome in outcomes:
        status = "hit " if outcome.cache_hit else "miss"
        lines.append(
            f"  [{status}] {outcome.job.label:<45s} {outcome.elapsed_s * 1000:>8.1f} ms"
        )
    return lines


def format_sweep(result: SweepResult, fmt: str = "table") -> str:
    """Render a sweep as ``table``, ``json`` or ``csv``."""
    if fmt == "table":
        return _format_table(result)
    if fmt == "json":
        return json.dumps(result.rows(), indent=1, sort_keys=True)
    if fmt == "csv":
        rows = result.rows()
        buffer = io.StringIO()
        if rows:
            writer = csv.DictWriter(buffer, fieldnames=list(rows[0]), lineterminator="\n")
            writer.writeheader()
            writer.writerows(rows)
        return buffer.getvalue().rstrip("\n")
    raise ValueError(f"unknown sweep format {fmt!r} (expected table, json or csv)")
