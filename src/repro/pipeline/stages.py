"""The typed staged-job graph of the implementation pipeline.

The flow's computation lives in the ``stage_*`` functions of
:mod:`repro.synth.flow` (the single source of truth — ``implement()`` chains
the very same functions).  This module declares them as a typed DAG of
:class:`Stage` records — ``generate → restructure → map → pack → time →
report`` — and provides :func:`run_stages`, the graph executor one sweep job
runs through (in-process or inside a scheduler worker).

Each stage names the context slots it *requires* and the one it *produces*;
the executor walks the declared order, checks those contracts, and records
per-stage wall-times, so a misordered or incomplete graph fails loudly
instead of producing a partial artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING, Tuple

from ..synth import flow as _flow
from ..synth.device import ARTIX7
from ..synth.flow import SynthesisOptions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synth.device import DeviceModel
    from ..synth.flow import FlowArtifacts

__all__ = ["Stage", "StageError", "PIPELINE_STAGES", "StageTrace", "run_stages"]


class StageError(RuntimeError):
    """A stage was executed without its declared inputs being available."""


@dataclass(frozen=True)
class Stage:
    """One node of the pipeline graph.

    ``run`` receives the shared context dict and the job parameters and
    returns the artifact stored under ``produces``.
    """

    name: str
    requires: Tuple[str, ...]
    produces: str
    run: Callable[..., Any]


def _run_generate(
    context: Dict[str, Any],
    *,
    method: str,
    modulus: int,
    verify: bool,
    backend: Optional[str] = None,
    **_: Any,
):
    multiplier = _flow.stage_generate(method, modulus, verify=verify)
    if verify and backend is not None:
        # Verifying jobs that name an execution backend also assert parity of
        # the generated circuit through that substrate — the sweep-level twin
        # of the formal product-spec check.
        from ..netlist.verify import verify_by_simulation

        if not verify_by_simulation(multiplier.netlist, modulus, trials=64, backend=backend):
            raise RuntimeError(
                f"{method} multiplier for modulus 0x{modulus:x} failed the "
                f"{backend!r}-backend simulation cross-check"
            )
    return multiplier


def _run_restructure(context: Dict[str, Any], *, options: SynthesisOptions, **_: Any):
    return _flow.stage_restructure(context["multiplier"], options)


def _run_map(context: Dict[str, Any], *, device: DeviceModel, options: SynthesisOptions, **_: Any):
    return _flow.stage_map(context["candidates"], device, options)


def _run_pack(context: Dict[str, Any], *, device: DeviceModel, options: SynthesisOptions, **_: Any):
    return _flow.stage_pack(context["mappings"], device, options)


def _run_time(context: Dict[str, Any], *, device: DeviceModel, **_: Any):
    return _flow.stage_time(context["packed"], device)


def _run_report(context: Dict[str, Any], *, device: DeviceModel, **_: Any):
    return _flow.stage_report(
        context["timed"],
        context["multiplier"],
        device,
        restructured=context["candidates"].restructured,
    )


#: The pipeline graph in execution order.  ``requires``/``produces`` name
#: slots of the shared per-job context.
PIPELINE_STAGES: Tuple[Stage, ...] = (
    Stage("generate", requires=(), produces="multiplier", run=_run_generate),
    Stage("restructure", requires=("multiplier",), produces="candidates", run=_run_restructure),
    Stage("map", requires=("candidates",), produces="mappings", run=_run_map),
    Stage("pack", requires=("mappings",), produces="packed", run=_run_pack),
    Stage("time", requires=("packed",), produces="timed", run=_run_time),
    Stage("report", requires=("timed", "multiplier", "candidates"), produces="artifacts", run=_run_report),
)


@dataclass
class StageTrace:
    """Execution record of one pipeline run: artifacts plus per-stage timings."""

    artifacts: FlowArtifacts
    stage_seconds: Dict[str, float] = field(default_factory=dict)


def run_stages(
    method: str,
    modulus: int,
    device: DeviceModel = ARTIX7,
    options: SynthesisOptions = SynthesisOptions(),
    verify: bool = False,
    backend: Optional[str] = None,
    stages: Tuple[Stage, ...] = PIPELINE_STAGES,
) -> StageTrace:
    """Execute the staged graph for one (method, modulus, device, options) job.

    ``backend`` names the execution backend the job runs under; verifying
    jobs cross-check the generated circuit through it (see
    ``_run_generate``).  Returns the :class:`FlowArtifacts` of the winning
    candidate together with per-stage wall-times.  The result is identical
    to ``implement(stage_generate(method, modulus), device, options,
    keep_artifacts=True)`` — both drive the same stage functions.
    """
    import time as _time

    context: Dict[str, Any] = {}
    timings: Dict[str, float] = {}
    for stage in stages:
        missing = [name for name in stage.requires if name not in context]
        if missing:
            raise StageError(f"stage {stage.name!r} is missing inputs {missing} (graph misordered?)")
        started = _time.perf_counter()
        context[stage.produces] = stage.run(
            context,
            method=method,
            modulus=modulus,
            device=device,
            options=options,
            verify=verify,
            backend=backend,
        )
        timings[stage.name] = _time.perf_counter() - started
    if "artifacts" not in context:
        raise StageError("pipeline graph finished without producing 'artifacts'")
    return StageTrace(artifacts=context["artifacts"], stage_seconds=timings)
