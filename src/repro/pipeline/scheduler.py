"""Process-pool scheduler for pipeline jobs with deterministic ordering.

A :class:`SweepJob` freezes everything that determines one implementation
run: ``(method, field, device, options)``.  :func:`execute_job` runs one job
— first consulting the content-addressed :class:`~repro.pipeline.store.ArtifactStore`
(a warm hit costs one JSON read instead of seconds of synthesis) — and
:func:`run_jobs` fans a job list out over a ``ProcessPoolExecutor``.

Determinism: results are collected *in submission order* regardless of
worker completion order, and the flow itself is deterministic (no RNG), so
a parallel sweep's rows are byte-identical to the serial one's — a property
the test suite asserts rather than assumes.

The job and its outcome are plain picklable dataclasses; workers receive the
store *root path* (not the store object) and open their own instance, so the
pool works under both the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from ..galois.pentanomials import type_ii_pentanomial
from ..synth.device import ARTIX7
from ..synth.flow import SynthesisOptions
from ..synth.report import ImplementationResult
from ..telemetry import metrics as _metrics
from ..telemetry import trace as _trace
from .stages import run_stages
from .store import ArtifactStore, canonical_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..synth.device import DeviceModel

__all__ = ["SweepJob", "JobOutcome", "artifact_key", "execute_job", "run_jobs"]


@dataclass(frozen=True)
class SweepJob:
    """One (field, method, device, options) point of a sweep grid."""

    method: str
    m: int
    n: int
    device: DeviceModel = ARTIX7
    options: SynthesisOptions = SynthesisOptions()
    #: Formally verify the generated circuit (the sweep enables this for
    #: small fields only; it does not change the produced metrics).
    verify: bool = False
    #: Execution backend the job runs under (:mod:`repro.backends` name, or
    #: ``None`` for the default).  Verifying jobs additionally cross-check
    #: the generated circuit through this substrate, and the artifact key
    #: includes it, so sweeps under different backends never share cache
    #: entries.
    backend: Optional[str] = None

    @property
    def modulus(self) -> int:
        """The type II pentanomial of this job's field."""
        return type_ii_pentanomial(self.m, self.n)

    @property
    def label(self) -> str:
        """Compact human-readable identifier used in logs and benchmarks."""
        return f"{self.method}@({self.m},{self.n})/{self.device.name}/e{self.options.effort}"

    def with_options(self, **changes: Any) -> "SweepJob":
        """A copy of this job with some ``SynthesisOptions`` fields replaced."""
        return replace(self, options=replace(self.options, **changes))


@dataclass
class JobOutcome:
    """The result of one executed (or cache-served) sweep job."""

    job: SweepJob
    result: ImplementationResult
    cache_hit: bool
    elapsed_s: float
    #: Metrics snapshot recorded by a pool worker's local registry; the
    #: parent folds it into the process registry in :func:`run_jobs` (stays
    #: ``None`` for in-process execution, which records directly).
    telemetry: Optional[Dict[str, Any]] = None


def artifact_key(job: SweepJob) -> str:
    """The content-addressed store key of a job's implementation result.

    Covers the method, the exact modulus, every ``SynthesisOptions`` field,
    every ``DeviceModel`` field and the execution backend — change any of
    them and the key (hence the cache entry) changes, so artifacts produced
    under different backends are never conflated.  The ``verify`` flag is
    deliberately excluded: verification cannot alter the produced metrics,
    exactly like the in-memory
    :class:`~repro.multipliers.cache.MultiplierCache` key.
    """
    return canonical_fingerprint(
        {
            "artifact": "implementation-result",
            "method": job.method,
            "modulus": job.modulus,
            "device": job.device,
            "options": job.options,
            "backend": job.backend,
        }
    )


def execute_job(job: SweepJob, store: Optional[ArtifactStore] = None) -> JobOutcome:
    """Run one job through the staged pipeline, store-first.

    On a store hit the result is rehydrated from JSON without touching the
    synthesis flow; on a miss the full ``generate → … → report`` graph runs
    and the result is persisted for every later sweep (including ones in
    other processes).
    """
    started = time.perf_counter()
    key = artifact_key(job)
    with _trace.span("sweep.job", label=job.label):
        if store is not None:
            payload = store.get_json(key)
            if payload is not None:
                result = ImplementationResult.from_json_dict(payload["result"])
                _record_job(True, time.perf_counter() - started)
                return JobOutcome(job=job, result=result, cache_hit=True, elapsed_s=time.perf_counter() - started)
        stage_trace = run_stages(
            job.method,
            job.modulus,
            device=job.device,
            options=job.options,
            verify=job.verify,
            backend=job.backend,
        )
        result = stage_trace.artifacts.result
        if store is not None:
            store.put_json(
                key,
                {
                    "result": result.to_json_dict(),
                    "job": {
                        "method": job.method,
                        "m": job.m,
                        "n": job.n,
                        "device": job.device.name,
                        "effort": job.options.effort,
                        "backend": job.backend,
                    },
                    "stage_seconds": {name: round(seconds, 6) for name, seconds in stage_trace.stage_seconds.items()},
                },
            )
    _record_job(False, time.perf_counter() - started)
    return JobOutcome(job=job, result=result, cache_hit=False, elapsed_s=time.perf_counter() - started)


def _record_job(cache_hit: bool, elapsed_s: float) -> None:
    """Telemetry for one finished job: hit/miss counter + elapsed summary."""
    registry = _metrics.REGISTRY
    if registry.enabled:
        registry.inc("sweep.jobs.cache_hit" if cache_hit else "sweep.jobs.executed")
        registry.observe("sweep.job.seconds", elapsed_s)


def _execute_job_in_worker(payload) -> JobOutcome:
    """Top-level worker entry point (must be picklable by the pool).

    Each job runs against a fresh local registry (so forked counter state
    is never double-reported) and ships its snapshot back on the outcome;
    with telemetry disabled the job runs bare and ships nothing.
    """
    job, store_root = payload
    store = ArtifactStore(store_root) if store_root is not None else None
    if not _metrics.REGISTRY.enabled:
        return execute_job(job, store=store)
    local = _metrics.MetricsRegistry()
    previous = _metrics.set_registry(local)
    try:
        outcome = execute_job(job, store=store)
    finally:
        _metrics.set_registry(previous)
    outcome.telemetry = local.snapshot()
    return outcome


def run_jobs(
    jobs: Sequence[SweepJob],
    parallelism: int = 1,
    store: Optional[ArtifactStore] = None,
) -> List[JobOutcome]:
    """Execute a job list, serially or on a process pool, in job order.

    ``parallelism`` ≤ 1 runs in-process (no pool, easiest to debug and
    profile); higher values spread cold jobs over worker processes that
    share the on-disk store.  The returned list always matches the order of
    ``jobs``.
    """
    if not jobs:
        return []
    if parallelism <= 1 or len(jobs) == 1:
        return [execute_job(job, store=store) for job in jobs]
    store_root = str(store.root) if store is not None else None
    workers = min(parallelism, len(jobs))
    payloads = [(job, store_root) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        outcomes = list(pool.map(_execute_job_in_worker, payloads, chunksize=1))
    # Fold each worker's snapshot into this process's registry, so `repro
    # stats` after a parallel sweep reads the same aggregate a serial run
    # would have recorded.
    registry = _metrics.REGISTRY
    if registry.enabled:
        for outcome in outcomes:
            registry.merge(outcome.telemetry)
    return outcomes


def outcome_rows(outcomes: Sequence[JobOutcome]) -> List[Dict[str, Any]]:
    """Flat dict rows (result metrics + job coordinates) for JSON/CSV export."""
    rows: List[Dict[str, Any]] = []
    for outcome in outcomes:
        row = outcome.result.as_dict()
        row["effort"] = outcome.job.options.effort
        row["cache_hit"] = outcome.cache_hit
        rows.append(row)
    return rows
