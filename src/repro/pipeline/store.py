"""Shared caching layer: in-memory LRU building block + on-disk artifact store.

Two storage primitives back every cache in the library:

* :class:`LRUCache` — the small generic thread-safe LRU originally grown for
  the multiplier/engine caches (now :mod:`repro.multipliers.cache` and the
  engine/backend registries, all of which import it from here).  Anything
  process-local and expensive to rebuild — generated multipliers, compiled
  engines, resolved backends — sits in one of these.
* :class:`ArtifactStore` — a content-addressed on-disk store for pipeline
  artifacts.  Keys are SHA-256 digests of a canonical-JSON *fingerprint* of
  everything that determines the artifact (method, modulus,
  :class:`~repro.synth.flow.SynthesisOptions`, device model, flow schema
  version), so any change to the inputs automatically misses the cache and
  stale entries are simply never addressed again.  Values are JSON (results,
  reports) or pickle (netlists, mapped networks) files laid out as::

      <root>/v1/<key[:2]>/<key>.json      # put_json / get_json
      <root>/v1/<key[:2]>/<key>.pkl       # put_pickle / get_pickle

  The default root is ``~/.cache/gf2m-repro`` (``$XDG_CACHE_HOME`` aware),
  overridable per call site (the CLI's ``--cache-dir``) or globally with the
  ``GF2M_REPRO_CACHE_DIR`` environment variable.  Writes are atomic
  (tempfile + rename), so concurrent sweep workers can share one store
  without locking.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import threading
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Dict, Hashable, NamedTuple, Optional

from ..telemetry import metrics as _metrics

__all__ = [
    "CacheInfo",
    "LRUCache",
    "ArtifactStore",
    "StoreInfo",
    "canonical_fingerprint",
    "default_cache_root",
    "named_caches",
]

#: Bumped whenever the flow produces different artifacts for identical
#: inputs (mapper/packer/timing changes), so old on-disk entries are
#: no longer addressed.
ARTIFACT_SCHEMA_VERSION = 1


class CacheInfo(NamedTuple):
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int


class LRUCache:
    """A bounded mapping with least-recently-used eviction and a lock.

    ``get_or_create`` is the primary interface: it runs the factory under the
    cache lock, so concurrent requests for the same key never duplicate the
    (potentially expensive) construction work.  Pure-Python multiplier
    generation holds the GIL anyway, so serializing builders costs nothing.

    A ``name`` registers the instance in the process-wide named-cache view
    (see :func:`named_caches`), which is how ``repro stats`` surfaces every
    long-lived memo — multipliers, compiled engines, bitsliced netlists,
    plane programs, FieldIR programs, backend instances — in one table.
    """

    def __init__(self, maxsize: int = 32, name: Optional[str] = None) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._maxsize = maxsize
        self.name = name
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        if name is not None:
            _NAMED_CACHES[name] = self

    def get_or_create(self, key: Hashable, factory: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building it with ``factory`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            value = factory()
            self._entries[key] = value
            if len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def peek(self, key: Hashable) -> Optional[object]:
        """The cached value for ``key`` (or None) without touching LRU order or stats."""
        with self._lock:
            return self._entries.get(key)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the statistics counters."""
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def info(self) -> CacheInfo:
        """Hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return CacheInfo(self._hits, self._misses, self._evictions, len(self._entries), self._maxsize)


#: Weak registry of named caches: entries disappear with their cache, so
#: tests that build throwaway instances never pollute ``repro stats``.
_NAMED_CACHES: "weakref.WeakValueDictionary[str, LRUCache]" = weakref.WeakValueDictionary()


def named_caches() -> Dict[str, LRUCache]:
    """The live named :class:`LRUCache` instances, by name."""
    return dict(_NAMED_CACHES)


# --------------------------------------------------------------------- disk


class StoreInfo(NamedTuple):
    """Effectiveness counters of one :class:`ArtifactStore` instance."""

    hits: int
    misses: int
    writes: int
    root: str


def default_cache_root() -> Path:
    """The default on-disk store location.

    Resolution order: ``$GF2M_REPRO_CACHE_DIR``, then
    ``$XDG_CACHE_HOME/gf2m-repro``, then ``~/.cache/gf2m-repro``.
    """
    override = os.environ.get("GF2M_REPRO_CACHE_DIR")
    if override:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg).expanduser() / "gf2m-repro"
    return Path.home() / ".cache" / "gf2m-repro"


def _jsonable(value: Any) -> Any:
    """Canonicalize a value for fingerprinting (dataclasses become sorted dicts)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name)) for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}: {value!r}")


def canonical_fingerprint(payload: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``.

    Dataclasses (``SynthesisOptions``, ``DeviceModel``, …) are flattened to
    name/value dicts, keys are sorted and floats use repr round-tripping, so
    the digest is stable across processes and Python versions but changes
    whenever any field of the inputs does — the cache-invalidation contract
    the sweep tests pin down.
    """
    text = json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Content-addressed JSON/pickle artifact files under one root directory.

    The store never interprets keys — callers derive them with
    :func:`canonical_fingerprint` from everything that determines the
    artifact.  Hit/miss/write counters are process-local (each sweep worker
    reports its own and the scheduler aggregates per-job flags).
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_cache_root()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0

    # ------------------------------------------------------------- layout
    def path_for(self, key: str, kind: str = "json") -> Path:
        """The file a given key/kind pair lives at (existing or not)."""
        if kind not in ("json", "pkl"):
            raise ValueError(f"unknown artifact kind {kind!r} (expected 'json' or 'pkl')")
        return self.root / f"v{ARTIFACT_SCHEMA_VERSION}" / key[:2] / f"{key}.{kind}"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key, "json").exists() or self.path_for(key, "pkl").exists()

    # -------------------------------------------------------------- access
    def _record(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1
        registry = _metrics.REGISTRY
        if registry.enabled:
            registry.inc("artifact_store.hits" if hit else "artifact_store.misses")

    def get_json(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored JSON payload for ``key``, or ``None`` on a miss."""
        path = self.path_for(key, "json")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            # Missing, truncated by a crashed writer, or corrupt: a miss.
            self._record(hit=False)
            return None
        self._record(hit=True)
        return payload

    def put_json(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically persist a JSON payload under ``key``; returns its path."""
        return self._write(self.path_for(key, "json"), json.dumps(payload, sort_keys=True, indent=1).encode("utf-8"))

    def get_pickle(self, key: str) -> Optional[Any]:
        """The stored pickled object for ``key``, or ``None`` on a miss."""
        path = self.path_for(key, "pkl")
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self._record(hit=False)
            return None
        self._record(hit=True)
        return value

    def put_pickle(self, key: str, value: Any) -> Path:
        """Atomically persist a pickled object under ``key``; returns its path."""
        return self._write(self.path_for(key, "pkl"), pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _write(self, path: Path, data: bytes) -> Path:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self._writes += 1
        registry = _metrics.REGISTRY
        if registry.enabled:
            registry.inc("artifact_store.writes")
        return path

    # ---------------------------------------------------------- maintenance
    def clear(self) -> int:
        """Delete every artifact of the current schema version; returns the count."""
        removed = 0
        version_dir = self.root / f"v{ARTIFACT_SCHEMA_VERSION}"
        if version_dir.exists():
            for path in sorted(version_dir.rglob("*")):
                if path.is_file():
                    path.unlink()
                    removed += 1
        with self._lock:
            self._hits = self._misses = self._writes = 0
        return removed

    def artifact_count(self) -> int:
        """Number of artifact files currently on disk (all kinds)."""
        version_dir = self.root / f"v{ARTIFACT_SCHEMA_VERSION}"
        if not version_dir.exists():
            return 0
        return sum(1 for path in version_dir.rglob("*") if path.is_file() and not path.name.endswith(".tmp"))

    def info(self) -> StoreInfo:
        """Hit/miss/write counters of this store instance."""
        with self._lock:
            return StoreInfo(self._hits, self._misses, self._writes, str(self.root))
