"""Parallel sweep pipeline with a persistent artifact store.

This package scales the implementation flow from "one multiplier at a time"
to production-size grids (ROADMAP: sharding, batching, caching):

* :mod:`repro.pipeline.store` — the shared caching layer: the generic
  thread-safe :class:`LRUCache` (also backing :mod:`repro.multipliers.cache`
  and the backend registry) and
  the content-addressed on-disk :class:`ArtifactStore` under
  ``~/.cache/gf2m-repro`` (or ``--cache-dir`` / ``$GF2M_REPRO_CACHE_DIR``);
* :mod:`repro.pipeline.stages` — the typed staged-job graph
  ``generate → restructure → map → pack → time → report`` over the stage
  functions of :mod:`repro.synth.flow` (the same functions ``implement()``
  drives serially);
* :mod:`repro.pipeline.scheduler` — :class:`SweepJob` execution, store-first,
  serially or on a process pool, with deterministic result ordering;
* :mod:`repro.pipeline.sweep` — the ``repro sweep`` grid API
  (field × method × device × effort) and its table/JSON/CSV renderers.

Quick start
-----------
>>> from repro.pipeline import run_sweep
>>> result = run_sweep(fields=[(8, 2)], methods=["thiswork"], jobs=1)
>>> [outcome.result.method for outcome in result.outcomes]
['thiswork']
"""

from .scheduler import JobOutcome, SweepJob, artifact_key, execute_job, run_jobs
from .stages import PIPELINE_STAGES, Stage, StageError, StageTrace, run_stages
from .store import (
    ArtifactStore,
    CacheInfo,
    LRUCache,
    StoreInfo,
    canonical_fingerprint,
    default_cache_root,
)
from .sweep import SweepResult, build_sweep_jobs, format_sweep, run_sweep

__all__ = [
    "JobOutcome",
    "SweepJob",
    "artifact_key",
    "execute_job",
    "run_jobs",
    "PIPELINE_STAGES",
    "Stage",
    "StageError",
    "StageTrace",
    "run_stages",
    "ArtifactStore",
    "CacheInfo",
    "LRUCache",
    "StoreInfo",
    "canonical_fingerprint",
    "default_cache_root",
    "SweepResult",
    "build_sweep_jobs",
    "format_sweep",
    "run_sweep",
]
