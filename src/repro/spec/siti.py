"""The S_i and T_i functions of the polynomial product (paper eq. (1)).

For ``A, B ∈ GF(2^m)`` with coordinates ``a_i, b_i``, the plain polynomial
product ``D(y) = A(y)·B(y)`` has coefficients ``d_0 .. d_(2m-2)``.  Imaña's
formulation (ref [6], reproduced as eq. (1) of the paper) names them:

* ``S_i`` for ``1 <= i <= m``    —  equals ``d_(i-1)`` (the "low" half),
* ``T_i`` for ``0 <= i <= m-2``  —  equals ``d_(m+i)`` (the "high" half),

each written as a sum of ``x_k`` and ``z_i^j`` atoms:

    S_i = x_p + sum_{h=0}^{p-1} z_h^{i-h-1},          p = floor(i/2)
    T_i = x_q + sum_{j=1}^{r-(i+1)} z_{i+j}^{m-j},    q = ceil(m/2) + floor(i/2)

where ``x_p`` only appears for odd ``i``; ``x_q`` only appears when ``m`` and
``i`` have the same parity (then ``r = q``), otherwise ``r = ceil(m/2) +
ceil(i/2)``.

This module constructs those atom lists and exposes the identities used by
the verification suite (``S_i == d_(i-1)``, ``T_i == d_(m+i)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, TYPE_CHECKING, Tuple

from .terms import atoms_to_string, pairs_of_atoms, x_atom, z_atom

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .terms import Atom, Pair

__all__ = [
    "STFunction",
    "s_function",
    "t_function",
    "all_s_functions",
    "all_t_functions",
    "st_functions",
    "convolution_pairs",
]


@dataclass(frozen=True)
class STFunction:
    """One ``S_i`` or ``T_i`` function: an ordered sum of atoms.

    Attributes
    ----------
    kind:
        ``"S"`` or ``"T"``.
    index:
        The function index ``i`` (1-based for S, 0-based for T, as in the paper).
    atoms:
        The atoms in paper order (the ``x`` atom first when present, then the
        ``z`` atoms in increasing subscript order).
    """

    kind: str
    index: int
    atoms: Tuple[Atom, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("S", "T"):
            raise ValueError(f"kind must be 'S' or 'T', got {self.kind!r}")

    @property
    def label(self) -> str:
        """Paper-style name, e.g. ``S5`` or ``T0``."""
        return f"{self.kind}{self.index}"

    @property
    def product_count(self) -> int:
        """Total number of partial products a_i·b_j in the function."""
        return sum(atom.product_count for atom in self.atoms)

    @property
    def has_x_atom(self) -> bool:
        """True when the function contains an ``x_k`` (diagonal) atom."""
        return any(atom.is_x for atom in self.atoms)

    def z_atoms(self) -> Tuple[Atom, ...]:
        """The ``z`` atoms of the function, in paper order."""
        return tuple(atom for atom in self.atoms if atom.is_z)

    def pairs(self) -> FrozenSet[Pair]:
        """All partial-product pairs covered by the function."""
        return pairs_of_atoms(self.atoms)

    def to_string(self) -> str:
        """Render the function as in the paper, e.g. ``T0 = x4 + z1^7 + z2^6 + z3^5``."""
        return f"{self.label} = {atoms_to_string(self.atoms)}"


def s_function(m: int, i: int) -> STFunction:
    """Build ``S_i`` for the field degree ``m`` (valid for ``1 <= i <= m``).

    >>> s_function(8, 5).to_string()
    'S5 = x2 + z0^4 + z1^3'
    """
    if not 1 <= i <= m:
        raise ValueError(f"S_i is defined for 1 <= i <= m; got i={i}, m={m}")
    p = i // 2
    atoms: List[Atom] = []
    if i % 2 == 1:
        atoms.append(x_atom(p))
    for h in range(p):
        atoms.append(z_atom(h, i - h - 1))
    return STFunction("S", i, tuple(atoms))


def t_function(m: int, i: int) -> STFunction:
    """Build ``T_i`` for the field degree ``m`` (valid for ``0 <= i <= m-2``).

    >>> t_function(8, 0).to_string()
    'T0 = x4 + z1^7 + z2^6 + z3^5'
    >>> t_function(8, 1).to_string()
    'T1 = z2^7 + z3^6 + z4^5'
    """
    if not 0 <= i <= m - 2:
        raise ValueError(f"T_i is defined for 0 <= i <= m-2; got i={i}, m={m}")
    ceil_half_m = (m + 1) // 2
    q = ceil_half_m + i // 2
    same_parity = (m % 2) == (i % 2)
    if same_parity:
        has_x = True
        r = q
    else:
        has_x = False
        r = ceil_half_m + (i + 1) // 2
    atoms: List[Atom] = []
    if has_x:
        atoms.append(x_atom(q))
    for j in range(1, r - (i + 1) + 1):
        atoms.append(z_atom(i + j, m - j))
    return STFunction("T", i, tuple(atoms))


def all_s_functions(m: int) -> List[STFunction]:
    """All ``S_1 .. S_m`` for degree ``m``."""
    return [s_function(m, i) for i in range(1, m + 1)]


def all_t_functions(m: int) -> List[STFunction]:
    """All ``T_0 .. T_(m-2)`` for degree ``m``."""
    return [t_function(m, i) for i in range(m - 1)]


def st_functions(m: int) -> Dict[str, STFunction]:
    """All S and T functions keyed by their paper label (``"S1"`` .. ``"T6"``)."""
    functions = all_s_functions(m) + all_t_functions(m)
    return {function.label: function for function in functions}


def convolution_pairs(m: int, degree: int) -> FrozenSet[Pair]:
    """Partial-product pairs of the plain product coefficient ``d_degree``.

    ``d_t = sum_{i+j=t} a_i·b_j`` with ``0 <= i, j <= m-1``.  The S/T
    identities ``S_i == d_(i-1)`` and ``T_i == d_(m+i)`` are checked against
    this function by the tests.

    >>> sorted(convolution_pairs(4, 5))
    [(2, 3), (3, 2)]
    """
    if not 0 <= degree <= 2 * m - 2:
        raise ValueError(f"product degrees range over 0..2m-2; got {degree} for m={m}")
    pairs = set()
    for i in range(max(0, degree - m + 1), min(m - 1, degree) + 1):
        pairs.add((i, degree - i))
    return frozenset(pairs)
