"""Parenthesized (delay-restricted) coefficient expressions — paper Table III.

Ref [7] (Imaña 2016) minimises the number of XOR levels by adding split
terms *in pairs of equal depth*, starting from the shallowest: two depth-j
complete trees combine into a depth-(j+1) complete tree.  The paper writes
the result with explicit parentheses (its Table III) and introduces the
shorthand ``T^(k+1)_(i,j) = T^k_i + T^k_j`` and ``ST^(k+1)_(i,j) = S^k_i +
T^k_j`` for the combined nodes.

This module reproduces that pairing with a Huffman-style greedy algorithm:
repeatedly pop the two shallowest remaining operands and replace them by a
combined node one level deeper than the deeper of the two.  For GF(2^8) this
yields the paper's theoretical delay of ``T_A + 5·T_X`` (the deepest output
needs five XOR levels above the AND plane) and the gate counts quoted in
Section II (64 AND, 87 XOR when the combination nodes are not shared).

The resulting :class:`PairTree` preserves the full association structure, so
the ``imana2016`` multiplier generator can build a netlist that honours the
"hard parenthesized restrictions" exactly as the reference method would.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING, Tuple

from ..galois.gf2poly import degree
from .reduction import split_coefficients

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .reduction import SplitCoefficient
    from .splitting import SplitTerm

__all__ = ["PairTree", "parenthesize_coefficient", "parenthesized_coefficients", "ParenthesizedCoefficient"]


@dataclass(frozen=True)
class PairTree:
    """A node of the parenthesized association tree of one coefficient.

    A leaf wraps a single :class:`SplitTerm`; an internal node represents the
    XOR of its two children and sits one level above the deeper child.
    """

    level: int
    term: Optional[SplitTerm] = None
    left: Optional["PairTree"] = None
    right: Optional["PairTree"] = None

    @property
    def is_leaf(self) -> bool:
        """True for a leaf wrapping a split term."""
        return self.term is not None

    def leaves(self) -> List[SplitTerm]:
        """All split terms under this node, left to right."""
        if self.is_leaf:
            return [self.term]
        return self.left.leaves() + self.right.leaves()

    def depth_above_terms(self) -> int:
        """XOR levels contributed by the association structure itself.

        The total XOR depth of the coefficient is ``level`` (the split terms
        already account for their internal complete-tree depth); this helper
        reports only the combination levels, which is occasionally useful in
        complexity accounting.
        """
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth_above_terms(), self.right.depth_above_terms())

    def to_string(self) -> str:
        """Render with explicit parentheses, mirroring the paper's Table III.

        >>> # built via parenthesize_coefficient; see its doctest
        """
        if self.is_leaf:
            return self.term.label
        return f"({self.left.to_string()} + {self.right.to_string()})"


@dataclass(frozen=True)
class ParenthesizedCoefficient:
    """One output coefficient with the delay-driven association structure."""

    k: int
    tree: PairTree

    @property
    def xor_depth(self) -> int:
        """XOR levels from the AND plane to the coefficient output."""
        return self.tree.level

    def terms(self) -> List[SplitTerm]:
        """The split terms feeding the coefficient, in association order."""
        return self.tree.leaves()

    def to_string(self) -> str:
        """Render as ``c3 = ((..) + ..) + (..)`` with the paper's parentheses."""
        rendered = self.tree.to_string()
        if rendered.startswith("(") and rendered.endswith(")"):
            rendered = rendered[1:-1]
        return f"c{self.k} = {rendered}"


def parenthesize_coefficient(coefficient: SplitCoefficient) -> ParenthesizedCoefficient:
    """Apply the equal-depth pairing of ref [7] to one flat coefficient.

    The two shallowest operands are combined first; ties are broken by the
    original term order so that the output is deterministic.

    >>> from .reduction import split_coefficients
    >>> flat = split_coefficients(0b100011101)          # GF(2^8), (8, 2)
    >>> parenthesize_coefficient(flat[7]).xor_depth
    5
    """
    counter = itertools.count()
    heap: List[Tuple[int, int, PairTree]] = []
    for term in coefficient.terms:
        heapq.heappush(heap, (term.level, next(counter), PairTree(level=term.level, term=term)))
    if not heap:
        raise ValueError(f"coefficient c{coefficient.k} has no terms")
    while len(heap) > 1:
        level_a, _, tree_a = heapq.heappop(heap)
        level_b, _, tree_b = heapq.heappop(heap)
        combined = PairTree(level=max(level_a, level_b) + 1, left=tree_a, right=tree_b)
        heapq.heappush(heap, (combined.level, next(counter), combined))
    _, _, tree = heap[0]
    return ParenthesizedCoefficient(coefficient.k, tree)


def parenthesized_coefficients(modulus: int) -> List[ParenthesizedCoefficient]:
    """Parenthesized expressions for every coefficient of the given modulus.

    For the paper's GF(2^8) field this reproduces the delay bound of
    Table III: ``max_k xor_depth == 5`` (i.e. overall delay T_A + 5 T_X).
    """
    if degree(modulus) < 2:
        raise ValueError("parenthesization needs a modulus of degree >= 2")
    return [parenthesize_coefficient(coefficient) for coefficient in split_coefficients(modulus)]
