"""ProductSpec: the exact partial-product composition of every output bit.

A :class:`ProductSpec` records, for each coefficient ``c_k`` of the field
product ``C = A·B mod f``, the set of partial-product pairs ``(i, j)``
(meaning ``a_i·b_j``) whose GF(2) sum equals ``c_k``.  It is derived directly
from the reduction matrix, independent of any particular multiplier
construction, and therefore serves as the *golden functional reference*:

* every multiplier generator is formally checked against it
  (:func:`repro.netlist.verify.verify_netlist`),
* it can itself be evaluated on concrete operands, which the test-suite
  cross-checks against :class:`repro.galois.field.GF2mField`.

Because all pairs reaching a given output through different product degrees
are distinct, the union of pair sets involves no cancellation and is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, TYPE_CHECKING, Tuple

from ..galois.gf2poly import degree
from ..galois.matrices import reduction_matrix
from .siti import convolution_pairs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .terms import Pair

__all__ = ["ProductSpec"]


@dataclass(frozen=True)
class ProductSpec:
    """Partial-product composition of a GF(2^m) polynomial-basis multiplier.

    Attributes
    ----------
    modulus:
        The defining polynomial ``f(y)`` as an integer.
    outputs:
        Tuple of ``m`` frozensets; entry ``k`` holds the pairs of ``c_k``.
    """

    modulus: int
    outputs: Tuple[FrozenSet[Pair], ...]

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_modulus(cls, modulus: int) -> "ProductSpec":
        """Build the spec for an arbitrary defining polynomial.

        ``c_k = d_k + sum_i R[i][k]·d_(m+i)`` where ``R`` is the reduction
        matrix and ``d_t`` the plain product coefficients.
        """
        m = degree(modulus)
        if m < 1:
            raise ValueError("the modulus must have degree >= 1")
        rows = reduction_matrix(modulus)
        outputs: List[FrozenSet[Pair]] = []
        degree_pairs = [convolution_pairs(m, t) for t in range(2 * m - 1)]
        for k in range(m):
            pairs = set(degree_pairs[k])
            for i, row in enumerate(rows):
                if row[k]:
                    pairs |= degree_pairs[m + i]
            outputs.append(frozenset(pairs))
        return cls(modulus, tuple(outputs))

    @classmethod
    def from_pair_sets(cls, modulus: int, pair_sets: Sequence[FrozenSet[Pair]]) -> "ProductSpec":
        """Wrap externally computed pair sets (used by alternative derivations)."""
        m = degree(modulus)
        if len(pair_sets) != m:
            raise ValueError(f"expected {m} outputs, got {len(pair_sets)}")
        return cls(modulus, tuple(frozenset(p) for p in pair_sets))

    # ------------------------------------------------------------------- views
    @property
    def m(self) -> int:
        """The field degree (number of output bits)."""
        return len(self.outputs)

    def pairs(self, k: int) -> FrozenSet[Pair]:
        """The pair set of output coefficient ``c_k``."""
        return self.outputs[k]

    def pair_count(self, k: int) -> int:
        """Number of partial products feeding ``c_k``."""
        return len(self.outputs[k])

    def total_pair_references(self) -> int:
        """Sum of pair counts over all outputs (a proxy for XOR work)."""
        return sum(len(pairs) for pairs in self.outputs)

    def distinct_pairs(self) -> FrozenSet[Pair]:
        """All partial products used anywhere (always the full m×m grid)."""
        everything: set = set()
        for pairs in self.outputs:
            everything |= pairs
        return frozenset(everything)

    def as_dict(self) -> Dict[int, FrozenSet[Pair]]:
        """Mapping from output index to pair set."""
        return {k: pairs for k, pairs in enumerate(self.outputs)}

    # -------------------------------------------------------------- evaluation
    def evaluate(self, a: int, b: int) -> int:
        """Evaluate the spec on concrete operands (an independent multiplier).

        Used by tests to cross-check against the reference field arithmetic.
        """
        m = self.m
        a_bits = [(a >> i) & 1 for i in range(m)]
        b_bits = [(b >> i) & 1 for i in range(m)]
        result = 0
        for k, pairs in enumerate(self.outputs):
            bit = 0
            for i, j in pairs:
                bit ^= a_bits[i] & b_bits[j]
            if bit:
                result |= 1 << k
        return result

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ProductSpec)
            and other.modulus == self.modulus
            and other.outputs == self.outputs
        )

    def __hash__(self) -> int:
        return hash((self.modulus, self.outputs))
