"""Symbolic product algebra: S_i/T_i functions, splitting, reduction, pairing.

This subpackage is the paper's mathematics made executable.  It knows nothing
about gates or FPGAs — it manipulates sets of partial products — and it is
the single source of truth for what every multiplier circuit must compute.
"""

from .parenthesize import (
    PairTree,
    ParenthesizedCoefficient,
    parenthesize_coefficient,
    parenthesized_coefficients,
)
from .product_spec import ProductSpec
from .reduction import (
    SplitCoefficient,
    STCoefficient,
    coefficient_pairs,
    spec_from_st,
    split_coefficients,
    st_coefficients,
)
from .siti import (
    STFunction,
    all_s_functions,
    all_t_functions,
    convolution_pairs,
    s_function,
    st_functions,
    t_function,
)
from .splitting import SplitTerm, split_all_functions, split_function, split_table
from .terms import Atom, Pair, atoms_to_string, pairs_of_atoms, x_atom, z_atom

__all__ = [
    "PairTree",
    "ParenthesizedCoefficient",
    "parenthesize_coefficient",
    "parenthesized_coefficients",
    "ProductSpec",
    "SplitCoefficient",
    "STCoefficient",
    "coefficient_pairs",
    "spec_from_st",
    "split_coefficients",
    "st_coefficients",
    "STFunction",
    "all_s_functions",
    "all_t_functions",
    "convolution_pairs",
    "s_function",
    "st_functions",
    "t_function",
    "SplitTerm",
    "split_all_functions",
    "split_function",
    "split_table",
    "Atom",
    "Pair",
    "atoms_to_string",
    "pairs_of_atoms",
    "x_atom",
    "z_atom",
]
