"""Splitting of S_i / T_i into complete-binary-tree terms S_i^j / T_i^j.

Ref [7] (Imaña 2016) observed that a function containing ``N`` partial
products can be decomposed according to the binary expansion of ``N``: each
group of ``2^j`` products forms a term that is implementable as a *complete*
binary XOR tree of depth ``j``.  The paper's Table II lists this splitting
for GF(2^8); this module performs it for arbitrary ``m`` with the same
grouping convention as the paper:

* the ``x_k`` atom (a single product), when present, becomes the level-0 term;
* the ``z`` atoms (two products each) are consumed front-to-back, the group
  sizes following the binary expansion of the z-count from the least
  significant bit upward (so ``T_0`` of GF(2^8), with three z atoms, yields a
  level-1 term ``z_1^7`` followed by a level-2 term ``z_2^6 + z_3^5``,
  exactly as in Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, TYPE_CHECKING, Tuple

from .siti import all_s_functions, all_t_functions
from .terms import atoms_to_string, pairs_of_atoms

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .siti import STFunction
    from .terms import Atom, Pair

__all__ = ["SplitTerm", "split_function", "split_all_functions", "split_table"]


@dataclass(frozen=True, order=True)
class SplitTerm:
    """A term ``S_i^j`` or ``T_i^j``: exactly ``2^j`` partial products.

    Attributes
    ----------
    kind:
        ``"S"`` or ``"T"``.
    index:
        The function index ``i``.
    level:
        The depth ``j`` of the complete binary XOR tree implementing the term.
    atoms:
        The atoms grouped into this term (their product counts sum to ``2^level``).
    """

    kind: str
    index: int
    level: int
    atoms: Tuple[Atom, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("S", "T"):
            raise ValueError(f"kind must be 'S' or 'T', got {self.kind!r}")
        if self.level < 0:
            raise ValueError("split levels are non-negative")
        count = sum(atom.product_count for atom in self.atoms)
        if count != 1 << self.level:
            raise ValueError(
                f"{self.kind}{self.index}^{self.level} must contain {1 << self.level} "
                f"partial products, got {count}"
            )

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``S8^3`` or ``T0^2``."""
        return f"{self.kind}{self.index}^{self.level}"

    @property
    def product_count(self) -> int:
        """Number of partial products (always ``2**level``)."""
        return 1 << self.level

    def pairs(self) -> FrozenSet[Pair]:
        """All partial-product pairs of this term."""
        return pairs_of_atoms(self.atoms)

    def to_string(self) -> str:
        """Render the term as in the paper's Table II, e.g. ``T0^2 = (z2^6 + z3^5)``."""
        body = atoms_to_string(self.atoms)
        if len(self.atoms) > 1:
            body = f"({body})"
        return f"{self.label} = {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SplitTerm({self.label})"


def split_function(function: STFunction) -> List[SplitTerm]:
    """Split one ``S_i``/``T_i`` into its ``S_i^j``/``T_i^j`` terms.

    The returned list is ordered by increasing level, matching the paper's
    convention of writing ``S_i = s^i_rho S_i^rho + ... + s^i_0 S_i^0`` with
    only the non-zero terms kept.

    >>> from .siti import t_function
    >>> [term.to_string() for term in split_function(t_function(8, 0))]
    ['T0^0 = x4', 'T0^1 = z1^7', 'T0^2 = (z2^6 + z3^5)']
    """
    terms: List[SplitTerm] = []
    x_atoms = [atom for atom in function.atoms if atom.is_x]
    z_atoms = [atom for atom in function.atoms if atom.is_z]
    if len(x_atoms) > 1:
        raise ValueError(f"{function.label} unexpectedly contains more than one x atom")
    if x_atoms:
        terms.append(SplitTerm(function.kind, function.index, 0, (x_atoms[0],)))
    z_count = len(z_atoms)
    cursor = 0
    bit = 0
    while (1 << bit) <= z_count:
        if z_count >> bit & 1:
            group = tuple(z_atoms[cursor:cursor + (1 << bit)])
            cursor += 1 << bit
            terms.append(SplitTerm(function.kind, function.index, bit + 1, group))
        bit += 1
    return sorted(terms, key=lambda term: term.level)


def split_all_functions(m: int) -> Dict[str, List[SplitTerm]]:
    """Split every S and T function of degree ``m``; keyed by function label.

    >>> table = split_all_functions(8)
    >>> [term.label for term in table['S8']]
    ['S8^3']
    """
    result: Dict[str, List[SplitTerm]] = {}
    for function in all_s_functions(m) + all_t_functions(m):
        result[function.label] = split_function(function)
    return result


def split_table(m: int) -> Dict[str, SplitTerm]:
    """All split terms of degree ``m`` keyed by their own label (``"T0^2"`` ...).

    This is the machine-readable version of the paper's Table II.
    """
    table: Dict[str, SplitTerm] = {}
    for terms in split_all_functions(m).values():
        for term in terms:
            table[term.label] = term
    return table
