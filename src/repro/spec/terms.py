"""Atomic partial-product terms used by the S_i / T_i algebra.

The paper (following Imaña 2012, ref [6]) expresses every coefficient of the
polynomial product ``D = A·B`` as a XOR of two kinds of atoms:

* ``x_k  = a_k·b_k``                      — one partial product,
* ``z_i^j = a_i·b_j + a_j·b_i`` (i < j)   — two partial products.

An :class:`Atom` is either of those.  The fundamental currency below the
atoms is the *partial-product pair* ``(i, j)`` meaning ``a_i·b_j``; every
higher-level object (atoms, split terms, S/T functions, product
coefficients) ultimately reduces to a set of such pairs, which is what the
formal verification in :mod:`repro.netlist.verify` compares against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

__all__ = ["Pair", "Atom", "x_atom", "z_atom", "pairs_of_atoms", "atoms_to_string"]

#: A partial product a_i * b_j, encoded as the index pair (i, j).
Pair = Tuple[int, int]


@dataclass(frozen=True, order=True)
class Atom:
    """A single ``x_k`` or ``z_i^j`` term.

    Attributes
    ----------
    i, j:
        For an ``x`` atom ``i == j == k``.  For a ``z`` atom ``i < j`` and the
        atom denotes ``a_i·b_j + a_j·b_i`` (paper notation ``z_i^j`` with
        subscript ``i`` and superscript ``j``).
    """

    i: int
    j: int

    def __post_init__(self) -> None:
        if self.i < 0 or self.j < 0:
            raise ValueError("atom indices must be non-negative")
        if self.i > self.j:
            raise ValueError(f"z atoms are canonicalized with i <= j, got ({self.i}, {self.j})")

    @property
    def is_x(self) -> bool:
        """True for an ``x_k = a_k·b_k`` atom."""
        return self.i == self.j

    @property
    def is_z(self) -> bool:
        """True for a ``z_i^j`` atom (two symmetric partial products)."""
        return self.i != self.j

    @property
    def product_count(self) -> int:
        """Number of partial products contained in the atom (1 or 2)."""
        return 1 if self.is_x else 2

    def pairs(self) -> FrozenSet[Pair]:
        """The set of partial-product pairs represented by this atom.

        >>> sorted(z_atom(1, 7).pairs())
        [(1, 7), (7, 1)]
        >>> sorted(x_atom(4).pairs())
        [(4, 4)]
        """
        if self.is_x:
            return frozenset({(self.i, self.i)})
        return frozenset({(self.i, self.j), (self.j, self.i)})

    def label(self) -> str:
        """Paper-style label: ``x4`` or ``z1^7``."""
        if self.is_x:
            return f"x{self.i}"
        return f"z{self.i}^{self.j}"

    def expression(self) -> str:
        """Expanded boolean expression, e.g. ``(a1*b7 + a7*b1)``."""
        if self.is_x:
            return f"a{self.i}*b{self.i}"
        return f"(a{self.i}*b{self.j} + a{self.j}*b{self.i})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Atom({self.label()})"


def x_atom(k: int) -> Atom:
    """Construct the atom ``x_k = a_k·b_k``."""
    return Atom(k, k)


def z_atom(i: int, j: int) -> Atom:
    """Construct the atom ``z_i^j = a_i·b_j + a_j·b_i`` (indices are sorted).

    >>> z_atom(7, 1) == z_atom(1, 7)
    True
    """
    if i == j:
        raise ValueError("z atoms need two distinct indices; use x_atom for a_k*b_k")
    lo, hi = (i, j) if i < j else (j, i)
    return Atom(lo, hi)


def pairs_of_atoms(atoms: Iterable[Atom]) -> FrozenSet[Pair]:
    """Union of the partial-product pairs of a collection of atoms.

    Atoms never overlap (each pair belongs to exactly one atom), so the union
    is also the GF(2) sum.
    """
    pairs: set = set()
    for atom in atoms:
        pairs |= atom.pairs()
    return frozenset(pairs)


def atoms_to_string(atoms: Iterable[Atom]) -> str:
    """Readable sum of atoms, e.g. ``x4 + z1^7 + z2^6 + z3^5``."""
    labels = [atom.label() for atom in atoms]
    return " + ".join(labels) if labels else "0"
