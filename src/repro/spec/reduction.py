"""Reduction of the S_i / T_i functions into product coefficients.

The plain product coefficients are ``d_(i-1) = S_i`` and ``d_(m+i) = T_i``.
Reduction modulo the defining polynomial is GF(2)-linear, so every output
coefficient is

    c_k = S_(k+1) + sum over { T_i : R[i][k] = 1 }

where ``R`` is the reduction matrix.  This module materialises that mapping
in three closely related forms:

* :func:`st_coefficients`      — which ``S``/``T`` functions feed each ``c_k``
  (the paper's Table I for GF(2^8) with (m, n) = (8, 2));
* :func:`split_coefficients`   — the same but with every function replaced by
  its split terms ``S_i^j`` / ``T_i^j`` as one *flat* XOR list (the paper's
  Table IV — the proposed "give the synthesiser freedom" form);
* :func:`coefficient_pairs`    — fully expanded to partial-product pairs,
  which must agree with :class:`~repro.spec.product_spec.ProductSpec`.

All three work for any defining polynomial, not just type II pentanomials;
the type II structure only makes the resulting expressions particularly
regular and sparse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, TYPE_CHECKING, Tuple

from ..galois.gf2poly import degree
from ..galois.matrices import reduction_matrix
from .product_spec import ProductSpec
from .siti import st_functions
from .splitting import split_all_functions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .siti import STFunction
    from .splitting import SplitTerm
    from .terms import Pair

__all__ = [
    "STCoefficient",
    "st_coefficients",
    "SplitCoefficient",
    "split_coefficients",
    "coefficient_pairs",
    "spec_from_st",
]


@dataclass(frozen=True)
class STCoefficient:
    """One output coefficient expressed as a XOR of whole S/T functions.

    ``c_k = S_(k+1) + T_(i1) + T_(i2) + ...`` — this is the representation of
    the paper's Table I.
    """

    k: int
    s_indices: Tuple[int, ...]
    t_indices: Tuple[int, ...]

    @property
    def labels(self) -> Tuple[str, ...]:
        """Function labels in paper order (S terms first, then T terms)."""
        return tuple(f"S{i}" for i in self.s_indices) + tuple(f"T{i}" for i in self.t_indices)

    def to_string(self) -> str:
        """Render as in Table I, e.g. ``c0 = S1 + T0 + T4 + T5 + T6``."""
        return f"c{self.k} = " + " + ".join(self.labels)


def st_coefficients(modulus: int) -> List[STCoefficient]:
    """Express every ``c_k`` as a sum of S/T functions for the given modulus.

    >>> rows = st_coefficients(0b100011101)       # GF(2^8), (m, n) = (8, 2)
    >>> rows[0].to_string()
    'c0 = S1 + T0 + T4 + T5 + T6'
    >>> rows[5].to_string()
    'c5 = S6 + T1 + T2 + T3'
    """
    m = degree(modulus)
    if m < 2:
        raise ValueError("S/T reduction needs a modulus of degree >= 2")
    rows = reduction_matrix(modulus)
    coefficients = []
    for k in range(m):
        t_indices = tuple(i for i, row in enumerate(rows) if row[k])
        coefficients.append(STCoefficient(k, (k + 1,), t_indices))
    return coefficients


@dataclass(frozen=True)
class SplitCoefficient:
    """One output coefficient as a flat XOR of split terms (paper Table IV).

    The ordering follows the paper: the S terms of the coefficient first
    (higher level first within a function), then the T terms grouped per
    function in increasing function index, each with higher level first.
    """

    k: int
    terms: Tuple[SplitTerm, ...]

    @property
    def labels(self) -> Tuple[str, ...]:
        """The split-term labels, e.g. ``('S1^0', 'T0^2', 'T0^1', ...)``."""
        return tuple(term.label for term in self.terms)

    def to_string(self) -> str:
        """Render as in Table IV, e.g. ``c1 = S2^1 + T1^2 + T1^1 + T5^1 + T6^0``."""
        return f"c{self.k} = " + " + ".join(self.labels)

    def pairs(self) -> FrozenSet[Pair]:
        """Fully expanded partial-product pairs of the coefficient."""
        pairs: set = set()
        for term in self.terms:
            pairs |= term.pairs()
        return frozenset(pairs)

    def max_level(self) -> int:
        """The deepest split term feeding this coefficient."""
        return max((term.level for term in self.terms), default=0)


def split_coefficients(modulus: int) -> List[SplitCoefficient]:
    """The flat (non-parenthesized) coefficient expressions — paper Table IV.

    >>> rows = split_coefficients(0b100011101)
    >>> rows[7].to_string()
    'c7 = S8^3 + T3^2 + T4^1 + T4^0 + T5^1'
    """
    m = degree(modulus)
    split_map = split_all_functions(m)
    coefficients = []
    for st_row in st_coefficients(modulus):
        terms: List[SplitTerm] = []
        for s_index in st_row.s_indices:
            terms.extend(sorted(split_map[f"S{s_index}"], key=lambda t: -t.level))
        for t_index in st_row.t_indices:
            terms.extend(sorted(split_map[f"T{t_index}"], key=lambda t: -t.level))
        coefficients.append(SplitCoefficient(st_row.k, tuple(terms)))
    return coefficients


def coefficient_pairs(modulus: int) -> List[FrozenSet[Pair]]:
    """Partial-product pair sets of every coefficient, derived via S/T functions.

    This is an independent derivation of the same information produced by
    :meth:`ProductSpec.from_modulus`; the test suite requires the two to be
    identical for every field in the paper's catalog.
    """
    m = degree(modulus)
    functions: Dict[str, STFunction] = st_functions(m)
    pair_sets: List[FrozenSet[Pair]] = []
    for st_row in st_coefficients(modulus):
        pairs: set = set()
        for label in st_row.labels:
            pairs |= functions[label].pairs()
        pair_sets.append(frozenset(pairs))
    return pair_sets


def spec_from_st(modulus: int) -> ProductSpec:
    """Build a :class:`ProductSpec` through the S/T route (for cross-checking)."""
    return ProductSpec.from_pair_sets(modulus, coefficient_pairs(modulus))
