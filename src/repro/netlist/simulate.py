"""Bit-parallel functional simulation of XOR/AND netlists.

Simulation packs many test vectors into the bits of Python integers, so one
pass over the netlist evaluates an arbitrary number of operand pairs at
once.  The helpers below understand the multiplier I/O convention used
throughout the project: operand ``A`` drives inputs ``a0 .. a(m-1)``,
operand ``B`` drives ``b0 .. b(m-1)`` and the product appears on outputs
``c0 .. c(m-1)``.

:func:`simulate` and :func:`simulate_words` are the *interpreted reference
path*: a readable per-node walk with per-bit packing loops, kept deliberately
simple because every faster path is validated against it.  Production batch
traffic should go through :mod:`repro.engine`, which compiles the netlist
once and replaces the O(pairs×bits) packing loops with word-level
transposes; the :func:`multiply_words` and :func:`multiply_with_netlist`
conveniences below already route through a cached engine.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TYPE_CHECKING

from .netlist import OP_AND, OP_CONST0, OP_INPUT, OP_XOR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .netlist import Netlist

__all__ = ["simulate", "simulate_words", "multiply_with_netlist", "multiply_words"]


def simulate(netlist: Netlist, assignments: Dict[str, int], width: int = 1) -> Dict[str, int]:
    """Evaluate the netlist on bit-packed input words.

    ``assignments`` maps every primary-input name to an integer whose low
    ``width`` bits are that input's value across the ``width`` parallel test
    vectors.  The result maps output names to similarly packed words.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    mask = (1 << width) - 1
    values: List[int] = [0] * netlist.node_count
    for name in netlist.inputs:
        if name not in assignments:
            raise KeyError(f"no value supplied for primary input {name!r}")
        word = assignments[name]
        if word < 0 or word.bit_length() > width:
            raise ValueError(
                f"assignment for input {name!r} needs {word.bit_length()} bits "
                f"but width is {width}; widen the simulation instead of silently "
                "dropping test vectors"
            )
        values[netlist.input_node(name)] = word
    for node in netlist.nodes():
        op = netlist.op(node)
        if op in (OP_INPUT, OP_CONST0):
            continue
        fanin0, fanin1 = netlist.fanins(node)
        if op == OP_AND:
            values[node] = values[fanin0] & values[fanin1]
        elif op == OP_XOR:
            values[node] = values[fanin0] ^ values[fanin1]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown op code {op} at node {node}")
    return {name: values[node] & mask for name, node in netlist.outputs}


def _pack_operand(values: Sequence[int], bit_index: int) -> int:
    """Pack bit ``bit_index`` of every operand word into one simulation word."""
    packed = 0
    for position, value in enumerate(values):
        if (value >> bit_index) & 1:
            packed |= 1 << position
    return packed


def simulate_words(netlist: Netlist, m: int, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
    """Run the multiplier netlist on parallel operand words.

    ``a_values`` and ``b_values`` must have equal length; the returned list
    holds the product word for each pair.
    """
    if len(a_values) != len(b_values):
        raise ValueError("a_values and b_values must have the same length")
    width = max(1, len(a_values))
    assignments: Dict[str, int] = {}
    for i in range(m):
        assignments[f"a{i}"] = _pack_operand(a_values, i)
        assignments[f"b{i}"] = _pack_operand(b_values, i)
    # Some optimized netlists may not reference every input bit; feed them anyway.
    for name in netlist.inputs:
        assignments.setdefault(name, 0)
    outputs = simulate(netlist, assignments, width)
    results = [0] * len(a_values)
    for k in range(m):
        word = outputs.get(f"c{k}", 0)
        for position in range(len(a_values)):
            if (word >> position) & 1:
                results[position] |= 1 << k
    return results


def multiply_words(netlist: Netlist, m: int, a_values: Sequence[int], b_values: Sequence[int]) -> List[int]:
    """Batch multiplication through the compiled engine (cached per netlist).

    Functionally identical to :func:`simulate_words` but routed through
    :func:`repro.engine.engine.engine_for_netlist`, which compiles the
    netlist on first use and amortizes that cost over subsequent calls.
    """
    if len(a_values) != len(b_values):
        raise ValueError("a_values and b_values must have the same length")
    from ..engine.engine import engine_for_netlist

    try:
        engine = engine_for_netlist(netlist, m, mode="exec")
    except ValueError:
        # Netlists outside the strict a<i>/b<j> → c<k> convention (extra
        # inputs, missing outputs) keep the tolerant interpreted semantics.
        return simulate_words(netlist, m, a_values, b_values)
    return engine.multiply_batch(a_values, b_values)


def multiply_with_netlist(netlist: Netlist, m: int, a: int, b: int) -> int:
    """Multiply a single pair of field elements with the netlist.

    Uses the flat ``arrays`` engine (no code generation), so one-off calls
    never pay the straight-line compilation cost while repeated calls still
    skip the per-node dispatch of :func:`simulate`.
    """
    from ..engine.engine import engine_for_netlist

    try:
        engine = engine_for_netlist(netlist, m, mode="arrays")
    except ValueError:
        return simulate_words(netlist, m, [a], [b])[0]
    return engine.multiply(a, b)
