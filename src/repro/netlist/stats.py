"""Structural statistics of multiplier netlists.

These numbers (2-input AND/XOR counts and gate depth) correspond directly to
the theoretical "space" and "time" complexities quoted in the paper's
Section II, e.g. 64 AND + 87 XOR gates and a delay of ``T_A + 5 T_X`` for
the parenthesized GF(2^8) multiplier of ref [7].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, TYPE_CHECKING

from .netlist import OP_AND, OP_XOR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .netlist import Netlist

__all__ = ["NetlistStats", "gather_stats"]


@dataclass(frozen=True)
class NetlistStats:
    """Summary of a netlist's structural complexity.

    Attributes
    ----------
    name:
        The netlist (usually generator) name.
    inputs, outputs:
        Primary I/O counts.
    and_gates, xor_gates:
        Live 2-input gate counts.
    depth:
        Gate levels on the longest path (AND plane included).
    xor_depth:
        XOR levels on the longest path (i.e. the ``k`` of ``T_A + k·T_X``).
    max_fanout:
        Largest fanout of any node — a proxy for routing stress on FPGAs.
    """

    name: str
    inputs: int
    outputs: int
    and_gates: int
    xor_gates: int
    depth: int
    xor_depth: int
    max_fanout: int

    @property
    def total_gates(self) -> int:
        """Total number of live 2-input gates."""
        return self.and_gates + self.xor_gates

    def delay_expression(self) -> str:
        """The paper-style delay formula, e.g. ``TA + 5TX``."""
        if self.and_gates == 0:
            return f"{self.xor_depth}TX"
        return f"TA + {self.xor_depth}TX"

    def as_dict(self) -> Dict[str, int]:
        """Plain-dictionary view, convenient for table rendering."""
        return {
            "inputs": self.inputs,
            "outputs": self.outputs,
            "and_gates": self.and_gates,
            "xor_gates": self.xor_gates,
            "total_gates": self.total_gates,
            "depth": self.depth,
            "xor_depth": self.xor_depth,
            "max_fanout": self.max_fanout,
        }


def gather_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist (live logic only)."""
    live = set(netlist.live_nodes())
    and_gates = 0
    xor_gates = 0
    for node in live:
        op = netlist.op(node)
        if op == OP_AND:
            and_gates += 1
        elif op == OP_XOR:
            xor_gates += 1
    levels = netlist.levels()
    depth = max((levels[node] for _, node in netlist.outputs), default=0)
    fanouts = netlist.fanout_counts()
    max_fanout = max((fanouts[node] for node in live), default=0)
    # XOR depth: the longest path counted in XOR gates only.  For the AND-plane
    # + XOR-tree circuits generated here every path passes through exactly one
    # AND gate, so this is depth-1 whenever AND gates exist.
    xor_depth = max(0, depth - 1) if and_gates else depth
    return NetlistStats(
        name=netlist.name,
        inputs=len(netlist.inputs),
        outputs=len(netlist.outputs),
        and_gates=and_gates,
        xor_gates=xor_gates,
        depth=depth,
        xor_depth=xor_depth,
        max_fanout=max_fanout,
    )
