"""Gate-level netlist IR for bit-parallel GF(2^m) multipliers.

The circuits generated in this project are XOR/AND networks (XAGs): a plane
of 2-input AND gates producing partial products, topped by trees of 2-input
XOR gates.  The :class:`Netlist` class stores such a network compactly in
parallel arrays (node ids are dense integers in topological order) with
structural hashing, so that building the GF(2^163) multipliers of the paper
(tens of thousands of gates) stays cheap in pure Python.

Design notes
------------
* Nodes are created in topological order by construction (a gate's fanins
  must already exist), so ``range(node_count)`` is a valid topological order.
* Structural hashing canonicalises commutative fanins and applies the
  trivial simplifications ``x XOR x = 0``, ``x XOR 0 = x``, ``x AND 0 = 0``
  and ``x AND x = x``.
* ``attributes`` carries generator metadata — most importantly
  ``restructure_allowed`` which tells the synthesis flow whether it may
  re-associate the XOR network (the paper's "give XST freedom" knob).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["OP_INPUT", "OP_CONST0", "OP_AND", "OP_XOR", "OP_NAMES", "Netlist"]

OP_INPUT = 0
OP_CONST0 = 1
OP_AND = 2
OP_XOR = 3

OP_NAMES = {OP_INPUT: "input", OP_CONST0: "const0", OP_AND: "and", OP_XOR: "xor"}


class Netlist:
    """A combinational XOR/AND netlist with named inputs and outputs."""

    def __init__(self, name: str = "", attributes: Optional[dict] = None) -> None:
        self.name = name
        self.attributes: dict = dict(attributes or {})
        self._ops: List[int] = []
        self._fanin0: List[int] = []
        self._fanin1: List[int] = []
        self._input_ids: Dict[str, int] = {}
        self._node_names: Dict[int, str] = {}
        self._strash: Dict[Tuple[int, int, int], int] = {}
        self._outputs: List[Tuple[str, int]] = []
        self._const0: Optional[int] = None

    # ------------------------------------------------------------ construction
    def _new_node(self, op: int, fanin0: int, fanin1: int) -> int:
        node = len(self._ops)
        self._ops.append(op)
        self._fanin0.append(fanin0)
        self._fanin1.append(fanin1)
        return node

    def add_input(self, name: str) -> int:
        """Create (or return the existing) primary input with the given name."""
        if name in self._input_ids:
            return self._input_ids[name]
        node = self._new_node(OP_INPUT, -1, -1)
        self._input_ids[name] = node
        self._node_names[node] = name
        return node

    def const0(self) -> int:
        """Return the constant-0 node, creating it on first use."""
        if self._const0 is None:
            self._const0 = self._new_node(OP_CONST0, -1, -1)
        return self._const0

    def _check_node(self, node: int) -> None:
        if not 0 <= node < len(self._ops):
            raise ValueError(f"node {node} does not exist")

    def and2(self, a: int, b: int) -> int:
        """2-input AND with structural hashing and constant propagation."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return a
        if self._const0 is not None and (a == self._const0 or b == self._const0):
            return self.const0()
        lo, hi = (a, b) if a < b else (b, a)
        key = (OP_AND, lo, hi)
        existing = self._strash.get(key)
        if existing is not None:
            return existing
        node = self._new_node(OP_AND, lo, hi)
        self._strash[key] = node
        return node

    def xor2(self, a: int, b: int) -> int:
        """2-input XOR with structural hashing and constant propagation."""
        self._check_node(a)
        self._check_node(b)
        if a == b:
            return self.const0()
        if self._const0 is not None:
            if a == self._const0:
                return b
            if b == self._const0:
                return a
        lo, hi = (a, b) if a < b else (b, a)
        key = (OP_XOR, lo, hi)
        existing = self._strash.get(key)
        if existing is not None:
            return existing
        node = self._new_node(OP_XOR, lo, hi)
        self._strash[key] = node
        return node

    def xor_reduce(self, nodes: Sequence[int], style: str = "balanced") -> int:
        """XOR together a list of nodes.

        ``style`` selects the association:

        * ``"balanced"`` — complete binary tree (minimum depth),
        * ``"chain"``    — left-to-right linear chain (the naive structure).
        """
        operands = list(nodes)
        if not operands:
            return self.const0()
        if style == "chain":
            result = operands[0]
            for operand in operands[1:]:
                result = self.xor2(result, operand)
            return result
        if style == "balanced":
            while len(operands) > 1:
                next_layer = []
                for index in range(0, len(operands) - 1, 2):
                    next_layer.append(self.xor2(operands[index], operands[index + 1]))
                if len(operands) % 2:
                    next_layer.append(operands[-1])
                operands = next_layer
            return operands[0]
        raise ValueError(f"unknown xor_reduce style {style!r}")

    def add_output(self, name: str, node: int) -> None:
        """Register a primary output driving the given node."""
        self._check_node(node)
        self._outputs.append((name, node))

    # ----------------------------------------------------------------- queries
    @property
    def node_count(self) -> int:
        """Total number of nodes (inputs, constants and gates)."""
        return len(self._ops)

    @property
    def inputs(self) -> List[str]:
        """Primary input names in creation order."""
        return list(self._input_ids)

    @property
    def outputs(self) -> List[Tuple[str, int]]:
        """Primary outputs as ``(name, node)`` pairs in registration order."""
        return list(self._outputs)

    def output_node(self, name: str) -> int:
        """The node driving the named output."""
        for output_name, node in self._outputs:
            if output_name == name:
                return node
        raise KeyError(f"no output named {name!r}")

    def input_node(self, name: str) -> int:
        """The node of the named primary input."""
        return self._input_ids[name]

    def input_name(self, node: int) -> str:
        """The name of a primary-input node."""
        return self._node_names[node]

    def op(self, node: int) -> int:
        """Op code of a node (one of the ``OP_*`` constants)."""
        self._check_node(node)
        return self._ops[node]

    def fanins(self, node: int) -> Tuple[int, int]:
        """The two fanins of a gate node (undefined entries are ``-1``)."""
        self._check_node(node)
        return self._fanin0[node], self._fanin1[node]

    def is_gate(self, node: int) -> bool:
        """True for AND/XOR nodes."""
        return self._ops[node] in (OP_AND, OP_XOR)

    def nodes(self) -> range:
        """All node ids in topological order."""
        return range(len(self._ops))

    # --------------------------------------------------------------- analysis
    def live_nodes(self) -> List[int]:
        """Nodes in the transitive fanin of at least one output (topological)."""
        marked = bytearray(len(self._ops))
        stack = [node for _, node in self._outputs]
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = 1
            if self._ops[node] in (OP_AND, OP_XOR):
                stack.append(self._fanin0[node])
                stack.append(self._fanin1[node])
        return [node for node in range(len(self._ops)) if marked[node]]

    def gate_counts(self, live_only: bool = True) -> Dict[str, int]:
        """Number of AND and XOR gates (restricted to live logic by default)."""
        nodes = self.live_nodes() if live_only else range(len(self._ops))
        and_gates = sum(1 for node in nodes if self._ops[node] == OP_AND)
        xor_gates = sum(1 for node in nodes if self._ops[node] == OP_XOR)
        return {"and": and_gates, "xor": xor_gates}

    def levels(self) -> List[int]:
        """Logic level of every node (inputs and constants at level 0)."""
        level = [0] * len(self._ops)
        for node in range(len(self._ops)):
            if self._ops[node] in (OP_AND, OP_XOR):
                level[node] = 1 + max(level[self._fanin0[node]], level[self._fanin1[node]])
        return level

    def depth(self) -> int:
        """Number of gate levels on the longest input-to-output path."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[node] for _, node in self._outputs)

    def xor_depth(self) -> int:
        """XOR levels on the longest path (the AND plane contributes one level)."""
        depth = self.depth()
        return max(0, depth - 1) if self.gate_counts()["and"] else depth

    def fanout_counts(self) -> List[int]:
        """Fanout of every node (output pins count as one fanout each)."""
        fanout = [0] * len(self._ops)
        for node in range(len(self._ops)):
            if self._ops[node] in (OP_AND, OP_XOR):
                fanout[self._fanin0[node]] += 1
                fanout[self._fanin1[node]] += 1
        for _, node in self._outputs:
            fanout[node] += 1
        return fanout

    def summary(self) -> str:
        """One-line human readable summary of the netlist."""
        counts = self.gate_counts()
        return (
            f"{self.name or 'netlist'}: {len(self._input_ids)} inputs, "
            f"{len(self._outputs)} outputs, {counts['and']} AND, "
            f"{counts['xor']} XOR, depth {self.depth()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Netlist {self.summary()}>"
