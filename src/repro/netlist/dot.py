"""Graphviz DOT export for netlists (debugging and documentation aid)."""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .netlist import OP_AND, OP_CONST0, OP_INPUT, OP_XOR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .netlist import Netlist

__all__ = ["to_dot"]

_SHAPES = {OP_INPUT: "ellipse", OP_CONST0: "plaintext", OP_AND: "box", OP_XOR: "diamond"}
_LABELS = {OP_AND: "AND", OP_XOR: "XOR", OP_CONST0: "0"}


def to_dot(netlist: Netlist, max_nodes: Optional[int] = 2000) -> str:
    """Render the live portion of a netlist as a Graphviz DOT string.

    ``max_nodes`` guards against accidentally dumping a GF(2^163) multiplier
    into a viewer; pass ``None`` to disable the limit.
    """
    live = netlist.live_nodes()
    if max_nodes is not None and len(live) > max_nodes:
        raise ValueError(
            f"netlist has {len(live)} live nodes which exceeds max_nodes={max_nodes}; "
            "pass max_nodes=None to export anyway"
        )
    lines = [f'digraph "{netlist.name or "netlist"}" {{', "  rankdir=BT;"]
    live_set = set(live)
    for node in live:
        op = netlist.op(node)
        if op == OP_INPUT:
            label = netlist.input_name(node)
        else:
            label = _LABELS.get(op, "?")
        lines.append(f'  n{node} [label="{label}", shape={_SHAPES[op]}];')
        if op in (OP_AND, OP_XOR):
            fanin0, fanin1 = netlist.fanins(node)
            if fanin0 in live_set:
                lines.append(f"  n{fanin0} -> n{node};")
            if fanin1 in live_set:
                lines.append(f"  n{fanin1} -> n{node};")
    for name, node in netlist.outputs:
        lines.append(f'  out_{name} [label="{name}", shape=ellipse, style=bold];')
        lines.append(f"  n{node} -> out_{name};")
    lines.append("}")
    return "\n".join(lines)
