"""Gate-level netlist IR: construction, simulation, verification, statistics."""

from .dot import to_dot
from .netlist import OP_AND, OP_CONST0, OP_INPUT, OP_XOR, OP_NAMES, Netlist
from .simulate import multiply_with_netlist, multiply_words, simulate, simulate_words
from .stats import NetlistStats, gather_stats
from .verify import (
    UnsupportedStructureError,
    VerificationReport,
    extract_output_pairs,
    verify_by_simulation,
    verify_netlist,
)

__all__ = [
    "to_dot",
    "OP_AND",
    "OP_CONST0",
    "OP_INPUT",
    "OP_XOR",
    "OP_NAMES",
    "Netlist",
    "multiply_with_netlist",
    "multiply_words",
    "simulate",
    "simulate_words",
    "NetlistStats",
    "gather_stats",
    "UnsupportedStructureError",
    "VerificationReport",
    "extract_output_pairs",
    "verify_by_simulation",
    "verify_netlist",
]
