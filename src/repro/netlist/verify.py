"""Formal and simulation-based verification of multiplier netlists.

Two complementary checks are provided:

* :func:`extract_output_pairs` / :func:`verify_netlist` — **exact symbolic
  verification**.  Every netlist in this project is an XOR network over AND
  gates whose fanins are primary inputs ``a_i`` / ``b_j``.  For this circuit
  class the function computed by each output is fully characterised by the
  set of partial products reaching it (XOR = symmetric difference of sets),
  so comparing that set against the :class:`~repro.spec.product_spec.ProductSpec`
  is a complete equivalence proof, not a sampling argument.

* :func:`verify_by_simulation` — bit-parallel simulation against the
  reference field arithmetic, exhaustive for small fields and randomized for
  large ones.  This guards against errors in the symbolic extractor itself
  and covers netlists that fall outside the AND-of-inputs circuit class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, TYPE_CHECKING, Tuple

from ..galois.field import GF2mField
from ..galois.gf2poly import degree
from .netlist import OP_AND, OP_CONST0, OP_INPUT, OP_XOR
from .simulate import simulate_words

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spec.product_spec import ProductSpec
    from ..spec.terms import Pair
    from .netlist import Netlist

__all__ = [
    "UnsupportedStructureError",
    "extract_output_pairs",
    "VerificationReport",
    "verify_netlist",
    "verify_by_simulation",
]


class UnsupportedStructureError(ValueError):
    """Raised when a netlist is not an XOR network over input-level AND gates."""


def _parse_input_name(name: str) -> Tuple[str, int]:
    operand = name[0]
    if operand not in ("a", "b") or not name[1:].isdigit():
        raise UnsupportedStructureError(
            f"primary input {name!r} does not follow the a<i>/b<j> multiplier convention"
        )
    return operand, int(name[1:])


def extract_output_pairs(netlist: Netlist) -> Dict[str, FrozenSet[Pair]]:
    """Return, per output, the exact set of partial products it computes.

    Raises :class:`UnsupportedStructureError` if an AND gate has a non-input
    fanin or combines two bits of the same operand.
    """
    pair_sets: List[Optional[frozenset]] = [None] * netlist.node_count
    input_info: Dict[int, Tuple[str, int]] = {}
    for name in netlist.inputs:
        input_info[netlist.input_node(name)] = _parse_input_name(name)

    for node in netlist.nodes():
        op = netlist.op(node)
        if op == OP_CONST0:
            pair_sets[node] = frozenset()
        elif op == OP_INPUT:
            pair_sets[node] = None  # bare inputs only feed AND gates in this class
        elif op == OP_AND:
            fanin0, fanin1 = netlist.fanins(node)
            if fanin0 not in input_info or fanin1 not in input_info:
                raise UnsupportedStructureError(
                    f"AND node {node} has a non-primary-input fanin; symbolic extraction "
                    "only supports partial-product AND gates"
                )
            operand0, index0 = input_info[fanin0]
            operand1, index1 = input_info[fanin1]
            if operand0 == operand1:
                raise UnsupportedStructureError(
                    f"AND node {node} combines two bits of operand {operand0!r}"
                )
            if operand0 == "a":
                pair_sets[node] = frozenset({(index0, index1)})
            else:
                pair_sets[node] = frozenset({(index1, index0)})
        elif op == OP_XOR:
            fanin0, fanin1 = netlist.fanins(node)
            left = pair_sets[fanin0]
            right = pair_sets[fanin1]
            if left is None or right is None:
                raise UnsupportedStructureError(
                    f"XOR node {node} is fed directly by a primary input; the netlist is "
                    "not a pure XOR-of-partial-products network"
                )
            pair_sets[node] = left ^ right
        else:  # pragma: no cover - defensive
            raise UnsupportedStructureError(f"unknown op code {op} at node {node}")

    outputs: Dict[str, FrozenSet[Pair]] = {}
    for name, node in netlist.outputs:
        pairs = pair_sets[node]
        if pairs is None:
            raise UnsupportedStructureError(f"output {name!r} is driven directly by a primary input")
        outputs[name] = pairs
    return outputs


@dataclass
class VerificationReport:
    """Result of checking a netlist against its product specification."""

    equivalent: bool
    checked_outputs: int
    mismatched_outputs: List[str] = field(default_factory=list)
    details: Dict[str, str] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.equivalent

    def summary(self) -> str:
        """One-line verdict suitable for logs."""
        if self.equivalent:
            return f"equivalent ({self.checked_outputs} outputs formally verified)"
        return f"NOT equivalent: mismatches on {', '.join(self.mismatched_outputs)}"


def verify_netlist(netlist: Netlist, spec: ProductSpec) -> VerificationReport:
    """Formally verify a multiplier netlist against a :class:`ProductSpec`."""
    observed = extract_output_pairs(netlist)
    mismatches: List[str] = []
    details: Dict[str, str] = {}
    for k in range(spec.m):
        name = f"c{k}"
        expected = spec.pairs(k)
        actual = observed.get(name)
        if actual is None:
            mismatches.append(name)
            details[name] = "output missing from netlist"
            continue
        if actual != expected:
            mismatches.append(name)
            missing = expected - actual
            spurious = actual - expected
            details[name] = f"missing {sorted(missing)[:4]}..., spurious {sorted(spurious)[:4]}..."
    return VerificationReport(
        equivalent=not mismatches,
        checked_outputs=spec.m,
        mismatched_outputs=mismatches,
        details=details,
    )


def _netlist_evaluator(netlist: Netlist, modulus: int, backend: str, vector_count: int):
    """The batch evaluator of the requested simulation substrate.

    ``backend`` mirrors the execution-backend names of
    :mod:`repro.backends`: ``"engine"`` compiles the netlist to the
    big-integer straight-line evaluator, ``"bitslice"`` lowers it to numpy
    plane arrays, ``"python"`` (or ``"interpreter"``) walks it with the
    interpreted simulator.  ``"native"`` evaluates no circuit — the C
    word-level tier multiplies directly — so its evaluator runs the
    netlist on the engine substrate and cross-checks the native backend's
    word arithmetic against it on the very same vectors, keeping both the
    circuit and the backend under one parity assertion.  Raises
    ``KeyError`` for unknown names and whatever the substrate itself
    raises (e.g. ``ImportError`` from ``bitslice`` without numpy) — an
    explicitly requested substrate must not silently degrade, or the
    parity assertion would be meaningless.
    """
    m = degree(modulus)
    if backend == "engine":
        from ..engine.engine import engine_for_netlist

        # Straight-line code generation costs ~1 s per 50k gates; it only pays
        # off for big vector sets (exhaustive small-field sweeps).  Spot checks
        # of large netlists use the instantly-compiled flat schedule instead.
        mode = "exec" if vector_count >= 2048 else "arrays"
        return engine_for_netlist(netlist, m, mode=mode).multiply_batch
    if backend == "bitslice":
        from ..backends.bitslice import BitslicedNetlist

        return BitslicedNetlist(netlist, m).multiply_batch
    if backend in ("python", "interpreter"):
        def multiply_batch(a_chunk, b_chunk):
            return simulate_words(netlist, m, a_chunk, b_chunk)

        return multiply_batch
    if backend == "native":
        from ..backends.native import NativeBackend
        from ..engine.engine import engine_for_netlist

        circuit = engine_for_netlist(netlist, m, mode="arrays").multiply_batch
        native = NativeBackend(GF2mField(modulus, check_irreducible=False))

        def multiply_batch(a_chunk, b_chunk):
            products = circuit(a_chunk, b_chunk)
            word_products = native.multiply_batch(a_chunk, b_chunk)
            if list(word_products) != list(products):
                raise AssertionError(
                    "native word arithmetic disagrees with the netlist on "
                    f"GF(2^{m}) simulation vectors"
                )
            return products

        return multiply_batch
    raise KeyError(
        f"unknown simulation backend {backend!r}; "
        "expected 'engine', 'bitslice', 'native' or 'python'"
    )


def verify_by_simulation(
    netlist: Netlist,
    modulus: int,
    trials: int = 256,
    seed: int = 2018,
    exhaustive_limit: int = 8,
    use_engine: bool = True,
    backend: Optional[str] = None,
) -> bool:
    """Check the netlist against reference field arithmetic by simulation.

    Fields with ``m <= exhaustive_limit`` are verified exhaustively (all
    ``2^m × 2^m`` operand pairs in bit-parallel batches); larger fields use
    ``trials`` random pairs plus a few structured corner cases.

    ``backend`` selects the simulation substrate (``"engine"``,
    ``"bitslice"``, ``"native"`` or ``"python"``), so parity with the
    reference scalar arithmetic is asserted uniformly for every execution
    backend on the very same vectors.  Without it, the legacy behaviour applies: the
    compiled engine when ``use_engine`` is true (falling back to the
    interpreter for netlists outside the multiplier I/O convention), the
    interpreted :func:`~repro.netlist.simulate.simulate_words` path
    otherwise — e.g. when the engine itself is the code under test.
    """
    m = degree(modulus)
    reference = GF2mField(modulus, check_irreducible=False)
    if m <= exhaustive_limit:
        a_values = []
        b_values = []
        for a in range(1 << m):
            for b in range(1 << m):
                a_values.append(a)
                b_values.append(b)
    else:
        rng = random.Random(seed)
        a_values = [0, 1, (1 << m) - 1, 1 << (m - 1)]
        b_values = [0, (1 << m) - 1, (1 << m) - 1, 1 << (m - 1)]
        for _ in range(trials):
            a_values.append(rng.getrandbits(m))
            b_values.append(rng.getrandbits(m))
    if backend is not None:
        multiply_batch = _netlist_evaluator(netlist, modulus, backend, len(a_values))
    elif use_engine:
        try:
            multiply_batch = _netlist_evaluator(netlist, modulus, "engine", len(a_values))
        except ValueError:
            # Netlists outside the multiplier I/O convention (odd input names,
            # missing outputs) still verify through the tolerant interpreter.
            multiply_batch = _netlist_evaluator(netlist, modulus, "python", len(a_values))
    else:
        multiply_batch = _netlist_evaluator(netlist, modulus, "python", len(a_values))
    batch = 4096
    for start in range(0, len(a_values), batch):
        a_chunk = a_values[start:start + batch]
        b_chunk = b_values[start:start + batch]
        products = multiply_batch(a_chunk, b_chunk)
        for a, b, product in zip(a_chunk, b_chunk, products):
            if product != reference.multiply(a, b):
                return False
    return True
