"""repro — reproduction of "Reconfigurable implementation of GF(2^m) bit-parallel multipliers".

The library implements, in pure Python, everything the DATE 2018 paper by
J. L. Imaña builds or depends on:

* GF(2)[y] polynomial arithmetic, type II pentanomials and GF(2^m) fields
  (:mod:`repro.galois`);
* the S_i/T_i product algebra, its splitting into complete-tree terms, the
  parenthesized and flat coefficient expressions — the paper's Tables I-IV
  (:mod:`repro.spec`);
* gate-level netlists with formal verification (:mod:`repro.netlist`);
* the proposed multiplier and every comparison construction
  (:mod:`repro.multipliers`);
* a Python FPGA implementation flow — restructuring, k-LUT mapping, slice
  packing and timing — standing in for ISE/XST on Artix-7
  (:mod:`repro.synth`);
* VHDL/Verilog emission (:mod:`repro.hdl`) and the Table V comparison
  harness (:mod:`repro.analysis`);
* pluggable execution backends for batch field arithmetic — the scalar
  reference, the compiled circuit engine and numpy bitslicing behind one
  interface, selectable per call, per field, per CLI flag or via
  ``$GF2M_REPRO_BACKEND`` (:mod:`repro.backends`);
* the parallel sweep pipeline — staged job graph, process-pool scheduler
  and persistent content-addressed artifact store (:mod:`repro.pipeline`);
* binary elliptic curves over the paper's pentanomial fields — NIST-degree
  K/B catalog, Montgomery-ladder scalar multiplication (scalar and batched
  through the engine), ECDH and ECDSA-style protocols
  (:mod:`repro.curves`).

Quick start
-----------
>>> from repro import type_ii_pentanomial, generate_multiplier, implement
>>> modulus = type_ii_pentanomial(8, 2)          # the paper's GF(2^8) field
>>> multiplier = generate_multiplier("thiswork", modulus)
>>> result = implement(multiplier)
>>> result.luts > 0 and result.delay_ns > 0
True
"""

from .analysis import (
    PAPER_TABLE5,
    claims_report,
    compare_to_paper,
    comparison_table,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_comparison,
)
from .backends import (
    BitsliceBackend,
    EngineBackend,
    FieldBackend,
    PythonIntBackend,
    assert_backend_parity,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .curves import (
    CURVES,
    BinaryCurve,
    CurveSpec,
    KeyPair,
    Point,
    Signature,
    available_curves,
    curve_by_name,
    curve_catalog,
    ecdh_batch,
    ecdh_shared,
    ecdsa_sign,
    ecdsa_verify,
    generate_keypair,
    keygen_batch,
)
from .engine import (
    CompiledNetlist,
    Engine,
    MultiplierCache,
    cached_multiplier,
    compile_netlist,
    default_multiplier_cache,
    engine_for,
    engine_for_netlist,
)
from .galois import (
    NIST_ECDSA_DEGREES,
    PAPER_TABLE5_FIELDS,
    FieldElement,
    FieldSpec,
    GF2LinearMap,
    GF2mField,
    field_catalog,
    find_type_ii_pentanomials,
    is_irreducible,
    lookup_field,
    poly_to_string,
    type_ii_pentanomial,
)
from .hdl import multiplier_to_behavioral_vhdl, netlist_to_verilog, netlist_to_vhdl, vhdl_testbench
from .multipliers import (
    ALL_GENERATORS,
    TABLE5_METHODS,
    GeneratedMultiplier,
    available_methods,
    generate_multiplier,
    get_generator,
)
from .netlist import (
    Netlist,
    gather_stats,
    multiply_with_netlist,
    simulate_words,
    verify_by_simulation,
    verify_netlist,
)
from .pipeline import (
    ArtifactStore,
    SweepJob,
    SweepResult,
    build_sweep_jobs,
    format_sweep,
    run_sweep,
)
from .spec import ProductSpec, parenthesized_coefficients, split_coefficients, st_coefficients
from .synth import (
    ARTIX7,
    DeviceModel,
    ImplementationResult,
    SynthesisOptions,
    format_table,
    implement,
    map_to_luts,
)

__version__ = "1.0.0"

__all__ = [
    "BitsliceBackend",
    "EngineBackend",
    "FieldBackend",
    "PythonIntBackend",
    "assert_backend_parity",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "PAPER_TABLE5",
    "claims_report",
    "compare_to_paper",
    "comparison_table",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
    "run_comparison",
    "CompiledNetlist",
    "Engine",
    "MultiplierCache",
    "cached_multiplier",
    "compile_netlist",
    "default_multiplier_cache",
    "engine_for",
    "engine_for_netlist",
    "CURVES",
    "BinaryCurve",
    "CurveSpec",
    "KeyPair",
    "Point",
    "Signature",
    "available_curves",
    "curve_by_name",
    "curve_catalog",
    "ecdh_batch",
    "ecdh_shared",
    "ecdsa_sign",
    "ecdsa_verify",
    "generate_keypair",
    "keygen_batch",
    "NIST_ECDSA_DEGREES",
    "PAPER_TABLE5_FIELDS",
    "FieldElement",
    "FieldSpec",
    "GF2LinearMap",
    "GF2mField",
    "field_catalog",
    "find_type_ii_pentanomials",
    "is_irreducible",
    "lookup_field",
    "poly_to_string",
    "type_ii_pentanomial",
    "multiplier_to_behavioral_vhdl",
    "netlist_to_verilog",
    "netlist_to_vhdl",
    "vhdl_testbench",
    "ALL_GENERATORS",
    "TABLE5_METHODS",
    "GeneratedMultiplier",
    "available_methods",
    "generate_multiplier",
    "get_generator",
    "Netlist",
    "gather_stats",
    "multiply_with_netlist",
    "simulate_words",
    "verify_by_simulation",
    "verify_netlist",
    "ArtifactStore",
    "SweepJob",
    "SweepResult",
    "build_sweep_jobs",
    "format_sweep",
    "run_sweep",
    "ProductSpec",
    "parenthesized_coefficients",
    "split_coefficients",
    "st_coefficients",
    "ARTIX7",
    "DeviceModel",
    "ImplementationResult",
    "SynthesisOptions",
    "format_table",
    "implement",
    "map_to_luts",
    "__version__",
]
