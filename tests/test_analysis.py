"""Tests for the analysis layer: complexity formulas, paper tables, Table V harness."""

from __future__ import annotations

import pytest

from repro.analysis.compare import claims_report, compare_to_paper, comparison_table, run_comparison
from repro.analysis.complexity import (
    and_gate_count,
    complexity_summary,
    minimum_xor_depth,
    split_scheme_complexity,
    unshared_xor_count,
)
from repro.analysis.paper_data import PAPER_TABLE5, paper_best_area_time, paper_row
from repro.analysis.tables import (
    render_st_functions,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)
from repro.multipliers import generate_multiplier
from repro.synth.flow import SynthesisOptions


class TestComplexity:
    def test_and_gate_count(self):
        assert and_gate_count(8) == 64
        assert and_gate_count(163) == 26569

    def test_minimum_xor_depth_gf28(self, gf28_modulus):
        assert minimum_xor_depth(gf28_modulus) == 5

    def test_unshared_xor_count_is_an_upper_bound(self, gf28_modulus):
        stats = generate_multiplier("rashidi", gf28_modulus, verify=False).stats()
        assert stats.xor_gates <= unshared_xor_count(gf28_modulus)

    def test_split_scheme_complexity_gf28(self, gf28_modulus):
        complexity = split_scheme_complexity(gf28_modulus)
        assert complexity.and_gates == 64
        assert complexity.xor_depth == 5                  # paper: TA + 5TX
        assert abs(complexity.xor_gates - 87) <= 10       # paper: 87 XOR gates
        assert complexity.delay_expression() == "TA + 5TX"

    def test_complexity_summary_rows(self, gf28_modulus):
        rows = complexity_summary(gf28_modulus)
        assert len(rows) == 5
        assert all("quantity" in row and "value" in row for row in rows)


class TestPaperTablesRendering:
    def test_table1_contains_paper_rows(self, gf28_modulus):
        text = render_table1(gf28_modulus)
        assert "c0 = S1 + T0 + T4 + T5 + T6;" in text
        assert "c7 = S8 + T3 + T4 + T5;" in text

    def test_table2_contains_paper_terms(self, gf28_modulus):
        text = render_table2(gf28_modulus)
        assert "S8^3 = (z0^7 + z1^6 + z2^5 + z3^4)" in text
        assert "T0^2 = (z2^6 + z3^5)" in text

    def test_table3_reports_paper_delay(self, gf28_modulus):
        text = render_table3(gf28_modulus)
        assert "TA + 5TX" in text
        assert text.count("c") >= 8

    def test_table4_contains_flat_rows(self, gf28_modulus):
        text = render_table4(gf28_modulus)
        assert "c7 = S8^3 + T3^2 + T4^1 + T4^0 + T5^1;" in text

    def test_st_functions_rendering(self, gf28_modulus):
        text = render_st_functions(gf28_modulus)
        assert "T0 = x4 + z1^7 + z2^6 + z3^5" in text


class TestPaperData:
    def test_all_nine_fields_present(self):
        assert len(PAPER_TABLE5) == 9
        assert all(len(rows) == 6 for rows in PAPER_TABLE5.values())

    def test_area_time_consistency(self):
        # The published A×T column equals LUTs × delay for every row.
        for rows in PAPER_TABLE5.values():
            for luts, _slices, time_ns, area_time in rows.values():
                assert area_time == pytest.approx(luts * time_ns, rel=1e-3)

    def test_paper_row_lookup(self):
        assert paper_row(8, 2, "thiswork") == (33, 12, 9.77, 322.41)

    def test_paper_best_area_time(self):
        # The paper's proposed method wins A×T for 7 of the 9 fields.
        winners = [paper_best_area_time(m, n) for (m, n) in PAPER_TABLE5]
        assert winners.count("thiswork") == 7
        assert set(winners) <= {"thiswork", "reyhani_hasan"}

    def test_paper_proposed_beats_parenthesized_everywhere(self):
        for rows in PAPER_TABLE5.values():
            assert rows["thiswork"][0] < rows["imana2016"][0]
            assert rows["thiswork"][3] < rows["imana2016"][3]


class TestComparisonHarness:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_comparison(fields=[(8, 2)], options=SynthesisOptions(effort=1))

    def test_rows_cover_all_methods(self, comparison):
        assert len(comparison) == 1
        assert {row.method for row in comparison[0].rows} == {
            "paar", "rashidi", "reyhani_hasan", "imana2012", "imana2016", "thiswork",
        }

    def test_paper_values_attached(self, comparison):
        row = comparison[0].row("thiswork")
        assert row.paper_luts == 33 and row.paper_area_time == pytest.approx(322.41)

    def test_best_helpers(self, comparison):
        assert comparison[0].best_published() == "thiswork"
        assert comparison[0].best_measured("area_time") in {
            "paar", "rashidi", "reyhani_hasan", "imana2012", "imana2016", "thiswork",
        }

    def test_unknown_method_lookup_raises(self, comparison):
        with pytest.raises(KeyError):
            comparison[0].row("schoolbook")

    def test_claims_report_structure(self, comparison):
        report = claims_report(comparison)
        assert report["fields"] == ["(8,2)"]
        assert "(8,2)" in report["proposed_beats_parenthesized"]

    def test_rendering_helpers(self, comparison):
        assert "(8,2)" in comparison_table(comparison, title="demo")
        side_by_side = compare_to_paper(comparison)
        assert "thiswork" in side_by_side and "33" in side_by_side
