"""The batch engine: compiled-vs-interpreted equivalence and the batch API."""

import random

import pytest

from repro.engine import Engine, compile_netlist, engine_for, engine_for_netlist
from repro.galois.field import GF2mField
from repro.galois.pentanomials import type_ii_pentanomial
from repro.multipliers.registry import ALL_GENERATORS, generate_multiplier
from repro.netlist.simulate import multiply_with_netlist, multiply_words, simulate_words

MODULUS = type_ii_pentanomial(13, 5)
FIELD = GF2mField(MODULUS)


def random_pairs(m, count, seed):
    rng = random.Random(seed)
    a_values = [rng.getrandbits(m) for _ in range(count)]
    b_values = [rng.getrandbits(m) for _ in range(count)]
    return a_values, b_values


class TestCompiledNetlist:
    @pytest.mark.parametrize("mode", ["exec", "arrays"])
    def test_compiled_matches_interpreter(self, mode):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        compiled = compile_netlist(multiplier.netlist, mode=mode)
        a_values, b_values = random_pairs(13, 200, seed=7)
        engine = Engine(multiplier, mode=mode)
        assert engine.multiply_batch(a_values, b_values) == simulate_words(
            multiplier.netlist, 13, a_values, b_values
        )
        assert compiled.mode == mode
        assert compiled.gate_count == compiled.and_count + compiled.xor_count
        assert compiled.level_count > 1

    def test_only_live_cone_is_compiled(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        compiled = compile_netlist(multiplier.netlist)
        assert compiled.node_count <= multiplier.netlist.node_count

    def test_source_is_inspectable_in_exec_mode(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        assert "def _netlist_eval" in compile_netlist(multiplier.netlist, mode="exec").source
        assert compile_netlist(multiplier.netlist, mode="arrays").source is None

    def test_unknown_mode_rejected(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        with pytest.raises(ValueError):
            compile_netlist(multiplier.netlist, mode="jit")

    def test_input_word_count_validated(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        compiled = compile_netlist(multiplier.netlist)
        with pytest.raises(ValueError):
            compiled.evaluate([1, 2, 3])


class TestEngineEquivalence:
    @pytest.mark.parametrize("method", sorted(ALL_GENERATORS))
    def test_every_generator_matches_field_reference(self, method):
        engine = engine_for(method, MODULUS)
        a_values, b_values = random_pairs(13, 300, seed=hash(method) & 0xFFFF)
        products = engine.multiply_batch(a_values, b_values)
        for a, b, product in zip(a_values, b_values, products):
            assert product == FIELD.multiply(a, b), (method, a, b)

    @pytest.mark.parametrize("method", ["thiswork", "schoolbook"])
    def test_exec_and_arrays_modes_agree(self, method):
        a_values, b_values = random_pairs(13, 128, seed=3)
        compiled = engine_for(method, MODULUS, mode="exec").multiply_batch(a_values, b_values)
        flat = engine_for(method, MODULUS, mode="arrays").multiply_batch(a_values, b_values)
        assert compiled == flat


class TestBatchAPI:
    @pytest.fixture(scope="class")
    def engine(self):
        return engine_for("thiswork", MODULUS)

    def test_empty_batch(self, engine):
        assert engine.multiply_batch([], []) == []

    def test_single_pair(self, engine):
        assert engine.multiply_batch([0x57 & 0x1FFF], [0x83]) == [FIELD.multiply(0x57, 0x83)]
        assert engine.multiply(1, 1) == 1

    def test_mismatched_lengths_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.multiply_batch([1, 2], [3])

    def test_chunking_preserves_order(self, engine):
        a_values, b_values = random_pairs(13, 1000, seed=11)
        whole = engine.multiply_batch(a_values, b_values)
        chunked = engine.multiply_batch(a_values, b_values, chunk_size=17)
        assert whole == chunked
        assert len(whole) == 1000

    def test_batch_larger_than_chunk_size(self):
        engine = Engine(
            generate_multiplier("thiswork", MODULUS, verify=False), chunk_size=64
        )
        a_values, b_values = random_pairs(13, 300, seed=5)
        expected = [FIELD.multiply(a, b) for a, b in zip(a_values, b_values)]
        assert engine.multiply_batch(a_values, b_values) == expected

    def test_invalid_chunk_size_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.multiply_batch([1], [1], chunk_size=0)
        with pytest.raises(ValueError):
            Engine(generate_multiplier("thiswork", MODULUS, verify=False), chunk_size=0)

    def test_describe_mentions_mode_and_field(self, engine):
        text = engine.describe()
        assert "exec" in text and "GF(2^13)" in text


class TestEngineConstruction:
    def test_needs_circuit(self):
        with pytest.raises(ValueError):
            Engine()

    def test_multiplier_and_netlist_are_exclusive(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        with pytest.raises(ValueError):
            Engine(multiplier, netlist=multiplier.netlist, m=13)

    def test_raw_netlist_with_degree(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        engine = Engine(netlist=multiplier.netlist, m=13)
        assert engine.multiply(3, 5) == FIELD.multiply(3, 5)

    def test_engine_for_is_cached(self):
        assert engine_for("thiswork", MODULUS) is engine_for("thiswork", MODULUS)
        assert engine_for("thiswork", MODULUS) is not engine_for("thiswork", MODULUS, mode="arrays")

    def test_engine_for_verify_upgrade_survives_engine_cache(self):
        from repro.engine import default_multiplier_cache

        modulus = type_ii_pentanomial(11, 4)
        engine_for("paar", modulus, verify=False)
        assert not default_multiplier_cache().is_verified("paar", modulus)
        engine_for("paar", modulus, verify=True)
        assert default_multiplier_cache().is_verified("paar", modulus)

    def test_only_low_m_bits_of_operands_are_used(self):
        engine = engine_for("thiswork", MODULUS)
        high = 1 << 300
        assert engine.multiply(high | 0x3, 0x5) == engine.multiply(0x3, 0x5)
        assert engine.multiply_batch([high], [1]) == [0]

    def test_engine_for_netlist_is_cached_per_netlist(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        first = engine_for_netlist(multiplier.netlist, 13)
        assert engine_for_netlist(multiplier.netlist, 13) is first


class TestRoutedEntryPoints:
    def test_field_multiply_batch_matches_scalar_reference(self):
        a_values, b_values = random_pairs(13, 400, seed=23)
        expected = [FIELD.multiply(a, b) for a, b in zip(a_values, b_values)]
        assert FIELD.multiply_batch(a_values, b_values) == expected

    def test_field_multiply_batch_validates_range(self):
        with pytest.raises(ValueError):
            FIELD.multiply_batch([1 << 13], [1])
        with pytest.raises(ValueError):
            FIELD.multiply_batch([1, 2], [3])

    def test_field_multiply_batch_explicit_method(self):
        a_values, b_values = random_pairs(13, 50, seed=29)
        expected = FIELD.multiply_batch(a_values, b_values)
        assert FIELD.multiply_batch(a_values, b_values, method="schoolbook") == expected

    def test_generated_multiplier_conveniences(self):
        multiplier = generate_multiplier("thiswork", MODULUS)
        assert multiplier.multiply(0x1a, 0x2b) == FIELD.multiply(0x1a, 0x2b)
        a_values, b_values = random_pairs(13, 64, seed=31)
        expected = [FIELD.multiply(a, b) for a, b in zip(a_values, b_values)]
        assert multiplier.multiply_batch(a_values, b_values) == expected
        assert multiplier.engine().m == 13

    def test_multiply_words_routes_through_engine(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        a_values, b_values = random_pairs(13, 80, seed=37)
        assert multiply_words(multiplier.netlist, 13, a_values, b_values) == simulate_words(
            multiplier.netlist, 13, a_values, b_values
        )
        with pytest.raises(ValueError):
            multiply_words(multiplier.netlist, 13, [1], [])

    def test_multiply_with_netlist_still_scalar(self):
        multiplier = generate_multiplier("thiswork", MODULUS, verify=False)
        assert multiply_with_netlist(multiplier.netlist, 13, 9, 12) == FIELD.multiply(9, 12)


class TestRegistryCaching:
    def test_generate_multiplier_uses_shared_cache(self):
        first = generate_multiplier("rashidi", MODULUS, verify=False)
        second = generate_multiplier("rashidi", MODULUS, verify=False)
        assert first is second

    def test_private_copies_on_request(self):
        cached = generate_multiplier("rashidi", MODULUS, verify=False)
        private = generate_multiplier("rashidi", MODULUS, verify=False, use_cache=False)
        assert private is not cached
