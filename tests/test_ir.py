"""The formula compiler: FieldIR tracing, level-scheduled fusion, executors.

Acceptance contract of the PR 6 tentpole: the entire López-Dahab ladder
step is traced **once** (:mod:`repro.curves.formulas`), scheduled once per
curve into fused passes, and runs byte-identically on every substrate —
the compiled plane path, the per-step batch interpreter and the scalar
reference ladder must agree lane for lane on the parity grid, including
edge scalars (0, 1, n−1, mixed widths) and batch sizes straddling the
plane chunk boundary.  The deprecated :class:`PlaneCompute` op methods
must keep working as shims but warn.
"""

from __future__ import annotations

import random
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    IRBuilder,
    cached_program,
    execute_program,
    get_backend,
    numpy_available,
    schedule_program,
)
from repro.curves import curve_by_name
from repro.curves.formulas import ladder_step_ir, ladder_step_program
from repro.galois.field import GF2mField
from repro.galois.pentanomials import smallest_type_ii_pentanomial

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

GF2_13 = GF2mField(smallest_type_ii_pentanomial(13), check_irreducible=False)
GF2_163 = GF2mField(smallest_type_ii_pentanomial(163), check_irreducible=False)

#: The parity grid of ISSUE 5/6: toy curve plus two NIST-degree Koblitz curves.
PARITY_CURVES = ["T-13", "K-163", "K-233"]


def _edge_scalars(curve, count, rng):
    """Scalars covering the masked-select corners: 0, 1, n-1, mixed widths."""
    n = curve.order if curve.order is not None else curve.field.order
    scalars = [0, 1, n - 1, 2, 3]
    for width in range(1, curve.field.m, max(1, curve.field.m // 8)):
        scalars.append((rng.getrandbits(width) | (1 << (width - 1))) % n or 1)
    while len(scalars) < count:
        scalars.append(rng.randrange(0, n))
    return scalars[:count]


def _probe_program(field):
    """A small mixed formula exercising every op kind on ``field``."""
    builder = IRBuilder("probe")
    a, b = builder.input("a"), builder.input("b")
    bit = builder.mask_input("bit")
    mixed = builder.xor(builder.mul(a, b), builder.square(builder.square(a)), builder.const(3))
    builder.output("r", builder.select(bit, mixed, a))
    return schedule_program(builder.build(), field.m, {"square": field.square_map})


def _probe_reference(field, a, b, bit):
    if not bit:
        return a
    return field.multiply(a, b) ^ field.square(field.square(a)) ^ 3


class TestIRBuilder:
    def test_trace_and_describe(self):
        ir = ladder_step_ir()
        assert [name for name, _ in ir.inputs] == ["x1", "z1", "x2", "z2", "x"]
        assert [name for name, _ in ir.mask_inputs] == ["bit"]
        assert ir.op_counts()["mul"] == 5
        assert "ld_step" in ir.describe()

    def test_vars_are_builder_scoped(self):
        first, second = IRBuilder("one"), IRBuilder("two")
        x = first.input("x")
        with pytest.raises(ValueError, match="different IRBuilder"):
            second.mul(second.input("y"), x)

    def test_masks_and_values_are_distinct_kinds(self):
        builder = IRBuilder("kinds")
        x, bit = builder.input("x"), builder.mask_input("bit")
        with pytest.raises(TypeError, match="mask input"):
            builder.select(x, x, x)
        with pytest.raises(TypeError, match="field value"):
            builder.mul(x, bit)

    def test_rejects_duplicates_and_empty_formulas(self):
        builder = IRBuilder("dups")
        builder.input("x")
        with pytest.raises(ValueError, match="duplicate input"):
            builder.input("x")
        with pytest.raises(ValueError, match="no outputs"):
            IRBuilder("empty").build()


class TestScheduleFusion:
    def test_ladder_step_schedules_to_six_passes(self):
        program = ladder_step_program(curve_by_name("K-163"))
        assert program.pass_counts() == {"mul": 2, "linear": 2, "select": 2}
        assert program.mul_pass_widths() == [3, 2]
        assert "6 fused passes" in program.describe()

    def test_chained_squarings_collapse_into_one_composed_map(self):
        builder = IRBuilder("quartic")
        builder.output("r", builder.square(builder.square(builder.input("x"))))
        program = schedule_program(builder.build(), GF2_13.m, {"square": GF2_13.square_map})
        # One fused linear pass, not two chained ones.
        assert program.pass_counts() == {"linear": 1}
        result = execute_program(program, get_backend("python", GF2_13), {"x": [5, 1000]})
        assert result["r"] == [GF2_13.square(GF2_13.square(v)) for v in (5, 1000)]

    def test_constants_are_hoisted_into_the_prologue(self):
        builder = IRBuilder("affine")
        builder.output("r", builder.xor(builder.input("x"), builder.const(6)))
        program = schedule_program(builder.build(), GF2_13.m, {})
        assert [value for _, value in program.consts] == [6]
        result = execute_program(program, get_backend("python", GF2_13), {"x": [0, 6, 9]})
        assert result["r"] == [6, 0, 15]

    def test_unbound_linear_names_fail_at_schedule_time(self):
        builder = IRBuilder("unbound")
        builder.output("r", builder.apply_linear("frobenius", builder.input("x")))
        with pytest.raises(KeyError, match="frobenius"):
            schedule_program(builder.build(), GF2_13.m, {})


class TestExecuteProgramParity:
    """The interpreter arm: one schedule, every registered backend."""

    @pytest.mark.parametrize("name", ["python", "engine"])
    def test_probe_matches_reference(self, name):
        field = GF2_13
        backend = get_backend(name, field)
        rng = random.Random(2018)
        a = [0, 1, field.order - 1] + [rng.getrandbits(13) for _ in range(40)]
        b = [rng.getrandbits(13) for _ in a]
        bits = [rng.getrandbits(1) for _ in a]
        result = execute_program(_probe_program(field), backend, {"a": a, "b": b}, {"bit": bits})
        assert result["r"] == [
            _probe_reference(field, x, y, bit) for x, y, bit in zip(a, b, bits)
        ]

    @requires_numpy
    def test_compiled_plane_path_matches_interpreter(self):
        field = GF2_163
        backend = get_backend("bitslice", field)
        program = _probe_program(field)
        rng = random.Random(7)
        a = [rng.getrandbits(163) for _ in range(70)]
        b = [rng.getrandbits(163) for _ in range(70)]
        bits = [rng.getrandbits(1) for _ in range(70)]
        interpreted = execute_program(program, backend, {"a": a, "b": b}, {"bit": bits})["r"]
        executor = backend.ir_executor()
        compiled = executor.compile(program)
        outputs = compiled.run(
            {"a": executor.pack(a), "b": executor.pack(b)}, {"bit": bits}
        )
        assert executor.unpack(outputs["r"]) == interpreted


@requires_numpy
class TestFusedLadderParity:
    """ISSUE 6 satellite: fused IR ladder == per-step path == scalar reference."""

    @pytest.mark.parametrize("name", PARITY_CURVES)
    def test_fused_ladder_matches_both_paths_on_edge_scalars(self, name):
        curve = curve_by_name(name)
        rng = random.Random(2018)
        backend = get_backend("bitslice", curve.field)
        scalars = _edge_scalars(curve, 14, rng)
        points = [curve.generator] * len(scalars)
        fused = curve.multiply_batch(points, scalars, backend=backend, plane_resident=True)
        steps = curve.multiply_batch(points, scalars, backend=backend, plane_resident=False)
        reference = [curve.multiply(curve.generator, scalar) for scalar in scalars]
        assert fused == steps == reference

    @pytest.mark.parametrize("batch", [7, 8, 9, 17])
    def test_chunk_boundary_batches(self, batch):
        # chunk_size=8 puts 7/8/9/17 below, at, and across plane-chunk edges.
        curve = curve_by_name("T-13")
        rng = random.Random(batch)
        backend = get_backend("bitslice", curve.field, chunk_size=8)
        assert backend.ir_executor().chunk_size == 8
        scalars = _edge_scalars(curve, batch, rng)
        points = [curve.random_point(rng) for _ in scalars]
        fused = curve.multiply_batch(points, scalars, backend=backend, plane_resident=True)
        assert fused == [curve.multiply(p, k) for p, k in zip(points, scalars)]

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 14) - 1), min_size=1, max_size=24))
    @settings(max_examples=20, deadline=None)
    def test_fused_ladder_property_t13(self, scalars):
        curve = curve_by_name("T-13")
        backend = get_backend("bitslice", curve.field)
        points = [curve.generator] * len(scalars)
        fused = curve.multiply_batch(points, scalars, backend=backend, plane_resident=True)
        steps = curve.multiply_batch(points, scalars, backend=backend, plane_resident=False)
        reference = [curve.multiply(curve.generator, scalar) for scalar in scalars]
        assert fused == steps == reference


@requires_numpy
class TestDeprecationShims:
    """The five PlaneCompute op methods survive as warning shims."""

    def _plane(self):
        return get_backend("bitslice", GF2_163).plane_compute()

    def test_every_op_method_warns(self):
        plane = self._plane()
        rng = random.Random(5)
        values = [rng.getrandbits(163) for _ in range(10)]
        packed = plane.pack(values)
        with pytest.warns(DeprecationWarning, match="multiply_planes"):
            product = plane.multiply_planes(packed, packed)
        with pytest.warns(DeprecationWarning, match="apply_linear_planes"):
            plane.apply_linear_planes(GF2_163.square_map, packed)
        with pytest.warns(DeprecationWarning, match="xor_planes"):
            plane.xor_planes(packed, product)
        with pytest.warns(DeprecationWarning, match="broadcast_bits"):
            mask = plane.broadcast_bits([1] * 10)
        with pytest.warns(DeprecationWarning, match="select_planes"):
            plane.select_planes(mask, packed, product)

    def test_shims_still_compute_through_the_ir(self):
        plane = self._plane()
        field = GF2_163
        rng = random.Random(6)
        a = [rng.getrandbits(163) for _ in range(9)]
        b = [rng.getrandbits(163) for _ in range(9)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            product = plane.unpack(plane.multiply_planes(plane.pack(a), plane.pack(b)))
        assert product == [field.multiply(x, y) for x, y in zip(a, b)]

    def test_pack_and_unpack_stay_quiet(self):
        plane = self._plane()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert plane.unpack(plane.pack([1, 2, 3])) == [1, 2, 3]


class TestProgramMemoization:
    """ISSUE 6 satellite: compiled programs cached per curve × backend × chunk."""

    def test_ladder_step_program_is_memoized_per_curve(self):
        curve = curve_by_name("K-163")
        assert ladder_step_program(curve) is ladder_step_program(curve)
        other = curve_by_name("B-163")  # same field, different b
        assert ladder_step_program(other) is not ladder_step_program(curve)

    def test_cached_program_is_keyed(self):
        calls = []

        def factory():
            calls.append(1)
            return _probe_program(GF2_13)

        key = ("test-ir-memo", GF2_13.modulus, id(self))
        first = cached_program(key, factory)
        assert cached_program(key, factory) is first
        assert len(calls) == 1

    @requires_numpy
    def test_compiled_lowering_is_memoized_per_executor(self):
        curve = curve_by_name("K-163")
        program = ladder_step_program(curve)
        executor = get_backend("bitslice", curve.field).ir_executor()
        assert executor.compile(program) is executor.compile(program)
        # A different chunk size is a different backend instance and executor.
        narrow = get_backend("bitslice", curve.field, chunk_size=64).ir_executor()
        assert narrow is not executor
        assert narrow.compile(program) is not executor.compile(program)


@requires_numpy
class TestDescribeSurface:
    def test_cli_bench_describe_prints_the_schedule(self, capsys):
        from repro.cli import main

        assert main(["bench", "--backend", "bitslice", "-m", "163", "-n", "66", "--describe"]) == 0
        out = capsys.readouterr().out
        assert "ld_step" in out and "6 fused passes" in out and "compiled:" in out
