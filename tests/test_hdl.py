"""Tests for the VHDL/Verilog emitters and testbench generation."""

from __future__ import annotations

import re

import pytest

from repro.galois.field import GF2mField
from repro.hdl.testbench import reference_vectors, vhdl_testbench
from repro.hdl.verilog import netlist_to_verilog
from repro.hdl.vhdl import multiplier_to_behavioral_vhdl, netlist_to_vhdl
from repro.multipliers import generate_multiplier


@pytest.fixture(scope="module")
def thiswork_gf28(gf28_modulus=None):
    from repro.galois.pentanomials import type_ii_pentanomial

    return generate_multiplier("thiswork", type_ii_pentanomial(8, 2))


@pytest.fixture(scope="module")
def imana2016_gf28():
    from repro.galois.pentanomials import type_ii_pentanomial

    return generate_multiplier("imana2016", type_ii_pentanomial(8, 2))


class TestStructuralVhdl:
    def test_entity_and_ports(self, thiswork_gf28):
        text = netlist_to_vhdl(thiswork_gf28.netlist, entity_name="mult8")
        assert "entity mult8 is" in text
        assert "a : in  std_logic_vector(7 downto 0);" in text
        assert "c : out std_logic_vector(7 downto 0)" in text
        assert text.count("<=") >= 8        # at least one assignment per output

    def test_every_output_bit_is_driven(self, thiswork_gf28):
        text = netlist_to_vhdl(thiswork_gf28.netlist)
        for k in range(8):
            assert f"c({k}) <=" in text

    def test_gate_count_matches_netlist(self, imana2016_gf28):
        text = netlist_to_vhdl(imana2016_gf28.netlist)
        counts = imana2016_gf28.netlist.gate_counts()
        assert text.count(" and ") == counts["and"]
        assert text.count(" xor ") == counts["xor"]

    def test_only_declared_signals_are_used(self, thiswork_gf28):
        text = netlist_to_vhdl(thiswork_gf28.netlist)
        declared = set(re.findall(r"signal ([^:]+) :", text))
        declared_names = {name.strip() for chunk in declared for name in chunk.split(",")}
        used = set(re.findall(r"\bn\d+\b", text))
        assert used <= declared_names


class TestBehavioralVhdl:
    def test_flat_method_has_flat_output_expressions(self, thiswork_gf28):
        text = multiplier_to_behavioral_vhdl(thiswork_gf28)
        assert "architecture behavioral" in text
        # the shared split terms appear as named signals
        assert "signal " in text

    def test_parenthesized_method_keeps_parentheses(self, imana2016_gf28):
        text = multiplier_to_behavioral_vhdl(imana2016_gf28)
        output_lines = [line for line in text.splitlines() if line.strip().startswith("c(")]
        assert len(output_lines) == 8
        assert any("((" in line for line in output_lines)

    def test_mentions_method_in_header(self, thiswork_gf28):
        assert "thiswork" in multiplier_to_behavioral_vhdl(thiswork_gf28)


class TestVerilog:
    def test_module_and_ports(self, thiswork_gf28):
        text = netlist_to_verilog(thiswork_gf28.netlist, module_name="mult8")
        assert "module mult8" in text and text.rstrip().endswith("endmodule")
        assert "input  wire [7:0] a," in text
        for k in range(8):
            assert f"assign c[{k}] =" in text

    def test_gate_operators_match_counts(self, imana2016_gf28):
        text = netlist_to_verilog(imana2016_gf28.netlist)
        counts = imana2016_gf28.netlist.gate_counts()
        assert text.count(" & ") == counts["and"]
        assert text.count(" ^ ") == counts["xor"]


class TestTestbench:
    def test_reference_vectors_are_correct(self, gf28_modulus):
        field = GF2mField(gf28_modulus)
        for a, b, product in reference_vectors(gf28_modulus, count=32):
            assert product == field.multiply(a, b)

    def test_reference_vectors_are_reproducible(self, gf28_modulus):
        assert reference_vectors(gf28_modulus, seed=5) == reference_vectors(gf28_modulus, seed=5)
        assert reference_vectors(gf28_modulus, seed=5) != reference_vectors(gf28_modulus, seed=6)

    def test_testbench_structure(self, gf28_modulus):
        text = vhdl_testbench(gf28_modulus, entity_name="mult8", count=16)
        assert "entity tb_mult8" in text
        assert text.count("assert c =") == 16
        assert 'report "all multiplier vectors passed"' in text

    def test_testbench_vector_width_matches_field(self, gf28_modulus):
        text = vhdl_testbench(gf28_modulus, count=8)
        vectors = re.findall(r'"([01]+)"', text)
        assert vectors and all(len(vector) == 8 for vector in vectors)
