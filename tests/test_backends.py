"""The pluggable backend layer: registry resolution, parity, bitslicing.

The acceptance contract of the backend abstraction is byte-parity: every
registered backend must reproduce the scalar reference arithmetic exactly,
for field batch operations and for the batched ECDH ladder path, on the
NIST-size fields the paper targets (GF(2^163), GF(2^233)).
"""

from __future__ import annotations

import random

import pytest

from repro.backends import (
    BACKEND_ENV_VAR,
    BackendCapabilities,
    BitslicedNetlist,
    FieldBackend,
    assert_backend_parity,
    available_backends,
    default_backend_name,
    default_method_for,
    get_backend,
    native_available,
    numpy_available,
    register_backend,
    resolve_backend,
)
from repro.backends import bitslice as bitslice_module
from repro.curves import curve_by_name, ecdh_batch, keygen_batch
from repro.galois.field import GF2mField
from repro.galois.pentanomials import (
    smallest_type_ii_pentanomial,
    type_ii_pentanomial,
)
from repro.multipliers.cache import cached_multiplier
from repro.netlist.netlist import Netlist

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
requires_native = pytest.mark.skipif(
    not native_available(), reason="native extension not buildable here"
)

GF2_16 = GF2mField(type_ii_pentanomial(16, 3), check_irreducible=False)
GF2_163 = GF2mField(smallest_type_ii_pentanomial(163), check_irreducible=False)
GF2_233 = GF2mField(smallest_type_ii_pentanomial(233), check_irreducible=False)

ALL_BACKENDS = ["python", "engine", "bitslice", "native"]

_OPTIONAL = {"bitslice": numpy_available, "native": native_available}


def _available(name):
    predicate = _OPTIONAL.get(name)
    return predicate is None or predicate()


def _backends():
    marks = {"bitslice": requires_numpy, "native": requires_native}
    return [pytest.param(name, marks=marks.get(name, ())) for name in ALL_BACKENDS]


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_default_prefers_native_then_engine(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        expected = "native" if native_available() else "engine"
        assert default_backend_name(GF2_16) == expected
        assert default_backend_name() == expected

    def test_default_without_native_is_the_engine(self, monkeypatch):
        import repro.backends.registry as registry_module

        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        monkeypatch.setattr(registry_module, "native_available", lambda: False)
        assert default_backend_name(GF2_16) == "engine"
        assert default_backend_name() == "engine"

    def test_degree_one_fields_default_to_scalar(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        gf2 = GF2mField(0b11)  # y + 1: no bit-parallel circuit exists
        assert default_backend_name(gf2) == "python"
        assert gf2.multiply_batch([0, 1, 1], [1, 1, 0]) == [0, 1, 0]

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "python")
        assert default_backend_name(GF2_16) == "python"
        field = GF2mField(type_ii_pentanomial(16, 3), check_irreducible=False)
        assert field.backend.name == "python"

    def test_env_override_typo_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "no_such_backend")
        with pytest.raises(KeyError, match="no_such_backend"):
            default_backend_name(GF2_16)

    def test_unknown_backend_name(self):
        with pytest.raises(KeyError, match="unknown backend"):
            get_backend("no_such_backend", GF2_16)

    def test_instances_are_cached(self):
        assert get_backend("python", GF2_16) is get_backend("python", GF2_16)
        # Distinct options resolve to distinct instances.
        schoolbook = get_backend("engine", GF2_16, method="schoolbook")
        assert schoolbook is not get_backend("engine", GF2_16)
        assert schoolbook.method == "schoolbook"

    def test_resolve_accepts_instances_of_equal_fields(self):
        backend = get_backend("python", GF2_16)
        assert resolve_backend(GF2_16, backend) is backend
        with pytest.raises(ValueError, match="bound to"):
            resolve_backend(GF2_163, backend)

    def test_resolve_rejects_method_contradicting_an_instance(self):
        engine = get_backend("engine", GF2_16, method="schoolbook")
        # Matching method: fine — the instance already runs that circuit.
        assert resolve_backend(GF2_16, engine, method="schoolbook") is engine
        with pytest.raises(ValueError, match="fixes its construction"):
            resolve_backend(GF2_16, engine, method="thiswork")

    def test_verify_option_is_part_of_the_instance_key(self):
        unverified = get_backend("engine", GF2_16, verify=False)
        assert unverified is not get_backend("engine", GF2_16)
        assert unverified.multiply(3, 5) == GF2_16.multiply(3, 5)

    def test_method_alone_selects_the_engine(self):
        backend = resolve_backend(GF2_16, None, method="schoolbook")
        assert backend.name == "engine" and backend.method == "schoolbook"

    def test_python_backend_rejects_a_method(self):
        with pytest.raises(ValueError, match="evaluates no circuit"):
            resolve_backend(GF2_16, "python", method="thiswork")

    def test_custom_backends_can_register(self):
        class NegatingBackend(FieldBackend):
            name = "negating-test"
            capabilities = BackendCapabilities(False, False, 1)

            def multiply(self, a, b):
                return self.field.multiply(a, b)

            def multiply_batch(self, a_values, b_values):
                return [self.multiply(a, b) for a, b in zip(a_values, b_values)]

        register_backend("negating-test", NegatingBackend)
        assert "negating-test" in available_backends()
        assert get_backend("negating-test", GF2_16).multiply(3, 5) == GF2_16.multiply(3, 5)

    def test_default_method_selection(self):
        assert default_method_for(GF2_163.modulus) == "thiswork"
        assert default_method_for(0b1011) == "schoolbook"  # trinomial modulus


class TestParityNIST:
    """Acceptance: byte-identical backends on GF(2^163) and GF(2^233)."""

    @pytest.mark.parametrize("name", _backends())
    def test_gf2_163_parity(self, name):
        assert assert_backend_parity(GF2_163, name, pairs=96) > 0

    @pytest.mark.parametrize("name", _backends())
    def test_gf2_233_parity(self, name):
        assert assert_backend_parity(GF2_233, name, pairs=64) > 0

    def test_parity_harness_catches_mismatches(self):
        class BrokenBackend(FieldBackend):
            name = "broken-test"
            capabilities = BackendCapabilities(False, False, 1)

            def multiply(self, a, b):
                return self.field.multiply(a, b) ^ 1

            def multiply_batch(self, a_values, b_values):
                return [self.multiply(a, b) for a, b in zip(a_values, b_values)]

        with pytest.raises(AssertionError, match="mismatch"):
            assert_backend_parity(GF2_16, BrokenBackend(GF2_16), pairs=4)

    def test_multiply_batch_identical_across_backends(self):
        rng = random.Random(11)
        a_values = [rng.getrandbits(163) for _ in range(40)]
        b_values = [rng.getrandbits(163) for _ in range(40)]
        expected = [GF2_163.multiply(a, b) for a, b in zip(a_values, b_values)]
        for name in ALL_BACKENDS:
            if not _available(name):
                continue
            assert GF2_163.multiply_batch(a_values, b_values, backend=name) == expected


class TestECDHParity:
    """Acceptance: the batched ECDH ladder is backend-invariant."""

    @pytest.mark.parametrize("name", _backends())
    def test_k163_ladder_matches_scalar(self, name):
        curve = curve_by_name("K-163")
        rng = random.Random(5)
        publics = [pair.public for pair in keygen_batch(curve, 4, seed=3)]
        privates = [rng.randrange(1, curve.order) for _ in publics]
        expected = [curve.multiply(point, scalar) for point, scalar in zip(publics, privates)]
        assert curve.multiply_batch(publics, privates, backend=name) == expected

    @pytest.mark.parametrize("name", _backends())
    def test_k233_ladder_matches_scalar(self, name):
        curve = curve_by_name("K-233")
        rng = random.Random(6)
        publics = [pair.public for pair in keygen_batch(curve, 3, seed=4)]
        privates = [rng.randrange(1, curve.order) for _ in publics]
        expected = [curve.multiply(point, scalar) for point, scalar in zip(publics, privates)]
        assert curve.multiply_batch(publics, privates, backend=name) == expected

    @pytest.mark.parametrize("name", _backends())
    def test_ecdh_batch_takes_a_backend(self, name):
        curve = curve_by_name("T-13")
        alice = keygen_batch(curve, 6, seed=1, backend=name)
        bob = keygen_batch(curve, 6, seed=2, backend=name)
        left = ecdh_batch(
            curve, [kp.private for kp in alice], [kp.public for kp in bob], backend=name
        )
        right = ecdh_batch(
            curve, [kp.private for kp in bob], [kp.public for kp in alice], batched=False
        )
        assert left == right


class TestFieldDelegation:
    def test_field_backend_constructor_argument(self):
        field = GF2mField(type_ii_pentanomial(16, 3), backend="python")
        assert field.backend.name == "python"
        a_values, b_values = [3, 5, 0xFFFF], [7, 0, 0xFFFF]
        expected = [field.multiply(a, b) for a, b in zip(a_values, b_values)]
        assert field.multiply_batch(a_values, b_values) == expected

    def test_square_batch_matches_scalar(self):
        rng = random.Random(3)
        values = [rng.getrandbits(16) for _ in range(20)]
        expected = [GF2_16.square(value) for value in values]
        for name in ALL_BACKENDS:
            if not _available(name):
                continue
            assert GF2_16.square_batch(values, backend=name) == expected

    def test_inverse_batch_matches_scalar(self):
        field = GF2mField(type_ii_pentanomial(16, 3))
        rng = random.Random(4)
        values = [rng.getrandbits(16) or 1 for _ in range(12)]
        expected = [field.inverse(value) for value in values]
        for name in ALL_BACKENDS:
            if not _available(name):
                continue
            assert field.inverse_batch(values, backend=name) == expected

    def test_batch_range_check_names_the_offender(self):
        with pytest.raises(ValueError, match="0x10000"):
            GF2_16.multiply_batch([1, 0x10000], [1, 1])
        with pytest.raises(ValueError):
            GF2_16.multiply_batch([1, -1], [1, 1])
        with pytest.raises(ValueError, match="0x10000"):
            GF2_16.square_batch([0x10000])

    def test_batch_length_mismatch(self):
        with pytest.raises(ValueError, match="differ in length"):
            GF2_16.multiply_batch([1, 2], [3])

    def test_empty_batches(self):
        assert GF2_16.multiply_batch([], []) == []
        assert GF2_16.square_batch([]) == []
        assert GF2_16.inverse_batch([]) == []


@requires_numpy
class TestBitslicedNetlist:
    def test_matches_reference_with_chunking(self):
        multiplier = cached_multiplier("thiswork", GF2_16.modulus)
        sliced = BitslicedNetlist(multiplier.netlist, 16)
        rng = random.Random(9)
        a_values = [rng.getrandbits(16) for _ in range(70)]
        b_values = [rng.getrandbits(16) for _ in range(70)]
        expected = [GF2_16.multiply(a, b) for a, b in zip(a_values, b_values)]
        assert sliced.multiply_batch(a_values, b_values) == expected
        # Odd chunk sizes exercise the tail-width buffer path.
        assert sliced.multiply_batch(a_values, b_values, chunk_size=17) == expected
        assert sliced.multiply_batch([], []) == []

    def test_masks_high_bits_like_the_engine(self):
        multiplier = cached_multiplier("thiswork", GF2_16.modulus)
        sliced = BitslicedNetlist(multiplier.netlist, 16)
        assert sliced.multiply_batch([(1 << 16) | 3], [1]) == [GF2_16.multiply(3, 1)]

    def test_rejects_bad_arguments(self):
        multiplier = cached_multiplier("thiswork", GF2_16.modulus)
        sliced = BitslicedNetlist(multiplier.netlist, 16)
        with pytest.raises(ValueError, match="differ in length"):
            sliced.multiply_batch([1, 2], [3])
        with pytest.raises(ValueError, match="chunk_size"):
            sliced.multiply_batch([1], [1], chunk_size=0)
        with pytest.raises(ValueError, match="chunk_size"):
            BitslicedNetlist(multiplier.netlist, 16, chunk_size=0)

    def test_rejects_netlists_outside_the_multiplier_convention(self):
        netlist = Netlist(name="odd-io")
        x = netlist.add_input("x0")
        netlist.add_output("c0", x)
        with pytest.raises(ValueError, match="convention"):
            BitslicedNetlist(netlist, 1)
        multiplier = cached_multiplier("thiswork", type_ii_pentanomial(8, 2))
        with pytest.raises(ValueError, match="missing output c8"):
            BitslicedNetlist(multiplier.netlist, 9)

    def test_describe_mentions_the_structure(self):
        multiplier = cached_multiplier("thiswork", GF2_16.modulus)
        sliced = BitslicedNetlist(multiplier.netlist, 16)
        description = sliced.describe()
        assert "bitslice" in description and "segments" in description

    def test_concurrent_batches_do_not_corrupt_each_other(self):
        """Registry-shared instances must be safe under concurrent callers."""
        import threading

        multiplier = cached_multiplier("thiswork", GF2_16.modulus)
        sliced = BitslicedNetlist(multiplier.netlist, 16)
        rng = random.Random(23)
        streams = []
        for _ in range(8):
            a_values = [rng.getrandbits(16) for _ in range(96)]
            b_values = [rng.getrandbits(16) for _ in range(96)]
            expected = [GF2_16.multiply(a, b) for a, b in zip(a_values, b_values)]
            streams.append((a_values, b_values, expected))
        failures = []

        def worker(stream):
            a_values, b_values, expected = stream
            for _ in range(20):
                if sliced.multiply_batch(a_values, b_values) != expected:
                    failures.append(stream)
                    return

        threads = [threading.Thread(target=worker, args=(stream,)) for stream in streams]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestNumpyDegradation:
    def test_clear_import_error_without_numpy(self, monkeypatch):
        monkeypatch.setattr(bitslice_module, "_np", None)
        assert not bitslice_module.numpy_available()
        with pytest.raises(ImportError, match="pip install numpy"):
            bitslice_module.BitsliceBackend(GF2_16)
        with pytest.raises(ImportError, match="bitslice"):
            bitslice_module._require_numpy()


class TestCapabilities:
    @pytest.mark.parametrize("name", _backends())
    def test_capabilities_and_describe(self, name):
        backend = get_backend(name, GF2_16)
        capabilities = backend.capabilities
        assert capabilities.min_efficient_batch >= 1
        assert backend.describe()
        if name == "python":
            assert not capabilities.vectorized and not capabilities.compiled
        else:
            assert capabilities.vectorized and capabilities.compiled
