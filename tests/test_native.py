"""The native C word-level backend: parity, ladders, chunking, degradation.

Acceptance contract of the PR 7 tentpole: the C kernel (carry-less
multiply + sparse pentanomial reduction over uint64 words) must be
**byte-identical** to the scalar big-integer reference everywhere it is
reachable — the :class:`FieldBackend` batch surface, the compiled-FieldIR
ladder, chunked batches of every awkward size — and must degrade to a
clear :class:`ImportError` (with the registry default falling back to the
engine) on machines without a C toolchain.  Every test here skips rather
than fails when the extension cannot be built.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.backends.registry as registry_module
from repro.backends import (
    assert_backend_parity,
    default_backend_name,
    get_backend,
    native_available,
)
from repro.backends.native import NativeBackend
from repro.curves import curve_by_name
from repro.galois.field import GF2mField
from repro.galois.pentanomials import smallest_type_ii_pentanomial

requires_native = pytest.mark.skipif(
    not native_available(), reason="native extension not buildable here"
)

GF2_163 = GF2mField(smallest_type_ii_pentanomial(163), check_irreducible=False)
GF2_233 = GF2mField(smallest_type_ii_pentanomial(233), check_irreducible=False)


@requires_native
class TestNativeParity:
    @pytest.mark.parametrize("field", [GF2_163, GF2_233], ids=["gf163", "gf233"])
    def test_full_backend_parity(self, field):
        """The uniform harness: multiply/square/inverse + compiled-IR probe."""
        assert assert_backend_parity(field, "native") > 0

    def test_word_aligned_edge_fields(self):
        """m = 64 exercises the hb == 0 path of the reduction (no partial word)."""
        for m in (8, 16, 64):
            modulus = smallest_type_ii_pentanomial(m)
            field = GF2mField(modulus, check_irreducible=False)
            assert assert_backend_parity(field, "native") > 0

    def test_describe_names_the_substrate(self):
        backend = get_backend("native", GF2_163)
        description = backend.describe()
        assert description.startswith("native[C] GF(2^163)")
        assert "reduction" in description

    def test_rejects_circuit_method(self):
        with pytest.raises(ValueError, match="evaluates no circuit"):
            NativeBackend(GF2_163, method="thiswork")


@requires_native
class TestNativeLadder:
    @pytest.mark.parametrize("curve_name", ["K-163", "K-233"])
    def test_batched_ladder_matches_scalar_reference(self, curve_name):
        """Batch-32 scalar multiplication, byte-identical to the scalar ladder."""
        curve = curve_by_name(curve_name)
        backend = get_backend("native", curve.field)
        rng = random.Random(2018)
        n = curve.order if curve.order is not None else curve.field.order
        scalars = [0, 1, 2, n - 1]
        while len(scalars) < 32:
            scalars.append(rng.randrange(0, n))
        points = [curve.generator] * len(scalars)
        batched = curve.multiply_batch(points, scalars, backend=backend)
        for index, (point, scalar) in enumerate(zip(points, scalars)):
            assert batched[index] == curve.multiply(point, scalar), (
                f"{curve_name} lane {index}: native ladder != scalar reference"
            )


@requires_native
class TestNativeChunking:
    def test_ladder_chunk_boundaries(self):
        """Batches straddling the executor chunk size split without drift."""
        curve = curve_by_name("K-163")
        backend = NativeBackend(curve.field, chunk_size=4)
        rng = random.Random(7)
        n = curve.order
        for batch in (3, 4, 5, 9):
            scalars = [rng.randrange(1, n) for _ in range(batch)]
            points = [curve.generator] * batch
            batched = curve.multiply_batch(points, scalars, backend=backend)
            assert batched == [curve.multiply(p, k) for p, k in zip(points, scalars)]

    def test_multiply_batch_larger_than_chunk(self):
        """multiply_batch ignores chunking but must stay exact far past it."""
        backend = NativeBackend(GF2_163, chunk_size=16)
        rng = random.Random(11)
        a_values = [rng.getrandbits(163) for _ in range(67)]
        b_values = [rng.getrandbits(163) for _ in range(67)]
        assert backend.multiply_batch(a_values, b_values) == [
            GF2_163.multiply(a, b) for a, b in zip(a_values, b_values)
        ]


@requires_native
class TestNativeProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=0, max_value=(1 << 163) - 1),
        b=st.integers(min_value=0, max_value=(1 << 163) - 1),
    )
    def test_multiply_matches_python_reference(self, a, b):
        backend = get_backend("native", GF2_163)
        assert backend.multiply(a, b) == GF2_163.multiply(a, b)


class TestNativeDegradation:
    def test_clear_import_error_without_a_compiler(self, monkeypatch):
        """No toolchain: NativeBackend raises a clear ImportError and the
        registry default falls back to the engine — never a silent downgrade."""
        import repro.backends.native as native_module

        monkeypatch.setattr(native_module, "_EXT", None)
        monkeypatch.setattr(
            native_module,
            "_EXT_ERROR",
            ImportError("the native backend is unavailable: no C compiler"),
        )
        monkeypatch.setattr(registry_module, "native_available", lambda: False)
        with pytest.raises(ImportError, match="native backend is unavailable"):
            NativeBackend(GF2_163)
        # Fresh options dodge the registry's (name, modulus, options) instance
        # cache, which other tests may already have populated.
        with pytest.raises(ImportError, match="native backend is unavailable"):
            get_backend("native", GF2_163, chunk_size=123)
        assert default_backend_name(GF2_163) == "engine"
