"""Unit tests for reduction and Mastrovito matrices."""

from __future__ import annotations

import random

import pytest

from repro.galois.field import GF2mField
from repro.galois.gf2poly import degree
from repro.galois.matrices import (
    mastrovito_matrix,
    matrix_vector_product,
    multiply_with_reduction_matrix,
    power_residues,
    reduction_matrix,
)


class TestPowerResidues:
    def test_gf28_first_residue(self, gf28_modulus):
        # y^8 mod f = y^4 + y^3 + y^2 + 1 = 0x1d
        assert power_residues(gf28_modulus)[0] == 0x1D

    def test_residue_count(self, gf28_modulus):
        assert len(power_residues(gf28_modulus)) == 7   # degrees 8..14

    def test_residues_match_poly_mod(self, small_moduli):
        from repro.galois.gf2poly import poly_mod

        for modulus in small_moduli:
            m = degree(modulus)
            residues = power_residues(modulus)
            for i, residue in enumerate(residues):
                assert residue == poly_mod(1 << (m + i), modulus)

    def test_degenerate_range(self):
        assert power_residues(0b111, highest_power=1) == []


class TestReductionMatrix:
    def test_dimensions(self, small_moduli):
        for modulus in small_moduli:
            m = degree(modulus)
            rows = reduction_matrix(modulus)
            assert len(rows) == m - 1
            assert all(len(row) == m for row in rows)

    def test_gf23_matrix(self):
        assert reduction_matrix(0b1011) == [[1, 1, 0], [0, 1, 1]]

    def test_pentanomial_first_row_has_weight_four(self, gf28_modulus):
        # y^m mod f has the four non-leading terms of the pentanomial.
        assert sum(reduction_matrix(gf28_modulus)[0]) == 4

    def test_matrix_vector_product_dimension_check(self):
        with pytest.raises(ValueError):
            matrix_vector_product([[1, 0]], [1])

    def test_matrix_vector_product_values(self):
        assert matrix_vector_product([[1, 1, 0], [0, 1, 1]], [1, 1, 0]) == [0, 1]


class TestMatrixMultiplication:
    def test_matches_field_multiplication_exhaustive_gf23(self):
        modulus = 0b1011
        field = GF2mField(modulus)
        for a in range(8):
            for b in range(8):
                assert multiply_with_reduction_matrix(modulus, a, b) == field.multiply(a, b)

    def test_matches_field_multiplication_random(self, small_moduli):
        rng = random.Random(12)
        for modulus in small_moduli:
            m = degree(modulus)
            field = GF2mField(modulus, check_irreducible=False)
            for _ in range(50):
                a = rng.getrandbits(m)
                b = rng.getrandbits(m)
                assert multiply_with_reduction_matrix(modulus, a, b) == field.multiply(a, b)

    def test_mastrovito_matrix_multiplication(self, gf28_modulus):
        field = GF2mField(gf28_modulus)
        rng = random.Random(13)
        for _ in range(50):
            a = rng.getrandbits(8)
            b = rng.getrandbits(8)
            matrix = mastrovito_matrix(gf28_modulus, field.coordinates(a))
            product_bits = matrix_vector_product(matrix, field.coordinates(b))
            assert field.from_coordinates(product_bits) == field.multiply(a, b)

    def test_mastrovito_matrix_wrong_operand_length(self, gf28_modulus):
        with pytest.raises(ValueError):
            mastrovito_matrix(gf28_modulus, [1, 0, 1])
