"""Tests for ECDH / ECDSA-style protocol workloads (`repro.curves.protocols`)."""

from __future__ import annotations

import random

import pytest

from repro.curves import (
    curve_by_name,
    ecdh_batch,
    ecdh_shared,
    ecdsa_sign,
    ecdsa_verify,
    generate_keypair,
    keygen_batch,
    sign_batch,
)
from repro.curves.protocols import Signature


@pytest.fixture(scope="module")
def toy():
    return curve_by_name("T-13")


@pytest.fixture(scope="module")
def k163():
    return curve_by_name("K-163")


class TestKeygen:
    def test_keypair_public_matches_private(self, toy):
        pair = generate_keypair(toy, random.Random(1))
        assert 1 <= pair.private < toy.order
        assert pair.public == toy.multiply_reference(toy.generator, pair.private)

    def test_keygen_batch_deterministic_by_seed(self, toy):
        assert keygen_batch(toy, 5, seed=42) == keygen_batch(toy, 5, seed=42)
        assert keygen_batch(toy, 5, seed=42) != keygen_batch(toy, 5, seed=43)

    def test_keygen_batch_matches_scalar_path(self, toy):
        batched = keygen_batch(toy, 12, seed=7)
        scalar = keygen_batch(toy, 12, seed=7, batched=False)
        assert batched == scalar

    def test_keygen_rejects_negative_count(self, toy):
        with pytest.raises(ValueError):
            keygen_batch(toy, -1)


class TestEcdh:
    def test_known_answer_t13(self, toy):
        """Pinned regression vector: seeds 101/202 on the toy curve."""
        alice = keygen_batch(toy, 2, seed=101)
        bob = keygen_batch(toy, 2, seed=202)
        assert [pair.private for pair in alice] == [1191, 1735]
        assert [pair.private for pair in bob] == [1565, 790]
        shared = [
            ecdh_shared(toy, a.private, b.public) for a, b in zip(alice, bob)
        ]
        assert [(point.x, point.y) for point in shared] == [(0x1836, 0x18A6), (0x1D36, 0x130F)]

    def test_known_answer_k163(self, k163):
        """Pinned regression vector on the NIST-degree Koblitz curve."""
        alice = generate_keypair(k163, random.Random(163))
        bob = generate_keypair(k163, random.Random(233))
        shared = ecdh_shared(k163, alice.private, bob.public)
        assert shared.x == 0x1A4939A008B32D2A8FF5E1004D58E3E519D6A77DA
        assert shared.y == 0x36A0DEA12E4511598DEE9D4345E12E36E8D0E6224

    def test_agreement_both_directions(self, toy):
        alice = keygen_batch(toy, 8, seed=1)
        bob = keygen_batch(toy, 8, seed=2)
        left = ecdh_batch(toy, [kp.private for kp in alice], [kp.public for kp in bob])
        right = ecdh_batch(toy, [kp.private for kp in bob], [kp.public for kp in alice])
        assert left == right

    def test_batched_byte_identical_to_scalar_reference(self, toy):
        alice = keygen_batch(toy, 16, seed=3)
        bob = keygen_batch(toy, 16, seed=4)
        privates = [kp.private for kp in alice]
        peers = [kp.public for kp in bob]
        assert ecdh_batch(toy, privates, peers) == ecdh_batch(toy, privates, peers, batched=False)

    def test_rejects_off_curve_peer(self, toy):
        with pytest.raises(ValueError, match="peer"):
            ecdh_shared(toy, 5, toy.point(2, 0, check=False))

    def test_rejects_infinity_peer(self, toy):
        with pytest.raises(ValueError, match="peer"):
            ecdh_shared(toy, 5, toy.infinity())

    def test_rejects_size_mismatch(self, toy):
        with pytest.raises(ValueError, match="mismatch"):
            ecdh_batch(toy, [1, 2], [toy.generator])

    def test_works_on_unknown_order_curve(self):
        b163 = curve_by_name("B-163")
        alice = keygen_batch(b163, 2, seed=5)
        bob = keygen_batch(b163, 2, seed=6)
        left = ecdh_batch(b163, [kp.private for kp in alice], [kp.public for kp in bob])
        right = ecdh_batch(b163, [kp.private for kp in bob], [kp.public for kp in alice])
        assert left == right


class TestEcdsa:
    def test_sign_verify_roundtrip(self, toy):
        pair = generate_keypair(toy, random.Random(5))
        for digest in (0, 1, 123456789, 1 << 200):
            signature = ecdsa_sign(toy, pair.private, digest)
            assert ecdsa_verify(toy, pair.public, digest, signature)

    def test_deterministic_signatures(self, toy):
        pair = generate_keypair(toy, random.Random(6))
        assert ecdsa_sign(toy, pair.private, 99) == ecdsa_sign(toy, pair.private, 99)

    def test_tampered_digest_rejected(self, toy):
        pair = generate_keypair(toy, random.Random(7))
        signature = ecdsa_sign(toy, pair.private, 1000)
        assert not ecdsa_verify(toy, pair.public, 1001, signature)

    def test_tampered_signature_rejected(self, toy):
        pair = generate_keypair(toy, random.Random(8))
        signature = ecdsa_sign(toy, pair.private, 1000)
        bad = Signature(signature.r, signature.s ^ 1)
        assert not ecdsa_verify(toy, pair.public, 1000, bad)

    def test_wrong_key_rejected(self, toy):
        pair = generate_keypair(toy, random.Random(9))
        other = generate_keypair(toy, random.Random(10))
        signature = ecdsa_sign(toy, pair.private, 1000)
        assert not ecdsa_verify(toy, other.public, 1000, signature)

    def test_out_of_range_signature_rejected(self, toy):
        pair = generate_keypair(toy, random.Random(11))
        assert not ecdsa_verify(toy, pair.public, 1, Signature(0, 1))
        assert not ecdsa_verify(toy, pair.public, 1, Signature(1, toy.order))

    def test_explicit_nonce_reproduces(self, toy):
        pair = generate_keypair(toy, random.Random(12))
        assert ecdsa_sign(toy, pair.private, 5, nonce=77) == ecdsa_sign(toy, pair.private, 5, nonce=77)

    def test_invalid_nonce_rejected(self, toy):
        pair = generate_keypair(toy, random.Random(13))
        with pytest.raises(ValueError, match="nonce"):
            ecdsa_sign(toy, pair.private, 5, nonce=0)

    def test_unknown_order_curve_raises_clear_error(self):
        b163 = curve_by_name("B-163")
        with pytest.raises(ValueError, match="known subgroup order"):
            ecdsa_sign(b163, 12345, 1)
        with pytest.raises(ValueError, match="known subgroup order"):
            ecdsa_verify(b163, b163.generator, 1, Signature(1, 1))

    def test_k163_roundtrip(self, k163):
        pair = generate_keypair(k163, random.Random(14))
        digest = 0x1234567890ABCDEF
        signature = ecdsa_sign(k163, pair.private, digest)
        assert ecdsa_verify(k163, pair.public, digest, signature)
        assert not ecdsa_verify(k163, pair.public, digest + 1, signature)


class TestSignBatch:
    def test_batched_signatures_equal_scalar_reference(self, toy):
        rng = random.Random(20)
        privates = [rng.randrange(1, toy.order) for _ in range(12)]
        digests = [rng.getrandbits(64) for _ in range(12)]
        batched = sign_batch(toy, privates, digests)
        scalar = [ecdsa_sign(toy, d, z) for d, z in zip(privates, digests)]
        assert batched == scalar

    def test_batched_false_is_the_scalar_path(self, toy):
        rng = random.Random(21)
        privates = [rng.randrange(1, toy.order) for _ in range(4)]
        digests = [rng.getrandbits(32) for _ in range(4)]
        assert sign_batch(toy, privates, digests, batched=False) == sign_batch(
            toy, privates, digests
        )

    def test_signatures_verify_against_their_publics(self, toy):
        pairs = keygen_batch(toy, 6, seed=22)
        digests = list(range(100, 106))
        signatures = sign_batch(toy, [pair.private for pair in pairs], digests)
        for pair, digest, signature in zip(pairs, digests, signatures):
            assert ecdsa_verify(toy, pair.public, digest, signature)

    def test_backend_and_route_pins_stay_byte_identical(self, toy):
        rng = random.Random(23)
        privates = [rng.randrange(1, toy.order) for _ in range(5)]
        digests = [rng.getrandbits(48) for _ in range(5)]
        reference = sign_batch(toy, privates, digests)
        assert sign_batch(toy, privates, digests, backend="python") == reference
        assert sign_batch(toy, privates, digests, fixed_base=False) == reference
        assert sign_batch(
            toy, privates, digests, fixed_base=False, scalar_rep="binary"
        ) == reference

    def test_length_mismatch_and_bad_private_raise(self, toy):
        with pytest.raises(ValueError, match="mismatch"):
            sign_batch(toy, [1, 2], [3])
        with pytest.raises(ValueError, match="1 <= d < n"):
            sign_batch(toy, [0], [1])

    def test_unknown_order_curve_raises(self):
        b163 = curve_by_name("B-163")
        with pytest.raises(ValueError, match="known subgroup order"):
            sign_batch(b163, [5], [7])

    def test_empty_batch(self, toy):
        assert sign_batch(toy, [], []) == []
