"""Tests for LUT mapping, slice packing and the timing model."""

from __future__ import annotations

import pytest

from repro.multipliers import generate_multiplier
from repro.netlist.netlist import Netlist
from repro.netlist.simulate import simulate
from repro.synth.device import ARTIX7, GENERIC_4LUT, DeviceModel
from repro.synth.lutmap import map_to_luts
from repro.synth.slices import pack_slices
from repro.synth.timing import analyze_timing


def simulate_mapped(mapped, assignments, width):
    """Reference evaluation of a mapped network by evaluating the source netlist."""
    return simulate(mapped.source, assignments, width)


class TestLutMapping:
    def test_every_lut_respects_the_input_limit(self, gf28_modulus):
        for k in (4, 6):
            multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
            mapped = map_to_luts(multiplier.netlist, lut_inputs=k)
            assert all(lut.input_count <= k for lut in mapped.luts)

    def test_outputs_are_covered(self, gf28_modulus):
        multiplier = generate_multiplier("imana2012", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        roots = {lut.root for lut in mapped.luts}
        for _, node in multiplier.netlist.outputs:
            assert node in roots

    def test_lut_leaves_are_inputs_or_other_roots(self, gf28_modulus):
        multiplier = generate_multiplier("reyhani_hasan", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        roots = {lut.root for lut in mapped.luts}
        netlist = multiplier.netlist
        for lut in mapped.luts:
            for leaf in lut.leaves:
                assert (not netlist.is_gate(leaf)) or leaf in roots

    def test_levels_are_consistent(self, gf28_modulus):
        multiplier = generate_multiplier("paar", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        level_of = {lut.root: lut.level for lut in mapped.luts}
        for lut in mapped.luts:
            deepest_leaf = max((level_of.get(leaf, 0) for leaf in lut.leaves), default=0)
            assert lut.level == deepest_leaf + 1
        assert mapped.depth == max(level_of.values())

    def test_mapping_never_uses_fewer_luts_than_outputs(self, gf28_modulus):
        multiplier = generate_multiplier("rashidi", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        assert mapped.lut_count >= len(multiplier.netlist.outputs)

    def test_smaller_luts_need_more_of_them(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
        mapped6 = map_to_luts(multiplier.netlist, lut_inputs=6)
        mapped4 = map_to_luts(multiplier.netlist, lut_inputs=4)
        assert mapped4.lut_count > mapped6.lut_count

    def test_depth_slack_never_improves_depth(self, gf28_modulus):
        multiplier = generate_multiplier("imana2016", gf28_modulus, verify=False)
        tight = map_to_luts(multiplier.netlist, lut_inputs=6, depth_slack=0)
        loose = map_to_luts(multiplier.netlist, lut_inputs=6, depth_slack=2)
        assert loose.depth >= tight.depth
        assert loose.depth <= tight.depth + 2
        assert loose.lut_count <= tight.lut_count + 5  # slack is for area recovery

    def test_parameter_validation(self, gf28_modulus):
        multiplier = generate_multiplier("paar", gf28_modulus, verify=False)
        with pytest.raises(ValueError):
            map_to_luts(multiplier.netlist, lut_inputs=1)
        with pytest.raises(ValueError):
            map_to_luts(multiplier.netlist, cut_limit=0)
        with pytest.raises(ValueError):
            map_to_luts(multiplier.netlist, depth_slack=-1)

    def test_input_histogram_counts_all_luts(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        histogram = mapped.lut_input_histogram()
        assert sum(histogram.values()) == mapped.lut_count
        assert max(histogram) <= 6

    def test_single_gate_netlist(self):
        netlist = Netlist()
        a = netlist.add_input("a0")
        b = netlist.add_input("b0")
        netlist.add_output("c0", netlist.and2(a, b))
        mapped = map_to_luts(netlist, lut_inputs=6)
        assert mapped.lut_count == 1 and mapped.depth == 1


class TestSlicePacking:
    def test_capacity_is_respected(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        packing = pack_slices(mapped, ARTIX7)
        assert all(slice_.lut_count <= ARTIX7.luts_per_slice for slice_ in packing.slices)

    def test_all_luts_are_packed_exactly_once(self, gf28_modulus):
        multiplier = generate_multiplier("imana2012", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        packing = pack_slices(mapped, ARTIX7)
        assert packing.lut_count == mapped.lut_count

    def test_slice_count_bounds(self, gf28_modulus):
        multiplier = generate_multiplier("reyhani_hasan", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        packing = pack_slices(mapped, ARTIX7)
        lower = -(-mapped.lut_count // ARTIX7.luts_per_slice)
        assert lower <= packing.slice_count <= mapped.lut_count
        assert 1.0 <= packing.average_fill() <= ARTIX7.luts_per_slice

    def test_min_fill_validation(self, gf28_modulus):
        multiplier = generate_multiplier("paar", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        with pytest.raises(ValueError):
            pack_slices(mapped, ARTIX7, min_fill=0)

    def test_4lut_device_uses_smaller_slices(self, gf28_modulus):
        multiplier = generate_multiplier("paar", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=4)
        packing = pack_slices(mapped, GENERIC_4LUT)
        assert all(slice_.lut_count <= 2 for slice_ in packing.slices)


class TestTiming:
    def test_critical_path_is_positive_and_bounded_below_by_io(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        timing = analyze_timing(mapped, ARTIX7)
        assert timing.critical_path_ns > ARTIX7.io_overhead_ns()
        assert timing.critical_output.startswith("c")
        assert timing.logic_levels == mapped.lut_of_root[
            multiplier.netlist.output_node(timing.critical_output)
        ].level
        assert "ns" in timing.summary()

    def test_more_levels_means_more_delay(self, gf28_modulus):
        multiplier = generate_multiplier("schoolbook", gf28_modulus, verify=False)
        mapped6 = map_to_luts(multiplier.netlist, lut_inputs=6)
        mapped3 = map_to_luts(multiplier.netlist, lut_inputs=3)
        slow = analyze_timing(mapped3, ARTIX7)
        fast = analyze_timing(mapped6, ARTIX7)
        assert mapped3.depth > mapped6.depth
        assert slow.critical_path_ns > fast.critical_path_ns

    def test_slower_device_gives_longer_delay(self, gf28_modulus):
        from repro.synth.device import VIRTEX5_LIKE

        multiplier = generate_multiplier("imana2016", gf28_modulus, verify=False)
        mapped = map_to_luts(multiplier.netlist, lut_inputs=6)
        assert analyze_timing(mapped, VIRTEX5_LIKE).critical_path_ns > analyze_timing(mapped, ARTIX7).critical_path_ns

    def test_net_delay_monotone_in_fanout_and_size(self):
        device = ARTIX7
        assert device.net_delay_ns(8, 100) > device.net_delay_ns(1, 100)
        assert device.net_delay_ns(2, 10000) > device.net_delay_ns(2, 100)

    def test_device_model_fields(self):
        assert ARTIX7.lut_inputs == 6 and ARTIX7.luts_per_slice == 4
        assert isinstance(ARTIX7, DeviceModel)
