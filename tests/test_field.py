"""Unit tests for GF(2^m) field arithmetic (the functional reference model)."""

from __future__ import annotations

import random

import pytest

from repro.galois.field import FieldElement, GF2mField
from repro.galois.pentanomials import type_ii_pentanomial


class TestConstruction:
    def test_rejects_reducible_modulus_by_default(self):
        with pytest.raises(ValueError):
            GF2mField(0b101)     # (y + 1)^2

    def test_quotient_ring_allowed_when_requested(self):
        ring = GF2mField(0b101, check_irreducible=False)
        assert not ring.is_field
        assert ring.multiply(0b10, 0b10) == 0b01  # y^2 = 1 mod (y+1)^2... y^2 mod (y^2+1) = 1

    def test_basic_metadata(self, gf28_field):
        assert gf28_field.m == 8
        assert gf28_field.order == 256
        assert gf28_field.is_field
        assert gf28_field.modulus_string() == "y^8 + y^4 + y^3 + y^2 + 1"
        assert gf28_field.type_ii_parameters() == (8, 2)

    def test_equality_and_hash(self, gf28_modulus):
        assert GF2mField(gf28_modulus) == GF2mField(gf28_modulus)
        assert hash(GF2mField(gf28_modulus)) == hash(GF2mField(gf28_modulus))
        assert GF2mField(gf28_modulus) != GF2mField(0b1011)


class TestArithmetic:
    def test_addition_is_xor(self, gf28_field):
        assert gf28_field.add(0x57, 0x83) == 0x57 ^ 0x83

    def test_multiplication_by_zero_and_one(self, gf28_field):
        for value in (0, 1, 0x53, 0xFF):
            assert gf28_field.multiply(value, 0) == 0
            assert gf28_field.multiply(value, 1) == value

    def test_multiplication_commutative_and_associative(self, gf28_field):
        rng = random.Random(3)
        for _ in range(200):
            a, b, c = (rng.randrange(256) for _ in range(3))
            assert gf28_field.multiply(a, b) == gf28_field.multiply(b, a)
            assert gf28_field.multiply(a, gf28_field.multiply(b, c)) == gf28_field.multiply(
                gf28_field.multiply(a, b), c
            )

    def test_distributivity(self, gf28_field):
        rng = random.Random(4)
        for _ in range(200):
            a, b, c = (rng.randrange(256) for _ in range(3))
            left = gf28_field.multiply(a, b ^ c)
            right = gf28_field.multiply(a, b) ^ gf28_field.multiply(a, c)
            assert left == right

    def test_every_nonzero_element_has_an_inverse(self, gf28_field):
        for value in range(1, 256):
            assert gf28_field.multiply(value, gf28_field.inverse(value)) == 1

    def test_inverse_of_zero_raises(self, gf28_field):
        with pytest.raises(ZeroDivisionError):
            gf28_field.inverse(0)

    def test_power_matches_repeated_multiplication(self, gf28_field):
        value = 0x57
        accumulated = 1
        for exponent in range(12):
            assert gf28_field.power(value, exponent) == accumulated
            accumulated = gf28_field.multiply(accumulated, value)

    def test_fermat_little_theorem(self, gf28_field):
        # a^(2^m) == a for all field elements.
        for value in (1, 2, 0x53, 0xCA, 0xFF):
            assert gf28_field.power(value, gf28_field.order) == value

    def test_squaring_is_linear(self, gf28_field):
        rng = random.Random(5)
        for _ in range(100):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf28_field.square(a ^ b) == gf28_field.square(a) ^ gf28_field.square(b)

    def test_trace_is_additive_and_binary(self, gf28_field):
        rng = random.Random(6)
        for _ in range(100):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf28_field.trace(a) in (0, 1)
            assert gf28_field.trace(a ^ b) == gf28_field.trace(a) ^ gf28_field.trace(b)

    def test_out_of_range_values_rejected(self, gf28_field):
        with pytest.raises(ValueError):
            gf28_field.multiply(256, 1)
        with pytest.raises(ValueError):
            gf28_field.add(-1, 1)

    def test_coordinates_round_trip(self, gf28_field):
        for value in (0, 1, 0x53, 0xFF):
            assert gf28_field.from_coordinates(gf28_field.coordinates(value)) == value


class TestNistField:
    def test_gf2_163_inverse(self):
        field = GF2mField(type_ii_pentanomial(163, 66))
        rng = random.Random(42)
        for _ in range(3):
            value = rng.getrandbits(163) | 1
            assert field.multiply(value, field.inverse(value)) == 1


class TestFastLinearOps:
    """The upgraded square/inverse paths against the seed implementations."""

    @pytest.mark.parametrize("m,n", [(163, 66), (233, 56)])
    def test_linear_map_square_agrees_with_multiply(self, m, n):
        field = GF2mField(type_ii_pentanomial(m, n))
        rng = random.Random(m)
        for _ in range(200):
            value = rng.getrandbits(m)
            assert field.square(value) == field.multiply(value, value)

    @pytest.mark.parametrize("m,n", [(163, 66), (233, 56)])
    def test_itoh_tsujii_agrees_with_fermat(self, m, n):
        field = GF2mField(type_ii_pentanomial(m, n))
        rng = random.Random(m + 1)
        for _ in range(8):
            value = rng.getrandbits(m) | 1
            inverse = field.inverse(value)
            assert inverse == field.inverse(value, method="fermat")
            assert field.multiply(value, inverse) == 1

    def test_small_field_exhaustive_agreement(self, gf28_field):
        for value in range(256):
            assert gf28_field.square(value) == gf28_field.multiply(value, value)
            if value:
                assert gf28_field.inverse(value) == gf28_field.inverse(value, method="fermat")

    def test_unknown_inverse_method_rejected(self, gf28_field):
        with pytest.raises(ValueError, match="method"):
            gf28_field.inverse(1, method="euclid")

    def test_inverse_batch_matches_scalar(self):
        field = GF2mField(type_ii_pentanomial(163, 66))
        rng = random.Random(17)
        values = [rng.getrandbits(163) | 1 for _ in range(33)]
        assert field.inverse_batch(values) == [field.inverse(value) for value in values]

    def test_inverse_batch_flags_zero_with_index(self, gf28_field):
        with pytest.raises(ZeroDivisionError, match="index 2"):
            gf28_field.inverse_batch([1, 2, 0, 3])
        assert gf28_field.inverse_batch([]) == []

    def test_inverse_batch_names_the_first_zero(self, gf28_field):
        with pytest.raises(ZeroDivisionError, match="index 0"):
            gf28_field.inverse_batch([0, 1, 0])
        with pytest.raises(ZeroDivisionError, match="index 3"):
            gf28_field.inverse_batch([7, 9, 11, 0])

    def test_inverse_batch_rejects_zero_before_any_work(self, gf28_field):
        """A zero must abort before prefix products are formed.

        A backend whose multiply counts calls proves no product involving
        the poisoned stream is ever computed.
        """
        from repro.backends.python_int import PythonIntBackend

        calls = []

        class CountingBackend(PythonIntBackend):
            def multiply(self, a, b):
                calls.append((a, b))
                return super().multiply(a, b)

        backend = CountingBackend(gf28_field)
        with pytest.raises(ZeroDivisionError, match="index 1"):
            gf28_field.inverse_batch([5, 0, 7], backend=backend)
        assert calls == []

    def test_inverse_batch_rejects_reducible_moduli(self):
        ring = GF2mField(0b101010101, check_irreducible=False)
        assert not ring.is_field
        with pytest.raises(ValueError, match="irreducible"):
            ring.inverse_batch([1, 2])
        assert ring.inverse_batch([]) == []

    def test_constant_multiplier_matches_multiply(self, gf28_field):
        rng = random.Random(18)
        for _ in range(10):
            c = rng.randrange(256)
            mul_c = gf28_field.constant_multiplier(c)
            for _ in range(20):
                value = rng.randrange(256)
                assert mul_c(value) == gf28_field.multiply(c, value)

    def test_sqrt_inverts_square(self):
        field = GF2mField(type_ii_pentanomial(163, 66))
        rng = random.Random(19)
        for _ in range(20):
            value = rng.getrandbits(163)
            assert field.sqrt(field.square(value)) == value
            assert field.square(field.sqrt(value)) == value

    def test_half_trace_solves_quadratic(self):
        field = GF2mField(type_ii_pentanomial(163, 66))
        rng = random.Random(20)
        solved = 0
        for _ in range(20):
            c = rng.getrandbits(163)
            if field.trace(c) == 0:
                z = field.half_trace(c)
                assert field.square(z) ^ z == c
                solved += 1
        assert solved > 0

    def test_half_trace_needs_odd_degree(self, gf28_field):
        with pytest.raises(ValueError, match="odd"):
            gf28_field.half_trace(1)

    def test_linear_map_validates_mask_count(self, gf28_field):
        with pytest.raises(ValueError, match="basis images"):
            gf28_field.linear_map([1, 2, 3])


class TestPowerEdgeCases:
    """The flattened power(): explicit zero/negative-exponent semantics."""

    def test_power_zero_exponent(self, gf28_field):
        assert gf28_field.power(0x57, 0) == 1
        assert gf28_field.power(1, 0) == 1

    def test_power_zero_to_the_zero_is_one(self, gf28_field):
        assert gf28_field.power(0, 0) == 1

    def test_power_of_zero_positive_exponent(self, gf28_field):
        assert gf28_field.power(0, 5) == 0

    def test_negative_exponents_invert_first(self, gf28_field):
        rng = random.Random(21)
        for _ in range(20):
            value = rng.randrange(1, 256)
            exponent = rng.randrange(1, 30)
            expected = gf28_field.power(gf28_field.inverse(value), exponent)
            assert gf28_field.power(value, -exponent) == expected

    def test_negative_exponent_of_zero_raises(self, gf28_field):
        with pytest.raises(ZeroDivisionError):
            gf28_field.power(0, -1)

    def test_negative_exponent_in_non_field_raises(self):
        ring = GF2mField(0b101, check_irreducible=False)  # (y+1)^2, reducible
        with pytest.raises(ValueError):
            ring.power(0b10, -1)

    def test_negative_exponent_consistency(self, gf28_field):
        # a^(-k) * a^k == 1 for invertible a.
        for value in (1, 2, 0x57, 0xFF):
            product = gf28_field.multiply(gf28_field.power(value, -7), gf28_field.power(value, 7))
            assert product == 1


class TestFieldElement:
    def test_operator_syntax(self, gf28_field):
        a = gf28_field(0x57)
        b = gf28_field(0x83)
        assert int(a + b) == 0x57 ^ 0x83
        assert int(a * b) == gf28_field.multiply(0x57, 0x83)
        assert int(a - b) == int(a + b)          # characteristic 2
        assert int((a * b) / b) == 0x57
        assert int(a ** 2) == gf28_field.square(0x57)

    def test_division_by_zero_raises(self, gf28_field):
        a = gf28_field(0x57)
        with pytest.raises(ZeroDivisionError):
            _ = a / gf28_field(0)
        with pytest.raises(ZeroDivisionError):
            _ = a / 0
        with pytest.raises(ZeroDivisionError):
            gf28_field(0).inverse()
        # Zero is a perfectly fine numerator.
        assert int(gf28_field(0) / a) == 0

    def test_mixing_fields_raises(self, gf28_field):
        other = GF2mField(0b1011)
        with pytest.raises(ValueError):
            _ = gf28_field(1) + other(1)

    def test_coercion_of_integers(self, gf28_field):
        assert int(gf28_field(0x57) + 1) == 0x56

    def test_invalid_value_rejected(self, gf28_field):
        with pytest.raises(ValueError):
            FieldElement(gf28_field, 256)

    def test_bool_and_trace(self, gf28_field):
        assert not gf28_field(0)
        assert gf28_field(5)
        assert gf28_field(5).trace() in (0, 1)

    def test_elements_iterator_small_field(self):
        field = GF2mField(0b1011)
        values = [int(element) for element in field.elements()]
        assert values == list(range(8))

    def test_random_element_in_range(self, gf28_field):
        rng = random.Random(0)
        for _ in range(20):
            assert 0 <= int(gf28_field.random_element(rng)) < 256
