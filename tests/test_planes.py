"""The plane-resident compute layer and the plane-resident batched ladder.

Acceptance contract of the PR 5 tentpole: the entire batched Montgomery
ladder can run in the uint64 plane domain — one pack, all steps on planes,
one unpack — and stays **byte-identical** to the scalar-reference ladder on
every tested curve, including batches mixing scalars of very different bit
lengths (the masked plane-select path).  The :class:`PlaneProgram` lowering
of GF(2)-linear maps must agree with the table-driven scalar maps
lane-by-lane, pinned down by a hypothesis property for squaring.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import (
    PlaneProgram,
    bitsliced_netlist,
    get_backend,
    numpy_available,
    plane_program,
)
from repro.curves import curve_by_name, ecdh_batch, keygen_batch
from repro.galois.field import GF2mField
from repro.galois.pentanomials import smallest_type_ii_pentanomial

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

GF2_163 = GF2mField(smallest_type_ii_pentanomial(163), check_irreducible=False)

#: The parity grid of ISSUE 5: toy curve plus two NIST-degree Koblitz curves.
PARITY_CURVES = ["T-13", "K-163", "K-233"]


def _mixed_scalars(curve, count, rng):
    """Scalars covering the masked-select corners: 0, 1, n-1, and mixed widths."""
    n = curve.order if curve.order is not None else curve.field.order
    scalars = [0, 1, n - 1, 2, 3]
    # Deliberately different bit lengths inside one batch.
    for width in range(1, curve.field.m, max(1, curve.field.m // 8)):
        scalars.append((rng.getrandbits(width) | (1 << (width - 1))) % n or 1)
    while len(scalars) < count:
        scalars.append(rng.randrange(0, n))
    return scalars[:count]


@requires_numpy
class TestPlaneCapability:
    def test_bitslice_advertises_plane_resident(self):
        backend = get_backend("bitslice", GF2_163)
        assert backend.capabilities.plane_resident
        planes = backend.plane_compute()
        assert planes is not None
        assert planes.m == 163
        assert backend.plane_compute() is planes  # cached per backend instance

    @pytest.mark.parametrize("name", ["python", "engine"])
    def test_other_backends_report_capability_absent(self, name):
        backend = get_backend(name, GF2_163)
        assert not backend.capabilities.plane_resident
        assert backend.plane_compute() is None

    def test_forcing_planes_on_a_scalar_backend_fails_loudly(self):
        curve = curve_by_name("T-13")
        point = curve.generator
        with pytest.raises(ValueError, match="plane-resident"):
            curve.multiply_batch([point], [3], backend="python", plane_resident=True)

    def test_describe_mentions_the_substrate(self):
        planes = get_backend("bitslice", GF2_163).plane_compute()
        assert "plane-resident" in planes.describe()


@requires_numpy
@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestPlaneVectorRoundtrip:
    """Exercises the deprecated PlaneCompute op shims (see tests/test_ir.py)."""

    def test_pack_unpack_is_identity(self):
        planes = get_backend("bitslice", GF2_163).plane_compute()
        rng = random.Random(5)
        values = [0, 1, (1 << 163) - 1] + [rng.getrandbits(163) for _ in range(70)]
        assert planes.unpack(planes.pack(values)) == values

    def test_xor_and_select(self):
        planes = get_backend("bitslice", GF2_163).plane_compute()
        rng = random.Random(6)
        a = [rng.getrandbits(163) for _ in range(67)]
        b = [rng.getrandbits(163) for _ in range(67)]
        bits = [rng.getrandbits(1) for _ in range(67)]
        va, vb = planes.pack(a), planes.pack(b)
        assert planes.unpack(planes.xor_planes(va, vb)) == [x ^ y for x, y in zip(a, b)]
        mask = planes.broadcast_bits(bits)
        selected = planes.unpack(planes.select_planes(mask, va, vb))
        assert selected == [x if bit else y for x, y, bit in zip(a, b, bits)]

    def test_mismatched_batches_are_rejected(self):
        planes = get_backend("bitslice", GF2_163).plane_compute()
        rng = random.Random(12)
        narrow = planes.pack([rng.getrandbits(163) for _ in range(10)])   # 1 lane word
        wide = planes.pack([rng.getrandbits(163) for _ in range(70)])     # 2 lane words
        with pytest.raises(ValueError, match="one batch"):
            planes.xor_planes(narrow, wide)
        with pytest.raises(ValueError, match="one batch"):
            planes.multiply_planes([narrow, wide], [wide, narrow])
        mask = planes.broadcast_bits([1] * 10)
        with pytest.raises(ValueError, match="lane words"):
            planes.select_planes(mask, wide, wide)

    def test_multiply_planes_single_and_stacked(self):
        field = GF2_163
        planes = get_backend("bitslice", field).plane_compute()
        rng = random.Random(7)
        a = [rng.getrandbits(163) for _ in range(33)]
        b = [rng.getrandbits(163) for _ in range(33)]
        c = [rng.getrandbits(163) for _ in range(33)]
        d = [rng.getrandbits(163) for _ in range(33)]
        va, vb, vc, vd = map(planes.pack, (a, b, c, d))
        single = planes.unpack(planes.multiply_planes(va, vb))
        assert single == [field.multiply(x, y) for x, y in zip(a, b)]
        stacked = planes.multiply_planes([va, vc], [vb, vd])
        assert planes.unpack(stacked[0]) == single
        assert planes.unpack(stacked[1]) == [field.multiply(x, y) for x, y in zip(c, d)]


@requires_numpy
@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestPlaneProgram:
    """Exercises the deprecated apply_linear_planes shim (see tests/test_ir.py)."""

    def test_square_program_matches_scalar_map(self):
        field = GF2_163
        planes = get_backend("bitslice", field).plane_compute()
        rng = random.Random(8)
        values = [0, 1, (1 << 163) - 1] + [rng.getrandbits(163) for _ in range(100)]
        squared = planes.unpack(planes.apply_linear_planes(field.square_map, planes.pack(values)))
        assert squared == [field.square(value) for value in values]

    def test_constant_multiplier_program(self):
        field = GF2_163
        planes = get_backend("bitslice", field).plane_compute()
        rng = random.Random(9)
        constant = rng.getrandbits(163)
        mul_c = field.constant_multiplier(constant)
        values = [rng.getrandbits(163) for _ in range(65)]
        result = planes.unpack(planes.apply_linear_planes(mul_c, planes.pack(values)))
        assert result == [field.multiply(constant, value) for value in values]

    def test_zero_and_identity_maps(self):
        import numpy as np

        identity = PlaneProgram([1 << i for i in range(8)])
        zero = PlaneProgram([0] * 8)
        data = np.arange(8, dtype=np.uint64).reshape(8, 1)
        assert identity.apply(data).tolist() == data.tolist()
        assert zero.apply(data).tolist() == [[0]] * 8
        assert identity.xor_count == 0  # pure copies need no gates

    def test_rejects_wrong_shapes(self):
        import numpy as np

        program = PlaneProgram([1, 2, 3])
        with pytest.raises(ValueError, match="input planes"):
            program.apply(np.zeros((4, 1), dtype=np.uint64))
        with pytest.raises(ValueError, match="output space"):
            PlaneProgram([1, 2, 9], out_bits=3)

    def test_programs_are_memoized(self):
        program = plane_program(GF2_163.square_map)
        assert plane_program(GF2_163.square_map) is program
        assert "XOR" in program.describe()

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 163) - 1), min_size=1, max_size=96))
    @settings(max_examples=25, deadline=None)
    def test_plane_squaring_equals_field_square_lane_by_lane(self, values):
        planes = get_backend("bitslice", GF2_163).plane_compute()
        packed = planes.pack(values)
        squared = planes.unpack(planes.apply_linear_planes(GF2_163.square_map, packed))
        assert squared == [GF2_163.square(value) for value in values]


@requires_numpy
class TestNetlistMemoization:
    def test_lowering_is_shared_across_equal_fields(self):
        from repro.multipliers.cache import cached_multiplier

        modulus = GF2_163.modulus
        multiplier = cached_multiplier("thiswork", modulus, verify=False)
        first = bitsliced_netlist(multiplier.netlist, multiplier.m, modulus=modulus)
        second = bitsliced_netlist(multiplier.netlist, multiplier.m, modulus=modulus)
        assert first is second
        # Backend instances for equal fields reuse the same lowering.
        backend = get_backend("bitslice", GF2mField(modulus, check_irreducible=False))
        assert backend.sliced is first

    def test_no_modulus_means_no_cache_entry(self):
        from repro.multipliers.cache import cached_multiplier

        multiplier = cached_multiplier("thiswork", GF2_163.modulus, verify=False)
        first = bitsliced_netlist(multiplier.netlist, multiplier.m)
        second = bitsliced_netlist(multiplier.netlist, multiplier.m)
        assert first is not second

    def test_chunk_size_is_part_of_the_key(self):
        from repro.multipliers.cache import cached_multiplier

        modulus = GF2_163.modulus
        multiplier = cached_multiplier("thiswork", modulus, verify=False)
        default = bitsliced_netlist(multiplier.netlist, multiplier.m, modulus=modulus)
        narrow = bitsliced_netlist(multiplier.netlist, multiplier.m, chunk_size=64, modulus=modulus)
        assert default is not narrow and narrow.chunk_size == 64


@requires_numpy
class TestPlaneLadderParity:
    """ISSUE 5 satellite: plane ladder == scalar reference on the parity grid."""

    @pytest.mark.parametrize("name", PARITY_CURVES)
    def test_plane_ladder_matches_scalar_reference(self, name):
        curve = curve_by_name(name)
        rng = random.Random(2018)
        backend = get_backend("bitslice", curve.field)
        scalars = _mixed_scalars(curve, 16, rng)
        generator = curve.generator
        points = [generator] * len(scalars)
        plane = curve.multiply_batch(points, scalars, backend=backend, plane_resident=True)
        reference = [curve.multiply(generator, scalar) for scalar in scalars]
        assert plane == reference

    @pytest.mark.parametrize("name", ["T-13", "K-163"])
    def test_plane_and_step_paths_are_byte_identical(self, name):
        curve = curve_by_name(name)
        rng = random.Random(99)
        backend = get_backend("bitslice", curve.field)
        scalars = _mixed_scalars(curve, 12, rng)
        points = [curve.generator] * len(scalars)
        plane = curve.multiply_batch(points, scalars, backend=backend, plane_resident=True)
        steps = curve.multiply_batch(points, scalars, backend=backend, plane_resident=False)
        assert plane == steps

    def test_plane_ladder_chunks_large_batches(self):
        curve = curve_by_name("T-13")
        rng = random.Random(3)
        backend = get_backend("bitslice", curve.field, chunk_size=8)
        scalars = _mixed_scalars(curve, 37, rng)  # forces 5 plane chunks
        points = [curve.generator] * len(scalars)
        plane = curve.multiply_batch(points, scalars, backend=backend, plane_resident=True)
        assert plane == [curve.multiply(curve.generator, scalar) for scalar in scalars]

    def test_distinct_base_points_per_lane(self):
        curve = curve_by_name("T-13")
        rng = random.Random(11)
        backend = get_backend("bitslice", curve.field)
        points = [curve.random_point(rng) for _ in range(9)]
        scalars = _mixed_scalars(curve, 9, rng)
        plane = curve.multiply_batch(points, scalars, backend=backend, plane_resident=True)
        assert plane == [curve.multiply(p, k) for p, k in zip(points, scalars)]

    def test_protocols_route_through_the_plane_ladder(self):
        curve = curve_by_name("K-163")
        pairs = keygen_batch(curve, 6, seed=4, backend="bitslice", plane_resident=True)
        reference = keygen_batch(curve, 6, seed=4, batched=False)
        assert [p.public for p in pairs] == [p.public for p in reference]
        shared = ecdh_batch(
            curve,
            [p.private for p in pairs],
            [p.public for p in reversed(pairs)],
            backend="bitslice",
            plane_resident=True,
        )
        assert shared == [
            curve.multiply(q.public, p.private) for p, q in zip(pairs, reversed(pairs))
        ]
