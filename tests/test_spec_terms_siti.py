"""Unit tests for the partial-product atoms and the S_i / T_i functions."""

from __future__ import annotations

import pytest

from repro.spec.siti import (
    all_s_functions,
    all_t_functions,
    convolution_pairs,
    s_function,
    st_functions,
    t_function,
)
from repro.spec.terms import Atom, atoms_to_string, pairs_of_atoms, x_atom, z_atom


class TestAtoms:
    def test_x_atom_properties(self):
        atom = x_atom(4)
        assert atom.is_x and not atom.is_z
        assert atom.product_count == 1
        assert atom.pairs() == frozenset({(4, 4)})
        assert atom.label() == "x4"
        assert atom.expression() == "a4*b4"

    def test_z_atom_properties(self):
        atom = z_atom(1, 7)
        assert atom.is_z and not atom.is_x
        assert atom.product_count == 2
        assert atom.pairs() == frozenset({(1, 7), (7, 1)})
        assert atom.label() == "z1^7"
        assert "a1*b7" in atom.expression()

    def test_z_atom_is_canonicalised(self):
        assert z_atom(7, 1) == z_atom(1, 7)

    def test_z_atom_rejects_equal_indices(self):
        with pytest.raises(ValueError):
            z_atom(3, 3)

    def test_atom_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            Atom(-1, 2)

    def test_pairs_of_atoms_union(self):
        atoms = [x_atom(0), z_atom(1, 2)]
        assert pairs_of_atoms(atoms) == frozenset({(0, 0), (1, 2), (2, 1)})

    def test_atoms_to_string(self):
        assert atoms_to_string([x_atom(4), z_atom(1, 7)]) == "x4 + z1^7"
        assert atoms_to_string([]) == "0"


class TestPaperGF28Example:
    """The S_i / T_i expansions printed in the paper's Section II for GF(2^8)."""

    def test_s_functions_match_paper(self):
        expected = {
            1: "S1 = x0",
            2: "S2 = z0^1",
            3: "S3 = x1 + z0^2",
            4: "S4 = z0^3 + z1^2",
            5: "S5 = x2 + z0^4 + z1^3",
            6: "S6 = z0^5 + z1^4 + z2^3",
            7: "S7 = x3 + z0^6 + z1^5 + z2^4",
            8: "S8 = z0^7 + z1^6 + z2^5 + z3^4",
        }
        for i, text in expected.items():
            assert s_function(8, i).to_string() == text

    def test_t_functions_match_paper(self):
        expected = {
            0: "T0 = x4 + z1^7 + z2^6 + z3^5",
            1: "T1 = z2^7 + z3^6 + z4^5",
            2: "T2 = x5 + z3^7 + z4^6",
            3: "T3 = z4^7 + z5^6",
            4: "T4 = x6 + z5^7",
            5: "T5 = z6^7",
            6: "T6 = x7",
        }
        for i, text in expected.items():
            assert t_function(8, i).to_string() == text


class TestIdentities:
    @pytest.mark.parametrize("m", [4, 7, 8, 11, 16, 23])
    def test_s_equals_low_convolution_coefficient(self, m):
        for i in range(1, m + 1):
            assert s_function(m, i).pairs() == convolution_pairs(m, i - 1)

    @pytest.mark.parametrize("m", [4, 7, 8, 11, 16, 23])
    def test_t_equals_high_convolution_coefficient(self, m):
        for i in range(m - 1):
            assert t_function(m, i).pairs() == convolution_pairs(m, m + i)

    @pytest.mark.parametrize("m", [8, 13, 20])
    def test_product_counts(self, m):
        # S_i holds i partial products; T_i holds m - 1 - i.
        for i in range(1, m + 1):
            assert s_function(m, i).product_count == i
        for i in range(m - 1):
            assert t_function(m, i).product_count == m - 1 - i

    def test_all_functions_partition_the_product_grid(self):
        m = 11
        seen = set()
        for function in all_s_functions(m) + all_t_functions(m):
            pairs = function.pairs()
            assert not (pairs & seen)
            seen |= pairs
        assert seen == {(i, j) for i in range(m) for j in range(m)}

    def test_st_functions_dictionary(self):
        functions = st_functions(8)
        assert set(functions) == {f"S{i}" for i in range(1, 9)} | {f"T{i}" for i in range(7)}

    def test_out_of_range_indices_raise(self):
        with pytest.raises(ValueError):
            s_function(8, 0)
        with pytest.raises(ValueError):
            s_function(8, 9)
        with pytest.raises(ValueError):
            t_function(8, 7)
        with pytest.raises(ValueError):
            convolution_pairs(8, 15)
