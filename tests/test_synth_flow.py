"""Tests for the end-to-end implementation flow and its reports."""

from __future__ import annotations

import pytest

from repro.galois.pentanomials import type_ii_pentanomial
from repro.multipliers import generate_multiplier
from repro.synth.device import ARTIX7, GENERIC_4LUT
from repro.synth.flow import (
    FlowArtifacts,
    SynthesisOptions,
    implement,
    implement_netlist,
    stage_map,
    stage_pack,
    stage_report,
    stage_restructure,
    stage_time,
)
from repro.synth.report import ImplementationResult, format_table


class TestImplement:
    def test_basic_result_fields(self, gf28_modulus):
        result = implement(generate_multiplier("thiswork", gf28_modulus))
        assert result.method == "thiswork"
        assert result.m == 8 and result.n == 2
        assert result.luts > 0 and result.slices > 0
        assert result.delay_ns > 0
        assert result.area_time == pytest.approx(result.luts * result.delay_ns)
        assert result.and_gates == 64
        assert result.restructured is True
        assert result.device == ARTIX7.name

    def test_fixed_structure_methods_are_not_restructured(self, gf28_modulus):
        result = implement(generate_multiplier("imana2016", gf28_modulus))
        assert result.restructured is False

    def test_restructure_override(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus)
        forced_off = implement(multiplier, options=SynthesisOptions(restructure=False))
        assert forced_off.restructured is False

    def test_artifacts_contain_equivalent_netlist(self, gf28_modulus):
        from repro.netlist.verify import verify_netlist

        multiplier = generate_multiplier("thiswork", gf28_modulus)
        artifacts = implement(multiplier, keep_artifacts=True)
        assert isinstance(artifacts, FlowArtifacts)
        assert artifacts.result.luts == artifacts.mapped.lut_count
        assert verify_netlist(artifacts.netlist, multiplier.spec).equivalent

    def test_artifacts_carry_packing_and_timing(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus)
        artifacts = implement(multiplier, keep_artifacts=True)
        assert artifacts.packing is not None
        assert artifacts.packing.slice_count == artifacts.result.slices
        assert artifacts.packing.average_fill() == pytest.approx(artifacts.result.average_slice_fill)
        assert artifacts.timing is not None
        assert artifacts.timing.critical_path_ns == pytest.approx(artifacts.result.delay_ns)

    def test_effort_levels_never_hurt(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus)
        low = implement(multiplier, options=SynthesisOptions(effort=1))
        high = implement(multiplier, options=SynthesisOptions(effort=3))
        assert high.area_time <= low.area_time + 1e-9

    def test_4lut_device_needs_more_luts(self, gf28_modulus):
        multiplier = generate_multiplier("reyhani_hasan", gf28_modulus)
        artix = implement(multiplier, device=ARTIX7)
        legacy = implement(multiplier, device=GENERIC_4LUT)
        assert legacy.luts > artix.luts
        assert legacy.device == GENERIC_4LUT.name

    def test_field_label_and_dict(self, gf28_modulus):
        result = implement(generate_multiplier("paar", gf28_modulus))
        assert result.field_label == "(8,2)"
        as_dict = result.as_dict()
        assert as_dict["method"] == "paar" and as_dict["luts"] == result.luts

    def test_implement_netlist_without_spec(self, gf28_modulus):
        multiplier = generate_multiplier("imana2012", gf28_modulus)
        result = implement_netlist(multiplier.netlist)
        assert isinstance(result, ImplementationResult)
        assert result.luts > 0 and result.n is None


class TestPaperShapeGF28:
    """The qualitative Table V claims on the paper's running example field."""

    @pytest.fixture(scope="class")
    def results(self, gf28_modulus):
        methods = ["paar", "rashidi", "reyhani_hasan", "imana2012", "imana2016", "thiswork"]
        return {
            method: implement(generate_multiplier(method, gf28_modulus))
            for method in methods
        }

    def test_proposed_beats_parenthesized_everywhere(self, results):
        # Paper: "the new approach is more area and time efficient [than [7]]".
        assert results["thiswork"].luts <= results["imana2016"].luts
        assert results["thiswork"].delay_ns <= results["imana2016"].delay_ns
        assert results["thiswork"].area_time < results["imana2016"].area_time

    def test_proposed_is_at_or_near_the_best_area_time(self, results):
        best = min(result.area_time for result in results.values())
        assert results["thiswork"].area_time <= best * 1.10

    def test_delays_are_within_the_papers_spread(self, results):
        delays = [result.delay_ns for result in results.values()]
        assert max(delays) / min(delays) < 1.25

    def test_absolute_delay_in_plausible_artix7_range(self, results):
        # The paper reports 9.6 - 10.1 ns for GF(2^8); the model should land
        # in the same order of magnitude (not cycle-accurate).
        for result in results.values():
            assert 5.0 < result.delay_ns < 20.0

    def test_absolute_lut_count_in_plausible_range(self, results):
        # Paper: 33 - 40 LUTs for GF(2^8).  Our structural mapper is allowed a
        # modest overhead but must stay in the same regime.
        for result in results.values():
            assert 25 <= result.luts <= 80


class TestMediumFieldShape:
    def test_proposed_beats_parenthesized_on_gf2_32(self):
        modulus = type_ii_pentanomial(32, 11)
        proposed = implement(generate_multiplier("thiswork", modulus, verify=False))
        parenthesized = implement(generate_multiplier("imana2016", modulus, verify=False))
        assert proposed.luts <= parenthesized.luts
        assert proposed.area_time <= parenthesized.area_time

    def test_area_grows_roughly_quadratically(self):
        small = implement(generate_multiplier("thiswork", type_ii_pentanomial(16, 3), verify=False))
        large = implement(generate_multiplier("thiswork", type_ii_pentanomial(32, 11), verify=False))
        ratio = large.luts / small.luts
        assert 2.5 < ratio < 6.5    # ideal quadratic scaling would be 4x


class TestStageDecomposition:
    """implement() is a thin driver over the stage functions — same results."""

    def test_manual_stage_chain_matches_implement(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus)
        options = SynthesisOptions(effort=2)
        outcome = stage_restructure(multiplier, options)
        mappings = stage_map(outcome, ARTIX7, options)
        packed = stage_pack(mappings, ARTIX7, options)
        timed = stage_time(packed, ARTIX7)
        artifacts = stage_report(timed, multiplier, ARTIX7, restructured=outcome.restructured)
        assert artifacts.result == implement(multiplier, options=options)

    def test_restructure_stage_respects_fixed_structure(self, gf28_modulus):
        multiplier = generate_multiplier("imana2016", gf28_modulus)
        outcome = stage_restructure(multiplier, SynthesisOptions())
        assert outcome.restructured is False
        assert outcome.candidates == [multiplier.netlist]

    def test_effort_controls_explored_candidates(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus)
        low = stage_map(stage_restructure(multiplier, SynthesisOptions(effort=1)), ARTIX7, SynthesisOptions(effort=1))
        high = stage_map(stage_restructure(multiplier, SynthesisOptions(effort=3)), ARTIX7, SynthesisOptions(effort=3))
        assert len(high) > len(low)

    def test_report_stage_needs_candidates(self, gf28_modulus):
        multiplier = generate_multiplier("thiswork", gf28_modulus)
        with pytest.raises(ValueError, match="at least one timed candidate"):
            stage_report([], multiplier, ARTIX7)


def test_result_json_roundtrip(gf28_modulus):
    result = implement(generate_multiplier("thiswork", gf28_modulus))
    rebuilt = ImplementationResult.from_json_dict(result.to_json_dict())
    assert rebuilt == result
    assert rebuilt.delay_ns == result.delay_ns  # to_json_dict does not round


def test_format_table_layout(gf28_modulus):
    results = [
        implement(generate_multiplier(method, gf28_modulus))
        for method in ("paar", "thiswork")
    ]
    text = format_table(results, title="demo")
    assert "demo" in text
    assert "paar" in text and "thiswork" in text
    assert "(8,2)" in text
