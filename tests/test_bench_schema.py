"""Schema checks on the committed BENCH_*.json trajectory snapshots.

Every file at the repo root must parse, satisfy the shared
``{bench, commit_pr, config, results}`` schema the dashboard consumes,
and — from PR 8 on — carry the provenance stamps ``write_bench_json``
adds next to the platform block (``git_commit`` + ISO-8601 UTC
``timestamp_utc``).  Older snapshots kept as trajectory history predate
the stamps and are exempt.
"""

from __future__ import annotations

import glob
import json
import os
import re

import pytest

from repro.telemetry.dashboard import validate_snapshot

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The first PR whose snapshots carry the provenance stamps.
STAMPED_SINCE_PR = 8

ISO_UTC = re.compile(r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z$")
GIT_HASH = re.compile(r"^[0-9a-f]{40}$")


def _committed_bench_files():
    paths = sorted(glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")))
    assert paths, "no committed BENCH_*.json files at the repo root"
    return paths


def _snapshots(path):
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return payload if isinstance(payload, list) else [payload]


@pytest.mark.parametrize("path", _committed_bench_files(), ids=os.path.basename)
class TestCommittedBenchSchema:
    def test_every_snapshot_satisfies_the_shared_schema(self, path):
        for index, snapshot in enumerate(_snapshots(path)):
            problems = validate_snapshot(snapshot)
            assert not problems, f"{os.path.basename(path)} entry {index}: {problems}"

    def test_bench_name_matches_the_filename(self, path):
        expected = os.path.basename(path)[len("BENCH_"):-len(".json")]
        for snapshot in _snapshots(path):
            assert snapshot["bench"] == expected

    def test_platform_stamp_present_in_every_snapshot(self, path):
        for snapshot in _snapshots(path):
            platform = snapshot["config"]["platform"]
            assert platform["python"] and platform["machine"]

    def test_recent_snapshots_carry_provenance_stamps(self, path):
        stamped = [s for s in _snapshots(path) if s["commit_pr"] >= STAMPED_SINCE_PR]
        assert stamped, f"{os.path.basename(path)} has no PR >= {STAMPED_SINCE_PR} snapshot"
        for snapshot in stamped:
            config = snapshot["config"]
            assert GIT_HASH.match(config["git_commit"] or ""), "missing/odd git_commit stamp"
            assert ISO_UTC.match(config["timestamp_utc"] or ""), "missing/odd timestamp_utc stamp"

    def test_history_is_sorted_by_commit_pr_without_duplicates(self, path):
        prs = [snapshot["commit_pr"] for snapshot in _snapshots(path)]
        assert prs == sorted(prs)
        assert len(prs) == len(set(prs))

    def test_results_rows_expose_at_least_one_metric(self, path):
        from repro.telemetry.dashboard import is_metric_key

        for snapshot in _snapshots(path):
            for row in snapshot["results"]:
                assert any(is_metric_key(key) for key in row), f"no metric field in {row}"
